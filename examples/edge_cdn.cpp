// Edge CDN: replicate popular video chunks across the edge network and
// serve each viewer from the replica nearest to their access point —
// the data-copies design of Section VI. Compares read distance with
// 1 vs 3 replicas.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"

using namespace gred;

namespace {

/// Mean retrieval hops across many viewers at random access points.
double mean_read_hops(core::GredSystem& sys, unsigned copies,
                      const std::vector<std::string>& chunks,
                      std::size_t switches, Rng& rng) {
  RunningStats hops;
  for (const std::string& chunk : chunks) {
    for (int viewer = 0; viewer < 8; ++viewer) {
      auto r = sys.retrieve_nearest_replica(chunk, copies,
                                            rng.next_below(switches));
      if (!r.ok() || !r.value().route.found) {
        std::fprintf(stderr, "read failed for %s\n", chunk.c_str());
        std::abort();
      }
      hops.add(static_cast<double>(r.value().selected_hops));
    }
  }
  return hops.mean();
}

}  // namespace

int main() {
  std::printf("Edge CDN on GRED: nearest-replica video delivery\n");
  std::printf("================================================\n\n");

  // A metro edge: 10x10 grid of switches, 2 cache servers each.
  const std::size_t kSwitches = 100;
  topology::EdgeNetwork net =
      topology::uniform_edge_network(topology::grid(10, 10), 2);

  auto built = core::GredSystem::create(net, {});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.error().to_string().c_str());
    return 1;
  }
  core::GredSystem sys1 = std::move(built).value();
  auto built3 = core::GredSystem::create(net, {});
  core::GredSystem sys3 = std::move(built3).value();

  // A popular show: 40 video chunks.
  std::vector<std::string> chunks;
  for (int i = 0; i < 40; ++i) {
    chunks.push_back("show/s01e01/chunk-" + std::to_string(i));
  }

  // Publisher ingests at switch 0; GRED scatters replicas by hashing
  // "<chunk>#<copy>".
  for (const std::string& chunk : chunks) {
    if (!sys1.place_replicated(chunk, "<video bytes>", 1, 0).ok() ||
        !sys3.place_replicated(chunk, "<video bytes>", 3, 0).ok()) {
      std::fprintf(stderr, "ingest failed\n");
      return 1;
    }
  }
  std::printf("Ingested %zu chunks (1 copy vs 3 copies).\n\n", chunks.size());

  Rng rng(99);
  const double hops1 = mean_read_hops(sys1, 1, chunks, kSwitches, rng);
  const double hops3 = mean_read_hops(sys3, 3, chunks, kSwitches, rng);

  std::printf("Mean viewer read distance, 1 replica : %.2f hops\n", hops1);
  std::printf("Mean viewer read distance, 3 replicas: %.2f hops\n", hops3);
  std::printf("\nReplication cut the average read path by %.0f%%: each "
              "viewer's switch picks the\nclosest copy directly from the "
              "virtual-space distances — no directory lookups.\n",
              100.0 * (1.0 - hops3 / hops1));

  // Load view: replicas also spread the serving load.
  const auto report = core::load_balance(sys3.network().server_loads());
  std::printf("Cache load: max/avg = %.2f across %zu servers.\n",
              report.max_over_avg, sys3.network().server_count());
  return 0;
}
