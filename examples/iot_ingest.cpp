// IoT ingestion with heterogeneous edge servers: small servers overload
// under a hot-spot workload, the controller extends their management
// range to neighbor switches (Section V-B), and retrieval keeps finding
// everything.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "topology/waxman.hpp"

using namespace gred;

int main() {
  std::printf("IoT ingestion with range extension\n");
  std::printf("==================================\n\n");

  // 12 switches; heterogeneous servers: 1-3 per switch, capacities
  // 20..200 items.
  Rng rng(7);
  topology::WaxmanOptions wopt;
  wopt.node_count = 12;
  wopt.min_degree = 2;
  auto topo = topology::generate_waxman(wopt, rng);
  if (!topo.ok()) return 1;
  topology::HeterogeneousOptions hopt;
  hopt.min_servers_per_switch = 1;
  hopt.max_servers_per_switch = 3;
  hopt.min_capacity = 20;
  hopt.max_capacity = 200;
  topology::EdgeNetwork net = topology::heterogeneous_edge_network(
      std::move(topo).value().graph, hopt, rng);

  auto built = core::GredSystem::create(net, {});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.error().to_string().c_str());
    return 1;
  }
  core::GredSystem sys = std::move(built).value();
  std::printf("Network: %zu switches, %zu servers (capacities 20..200)\n\n",
              net.switch_count(), net.server_count());

  // Sensors stream readings; before each placement the gateway checks
  // whether the responsible server is nearly full and, if so, asks the
  // controller to extend its range (the paper's upper-layer trigger).
  std::size_t placed = 0, extensions = 0;
  std::vector<std::string> ids;
  for (int i = 0; i < 2500; ++i) {
    const std::string id = "sensor/" + std::to_string(i % 50) + "/reading-" +
                           std::to_string(i);
    const auto target = sys.controller().expected_placement(
        sys.network(), crypto::DataKey(id));
    if (!target.ok()) return 1;
    const auto& server = sys.network().server(target.value().server);
    if (server.remaining_capacity() <= 1 &&
        !sys.network()
             .switch_at(target.value().sw)
             .table()
             .match_rewrite(target.value().server)
             .has_value()) {
      if (sys.extend_range(target.value().server).ok()) {
        ++extensions;
        std::printf("  [controller] %s nearly full -> extended range to a "
                    "neighbor-switch server\n",
                    server.info().name.c_str());
      }
    }
    auto r = sys.place(id, "reading", rng.next_below(12));
    if (!r.ok()) {
      std::printf("  [drop] %s (%s)\n", id.c_str(),
                  r.error().message.c_str());
      continue;
    }
    ids.push_back(id);
    ++placed;
  }

  std::printf("\nIngested %zu readings with %zu range extensions.\n", placed,
              extensions);

  // Every reading is still retrievable — extension is transparent to
  // the data plane (retrievals query both candidate servers).
  std::size_t found = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto r = sys.retrieve(ids[i], rng.next_below(12));
    if (r.ok() && r.value().route.found) ++found;
  }
  std::printf("Retrieval check: %zu/%zu readings found.\n", found,
              ids.size());

  const auto report = core::load_balance(sys.network().server_loads());
  std::printf("Storage balance: max/avg = %.2f, Jain = %.2f\n",
              report.max_over_avg, report.jain);
  return found == ids.size() ? 0 : 1;
}
