// gred_shell: an interactive operator console for a GRED deployment.
// Reads commands from stdin (one per line) and prints results — handy
// for poking at placement, retrieval, replication, range extension, and
// dynamics without writing code. When stdin is not a TTY it runs a
// built-in demo script so CI and `for b in ...` style runs still
// exercise it end to end.
//
// Commands:
//   place <id> <payload>         store a payload under an identifier
//   get <id>                     retrieve it (reports route + hops)
//   replicate <id> <k> <payload> store k hashed copies
//   nearest <id> <k>             read the closest of k copies
//   where <id>                   show the responsible switch/server
//   extend <server>              delegate an overloaded server's load
//   retract <server>             undo the delegation
//   join <links...>              add a switch (2 servers) linked to ...
//   leave <switch>               remove a switch
//   stats                        loads, balance, table sizes
//   help / quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/system.hpp"
#include "topology/waxman.hpp"

using namespace gred;

namespace {

void print_help() {
  std::printf(
      "commands:\n"
      "  place <id> <payload>       store payload under id\n"
      "  get <id>                   retrieve id\n"
      "  del <id>                   remove id\n"
      "  replicate <id> <k> <pay>   store k copies\n"
      "  nearest <id> <k>           read nearest of k copies\n"
      "  where <id>                 responsible switch/server\n"
      "  extend <server>            range-extend a server\n"
      "  retract <server>           undo extension\n"
      "  join <sw> [sw...]          add switch linked to given switches\n"
      "  leave <sw>                 remove switch\n"
      "  stats                      cluster statistics\n"
      "  help | quit\n");
}

class Shell {
 public:
  explicit Shell(core::GredSystem sys) : sys_(std::move(sys)), rng_(1) {}

  /// Returns false when the shell should exit.
  bool execute(const std::string& line) {
    std::istringstream in(trim(line));
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') return true;

    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      print_help();
    } else if (cmd == "place") {
      std::string id, payload;
      in >> id;
      std::getline(in, payload);
      run_place(id, trim(payload));
    } else if (cmd == "get") {
      std::string id;
      in >> id;
      run_get(id);
    } else if (cmd == "del") {
      std::string id;
      in >> id;
      auto r = sys_.remove(id, random_ingress());
      if (!r.ok()) {
        std::printf("error: %s\n", r.error().to_string().c_str());
      } else {
        std::printf(r.value().route.found ? "removed '%s'\n"
                                          : "'%s' not found\n",
                    id.c_str());
      }
    } else if (cmd == "replicate") {
      std::string id, payload;
      unsigned k = 0;
      in >> id >> k;
      std::getline(in, payload);
      run_replicate(id, k, trim(payload));
    } else if (cmd == "nearest") {
      std::string id;
      unsigned k = 0;
      in >> id >> k;
      run_nearest(id, k);
    } else if (cmd == "where") {
      std::string id;
      in >> id;
      run_where(id);
    } else if (cmd == "extend" || cmd == "retract") {
      std::size_t server = 0;
      in >> server;
      const Status s = cmd == "extend" ? sys_.extend_range(server)
                                       : sys_.retract_range(server);
      std::printf(s.ok() ? "ok\n" : "error: %s\n",
                  s.ok() ? "" : s.error().to_string().c_str());
    } else if (cmd == "join") {
      std::vector<topology::SwitchId> links;
      std::size_t sw = 0;
      while (in >> sw) links.push_back(sw);
      auto r = sys_.add_switch(links, 2);
      if (r.ok()) {
        std::printf("switch %zu joined; %zu items migrated\n", r.value(),
                    sys_.controller().last_migration_count());
      } else {
        std::printf("error: %s\n", r.error().to_string().c_str());
      }
    } else if (cmd == "leave") {
      std::size_t sw = 0;
      in >> sw;
      const Status s = sys_.remove_switch(sw);
      if (s.ok()) {
        std::printf("switch %zu left; %zu items re-homed\n", sw,
                    sys_.controller().last_migration_count());
      } else {
        std::printf("error: %s\n", s.error().to_string().c_str());
      }
    } else if (cmd == "stats") {
      run_stats();
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }

 private:
  topology::SwitchId random_ingress() {
    return rng_.next_below(sys_.network().switch_count());
  }

  void run_place(const std::string& id, const std::string& payload) {
    auto r = sys_.place(id, payload, random_ingress());
    if (!r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
      return;
    }
    std::printf("placed '%s' -> server h%zu at switch %zu "
                "(%zu hops, stretch %.2f)\n",
                id.c_str(), r.value().route.delivered_to[0],
                r.value().destination, r.value().selected_hops,
                r.value().stretch);
  }

  void run_get(const std::string& id) {
    auto r = sys_.retrieve(id, random_ingress());
    if (!r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
      return;
    }
    if (!r.value().route.found) {
      std::printf("'%s' not found\n", id.c_str());
      return;
    }
    std::printf("'%s' = \"%s\" from h%zu (%zu hops)\n", id.c_str(),
                r.value().route.payload.c_str(), r.value().route.responder,
                r.value().selected_hops);
  }

  void run_replicate(const std::string& id, unsigned k,
                     const std::string& payload) {
    auto r = sys_.place_replicated(id, payload, k, random_ingress());
    if (!r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
      return;
    }
    std::printf("placed %u copies of '%s' on servers:", k, id.c_str());
    for (const auto& rep : r.value()) {
      std::printf(" h%zu", rep.route.delivered_to[0]);
    }
    std::printf("\n");
  }

  void run_nearest(const std::string& id, unsigned k) {
    const topology::SwitchId in = random_ingress();
    auto r = sys_.retrieve_nearest_replica(id, k, in);
    if (!r.ok()) {
      std::printf("error: %s\n", r.error().to_string().c_str());
      return;
    }
    std::printf("nearest copy of '%s' from switch %zu: h%zu (%zu hops)%s\n",
                id.c_str(), in, r.value().route.responder,
                r.value().selected_hops,
                r.value().route.found ? "" : " [not found]");
  }

  void run_where(const std::string& id) {
    auto p = sys_.controller().expected_placement(sys_.network(),
                                                  crypto::DataKey(id));
    if (!p.ok()) {
      std::printf("error: %s\n", p.error().to_string().c_str());
      return;
    }
    const auto pos = crypto::DataKey(id).position();
    std::printf("'%s' hashes to (%.4f, %.4f) -> switch %zu, server h%zu\n",
                id.c_str(), pos.x, pos.y, p.value().sw, p.value().server);
  }

  void run_stats() {
    const auto loads = sys_.network().server_loads();
    const auto report = core::load_balance(loads);
    std::size_t total = 0;
    for (std::size_t l : loads) total += l;
    const auto tables = sys_.network().table_entry_counts();
    double mean_entries = 0;
    for (std::size_t c : tables) mean_entries += static_cast<double>(c);
    mean_entries /= static_cast<double>(tables.size());
    std::printf("switches: %zu   servers: %zu   items: %zu\n",
                sys_.network().switch_count(),
                sys_.network().server_count(), total);
    std::printf("balance: max/avg %.2f, Jain %.2f   "
                "flow entries/switch: %.1f\n",
                report.max_over_avg, report.jain, mean_entries);
    std::printf("embedding stress: %.3f   DT edges: %zu\n",
                sys_.controller().space().embedding_stress(),
                sys_.controller().dt().triangulation().edge_count());
  }

  core::GredSystem sys_;
  Rng rng_;
};

const char* kDemoScript[] = {
    "help",
    "place video/intro.mp4 welcome-bytes",
    "place sensor/1/t0 23.5C",
    "where video/intro.mp4",
    "get video/intro.mp4",
    "replicate hot/item 3 popular-bytes",
    "nearest hot/item 3",
    "stats",
    "join 0 1",
    "get video/intro.mp4",
    "leave 3",
    "get sensor/1/t0",
    "del sensor/1/t0",
    "get sensor/1/t0",
    "stats",
    "quit",
};

}  // namespace

int main() {
  Rng rng(42);
  topology::WaxmanOptions wopt;
  wopt.node_count = 16;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  if (!topo.ok()) return 1;
  auto sys = core::GredSystem::create(
      topology::uniform_edge_network(std::move(topo).value().graph, 2), {});
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.error().to_string().c_str());
    return 1;
  }

  std::printf("GRED shell — 16 switches, 32 servers. Type 'help'.\n");
  Shell shell(std::move(sys).value());

  if (isatty(fileno(stdin))) {
    std::string line;
    while (std::printf("gred> "), std::fflush(stdout),
           std::getline(std::cin, line)) {
      if (!shell.execute(line)) break;
    }
  } else {
    std::printf("(no TTY: running the demo script)\n");
    for (const char* line : kDemoScript) {
      std::printf("gred> %s\n", line);
      if (!shell.execute(line)) break;
    }
  }
  return 0;
}
