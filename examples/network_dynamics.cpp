// Network dynamics: edge nodes join and leave a running deployment
// (Section VI). Existing switch positions never move; only the affected
// keys migrate, and the data plane keeps resolving every identifier.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "topology/presets.hpp"

using namespace gred;

namespace {

std::size_t verify_all(core::GredSystem& sys,
                       const std::vector<std::string>& ids, Rng& rng) {
  // Requests enter at live (DT-participating) switches; a removed
  // switch is an inert transit node and rejects injections by design.
  const auto& live = sys.controller().space().participants();
  std::size_t found = 0;
  for (const std::string& id : ids) {
    auto r = sys.retrieve(id, live[rng.next_below(live.size())]);
    if (r.ok() && r.value().route.found) ++found;
  }
  return found;
}

}  // namespace

int main() {
  std::printf("Network dynamics: join and leave under load\n");
  std::printf("===========================================\n\n");

  topology::EdgeNetwork net =
      topology::uniform_edge_network(topology::grid(4, 4), 2);
  auto built = core::GredSystem::create(net, {});
  if (!built.ok()) return 1;
  core::GredSystem sys = std::move(built).value();

  Rng rng(11);
  std::vector<std::string> ids;
  for (int i = 0; i < 400; ++i) {
    const std::string id = "obj-" + std::to_string(i);
    if (!sys.place(id, "v" + std::to_string(i), rng.next_below(16)).ok()) {
      return 1;
    }
    ids.push_back(id);
  }
  std::printf("Seeded %zu objects across %zu servers.\n", ids.size(),
              sys.network().server_count());
  std::printf("Baseline check: %zu/%zu retrievable.\n\n",
              verify_all(sys, ids, rng), ids.size());

  // --- join: a new cabinet comes online next to switches 5 and 6 ---
  auto sw = sys.add_switch({5, 6}, /*servers=*/2);
  if (!sw.ok()) {
    std::fprintf(stderr, "join failed: %s\n", sw.error().to_string().c_str());
    return 1;
  }
  std::printf("Switch %zu joined (links to 5, 6). The controller fit its "
              "virtual position locally;\n%zu items migrated to the new "
              "servers — nobody else moved.\n",
              sw.value(), sys.controller().last_migration_count());
  std::printf("Post-join check: %zu/%zu retrievable.\n\n",
              verify_all(sys, ids, rng), ids.size());

  // Place more data; some of it lands on the newcomer.
  for (int i = 400; i < 500; ++i) {
    const std::string id = "obj-" + std::to_string(i);
    if (!sys.place(id, "v" + std::to_string(i),
                   rng.next_below(sys.network().switch_count()))
             .ok()) {
      return 1;
    }
    ids.push_back(id);
  }
  std::size_t newcomer_items = 0;
  for (auto s : sys.network().description().servers_at(sw.value())) {
    newcomer_items += sys.network().server(s).item_count();
  }
  std::printf("After 100 more placements the new switch's servers hold %zu "
              "items.\n\n", newcomer_items);

  // --- leave: switch 10 fails and is decommissioned ---
  const Status left = sys.remove_switch(10);
  if (!left.ok()) {
    std::fprintf(stderr, "leave failed: %s\n", left.error().to_string().c_str());
    return 1;
  }
  std::printf("Switch 10 left the network; %zu items were re-homed onto its "
              "DT neighbors.\n", sys.controller().last_migration_count());
  const std::size_t found = verify_all(sys, ids, rng);
  std::printf("Post-leave check: %zu/%zu retrievable.\n", found, ids.size());

  return found == ids.size() ? 0 : 1;
}
