// Quickstart: build a GRED deployment over a generated edge network,
// place a few data items, and retrieve them from different access
// points — the minimal end-to-end use of the public API.
#include <cstdio>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "topology/waxman.hpp"

using namespace gred;

int main() {
  std::printf("GRED quickstart\n===============\n\n");

  // 1. Generate a 30-switch edge network (BRITE/Waxman, min degree 3)
  //    with 4 edge servers per switch.
  Rng rng(2024);
  topology::WaxmanOptions wopt;
  wopt.node_count = 30;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.error().to_string().c_str());
    return 1;
  }
  topology::EdgeNetwork net = topology::uniform_edge_network(
      std::move(topo).value().graph, /*per_switch=*/4);
  std::printf("Edge network: %zu switches, %zu servers\n",
              net.switch_count(), net.server_count());

  // 2. Bring up GRED: the controller embeds the topology into the
  //    virtual space (M-position), refines it for load balance
  //    (C-regulation, T = 50), builds the multi-hop DT, and installs
  //    all forwarding state.
  auto built = core::GredSystem::create(net, {});
  if (!built.ok()) {
    std::fprintf(stderr, "create: %s\n", built.error().to_string().c_str());
    return 1;
  }
  core::GredSystem sys = std::move(built).value();
  std::printf("Control plane ready (embedding stress %.3f, %zu DT edges)\n\n",
              sys.controller().space().embedding_stress(),
              sys.controller().dt().triangulation().edge_count());

  // 3. Place data items from arbitrary access switches.
  const char* items[][2] = {
      {"sensor/42/frame-001", "<jpeg bytes>"},
      {"vehicle/7/lidar-sweep", "<point cloud>"},
      {"cam/3/segment-12", "<h264 chunk>"},
  };
  for (const auto& [id, payload] : items) {
    auto r = sys.place(id, payload, /*ingress=*/rng.next_below(30));
    if (!r.ok()) {
      std::fprintf(stderr, "place: %s\n", r.error().to_string().c_str());
      return 1;
    }
    std::printf("placed  %-24s -> server h%zu at switch %zu "
                "(%zu hops, stretch %.2f)\n",
                id, r.value().route.delivered_to[0], r.value().destination,
                r.value().selected_hops, r.value().stretch);
  }

  // 4. Retrieve them from other access points: any switch can resolve
  //    any identifier in one overlay hop.
  std::printf("\n");
  for (const auto& [id, payload] : items) {
    auto r = sys.retrieve(id, /*ingress=*/rng.next_below(30));
    if (!r.ok() || !r.value().route.found) {
      std::fprintf(stderr, "retrieve failed for %s\n", id);
      return 1;
    }
    std::printf("fetched %-24s <- server h%zu (%zu hops, payload \"%s\")\n",
                id, r.value().route.responder, r.value().selected_hops,
                r.value().route.payload.c_str());
  }

  std::printf("\nDone.\n");
  return 0;
}
