// Chord baseline (Stoica et al., SIGCOMM'01) — the comparison system in
// the paper's evaluation. Every edge server is a Chord peer on a 2^64
// identifier ring; lookups walk finger tables in O(log n) overlay hops,
// and each overlay hop is mapped onto the physical switch topology to
// measure the routing stretch the paper reports (Fig. 9) alongside the
// per-server key load (Fig. 11).
//
// Supports virtual nodes (Section II-A notes Chord can trade routing
// state for balance); the paper's comparisons run v = 1.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "crypto/data_key.hpp"
#include "topology/edge_network.hpp"

namespace gred::chord {

using RingId = std::uint64_t;

/// True iff x lies in the half-open ring interval (a, b].
bool in_ring_interval(RingId a, RingId b, RingId x);

struct ChordOptions {
  unsigned virtual_nodes = 1;  ///< ring points per physical server
  unsigned finger_bits = 64;   ///< m: finger table entries per ring node
};

/// One hop of a lookup at overlay granularity.
struct OverlayHop {
  topology::ServerId from = topology::kNoServer;
  topology::ServerId to = topology::kNoServer;
};

/// Result of a Chord lookup.
struct LookupTrace {
  topology::ServerId home = topology::kNoServer;  ///< responsible server
  std::vector<OverlayHop> hops;                   ///< overlay transitions
  std::size_t overlay_hop_count() const { return hops.size(); }
};

class ChordRing {
 public:
  /// Builds the ring over all servers of `net`. Ring ids are
  /// SHA-256("chord-node-<server>-<vnode>") truncated to 64 bits, so
  /// the placement is exactly the hash-based assignment Chord uses.
  /// Fails when the network has no servers.
  static Result<ChordRing> build(const topology::EdgeNetwork& net,
                                 const ChordOptions& options = {});

  /// Ring key of a data identifier: first 64 bits of SHA-256(id) — the
  /// same digest GRED uses, so both systems hash identical keys.
  static RingId key_of(const crypto::DataKey& key) { return key.prefix64(); }

  /// The server responsible for `key` (successor on the ring).
  topology::ServerId successor_server(RingId key) const;

  /// Iterative finger-table lookup starting from `from`'s first virtual
  /// node. Every node-to-node transition is recorded as an overlay hop.
  LookupTrace lookup(topology::ServerId from, RingId key) const;

  /// Number of finger-table entries a physical server stores (counting
  /// all its virtual nodes, deduplicated per virtual node).
  std::size_t finger_entries(topology::ServerId server) const;

  std::size_t ring_size() const { return ring_.size(); }
  unsigned virtual_nodes() const { return options_.virtual_nodes; }

 private:
  struct RingNode {
    RingId id = 0;
    topology::ServerId server = topology::kNoServer;
    /// finger[i] = index into ring_ of successor(id + 2^i).
    std::vector<std::size_t> fingers;
  };

  std::size_t successor_index(RingId key) const;
  std::size_t closest_preceding(std::size_t node_idx, RingId key) const;

  ChordOptions options_;
  std::vector<RingNode> ring_;  ///< sorted by id ascending
};

}  // namespace gred::chord
