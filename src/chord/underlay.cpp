#include "chord/underlay.hpp"

namespace gred::chord {

ChordRouteReport measure_lookup(const ChordRing& ring,
                                const topology::EdgeNetwork& net,
                                const graph::ApspResult& apsp,
                                topology::ServerId from, RingId key) {
  ChordRouteReport report;
  report.trace = ring.lookup(from, key);

  auto switch_of = [&net](topology::ServerId s) {
    return net.server(s).attached_to;
  };

  for (const OverlayHop& hop : report.trace.hops) {
    const std::size_t hops =
        apsp.hop_count(switch_of(hop.from), switch_of(hop.to));
    if (hops != graph::kNoPath) {
      report.physical_hops += hops;
    }
  }
  const std::size_t shortest =
      apsp.hop_count(switch_of(from), switch_of(report.trace.home));
  report.shortest_hops =
      shortest == graph::kNoPath ? 0 : shortest;

  if (report.shortest_hops == 0) {
    report.stretch = report.physical_hops == 0
                         ? 1.0
                         : static_cast<double>(report.physical_hops);
  } else {
    report.stretch = static_cast<double>(report.physical_hops) /
                     static_cast<double>(report.shortest_hops);
  }
  return report;
}

std::vector<std::size_t> chord_key_loads(const ChordRing& ring,
                                         const topology::EdgeNetwork& net,
                                         const std::vector<RingId>& keys) {
  std::vector<std::size_t> loads(net.server_count(), 0);
  for (RingId key : keys) {
    const topology::ServerId home = ring.successor_server(key);
    if (home < loads.size()) ++loads[home];
  }
  return loads;
}

}  // namespace gred::chord
