// Maps Chord overlay lookups onto the physical switch topology — the
// measurement the paper's Fig. 2 motivates and Fig. 9/11 quantify: each
// overlay hop between two servers costs the physical shortest path
// between their switches, so an O(log n)-hop lookup accumulates far
// more link traversals than its source-to-home shortest path.
#pragma once

#include <vector>

#include "chord/chord.hpp"
#include "graph/shortest_path.hpp"

namespace gred::chord {

struct ChordRouteReport {
  LookupTrace trace;
  std::size_t physical_hops = 0;  ///< sum over overlay hops
  std::size_t shortest_hops = 0;  ///< source switch -> home switch
  double stretch = 1.0;
};

/// Performs `ring.lookup(from, key)` and prices it on the physical
/// topology using `apsp` (hop counts over net.switches()).
ChordRouteReport measure_lookup(const ChordRing& ring,
                                const topology::EdgeNetwork& net,
                                const graph::ApspResult& apsp,
                                topology::ServerId from, RingId key);

/// Assigns each key to its successor server and returns per-server
/// counts (indexed by global server id) — the Chord load vector for the
/// max/avg comparisons.
std::vector<std::size_t> chord_key_loads(const ChordRing& ring,
                                         const topology::EdgeNetwork& net,
                                         const std::vector<RingId>& keys);

}  // namespace gred::chord
