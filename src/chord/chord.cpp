#include "chord/chord.hpp"

#include <algorithm>
#include <string>

namespace gred::chord {

bool in_ring_interval(RingId a, RingId b, RingId x) {
  // (a, b] on the 2^64 ring. When a == b the interval is the full ring.
  const RingId span = b - a;  // modular
  const RingId off = x - a;   // modular
  if (span == 0) return true;
  return off != 0 && off <= span;
}

Result<ChordRing> ChordRing::build(const topology::EdgeNetwork& net,
                                   const ChordOptions& options) {
  if (net.server_count() == 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "ChordRing: network has no servers");
  }
  if (options.virtual_nodes == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "ChordRing: virtual_nodes must be >= 1");
  }
  if (options.finger_bits == 0 || options.finger_bits > 64) {
    return Error(ErrorCode::kInvalidArgument,
                 "ChordRing: finger_bits must be in [1, 64]");
  }

  ChordRing ring;
  ring.options_ = options;
  ring.ring_.reserve(net.server_count() * options.virtual_nodes);
  for (const topology::EdgeServer& s : net.all_servers()) {
    for (unsigned v = 0; v < options.virtual_nodes; ++v) {
      const std::string label =
          "chord-node-" + std::to_string(s.id) + "-" + std::to_string(v);
      RingNode node;
      node.id = crypto::DataKey(label).prefix64();
      node.server = s.id;
      ring.ring_.push_back(std::move(node));
    }
  }
  std::sort(ring.ring_.begin(), ring.ring_.end(),
            [](const RingNode& a, const RingNode& b) {
              if (a.id != b.id) return a.id < b.id;
              return a.server < b.server;
            });
  // Hash collisions on 64-bit ids are astronomically unlikely; dedupe
  // defensively so the successor function stays well defined.
  ring.ring_.erase(std::unique(ring.ring_.begin(), ring.ring_.end(),
                               [](const RingNode& a, const RingNode& b) {
                                 return a.id == b.id;
                               }),
                   ring.ring_.end());

  // Finger tables: finger[i] = successor(id + 2^i), i in [0, m).
  for (RingNode& node : ring.ring_) {
    node.fingers.resize(options.finger_bits);
    for (unsigned i = 0; i < options.finger_bits; ++i) {
      const RingId target = node.id + (RingId{1} << i);  // modular
      node.fingers[i] = ring.successor_index(target);
    }
  }
  return ring;
}

std::size_t ChordRing::successor_index(RingId key) const {
  // First ring node with id >= key, wrapping to index 0.
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const RingNode& node, RingId k) { return node.id < k; });
  if (it == ring_.end()) return 0;
  return static_cast<std::size_t>(it - ring_.begin());
}

topology::ServerId ChordRing::successor_server(RingId key) const {
  return ring_[successor_index(key)].server;
}

std::size_t ChordRing::closest_preceding(std::size_t node_idx,
                                         RingId key) const {
  const RingNode& node = ring_[node_idx];
  for (std::size_t i = node.fingers.size(); i-- > 0;) {
    const std::size_t f = node.fingers[i];
    if (f == node_idx) continue;
    // Finger strictly in (node.id, key).
    if (in_ring_interval(node.id, key, ring_[f].id) && ring_[f].id != key) {
      return f;
    }
  }
  return node_idx;
}

LookupTrace ChordRing::lookup(topology::ServerId from, RingId key) const {
  LookupTrace trace;
  // Start at the querying server's first virtual node on the ring.
  std::size_t cur = 0;
  bool found_start = false;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    if (ring_[i].server == from) {
      cur = i;
      found_start = true;
      break;
    }
  }
  if (!found_start) {
    // Unknown origin: answer directly (no overlay route to record).
    trace.home = successor_server(key);
    return trace;
  }

  // The origin may already own the key: key in (predecessor, cur].
  {
    const std::size_t pred = cur == 0 ? ring_.size() - 1 : cur - 1;
    if (ring_.size() == 1 ||
        in_ring_interval(ring_[pred].id, ring_[cur].id, key)) {
      trace.home = ring_[cur].server;
      return trace;
    }
  }

  // Iterative find_successor with a defensive step bound.
  const std::size_t max_steps = 2 * ring_.size() + 64;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const std::size_t succ =
        cur + 1 < ring_.size() ? cur + 1 : 0;  // ring successor
    if (in_ring_interval(ring_[cur].id, ring_[succ].id, key)) {
      // Key owned by cur's successor: final overlay hop unless we are
      // already there.
      if (ring_[succ].server != ring_[cur].server) {
        trace.hops.push_back({ring_[cur].server, ring_[succ].server});
      }
      trace.home = ring_[succ].server;
      return trace;
    }
    std::size_t next = closest_preceding(cur, key);
    if (next == cur) next = succ;  // no finger helps: crawl the ring
    if (ring_[next].server != ring_[cur].server) {
      trace.hops.push_back({ring_[cur].server, ring_[next].server});
    }
    cur = next;
  }
  // Defensive: should be unreachable with consistent finger tables.
  trace.home = successor_server(key);
  return trace;
}

std::size_t ChordRing::finger_entries(topology::ServerId server) const {
  std::size_t total = 0;
  for (const RingNode& node : ring_) {
    if (node.server != server) continue;
    // Distinct finger targets (the classic table stores m rows but many
    // point at the same node; count distinct, which is what a real
    // implementation keeps in its routing state).
    std::vector<std::size_t> distinct = node.fingers;
    std::sort(distinct.begin(), distinct.end());
    distinct.erase(std::unique(distinct.begin(), distinct.end()),
                   distinct.end());
    total += distinct.size();
  }
  return total;
}

}  // namespace gred::chord
