#include "linalg/mds.hpp"

#include <cmath>

#include "linalg/eigen.hpp"

namespace gred::linalg {

Matrix pairwise_distances(const Matrix& coords) {
  const std::size_t n = coords.rows();
  const std::size_t m = coords.cols();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < m; ++k) {
        const double diff = coords(i, k) - coords(j, k);
        acc += diff * diff;
      }
      const double dist = std::sqrt(acc);
      d(i, j) = dist;
      d(j, i) = dist;
    }
  }
  return d;
}

double kruskal_stress(const Matrix& distances, const Matrix& coords) {
  const Matrix dhat = pairwise_distances(coords);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < distances.rows(); ++i) {
    for (std::size_t j = i + 1; j < distances.cols(); ++j) {
      const double diff = distances(i, j) - dhat(i, j);
      num += diff * diff;
      den += distances(i, j) * distances(i, j);
    }
  }
  if (den == 0.0) return 0.0;
  return std::sqrt(num / den);
}

Result<MdsResult> classical_mds(const Matrix& distances, std::size_t m) {
  const std::size_t n = distances.rows();
  if (n == 0 || distances.cols() != n) {
    return Error(ErrorCode::kInvalidArgument,
                 "classical_mds: distance matrix must be square");
  }
  if (m == 0 || m >= n) {
    return Error(ErrorCode::kInvalidArgument,
                 "classical_mds: need 0 < m < n");
  }
  if (!distances.is_symmetric(1e-9)) {
    return Error(ErrorCode::kInvalidArgument,
                 "classical_mds: distance matrix must be symmetric");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (distances(i, i) != 0.0) {
      return Error(ErrorCode::kInvalidArgument,
                   "classical_mds: nonzero diagonal");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (distances(i, j) < 0.0) {
        return Error(ErrorCode::kInvalidArgument,
                     "classical_mds: negative distance");
      }
    }
  }

  // Double centering: B = -1/2 J L^(2) J with J = I - A/n.
  const Matrix l2 = distances.elementwise_square();
  Matrix j = Matrix::identity(n);
  j -= Matrix::ones(n, n) * (1.0 / static_cast<double>(n));
  Matrix b = j * l2 * j;
  b *= -0.5;
  // Symmetrize to kill floating-point drift before Jacobi.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) {
      const double avg = 0.5 * (b(r, c) + b(c, r));
      b(r, c) = avg;
      b(c, r) = avg;
    }
  }

  EigenDecomposition eig = symmetric_eigen(b);

  // Q = E_m Lambda_m^{1/2}; clamp tiny negative eigenvalues (the hop
  // metric is generally non-Euclidean, so trailing eigenvalues can dip
  // below zero).
  MdsResult out;
  out.eigenvalues = eig.values;
  out.coordinates = Matrix(n, m);
  for (std::size_t k = 0; k < m; ++k) {
    const double lambda = eig.values[k];
    const double scale = lambda > 0.0 ? std::sqrt(lambda) : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      out.coordinates(i, k) = eig.vectors(i, k) * scale;
    }
  }
  out.stress = kruskal_stress(distances, out.coordinates);
  return out;
}

}  // namespace gred::linalg
