// Dense row-major double matrix — the only linear-algebra container the
// control plane needs (distance matrices are n x n with n = #switches,
// a few hundred at most, so dense is the right choice).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace gred::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer lists (rows). All rows must have
  /// equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);
  /// All-ones matrix (the paper's `A` in double centering).
  static Matrix ones(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (asserts in debug, throws in release).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(double scalar) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scalar);

  bool operator==(const Matrix& rhs) const = default;

  /// Elementwise square (the paper's L^(2) in double centering).
  Matrix elementwise_square() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; requires equal shapes.
  double max_abs_diff(const Matrix& other) const;

  bool is_symmetric(double tol = 1e-9) const;

  std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator*(double scalar, const Matrix& m);

}  // namespace gred::linalg
