#include "linalg/matrix.hpp"

#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace gred::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::ones(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 1.0);
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return (*this)(r, c);
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix Matrix::operator*(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::elementwise_square() const {
  Matrix out = *this;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(r, c) *= (*this)(r, c);
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double mx = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      os << std::setw(precision + 6) << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? " ]" : "\n");
  }
  return os.str();
}

Matrix operator*(double scalar, const Matrix& m) { return m * scalar; }

}  // namespace gred::linalg
