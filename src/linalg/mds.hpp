// Classical multidimensional scaling — the mathematical core of the
// paper's M-position algorithm (Section IV-A):
//
//   B = -1/2 * J * L^(2) * J,   J = I - (1/n) * A   (double centering)
//   B = Q Q^T  via eigendecomposition;  Q = E_m * Lambda_m^{1/2}
//
// where L is the all-pairs shortest-path (hop) matrix between switches
// and m the embedding dimension (2 in the paper).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "linalg/matrix.hpp"

namespace gred::linalg {

struct MdsResult {
  /// n x m coordinate matrix Q; row i is the embedded point of node i.
  Matrix coordinates;
  /// All eigenvalues of B, descending — diagnostics for how much
  /// distance structure the top-m dimensions capture.
  std::vector<double> eigenvalues;
  /// Kruskal stress-1 of the embedding against the input distances:
  /// sqrt( sum (d_ij - dhat_ij)^2 / sum d_ij^2 ). 0 = perfect.
  double stress = 0.0;
};

/// Embeds a symmetric non-negative distance matrix into m dimensions.
/// Fails when `distances` is not square/symmetric, has a negative entry
/// or nonzero diagonal, or when m is 0 or >= n.
Result<MdsResult> classical_mds(const Matrix& distances, std::size_t m);

/// Kruskal stress-1 between a distance matrix and the pairwise Euclidean
/// distances of `coords` (n x m). Exposed for tests/ablations.
double kruskal_stress(const Matrix& distances, const Matrix& coords);

/// Pairwise Euclidean distance matrix of the rows of `coords`.
Matrix pairwise_distances(const Matrix& coords);

}  // namespace gred::linalg
