#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace gred::linalg {
namespace {

/// Sum of squares of the strictly-off-diagonal elements.
double off_diagonal_sq(const Matrix& a) {
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      if (r != c) acc += a(r, c) * a(r, c);
    }
  }
  return acc;
}

}  // namespace

EigenDecomposition symmetric_eigen(const Matrix& a,
                                   const JacobiOptions& options) {
  if (!a.is_symmetric(1e-6)) {
    throw std::invalid_argument("symmetric_eigen: matrix is not symmetric");
  }
  const std::size_t n = a.rows();
  Matrix d = a;                       // working copy, driven to diagonal
  Matrix v = Matrix::identity(n);    // accumulated rotations

  const double stop =
      options.tolerance * options.tolerance * a.frobenius_norm() *
          a.frobenius_norm() +
      1e-300;

  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    if (off_diagonal_sq(d) <= stop) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = d(p, p);
        const double aqq = d(q, q);

        // Rotation angle that annihilates d(p,q).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Apply J^T D J on rows/cols p and q.
        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort eigenpairs by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<double> diag(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = d(i, i);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.values[j] = diag[order[j]];
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace gred::linalg
