// Symmetric eigendecomposition via the cyclic Jacobi rotation method.
// The control plane's M-position algorithm needs the top-m eigenpairs of
// the double-centered matrix B (n x n, n = #switches), for which Jacobi
// is simple, robust, and plenty fast at these sizes.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace gred::linalg {

/// Eigen decomposition of a symmetric matrix: A = V diag(values) V^T.
/// `values` are sorted descending; `vectors.col(j)` pairs with values[j]
/// (vectors is column-major in the sense that column j is eigenvector j).
struct EigenDecomposition {
  std::vector<double> values;
  Matrix vectors;  ///< n x n; column j is the eigenvector for values[j].
};

/// Options for the Jacobi sweep loop.
struct JacobiOptions {
  std::size_t max_sweeps = 64;
  double tolerance = 1e-12;  ///< stop when off-diagonal norm is below this
                             ///< times the Frobenius norm of the input
};

/// Computes all eigenpairs of a symmetric matrix. Precondition:
/// a.is_symmetric(); asserts/throws otherwise.
EigenDecomposition symmetric_eigen(const Matrix& a,
                                   const JacobiOptions& options = {});

}  // namespace gred::linalg
