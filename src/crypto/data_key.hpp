// The paper's data-identifier hashing scheme (Section III):
//
//   * H(d) = SHA-256 of the identifier string (32 bytes).
//   * The LAST 8 bytes of H(d) are split into two 4-byte big-endian
//     integers x and y; the virtual-space position of the data is
//     ( x / (2^32 - 1), y / (2^32 - 1) ) — coordinates in [0, 1].
//   * At the terminal switch with s attached servers, the serving
//     server index is H(d) mod s (Section V-B).
//   * The k-th replica of identifier d hashes the concatenation of d
//     and the copy serial number (Section VI).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "crypto/sha256.hpp"

namespace gred::crypto {

/// A position in the unit square, both coordinates in [0, 1].
struct SpacePoint {
  double x = 0.0;
  double y = 0.0;
};

/// Full derived key of a data identifier: digest + virtual position.
class DataKey {
 public:
  /// Hashes `identifier` with SHA-256 and derives the position.
  explicit DataKey(std::string_view identifier);

  /// Builds directly from a digest (used by tests and the Chord bridge).
  explicit DataKey(const Digest& digest);

  const Digest& digest() const { return digest_; }

  /// Virtual-space position derived from the last 8 digest bytes.
  SpacePoint position() const { return position_; }

  /// Server selection at the terminal switch: H(d) mod s, using the
  /// digest interpreted as a big-endian integer (its low 64 bits give
  /// the same residue for any s that fits in 64 bits).
  std::uint64_t mod(std::uint64_t s) const;

  /// First 64 bits of the digest as an unsigned integer (big-endian);
  /// this is the key used when the same identifier is placed on a Chord
  /// ring, so both systems hash identically.
  std::uint64_t prefix64() const;

 private:
  void derive();

  Digest digest_{};
  SpacePoint position_{};
};

/// H(d) mod s over a raw digest — identical to DataKey(digest).mod(s)
/// but without deriving the virtual position, which the delivery fast
/// path never needs.
std::uint64_t digest_mod(const Digest& digest, std::uint64_t s);

/// Identifier of the k-th replica: "<id>#<k>" per Section VI (ID and
/// serial number concatenated, then hashed).
std::string replica_identifier(std::string_view id, unsigned copy);

}  // namespace gred::crypto
