// SHA-256 (FIPS 180-4), implemented from scratch — the paper hashes every
// data identifier with SHA-256 to derive its position in the virtual
// space (Section III). Validated against the FIPS/NIST test vectors in
// tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace gred::crypto {

/// A 32-byte SHA-256 digest.
using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
///   Sha256 h;
///   h.update("abc");
///   Digest d = h.finish();
///
/// `finish()` may be called once; the object can then be `reset()`.
class Sha256 {
 public:
  Sha256() { reset(); }

  /// Restores the initial state; discards all buffered input.
  void reset();

  /// Absorbs `len` bytes.
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Pads, finalizes, and returns the digest.
  Digest finish();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_len_ = 0;       // bytes absorbed so far
  std::uint8_t buffer_[64];           // partial block
  std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest sha256(std::string_view data);
Digest sha256(const void* data, std::size_t len);

}  // namespace gred::crypto
