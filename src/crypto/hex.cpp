#include "crypto/hex.hpp"

namespace gred::crypto {
namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string to_hex(const Digest& digest) {
  return to_hex(digest.data(), digest.size());
}

Result<std::vector<std::uint8_t>> from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Error(ErrorCode::kInvalidArgument, "hex string has odd length");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Error(ErrorCode::kInvalidArgument,
                   "non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace gred::crypto
