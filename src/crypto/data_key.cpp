#include "crypto/data_key.hpp"

namespace gred::crypto {
namespace {

std::uint32_t be32(const std::uint8_t* p) {
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

std::uint64_t be64(const std::uint8_t* p) {
  return (std::uint64_t(be32(p)) << 32) | be32(p + 4);
}

}  // namespace

DataKey::DataKey(std::string_view identifier) : digest_(sha256(identifier)) {
  derive();
}

DataKey::DataKey(const Digest& digest) : digest_(digest) { derive(); }

void DataKey::derive() {
  // Last 8 bytes -> two 4-byte integers -> [0,1] coordinates.
  const std::uint32_t xi = be32(digest_.data() + 24);
  const std::uint32_t yi = be32(digest_.data() + 28);
  constexpr double kMax = 4294967295.0;  // 2^32 - 1
  position_.x = static_cast<double>(xi) / kMax;
  position_.y = static_cast<double>(yi) / kMax;
}

std::uint64_t DataKey::mod(std::uint64_t s) const {
  return digest_mod(digest_, s);
}

std::uint64_t digest_mod(const Digest& digest, std::uint64_t s) {
  if (s == 0) return 0;
  // The digest is a 256-bit big-endian integer D. Reduce it mod s by
  // Horner's rule over the four 64-bit limbs using 128-bit arithmetic,
  // so the result is exactly D mod s (not just low-bits mod s).
  __extension__ typedef unsigned __int128 uint128;  // non-ISO, GCC/Clang
  uint128 acc = 0;
  for (int limb = 0; limb < 4; ++limb) {
    acc = ((acc << 64) | be64(digest.data() + 8 * limb)) % s;
  }
  return static_cast<std::uint64_t>(acc);
}

std::uint64_t DataKey::prefix64() const { return be64(digest_.data()); }

std::string replica_identifier(std::string_view id, unsigned copy) {
  return std::string(id) + "#" + std::to_string(copy);
}

}  // namespace gred::crypto
