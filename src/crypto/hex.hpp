// Hex encoding/decoding for digests and identifiers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "crypto/sha256.hpp"

namespace gred::crypto {

/// Lowercase hex of arbitrary bytes.
std::string to_hex(const std::uint8_t* data, std::size_t len);
std::string to_hex(const Digest& digest);

/// Parses lowercase/uppercase hex. Fails on odd length or non-hex chars.
Result<std::vector<std::uint8_t>> from_hex(const std::string& hex);

}  // namespace gred::crypto
