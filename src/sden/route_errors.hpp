// Routing-failure status constructors shared by the compiled fast path
// (SdenNetwork::route), the live-pipeline reference router, and the
// delivery paths. Centralizing the (code, message) pairs is what keeps
// the fast-path/reference differential bit-identical on FAILED routes:
// both sides build the same classified status for the same drop.
//
// Failure-path semantics of RouteResult (enforced by both routers):
//   * status holds one of the classified codes below,
//   * switch_path keeps the partial path walked up to the drop,
//   * path_cost keeps the cost of that partial path,
//   * found == false, delivered_to empty, responder == kNoServer,
//     payload empty — a failed route never reports delivery state.
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "sden/fault_state.hpp"
#include "sden/packet.hpp"

namespace gred::sden::route_errors {

/// Flow-table miss while relaying over a virtual link.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status no_relay(SwitchId at) {
  return Status(ErrorCode::kNoRoute,
                "packet dropped at switch " + std::to_string(at) +
                    ": no relay entry for virtual-link destination");
}

/// Greedy packet reached a switch that is not a DT participant.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status non_dt_transit(SwitchId at) {
  return Status(ErrorCode::kNoRoute,
                "packet dropped at switch " + std::to_string(at) +
                    ": greedy packet at non-DT transit switch");
}

/// Terminal switch owns the data but has no attached servers.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status no_servers(SwitchId at) {
  return Status(ErrorCode::kNoRoute,
                "packet dropped at switch " + std::to_string(at) +
                    ": terminal switch has no attached servers");
}

/// A flow entry points over a link that does not exist in the topology.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status missing_link(SwitchId from, SwitchId to) {
  return Status(ErrorCode::kLinkDown,
                "switch " + std::to_string(from) +
                    " forwarded over a non-existent link to switch " +
                    std::to_string(to));
}

/// Hop bound exceeded: transient loop (stale tables) or table bug.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status hop_bound() {
  return Status(ErrorCode::kRoutingLoop, "routing loop: hop bound exceeded");
}

/// Range-extension handoff rides a link missing from the topology.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status handoff_missing_link() {
  return Status(ErrorCode::kLinkDown,
                "range-extension handoff over non-existent link");
}

/// A drop decision from the live pipeline, classified by the decision's
/// drop_code with the pipeline's reason text.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status pipeline_drop(SwitchId at, ErrorCode code,
                            const char* reason) {
  return Status(code, "packet dropped at switch " + std::to_string(at) +
                          ": " + (reason != nullptr ? reason : "unknown"));
}

/// Injection at a switch id outside the network. Shared by every
/// router front-end (compiled, reference, seed, sharded) so the
/// terminal status stays bit-identical across them.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status bad_ingress() {
  return Status(ErrorCode::kOutOfRange,
                "inject: ingress switch out of range");
}

/// The packet entered the network at a crashed switch.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status ingress_down(SwitchId at) {
  return Status(ErrorCode::kLinkDown,
                "ingress switch " + std::to_string(at) + " is down");
}

/// Forwarding toward a crashed switch black-holes the packet.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status next_switch_down(SwitchId at, SwitchId next) {
  return Status(ErrorCode::kLinkDown,
                "packet dropped at switch " + std::to_string(at) +
                    ": next switch " + std::to_string(next) + " is down");
}

/// The link itself is down or dropped this packet probabilistically.
// cold: failure-path status construction builds a std::string
// message; drops are the exception, not the steady state.
GRED_COLD_PATH inline Status link_faulted(SwitchId at, SwitchId next, bool hard_down) {
  return Status(ErrorCode::kLinkDown,
                "packet dropped at switch " + std::to_string(at) +
                    ": link to switch " + std::to_string(next) +
                    (hard_down ? " is down" : " dropped the packet"));
}

/// Checks the injected fault state for one physical traversal
/// `from -> to`. Returns Ok when the traversal survives. Callers guard
/// with `faults != nullptr` so the healthy steady state pays nothing.
inline Status check_traversal(const FaultState& faults, SwitchId from,
                              SwitchId to, std::uint64_t packet_salt) {
  if (faults.switch_is_down(to)) return next_switch_down(from, to);
  const double p = faults.link_drop_probability(from, to);
  if (p > 0.0 && faults.drops(p, from, to, packet_salt)) {
    return link_faulted(from, to, p >= 1.0);
  }
  return Status::Ok();
}

}  // namespace gred::sden::route_errors
