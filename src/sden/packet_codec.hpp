// Binary wire codec for GRED packets — the byte layout a real P4
// deployment would parse on ingress (the simulator passes Packet
// structs around in memory; the controller's northbound API and the
// fuzz harnesses need the serialized form).
//
// Layout v1, all integers big-endian:
//
//   offset  size  field
//        0     4  magic "GRDP"
//        4     1  version (= 1)
//        5     1  packet type (0 placement, 1 retrieval, 2 removal)
//        6     8  vlink_dest  (kNoSwitch when in greedy mode)
//       14     8  vlink_sour  (kNoSwitch when in greedy mode)
//       22     8  target.x    (IEEE-754 bit pattern)
//       30     8  target.y    (IEEE-754 bit pattern)
//       38     4  data_id length N
//       42     N  data_id bytes
//     42+N     4  payload length M
//     46+N     M  payload bytes
//
// decode_packet is total: any byte string either yields a well-formed
// Packet (finite target coordinates, valid type, consistent vlink
// pair, no trailing garbage) or a typed Error — never a crash, never
// a silently-truncated field. encode(decode(b)) == b and
// decode(encode(p)) == p for all well-formed inputs; the fuzz harness
// fuzz/fuzz_packet_codec.cpp hammers exactly that contract.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "sden/packet.hpp"

namespace gred::sden {

/// Serialized size of `pkt` in bytes.
std::size_t encoded_packet_size(const Packet& pkt);

/// Serializes `pkt` into the v1 wire layout.
std::vector<std::uint8_t> encode_packet(const Packet& pkt);

/// Parses a v1 wire packet. Fails with kInvalidArgument on any
/// malformed input: short buffer, bad magic/version/type, non-finite
/// target coordinates, field lengths exceeding the buffer,
/// inconsistent virtual-link fields, or trailing bytes.
Result<Packet> decode_packet(const std::uint8_t* data, std::size_t len);
Result<Packet> decode_packet(const std::vector<std::uint8_t>& bytes);

/// Structural well-formedness of an in-memory packet (the decoder's
/// postcondition, usable as a standalone check): valid type tag,
/// finite target, and vlink_sour set only while a virtual link is
/// being traversed.
Status validate_packet(const Packet& pkt);

}  // namespace gred::sden
