// An edge server in the simulator: bounded key-value storage plus the
// load counters the evaluation reads (number of data items received —
// the paper's per-server load for the max/avg metric).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "topology/edge_network.hpp"

namespace gred::sden {

class ServerNode {
 public:
  explicit ServerNode(const topology::EdgeServer& info) : info_(info) {}

  const topology::EdgeServer& info() const { return info_; }

  /// Stores (or overwrites) an item. Fails with kUnavailable when the
  /// capacity (if bounded) is exhausted — the trigger for the range
  /// extension in Section V-B.
  Status store(const std::string& id, std::string payload);

  /// Returns the payload if present.
  std::optional<std::string> fetch(const std::string& id) const;

  bool contains(const std::string& id) const { return items_.count(id) > 0; }

  /// Removes an item; true when it existed.
  bool erase(const std::string& id);

  /// Currently stored items — the paper's load metric.
  std::size_t item_count() const { return items_.size(); }
  /// Cumulative placements ever received (diagnostics).
  std::size_t placements_received() const { return placements_received_; }
  /// Cumulative retrievals served (diagnostics).
  std::size_t retrievals_served() const { return retrievals_served_; }

  std::size_t capacity() const { return info_.capacity; }
  bool at_capacity() const {
    return info_.capacity != 0 && items_.size() >= info_.capacity;
  }
  /// Remaining capacity; SIZE_MAX when unbounded.
  std::size_t remaining_capacity() const;

  /// Records a served retrieval (called by the network walk).
  void note_retrieval() { ++retrievals_served_; }

  const std::unordered_map<std::string, std::string>& items() const {
    return items_;
  }

 private:
  topology::EdgeServer info_;
  std::unordered_map<std::string, std::string> items_;
  std::size_t placements_received_ = 0;
  std::size_t retrievals_served_ = 0;
};

}  // namespace gred::sden
