// An edge server in the simulator: bounded key-value storage plus the
// load counters the evaluation reads (number of data items received —
// the paper's per-server load for the max/avg metric).
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "sden/item_store.hpp"
#include "topology/edge_network.hpp"

namespace gred::sden {

class ServerNode {
 public:
  explicit ServerNode(const topology::EdgeServer& info) : info_(info) {}

  // The retrieval counter is atomic (see note_retrieval), which costs
  // the implicit copy/move operations; they are spelled out here.
  ServerNode(const ServerNode& o)
      : info_(o.info_),
        items_(o.items_),
        placements_received_(o.placements_received_),
        retrievals_served_(o.retrievals_served_.load()) {}
  ServerNode(ServerNode&& o) noexcept
      : info_(std::move(o.info_)),
        items_(std::move(o.items_)),
        placements_received_(o.placements_received_),
        retrievals_served_(o.retrievals_served_.load()) {}
  ServerNode& operator=(const ServerNode& o) {
    if (this != &o) {
      info_ = o.info_;
      items_ = o.items_;
      placements_received_ = o.placements_received_;
      retrievals_served_.store(o.retrievals_served_.load());
    }
    return *this;
  }
  ServerNode& operator=(ServerNode&& o) noexcept {
    info_ = std::move(o.info_);
    items_ = std::move(o.items_);
    placements_received_ = o.placements_received_;
    retrievals_served_.store(o.retrievals_served_.load());
    return *this;
  }

  const topology::EdgeServer& info() const { return info_; }

  /// Stores (or overwrites) an item. Fails with kUnavailable when the
  /// capacity (if bounded) is exhausted — the trigger for the range
  /// extension in Section V-B.
  Status store(const std::string& id, std::string payload);

  /// Returns the payload if present.
  std::optional<std::string> fetch(const std::string& id) const;

  /// Allocation-free lookup: pointer to the stored payload (valid
  /// until the item is overwritten or erased), or nullptr. The route
  /// fast path copies through this into reused scratch capacity
  /// instead of materializing an optional<string>. One dependent cache
  /// miss: the ItemStore slot holds id and payload inline.
  const std::string* find(const std::string& id) const {
    return items_.find(id);
  }

  bool contains(const std::string& id) const { return items_.contains(id); }

  /// Removes an item; true when it existed.
  bool erase(const std::string& id);

  /// Currently stored items — the paper's load metric.
  std::size_t item_count() const { return items_.size(); }
  /// Cumulative placements ever received (diagnostics).
  std::size_t placements_received() const { return placements_received_; }
  /// Cumulative retrievals served (diagnostics).
  std::size_t retrievals_served() const {
    // relaxed: standalone diagnostic tally (see note_retrieval).
    return retrievals_served_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return info_.capacity; }
  bool at_capacity() const {
    return info_.capacity != 0 && items_.size() >= info_.capacity;
  }
  /// Remaining capacity; SIZE_MAX when unbounded.
  std::size_t remaining_capacity() const;

  /// Records a served retrieval (called by the network walk).
  void note_retrieval() {
    // relaxed: the parallel retrieval replay routes independent
    // requests concurrently, and this commutative counter bump is the
    // only write they share — no ordering with other data needed.
    retrievals_served_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Stored items, iterable as (id, payload) pairs.
  const ItemStore& items() const { return items_; }

 private:
  topology::EdgeServer info_;
  ItemStore items_;
  std::size_t placements_received_ = 0;
  std::atomic<std::size_t> retrievals_served_{0};
};

}  // namespace gred::sden
