// Per-switch hot-key cache for the retrieval path (ROADMAP "Hotspot
// traffic"). Zipf retrieval traffic concentrates on a few keys; a
// small set-associative cache at each ingress switch answers repeats
// of those keys without routing to the home switch, cutting both tail
// delay and home-switch load.
//
// Coherence rule (the invariant the soak tests pin): a cached entry is
// only served while nothing that could move, rewrite, or delete data
// has happened since it was filled. Every control-plane mutation flows
// through SdenNetwork::invalidate_plan(), which bumps the cache's
// global epoch — the same conservative hook that invalidates the
// compiled route plan — and GredProtocol::place/remove additionally
// invalidate the single affected id (payload overwrite / deletion
// without a plan change). An entry whose epoch is stale is a miss.
//
// Concurrency: probe() is safe concurrently with other probes (the
// CLOCK reference bits and the hit/miss tallies are relaxed atomics);
// insert()/invalidate_*()/ensure_switches() are control-plane-side and
// must not run concurrently with probes, like any control-plane
// mutation vs. routing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.hpp"
#include "crypto/sha256.hpp"
#include "topology/edge_network.hpp"

namespace gred::sden {

class HotKeyCache {
 public:
  /// One cached retrieval answer. The payload string keeps its
  /// capacity across evictions and refills, so a warmed cache inserts
  /// and serves without heap allocation for same-sized payloads.
  struct Entry {
    crypto::Digest digest{};  ///< full H(d): no false hits by design
    std::string payload;
    topology::SwitchId home = 0;  ///< switch that served the fill
    topology::ServerId responder = topology::kNoServer;
    std::uint64_t epoch = 0;  ///< valid iff == cache epoch
    bool used = false;
  };

  /// How GredProtocol::retrieve uses the cache.
  enum class Mode {
    kLearn,  ///< probe, and insert on miss (single-threaded callers)
    kServe,  ///< probe only — safe for concurrent retrievals
  };

  /// `switches` per-switch sets of `ways` entries each.
  HotKeyCache(std::size_t switches, std::size_t ways);

  std::size_t switch_count() const { return switch_count_; }
  std::size_t ways() const { return ways_; }

  /// Master switch: while false, probe() always misses (cheaply) and
  /// insert() is a no-op. Lets differential tests compare cached vs.
  /// uncached retrievals on the same network.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  Mode mode() const { return mode_; }
  void set_mode(Mode m) { mode_ = m; }

  /// Looks `digest` up in switch `sw`'s set. Returns the entry on a
  /// hit (payload/home/responder readable until the next control-plane
  /// mutation), nullptr on a miss. Allocation-free.
  GRED_HOT_PATH const Entry* probe(topology::SwitchId sw,
                                   const crypto::Digest& digest);

  /// Fills switch `sw`'s set with a served retrieval, evicting by
  /// CLOCK. Not on the hot path: a miss already routed the packet, and
  /// the fill copies the payload string.
  // cold: copies the payload into the entry — one call per cache miss,
  // never in the steady served-from-cache state.
  GRED_COLD_PATH void insert(topology::SwitchId sw,
                             const crypto::Digest& digest,
                             const std::string& payload,
                             topology::SwitchId home,
                             topology::ServerId responder);

  /// Drops every cached entry (epoch bump, O(1)). Hooked into
  /// SdenNetwork::invalidate_plan: any mutation conservative enough to
  /// invalidate the route plan also invalidates cached answers.
  void invalidate_all() {
    // relaxed: control-plane mutations never run concurrently with
    // probes (the network-wide contract), so the bump needs atomicity
    // for the concurrent-probe readers only, not ordering.
    epoch_.fetch_add(1, std::memory_order_relaxed);
    // relaxed: same single-writer control-plane tally as above.
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Drops every cached copy of one id (payload overwrite or removal
  /// without a topology/table change). O(switches × ways).
  void invalidate_id(const crypto::Digest& digest);

  /// Grows to cover `switches` (dynamics add_switch). Existing entries
  /// are kept; reference bits reset (they are only eviction hints).
  void ensure_switches(std::size_t switches);

  /// Empties the cache outright (epoch bump + slot reset), returning
  /// payload capacity to the allocator.
  void clear();

  // --- statistics (test/bench plumbing; relaxed tallies) ---
  std::uint64_t hits() const {
    // relaxed: commutative tally, read for reporting only.
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    // relaxed: commutative tally, read for reporting only.
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t insertions() const { return insertions_; }
  std::uint64_t invalidations() const {
    // relaxed: commutative tally, read for reporting only.
    return invalidations_.load(std::memory_order_relaxed);
  }
  double hit_rate() const {
    const double h = static_cast<double>(hits());
    const double total = h + static_cast<double>(misses());
    return total == 0.0 ? 0.0 : h / total;
  }
  void reset_stats();

 private:
  std::size_t slot_base(topology::SwitchId sw) const {
    return static_cast<std::size_t>(sw) * ways_;
  }

  std::size_t switch_count_ = 0;
  std::size_t ways_ = 0;
  bool enabled_ = true;
  Mode mode_ = Mode::kLearn;
  std::vector<Entry> entries_;  ///< flattened [switch][way]
  /// CLOCK reference bits, one per entry. Separate atomic array:
  /// concurrent probes touch them, and Entry itself must stay movable.
  std::unique_ptr<std::atomic<std::uint8_t>[]> ref_;
  std::vector<std::uint8_t> hand_;  ///< per-switch CLOCK hand
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::uint64_t insertions_ = 0;  ///< control-plane-side only
};

}  // namespace gred::sden
