#include "sden/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace gred::sden {

namespace {
constexpr std::size_t kArity = 4;
}  // namespace

void EventQueue::schedule_at(double t, Handler handler) {
  heap_.push_back(Event{std::max(t, now_), next_seq_++, std::move(handler)});
  sift_up(heap_.size() - 1);
}

void EventQueue::schedule_after(double dt, Handler handler) {
  schedule_at(now_ + dt, std::move(handler));
}

void EventQueue::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!earlier(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first_child = kArity * i + 1;
    if (first_child >= n) break;
    const std::size_t last_child = std::min(first_child + kArity, n);
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // Move the root event out, refill the hole from the back, restore
  // the heap, THEN run the handler — it may schedule new events.
  Event ev = std::move(heap_.front());
  if (heap_.size() > 1) {
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
  now_ = ev.time;
  ++processed_;
  ev.handler();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace gred::sden
