#include "sden/event_queue.hpp"

#include <algorithm>
#include <utility>

namespace gred::sden {

void EventQueue::schedule_at(double t, Handler handler) {
  queue_.push(Event{std::max(t, now_), next_seq_++, std::move(handler)});
}

void EventQueue::schedule_after(double dt, Handler handler) {
  schedule_at(now_ + dt, std::move(handler));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via a
  // const_cast-free copy of the shared_ptr-like functor. Copy is cheap
  // relative to simulation work and keeps the code simple.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ++processed_;
  ev.handler();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace gred::sden
