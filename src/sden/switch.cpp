#include "sden/switch.hpp"

namespace gred::sden {

Decision Switch::process(Packet& pkt) const {
  // Stage 1: virtual-link relay (Section V-A "Transfer in a virtual
  // link"). While d.relay != null and we are not the link endpoint, the
  // packet moves along pre-installed relay tuples without greedy logic.
  if (pkt.on_virtual_link()) {
    if (pkt.vlink_dest == id_) {
      // Endpoint reached: continue in greedy mode from here.
      pkt.clear_virtual_link();
    } else {
      const RelayEntry* relay = table_.find_relay(pkt.vlink_dest);
      if (relay == nullptr) {
        Decision d;
        d.kind = Decision::Kind::kDrop;
        d.drop_reason = "no relay entry for virtual-link destination";
        d.drop_code = ErrorCode::kNoRoute;
        return d;
      }
      Decision d;
      d.kind = Decision::Kind::kForward;
      d.next_hop = relay->succ;
      return d;
    }
  }

  if (!dt_participant_) {
    Decision d;
    d.kind = Decision::Kind::kDrop;
    d.drop_reason = "greedy packet at non-DT transit switch";
    d.drop_code = ErrorCode::kNoRoute;
    return d;
  }

  return greedy_forward(pkt);
}

Decision Switch::greedy_forward(Packet& pkt) const {
  // Algorithm 2: across physical and DT neighbors, find v* minimizing
  // the Euclidean distance to the data position (ties broken by the
  // paper's (x, y) rank via closer_to). The indexed table's SoA scan
  // returns the same unique minimizer the sequential scan would.
  const std::size_t best_idx = table_.best_candidate(pkt.target);
  const NeighborEntry* best =
      best_idx == geometry::kNoSite ? nullptr : &table_.neighbors()[best_idx];

  if (best != nullptr &&
      geometry::closer_to(pkt.target, best->position, position_)) {
    Decision d;
    d.kind = Decision::Kind::kForward;
    if (best->physical) {
      d.next_hop = best->neighbor;
    } else {
      // Enter the virtual link toward the multi-hop DT neighbor.
      pkt.vlink_dest = best->neighbor;
      pkt.vlink_sour = id_;
      d.next_hop = best->first_hop;
    }
    return d;
  }

  // No neighbor is closer: this switch is closest to H(d) among all
  // switches (guaranteed by the DT), so it owns the data.
  return deliver(pkt);
}

Decision Switch::deliver(const Packet& pkt) const {
  Decision d;
  if (local_servers_.empty()) {
    d.kind = Decision::Kind::kDrop;
    d.drop_reason = "terminal switch has no attached servers";
    d.drop_code = ErrorCode::kNoRoute;
    return d;
  }

  // Section V-B: serial number H(d) mod s. pkt.key() reuses the cached
  // digest when the sender filled it in (no SHA-256 on the fast path).
  const crypto::DataKey key = pkt.key();
  const std::size_t idx =
      static_cast<std::size_t>(key.mod(local_servers_.size()));
  const ServerId chosen = local_servers_[idx];

  d.kind = Decision::Kind::kDeliver;
  const RewriteEntry* rewrite = table_.find_rewrite(chosen);
  if (rewrite == nullptr) {
    d.targets.push_back({chosen, id_});
    return d;
  }

  // Range extension is active for this server.
  if (pkt.type == PacketType::kPlacement) {
    // Placement goes only to the delegate (Table II's rewrite).
    d.targets.push_back({rewrite->replacement, rewrite->via_switch});
  } else {
    // Retrieval/removal addresses both candidates simultaneously
    // (Section V-C): whichever holds the data responds/erases.
    d.targets.push_back({chosen, id_});
    d.targets.push_back({rewrite->replacement, rewrite->via_switch});
  }
  return d;
}

}  // namespace gred::sden
