// A GRED switch: the data-plane element. `process()` is a faithful
// C++ rendering of the P4 pipeline — it consults only local state (its
// own virtual position, its flow table, its attached server list) and
// the packet header, and produces a forwarding decision. All global
// knowledge lives in the controller that installed the tables.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "crypto/data_key.hpp"
#include "geometry/point.hpp"
#include "sden/flow_table.hpp"
#include "sden/packet.hpp"

namespace gred::sden {

/// Outcome of one pipeline pass. For kDeliver, `targets` lists the
/// (server, via-switch) pairs that must receive the packet: one for the
/// normal case; two for a retrieval under range extension (Section V-C
/// forwards the request to both candidate servers). `via == self` means
/// the server hangs off this switch.
struct Decision {
  enum class Kind { kForward, kDeliver, kDrop };

  struct DeliveryTarget {
    ServerId server = topology::kNoServer;
    SwitchId via = kNoSwitch;
  };

  /// At most two delivery targets exist (retrieval under range
  /// extension addresses the original and the delegate server), so the
  /// list lives inline — a per-hop Decision never touches the heap.
  class TargetList {
   public:
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    void push_back(const DeliveryTarget& t) { items_[count_++] = t; }
    const DeliveryTarget& operator[](std::size_t i) const {
      return items_[i];
    }
    const DeliveryTarget* begin() const { return items_; }
    const DeliveryTarget* end() const { return items_ + count_; }

   private:
    DeliveryTarget items_[2];
    std::uint8_t count_ = 0;
  };

  Kind kind = Kind::kDrop;
  SwitchId next_hop = kNoSwitch;          ///< kForward
  TargetList targets;                     ///< kDeliver
  const char* drop_reason = nullptr;      ///< kDrop diagnostics
  /// Classified failure for kDrop (kNoRoute for table misses; routers
  /// surface it verbatim so retry logic can filter retryable drops).
  ErrorCode drop_code = ErrorCode::kInternal;
};

class Switch {
 public:
  explicit Switch(SwitchId id) : id_(id) {}

  SwitchId id() const { return id_; }

  /// DT participants have a virtual position; pure transit switches
  /// (no attached servers, Section IV-C) do not.
  void set_position(const geometry::Point2D& p) {
    position_ = p;
    dt_participant_ = true;
  }
  const geometry::Point2D& position() const { return position_; }
  bool dt_participant() const { return dt_participant_; }

  /// Full reset to a blank transit switch (controller re-installs).
  void reset() {
    position_ = {};
    dt_participant_ = false;
    table_.clear();
    local_servers_.clear();
  }

  FlowTable& table() { return table_; }
  const FlowTable& table() const { return table_; }

  /// Attached servers in serial-number order (the H(d) mod s range).
  void set_local_servers(std::vector<ServerId> servers) {
    local_servers_ = std::move(servers);
  }
  const std::vector<ServerId>& local_servers() const {
    return local_servers_;
  }

  /// Runs the forwarding pipeline on `pkt`, possibly mutating its
  /// virtual-link fields (exactly what the P4 program rewrites).
  Decision process(Packet& pkt) const;

 private:
  /// Algorithm 2: greedy candidate selection.
  Decision greedy_forward(Packet& pkt) const;
  /// Terminal switch: pick the serving server(s) (Section V-B/V-C).
  Decision deliver(const Packet& pkt) const;

  SwitchId id_;
  geometry::Point2D position_;
  bool dt_participant_ = false;
  FlowTable table_;
  std::vector<ServerId> local_servers_;
};

}  // namespace gred::sden
