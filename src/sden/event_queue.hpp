// A minimal discrete-event engine. The response-delay experiments
// (Fig. 8) replay retrieval requests through it with per-link latency
// and FIFO queueing at servers, which is what the testbed's wall-clock
// measurements capture.
//
// Engineered for replay throughput: events live in a 4-ary implicit
// min-heap (shallower than a binary heap, children share a cache
// line), handlers are move-only SmallFunctions (no per-event heap
// allocation for the simulator's capture sizes), and reserve() lets a
// replay pre-size the storage for its request count.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "common/small_function.hpp"

namespace gred::sden {

class EventQueue {
 public:
  using Handler = SmallFunction<void()>;

  /// Schedules `handler` at absolute time `t` (>= now; earlier times
  /// are clamped to now to keep time monotonic).
  void schedule_at(double t, Handler handler);

  /// Schedules `handler` at now() + dt.
  void schedule_after(double dt, Handler handler);

  /// Pre-sizes the event storage (e.g. to the replay's request count).
  void reserve(std::size_t events) { heap_.reserve(events); }

  /// Runs the earliest event; false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  double now() const { return now_; }
  /// Time of the earliest pending event; +infinity when empty. The
  /// open-loop load driver peeks it to interleave event processing
  /// with arrival generation without popping.
  double next_time() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.front().time;
  }
  std::size_t pending() const { return heap_.size(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::size_t seq;  ///< FIFO tie-break for simultaneous events
    Handler handler;
  };

  /// Strict (time, seq) order — seq makes it total, so simultaneous
  /// events run first-scheduled-first.
  static bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Event> heap_;  ///< 4-ary min-heap: children of i are 4i+1..4i+4
  double now_ = 0.0;
  std::size_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace gred::sden
