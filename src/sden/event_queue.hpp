// A minimal discrete-event engine. The response-delay experiments
// (Fig. 8) replay retrieval requests through it with per-link latency
// and FIFO queueing at servers, which is what the testbed's wall-clock
// measurements capture.
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

namespace gred::sden {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute time `t` (>= now; earlier times
  /// are clamped to now to keep time monotonic).
  void schedule_at(double t, Handler handler);

  /// Schedules `handler` at now() + dt.
  void schedule_after(double dt, Handler handler);

  /// Runs the earliest event; false when the queue is empty.
  bool step();

  /// Runs until no events remain.
  void run();

  double now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }
  std::size_t processed() const { return processed_; }

 private:
  struct Event {
    double time;
    std::size_t seq;  ///< FIFO tie-break for simultaneous events
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::size_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace gred::sden
