#include "sden/server_node.hpp"

#include <limits>

namespace gred::sden {

Status ServerNode::store(const std::string& id, std::string payload) {
  const bool overwrite = items_.count(id) > 0;
  if (!overwrite && at_capacity()) {
    return Status(ErrorCode::kUnavailable,
                  "server " + info_.name + " is at capacity");
  }
  items_[id] = std::move(payload);
  ++placements_received_;
  return Status::Ok();
}

std::optional<std::string> ServerNode::fetch(const std::string& id) const {
  const auto it = items_.find(id);
  if (it == items_.end()) return std::nullopt;
  return it->second;
}

bool ServerNode::erase(const std::string& id) { return items_.erase(id) > 0; }

std::size_t ServerNode::remaining_capacity() const {
  if (info_.capacity == 0) return std::numeric_limits<std::size_t>::max();
  return info_.capacity > items_.size() ? info_.capacity - items_.size() : 0;
}

}  // namespace gred::sden
