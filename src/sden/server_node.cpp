#include "sden/server_node.hpp"

#include <limits>

namespace gred::sden {

Status ServerNode::store(const std::string& id, std::string payload) {
  const bool overwrite = items_.contains(id);
  if (!overwrite && at_capacity()) {
    return Status(ErrorCode::kUnavailable,
                  "server " + info_.name + " is at capacity");
  }
  items_.upsert(id, std::move(payload));
  ++placements_received_;
  return Status::Ok();
}

std::optional<std::string> ServerNode::fetch(const std::string& id) const {
  const std::string* payload = items_.find(id);
  if (payload == nullptr) return std::nullopt;
  return *payload;
}

bool ServerNode::erase(const std::string& id) { return items_.erase(id); }

std::size_t ServerNode::remaining_capacity() const {
  if (info_.capacity == 0) return std::numeric_limits<std::size_t>::max();
  return info_.capacity > items_.size() ? info_.capacity - items_.size() : 0;
}

}  // namespace gred::sden
