#include "sden/p4_pipeline.hpp"

#include <sstream>

#include "geometry/point.hpp"

namespace gred::sden {

P4GredProgram P4GredProgram::compile(const Switch& sw) {
  P4GredProgram prog;
  prog.self_ = sw.id();
  prog.self_x_ = sw.position().x;
  prog.self_y_ = sw.position().y;
  prog.dt_participant_ = sw.dt_participant();

  for (const RelayEntry& e : sw.table().relays()) {
    // Exact-match on dest, first-installed wins (mirrors FlowTable's
    // match_relay which scans in insertion order).
    prog.relay_table_.emplace(e.dest, RelayRow{e.succ});
  }
  for (const NeighborEntry& e : sw.table().neighbors()) {
    prog.candidate_rows_.push_back(
        {e.neighbor, e.position.x, e.position.y, e.physical, e.first_hop});
  }
  prog.server_rows_ = sw.local_servers();
  for (const RewriteEntry& e : sw.table().rewrites()) {
    prog.rewrite_table_.emplace(e.original,
                                RewriteRow{e.replacement, e.via_switch});
  }
  return prog;
}

Decision P4GredProgram::process(Packet& pkt) const {
  Decision decision;

  // ---- stage 0: parse ----
  // Metadata registers the later stages read/write. On the ASIC these
  // live in the PHV; here they are locals with the same lifetimes.
  double meta_target_x = pkt.target.x;
  double meta_target_y = pkt.target.y;
  bool meta_on_vlink = pkt.on_virtual_link();
  SwitchId meta_vlink_dest = pkt.vlink_dest;

  // ---- stage 1: vlink_relay ----
  if (meta_on_vlink) {
    if (meta_vlink_dest == self_) {
      // Endpoint: clear the header fields and fall through to greedy.
      pkt.clear_virtual_link();
      meta_on_vlink = false;
    } else {
      const auto hit = relay_table_.find(meta_vlink_dest);
      if (hit == relay_table_.end()) {
        decision.kind = Decision::Kind::kDrop;
        decision.drop_reason = "no relay entry for virtual-link destination";
        decision.drop_code = ErrorCode::kNoRoute;
        return decision;
      }
      decision.kind = Decision::Kind::kForward;
      decision.next_hop = hit->second.succ;
      return decision;
    }
  }

  if (!dt_participant_) {
    decision.kind = Decision::Kind::kDrop;
    decision.drop_reason = "greedy packet at non-DT transit switch";
    decision.drop_code = ErrorCode::kNoRoute;
    return decision;
  }

  // ---- stages 2..k: nbr_dist (one stage per candidate row) ----
  // Running-minimum registers, folded across the stage series. The
  // tie-break must match geometry::closer_to: distance, then (x, y).
  bool meta_have_best = false;
  std::size_t meta_best_row = 0;
  double meta_best_d2 = 0.0;
  for (std::size_t row = 0; row < candidate_rows_.size(); ++row) {
    const CandidateRow& cand = candidate_rows_[row];
    const double dx = cand.x - meta_target_x;
    const double dy = cand.y - meta_target_y;
    const double d2 = dx * dx + dy * dy;
    bool better = false;
    if (!meta_have_best || d2 < meta_best_d2) {
      better = true;
    } else if (d2 == meta_best_d2) {
      const CandidateRow& best = candidate_rows_[meta_best_row];
      better = cand.x != best.x ? cand.x < best.x : cand.y < best.y;
    }
    if (better) {
      meta_have_best = true;
      meta_best_row = row;
      meta_best_d2 = d2;
    }
  }

  // ---- stage k+1: decide ----
  const double self_dx = self_x_ - meta_target_x;
  const double self_dy = self_y_ - meta_target_y;
  const double self_d2 = self_dx * self_dx + self_dy * self_dy;
  bool candidate_wins = false;
  if (meta_have_best) {
    const CandidateRow& best = candidate_rows_[meta_best_row];
    if (meta_best_d2 < self_d2) {
      candidate_wins = true;
    } else if (meta_best_d2 == self_d2) {
      candidate_wins = best.x != self_x_ ? best.x < self_x_
                                         : best.y < self_y_;
    }
  }
  if (candidate_wins) {
    const CandidateRow& best = candidate_rows_[meta_best_row];
    decision.kind = Decision::Kind::kForward;
    if (best.physical) {
      decision.next_hop = best.neighbor;
    } else {
      // Header rewrite: enter the virtual link.
      pkt.vlink_dest = best.neighbor;
      pkt.vlink_sour = self_;
      decision.next_hop = best.first_hop;
    }
    return decision;
  }

  // ---- stage k+2: server_sel ----
  if (server_rows_.empty()) {
    decision.kind = Decision::Kind::kDrop;
    decision.drop_reason = "terminal switch has no attached servers";
    decision.drop_code = ErrorCode::kNoRoute;
    return decision;
  }
  const crypto::DataKey key = pkt.key();
  const ServerId chosen = server_rows_[static_cast<std::size_t>(
      key.mod(server_rows_.size()))];

  decision.kind = Decision::Kind::kDeliver;
  const auto rewrite = rewrite_table_.find(chosen);
  if (rewrite == rewrite_table_.end()) {
    decision.targets.push_back({chosen, self_});
    return decision;
  }
  if (pkt.type == PacketType::kPlacement) {
    decision.targets.push_back(
        {rewrite->second.replacement, rewrite->second.via});
  } else {
    decision.targets.push_back({chosen, self_});
    decision.targets.push_back(
        {rewrite->second.replacement, rewrite->second.via});
  }
  return decision;
}

std::size_t P4GredProgram::stage_count() const {
  // parse + vlink_relay + one per candidate + decide + server_sel.
  return 2 + candidate_rows_.size() + 2;
}

std::size_t P4GredProgram::table_entry_count() const {
  return relay_table_.size() + candidate_rows_.size() +
         server_rows_.size() + rewrite_table_.size();
}

std::string P4GredProgram::describe() const {
  std::ostringstream os;
  os << "P4GredProgram for sw" << self_ << " at (" << self_x_ << ", "
     << self_y_ << ")" << (dt_participant_ ? "" : " [transit]") << "\n";
  os << "stage 1 vlink_relay: " << relay_table_.size() << " entries\n";
  os << "stages 2.." << (1 + candidate_rows_.size())
     << " nbr_dist: " << candidate_rows_.size() << " candidate rows\n";
  for (const CandidateRow& c : candidate_rows_) {
    os << "    sw" << c.neighbor << " (" << c.x << ", " << c.y << ") "
       << (c.physical ? "physical" : "vlink via sw" + std::to_string(c.first_hop))
       << "\n";
  }
  os << "stage " << (2 + candidate_rows_.size())
     << " decide: self-distance comparison\n";
  os << "stage " << (3 + candidate_rows_.size()) << " server_sel: "
     << server_rows_.size() << " servers, " << rewrite_table_.size()
     << " rewrites\n";
  return os.str();
}

}  // namespace gred::sden
