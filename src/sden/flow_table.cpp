#include "sden/flow_table.hpp"

#include <algorithm>
#include <sstream>

namespace gred::sden {

void FlowTable::add_neighbor(const NeighborEntry& entry) {
  // Replace an existing entry for the same neighbor (controller
  // re-installations after topology/position updates).
  for (NeighborEntry& e : neighbors_) {
    if (e.neighbor == entry.neighbor) {
      e = entry;
      return;
    }
  }
  neighbors_.push_back(entry);
}

void FlowTable::add_relay(const RelayEntry& entry) {
  for (RelayEntry& e : relays_) {
    if (e.dest == entry.dest && e.sour == entry.sour) {
      e = entry;
      return;
    }
  }
  relays_.push_back(entry);
}

void FlowTable::add_rewrite(const RewriteEntry& entry) {
  for (RewriteEntry& e : rewrites_) {
    if (e.original == entry.original) {
      e = entry;
      return;
    }
  }
  rewrites_.push_back(entry);
}

void FlowTable::remove_rewrite(ServerId original) {
  rewrites_.erase(
      std::remove_if(rewrites_.begin(), rewrites_.end(),
                     [original](const RewriteEntry& e) {
                       return e.original == original;
                     }),
      rewrites_.end());
}

std::optional<RelayEntry> FlowTable::match_relay(SwitchId dest) const {
  for (const RelayEntry& e : relays_) {
    if (e.dest == dest) return e;
  }
  return std::nullopt;
}

std::optional<RewriteEntry> FlowTable::match_rewrite(ServerId original) const {
  for (const RewriteEntry& e : rewrites_) {
    if (e.original == original) return e;
  }
  return std::nullopt;
}

void FlowTable::clear() {
  neighbors_.clear();
  relays_.clear();
  rewrites_.clear();
}

std::string FlowTable::to_string() const {
  std::ostringstream os;
  os << "greedy candidates (" << neighbors_.size() << "):\n";
  for (const NeighborEntry& e : neighbors_) {
    os << "  -> sw" << e.neighbor << " at (" << e.position.x << ", "
       << e.position.y << ") "
       << (e.physical ? "[physical]" : "[virtual link]")
       << " first-hop sw" << e.first_hop << "\n";
  }
  os << "relay tuples (" << relays_.size() << "):\n";
  for (const RelayEntry& e : relays_) {
    os << "  <sour=" << e.sour << ", pred=" << e.pred << ", succ=" << e.succ
       << ", dest=" << e.dest << ">\n";
  }
  os << "range-extension rewrites (" << rewrites_.size() << "):\n";
  for (const RewriteEntry& e : rewrites_) {
    os << "  h" << e.original << " -> h" << e.replacement << " via sw"
       << e.via_switch << "\n";
  }
  return os.str();
}

}  // namespace gred::sden
