#include "sden/flow_table.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace gred::sden {

void FlowTable::add_neighbor(const NeighborEntry& entry) {
  // Replace an existing entry for the same neighbor (controller
  // re-installations after topology/position updates).
  if (const std::uint32_t* slot = neighbor_index_.find(entry.neighbor)) {
    neighbors_[*slot] = entry;
    cand_x_[*slot] = entry.position.x;
    cand_y_[*slot] = entry.position.y;
    return;
  }
  neighbor_index_.insert_or_assign(
      entry.neighbor, static_cast<std::uint32_t>(neighbors_.size()));
  neighbors_.push_back(entry);
  cand_x_.push_back(entry.position.x);
  cand_y_.push_back(entry.position.y);
}

void FlowTable::add_relay(const RelayEntry& entry) {
  // Dedup on <sour, dest>; the first-installed entry for a dest stays
  // the match winner (relay_by_dest_ is only written on first insert).
  const Key2 pair{entry.sour, entry.dest};
  if (const std::uint32_t* slot = relay_by_pair_.find(pair)) {
    relays_[*slot] = entry;
    return;
  }
  const auto slot = static_cast<std::uint32_t>(relays_.size());
  relay_by_pair_.insert_or_assign(pair, slot);
  if (relay_by_dest_.find(entry.dest) == nullptr) {
    relay_by_dest_.insert_or_assign(entry.dest, slot);
  }
  relays_.push_back(entry);
}

void FlowTable::add_rewrite(const RewriteEntry& entry) {
  if (const std::uint32_t* slot = rewrite_by_server_.find(entry.original)) {
    rewrites_[*slot] = entry;
    return;
  }
  rewrite_by_server_.insert_or_assign(
      entry.original, static_cast<std::uint32_t>(rewrites_.size()));
  rewrites_.push_back(entry);
}

void FlowTable::remove_rewrite(ServerId original) {
  const std::uint32_t* slot = rewrite_by_server_.find(original);
  if (slot == nullptr) return;
  const std::size_t removed = *slot;
  rewrites_.erase(rewrites_.begin() +
                  static_cast<std::ptrdiff_t>(removed));
  // Originals are unique, so exactly one entry left; reindex the tail.
  rewrite_by_server_.erase(original);
  for (std::size_t i = removed; i < rewrites_.size(); ++i) {
    rewrite_by_server_.insert_or_assign(rewrites_[i].original,
                                        static_cast<std::uint32_t>(i));
  }
}

std::size_t FlowTable::best_candidate(const geometry::Point2D& target) const {
  const std::size_t n = neighbors_.size();
  if (n == 0) return geometry::kNoSite;
  // Pass 1: minimum squared distance over the SoA columns. min() over
  // finite doubles is order-independent, so this reduction is exact.
  double min_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = cand_x_[i] - target.x;
    const double dy = cand_y_[i] - target.y;
    const double d2 = dx * dx + dy * dy;
    min_d2 = d2 < min_d2 ? d2 : min_d2;
  }
  // Pass 2: among the (almost always unique) minimizers, apply the
  // paper's lexicographic tie-break so the result equals a sequential
  // closer_to scan bit for bit.
  std::size_t best = geometry::kNoSite;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = cand_x_[i] - target.x;
    const double dy = cand_y_[i] - target.y;
    if (dx * dx + dy * dy != min_d2) continue;
    if (best == geometry::kNoSite ||
        geometry::lex_less({cand_x_[i], cand_y_[i]},
                           {cand_x_[best], cand_y_[best]})) {
      best = i;
    }
  }
  return best;
}

void FlowTable::clear() {
  neighbors_.clear();
  cand_x_.clear();
  cand_y_.clear();
  relays_.clear();
  rewrites_.clear();
  neighbor_index_.clear();
  relay_by_pair_.clear();
  relay_by_dest_.clear();
  rewrite_by_server_.clear();
}

std::string FlowTable::to_string() const {
  std::ostringstream os;
  os << "greedy candidates (" << neighbors_.size() << "):\n";
  for (const NeighborEntry& e : neighbors_) {
    os << "  -> sw" << e.neighbor << " at (" << e.position.x << ", "
       << e.position.y << ") "
       << (e.physical ? "[physical]" : "[virtual link]")
       << " first-hop sw" << e.first_hop << "\n";
  }
  os << "relay tuples (" << relays_.size() << "):\n";
  for (const RelayEntry& e : relays_) {
    os << "  <sour=" << e.sour << ", pred=" << e.pred << ", succ=" << e.succ
       << ", dest=" << e.dest << ">\n";
  }
  os << "range-extension rewrites (" << rewrites_.size() << "):\n";
  for (const RewriteEntry& e : rewrites_) {
    os << "  h" << e.original << " -> h" << e.replacement << " via sw"
       << e.via_switch << "\n";
  }
  return os.str();
}

}  // namespace gred::sden
