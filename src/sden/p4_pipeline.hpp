// A table-driven model of the GRED P4 program (Section VII-A).
//
// The imperative `Switch::process()` is convenient for simulation, but
// the paper's prototype is a P4 pipeline: a programmable parser feeding
// a series of match-action stages whose ENTRIES (not code) encode the
// forwarding state, with explicit packet metadata carried between
// stages. `P4GredProgram` reproduces that structure:
//
//   stage 0  parse          packet header -> metadata registers
//   stage 1  vlink_relay    exact match on vlink destination -> relay
//   stage 2..k  nbr_dist    one stage per candidate: compute squared
//                           distance to H(d), fold a running minimum
//                           (the paper: "multiple match-action stages
//                           are designed in series to achieve the
//                           neighboring switch whose position is
//                           closest to the position of the data")
//   stage k+1  decide       compare best candidate vs self -> forward /
//                           enter virtual link / deliver
//   stage k+2  server_sel   H(d) mod s over the server table, then the
//                           range-extension rewrite table
//
// `compile()` lowers a switch's installed FlowTable into these stage
// tables; `process()` interprets them. The equivalence property —
// identical decisions to Switch::process() on every packet — is
// enforced by tests/p4_pipeline_test.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sden/switch.hpp"

namespace gred::sden {

class P4GredProgram {
 public:
  /// Lowers the switch's control-plane state (position, neighbor
  /// entries, relay tuples, server list, rewrites) into pipeline
  /// tables. The switch object is only read during compilation.
  static P4GredProgram compile(const Switch& sw);

  /// Runs the pipeline on a packet; mutates the packet's virtual-link
  /// fields exactly like the hardware would rewrite the header.
  Decision process(Packet& pkt) const;

  /// Number of match-action stages (parse and decide included) — the
  /// per-candidate distance stages make this data-dependent, as on the
  /// ASIC.
  std::size_t stage_count() const;

  /// Total entries across all tables (equals the FlowTable entry count
  /// plus the server-selection rows).
  std::size_t table_entry_count() const;

  /// Human-readable stage/table dump.
  std::string describe() const;

 private:
  // ---- stage tables (pure data, no behavior) ----

  /// vlink_relay: exact match on the virtual-link destination.
  struct RelayRow {
    SwitchId succ;
  };
  std::unordered_map<SwitchId, RelayRow> relay_table_;

  /// nbr_dist: one row per greedy candidate (physical or DT neighbor).
  struct CandidateRow {
    SwitchId neighbor;
    double x, y;
    bool physical;
    SwitchId first_hop;
  };
  std::vector<CandidateRow> candidate_rows_;

  /// server_sel: serial-indexed server table.
  std::vector<ServerId> server_rows_;

  /// rewrite: exact match on the chosen server.
  struct RewriteRow {
    ServerId replacement;
    SwitchId via;
  };
  std::unordered_map<ServerId, RewriteRow> rewrite_table_;

  // ---- switch-local metadata ----
  SwitchId self_ = kNoSwitch;
  double self_x_ = 0.0;
  double self_y_ = 0.0;
  bool dt_participant_ = false;
};

}  // namespace gred::sden
