// Seed-faithful data plane: routes a packet the way the SEED data
// plane did, before the indexed flow tables and the compiled route
// plan existed — sequential closer_to scans over the AoS neighbor
// entries, first-match linear scans of the relay and rewrite vectors,
// a fresh SHA-256 of the data id at every delivery, and a freshly
// allocated RouteResult per packet. It is the slowest and most literal
// of the reference walks; the differential tests hold the compiled
// fast path, the live pipeline (reference_router.hpp), the sharded
// runtime, and this walk mutually bit-identical, statuses included
// (via the shared route_errors constructors).
#pragma once

#include <string>

#include "crypto/data_key.hpp"
#include "sden/network.hpp"
#include "sden/route_errors.hpp"

namespace gred::sden {

/// Routes `pkt` from `ingress` seed-style. Storage side effects go
/// through the same ServerNode objects the other routers use, so
/// interleaving on retrievals is safe. Consults the network's injected
/// FaultState exactly like the other routers, so the differential
/// holds under faults too.
inline RouteResult seed_faithful_route(SdenNetwork& net, Packet pkt,
                                       SwitchId ingress) {
  RouteResult result;
  if (ingress >= net.switch_count()) {
    result.status = route_errors::bad_ingress();
    return result;
  }

  const FaultState* const faults =
      (net.fault_state() != nullptr && net.fault_state()->any())
          ? net.fault_state()
          : nullptr;
  const std::uint64_t salt = faults != nullptr ? fault_packet_salt(pkt) : 0;
  if (faults != nullptr && faults->switch_is_down(ingress)) {
    result.fail(route_errors::ingress_down(ingress));
    return result;
  }

  const graph::Graph& links = net.description().switches();
  SwitchId cur = ingress;
  result.switch_path.push_back(cur);

  const std::size_t max_hops = net.max_route_hops();
  for (std::size_t step = 0; step < max_hops; ++step) {
    const Switch& sw = net.const_switch_at(cur);
    const FlowTable& table = sw.table();

    // Stage 1: relay (first-match linear scan, like the seed's
    // match_relay returning optional<RelayEntry>).
    if (pkt.on_virtual_link()) {
      if (pkt.vlink_dest == cur) {
        pkt.clear_virtual_link();
      } else {
        const RelayEntry* relay = nullptr;
        for (const RelayEntry& r : table.relays()) {
          if (r.dest == pkt.vlink_dest) {
            relay = &r;
            break;
          }
        }
        if (relay == nullptr) {
          result.fail(route_errors::no_relay(cur));
          return result;
        }
        const graph::EdgeTo* edge = links.find_edge(cur, relay->succ);
        if (edge == nullptr) {
          result.fail(route_errors::missing_link(cur, relay->succ));
          return result;
        }
        if (faults != nullptr) {
          Status hop =
              route_errors::check_traversal(*faults, cur, relay->succ, salt);
          if (!hop.ok()) {
            result.fail(std::move(hop));
            return result;
          }
        }
        result.path_cost += edge->weight;
        cur = relay->succ;
        result.switch_path.push_back(cur);
        continue;
      }
    }

    if (!sw.dt_participant()) {
      result.fail(route_errors::non_dt_transit(cur));
      return result;
    }

    // Stage 2: greedy candidate scan with closer_to calls (Algorithm 2
    // exactly as the seed's greedy_forward).
    const NeighborEntry* best = nullptr;
    for (const NeighborEntry& cand : table.neighbors()) {
      if (best == nullptr ||
          geometry::closer_to(pkt.target, cand.position, best->position)) {
        best = &cand;
      }
    }
    if (best != nullptr &&
        geometry::closer_to(pkt.target, best->position, sw.position())) {
      SwitchId next;
      if (best->physical) {
        next = best->neighbor;
      } else {
        pkt.vlink_dest = best->neighbor;
        pkt.vlink_sour = cur;
        next = best->first_hop;
      }
      const graph::EdgeTo* edge = links.find_edge(cur, next);
      if (edge == nullptr) {
        result.fail(route_errors::missing_link(cur, next));
        return result;
      }
      if (faults != nullptr) {
        Status hop = route_errors::check_traversal(*faults, cur, next, salt);
        if (!hop.ok()) {
          result.fail(std::move(hop));
          return result;
        }
      }
      result.path_cost += edge->weight;
      cur = next;
      result.switch_path.push_back(cur);
      continue;
    }

    // Delivery: the seed hashed the id afresh (SHA-256 + position
    // derivation) and linearly matched the rewrite table, addressing
    // both candidates on a rewritten retrieval/removal exactly like
    // Switch::deliver.
    const std::vector<ServerId>& servers = sw.local_servers();
    if (servers.empty()) {
      result.fail(route_errors::no_servers(cur));
      return result;
    }
    const crypto::DataKey key(pkt.data_id);
    const std::size_t idx = static_cast<std::size_t>(key.mod(servers.size()));
    const ServerId chosen = servers[idx];
    const RewriteEntry* rewrite = nullptr;
    for (const RewriteEntry& r : table.rewrites()) {
      if (r.original == chosen) {
        rewrite = &r;
        break;
      }
    }

    struct Target {
      ServerId server;
      SwitchId via;
    };
    Target targets[2];
    std::size_t target_count = 0;
    if (rewrite == nullptr) {
      targets[target_count++] = {chosen, cur};
    } else if (pkt.type == PacketType::kPlacement) {
      targets[target_count++] = {rewrite->replacement, rewrite->via_switch};
    } else {
      targets[target_count++] = {chosen, cur};
      targets[target_count++] = {rewrite->replacement, rewrite->via_switch};
    }

    for (std::size_t t = 0; t < target_count; ++t) {
      const Target& target = targets[t];
      if (target.server >= net.server_count()) {
        result.fail(Status(ErrorCode::kInternal, "delivery to unknown server"));
        return result;
      }
      if (target.via != cur) {
        const graph::EdgeTo* edge = links.find_edge(cur, target.via);
        if (edge == nullptr) {
          result.fail(route_errors::handoff_missing_link());
          return result;
        }
        if (faults != nullptr) {
          Status hop =
              route_errors::check_traversal(*faults, cur, target.via, salt);
          if (!hop.ok()) {
            result.fail(std::move(hop));
            return result;
          }
        }
        result.path_cost += edge->weight;
        result.switch_path.push_back(target.via);
      }
      result.delivered_to.push_back(target.server);

      ServerNode& node = net.server(target.server);
      if (pkt.type == PacketType::kPlacement) {
        const Status stored = node.store(pkt.data_id, pkt.payload);
        if (!stored.ok()) {
          result.fail(stored);
          return result;
        }
      } else if (pkt.type == PacketType::kRetrieval) {
        if (const std::string* payload = node.find(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
          result.payload = *payload;
          node.note_retrieval();
        }
      } else {  // kRemoval
        if (node.erase(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
        }
      }
    }
    return result;
  }
  result.fail(route_errors::hop_bound());
  return result;
}

}  // namespace gred::sden
