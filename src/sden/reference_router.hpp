// Reference data plane: routes a packet by walking the LIVE switch
// pipeline (Switch::process per hop, graph lookups for link validation,
// a fresh RouteResult per packet) exactly as SdenNetwork::inject did
// before the compiled route plan existed. It is deliberately naive —
// the differential tests and bench_data_plane hold the compiled fast
// path bit-identical to this walk, and the bench reports the speedup
// of the fast path over it.
#pragma once

#include <string>

#include "sden/network.hpp"

namespace gred::sden {

/// Routes `pkt` from `ingress` over the live pipeline. Storage side
/// effects are applied through the same ServerNode objects the fast
/// path uses, so interleaving the two on retrievals is safe.
inline RouteResult reference_route(SdenNetwork& net, Packet pkt,
                                   SwitchId ingress) {
  RouteResult result;
  if (ingress >= net.switch_count()) {
    result.status =
        Status(ErrorCode::kOutOfRange, "inject: ingress switch out of range");
    return result;
  }

  const graph::Graph& links = net.description().switches();
  SwitchId cur = ingress;
  result.switch_path.push_back(cur);

  const std::size_t max_hops = 4 * net.switch_count() + 16;
  for (std::size_t step = 0; step < max_hops; ++step) {
    const Switch& sw = static_cast<const SdenNetwork&>(net).switch_at(cur);
    Decision decision = sw.process(pkt);

    if (decision.kind == Decision::Kind::kDrop) {
      result.status = Status(
          ErrorCode::kInternal,
          std::string("packet dropped at switch ") + std::to_string(cur) +
              ": " +
              (decision.drop_reason ? decision.drop_reason : "unknown"));
      return result;
    }

    if (decision.kind == Decision::Kind::kForward) {
      const graph::EdgeTo* edge = links.find_edge(cur, decision.next_hop);
      if (edge == nullptr) {
        result.status = Status(
            ErrorCode::kInternal,
            "switch " + std::to_string(cur) +
                " forwarded over a non-existent link to switch " +
                std::to_string(decision.next_hop));
        return result;
      }
      result.path_cost += edge->weight;
      cur = decision.next_hop;
      result.switch_path.push_back(cur);
      continue;
    }

    // kDeliver: apply the storage side effects per target.
    const std::size_t target_count = decision.targets.size();
    for (std::size_t t = 0; t < target_count; ++t) {
      const Decision::DeliveryTarget& target = decision.targets[t];
      if (target.server >= net.server_count()) {
        result.status =
            Status(ErrorCode::kInternal, "delivery to unknown server");
        return result;
      }
      if (target.via != cur) {
        const graph::EdgeTo* edge = links.find_edge(cur, target.via);
        if (edge == nullptr) {
          result.status =
              Status(ErrorCode::kInternal,
                     "range-extension handoff over non-existent link");
          return result;
        }
        result.path_cost += edge->weight;
        result.switch_path.push_back(target.via);
      }
      result.delivered_to.push_back(target.server);

      ServerNode& node = net.server(target.server);
      if (pkt.type == PacketType::kPlacement) {
        const Status stored = node.store(pkt.data_id, pkt.payload);
        if (!stored.ok()) {
          result.status = stored;
          return result;
        }
      } else if (pkt.type == PacketType::kRetrieval) {
        if (const std::string* payload = node.find(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
          result.payload = *payload;
          node.note_retrieval();
        }
      } else {  // kRemoval
        if (node.erase(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
        }
      }
    }
    return result;
  }
  result.status =
      Status(ErrorCode::kInternal, "routing loop: hop bound exceeded");
  return result;
}

}  // namespace gred::sden
