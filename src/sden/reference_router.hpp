// Reference data plane: routes a packet by walking the LIVE switch
// pipeline (Switch::process per hop, graph lookups for link validation,
// a fresh RouteResult per packet) exactly as SdenNetwork::inject did
// before the compiled route plan existed. It is deliberately naive —
// the differential tests and bench_data_plane hold the compiled fast
// path bit-identical to this walk (statuses and messages included, via
// the shared route_errors constructors), and the bench reports the
// speedup of the fast path over it.
#pragma once

#include <string>

#include "sden/network.hpp"
#include "sden/route_errors.hpp"

namespace gred::sden {

/// Routes `pkt` from `ingress` over the live pipeline. Storage side
/// effects are applied through the same ServerNode objects the fast
/// path uses, so interleaving the two on retrievals is safe. Consults
/// the network's injected FaultState exactly like the fast path does,
/// so the differential holds under faults too.
inline RouteResult reference_route(SdenNetwork& net, Packet pkt,
                                   SwitchId ingress) {
  RouteResult result;
  if (ingress >= net.switch_count()) {
    result.status = route_errors::bad_ingress();
    return result;
  }

  const FaultState* const faults =
      (net.fault_state() != nullptr && net.fault_state()->any())
          ? net.fault_state()
          : nullptr;
  const std::uint64_t salt =
      faults != nullptr ? fault_packet_salt(pkt) : 0;
  if (faults != nullptr && faults->switch_is_down(ingress)) {
    result.fail(route_errors::ingress_down(ingress));
    return result;
  }

  const graph::Graph& links = net.description().switches();
  SwitchId cur = ingress;
  result.switch_path.push_back(cur);

  const std::size_t max_hops = 4 * net.switch_count() + 16;
  for (std::size_t step = 0; step < max_hops; ++step) {
    // Read-only inspection: const_switch_at keeps the compiled plan
    // valid (the mutable switch_at() would invalidate it every hop).
    const Switch& sw = net.const_switch_at(cur);
    Decision decision = sw.process(pkt);

    if (decision.kind == Decision::Kind::kDrop) {
      result.fail(route_errors::pipeline_drop(cur, decision.drop_code,
                                              decision.drop_reason));
      return result;
    }

    if (decision.kind == Decision::Kind::kForward) {
      const graph::EdgeTo* edge = links.find_edge(cur, decision.next_hop);
      if (edge == nullptr) {
        result.fail(route_errors::missing_link(cur, decision.next_hop));
        return result;
      }
      if (faults != nullptr) {
        Status hop = route_errors::check_traversal(*faults, cur,
                                                   decision.next_hop, salt);
        if (!hop.ok()) {
          result.fail(std::move(hop));
          return result;
        }
      }
      result.path_cost += edge->weight;
      cur = decision.next_hop;
      result.switch_path.push_back(cur);
      continue;
    }

    // kDeliver: apply the storage side effects per target.
    const std::size_t target_count = decision.targets.size();
    for (std::size_t t = 0; t < target_count; ++t) {
      const Decision::DeliveryTarget& target = decision.targets[t];
      if (target.server >= net.server_count()) {
        result.fail(Status(ErrorCode::kInternal, "delivery to unknown server"));
        return result;
      }
      if (target.via != cur) {
        const graph::EdgeTo* edge = links.find_edge(cur, target.via);
        if (edge == nullptr) {
          result.fail(route_errors::handoff_missing_link());
          return result;
        }
        if (faults != nullptr) {
          Status hop =
              route_errors::check_traversal(*faults, cur, target.via, salt);
          if (!hop.ok()) {
            result.fail(std::move(hop));
            return result;
          }
        }
        result.path_cost += edge->weight;
        result.switch_path.push_back(target.via);
      }
      result.delivered_to.push_back(target.server);

      ServerNode& node = net.server(target.server);
      if (pkt.type == PacketType::kPlacement) {
        const Status stored = node.store(pkt.data_id, pkt.payload);
        if (!stored.ok()) {
          result.fail(stored);
          return result;
        }
      } else if (pkt.type == PacketType::kRetrieval) {
        if (const std::string* payload = node.find(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
          result.payload = *payload;
          node.note_retrieval();
        }
      } else {  // kRemoval
        if (node.erase(pkt.data_id)) {
          result.found = true;
          result.responder = target.server;
        }
      }
    }
    return result;
  }
  result.fail(route_errors::hop_bound());
  return result;
}

}  // namespace gred::sden
