#include "sden/packet_codec.hpp"

#include <cmath>
#include <cstring>

namespace gred::sden {
namespace {

constexpr std::uint8_t kMagic[4] = {'G', 'R', 'D', 'P'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 1 + 1 + 8 + 8 + 8 + 8;
/// Individual variable-length fields may not exceed this, independent
/// of the buffer length (a 4 GiB length prefix on a short buffer must
/// fail before any allocation is sized from it).
constexpr std::size_t kMaxFieldLen = 1u << 28;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_double(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Sequential big-endian reader over a fixed buffer; `ok` latches
/// false on the first short read so callers can check once.
struct Reader {
  const std::uint8_t* data;
  std::size_t len;
  std::size_t pos = 0;
  bool ok = true;

  bool take(std::size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    return data[pos++];
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data[pos++];
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data[pos++];
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string bytes(std::size_t n) {
    if (!take(n)) return {};
    std::string out(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return out;
  }
};

}  // namespace

std::size_t encoded_packet_size(const Packet& pkt) {
  return kHeaderSize + 4 + pkt.data_id.size() + 4 + pkt.payload.size();
}

std::vector<std::uint8_t> encode_packet(const Packet& pkt) {
  std::vector<std::uint8_t> out;
  out.reserve(encoded_packet_size(pkt));
  // push_back instead of range-insert: GCC 12 -O2 raises a spurious
  // -Wstringop-overflow on inserting a fixed array into a vector it
  // proved empty.
  for (std::uint8_t m : kMagic) out.push_back(m);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(pkt.type));
  put_u64(out, static_cast<std::uint64_t>(pkt.vlink_dest));
  put_u64(out, static_cast<std::uint64_t>(pkt.vlink_sour));
  put_double(out, pkt.target.x);
  put_double(out, pkt.target.y);
  put_u32(out, static_cast<std::uint32_t>(pkt.data_id.size()));
  out.insert(out.end(), pkt.data_id.begin(), pkt.data_id.end());
  put_u32(out, static_cast<std::uint32_t>(pkt.payload.size()));
  out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());
  return out;
}

Status validate_packet(const Packet& pkt) {
  switch (pkt.type) {
    case PacketType::kPlacement:
    case PacketType::kRetrieval:
    case PacketType::kRemoval:
      break;
    default:
      return Status(ErrorCode::kInvalidArgument,
                    "packet: unknown type tag");
  }
  if (!std::isfinite(pkt.target.x) || !std::isfinite(pkt.target.y)) {
    // A NaN target poisons every distance comparison in the greedy
    // pipeline (closer_to returns false both ways), so the packet
    // would wander; reject it at the boundary.
    return Status(ErrorCode::kInvalidArgument,
                  "packet: target coordinates must be finite");
  }
  if (pkt.vlink_dest == kNoSwitch && pkt.vlink_sour != kNoSwitch) {
    return Status(ErrorCode::kInvalidArgument,
                  "packet: vlink_sour set while not on a virtual link");
  }
  return Status::Ok();
}

Result<Packet> decode_packet(const std::uint8_t* data, std::size_t len) {
  Reader r{data, len};
  std::uint8_t magic[4];
  for (std::uint8_t& m : magic) m = r.u8();
  if (!r.ok || std::memcmp(magic, kMagic, 4) != 0) {
    return Error(ErrorCode::kInvalidArgument, "packet: bad magic");
  }
  const std::uint8_t version = r.u8();
  if (!r.ok || version != kVersion) {
    return Error(ErrorCode::kInvalidArgument,
                 "packet: unsupported version " + std::to_string(version));
  }
  Packet pkt;
  const std::uint8_t type = r.u8();
  pkt.type = static_cast<PacketType>(type);
  pkt.vlink_dest = static_cast<SwitchId>(r.u64());
  pkt.vlink_sour = static_cast<SwitchId>(r.u64());
  pkt.target.x = r.f64();
  pkt.target.y = r.f64();

  const std::uint32_t id_len = r.u32();
  if (!r.ok || id_len > kMaxFieldLen || !r.take(id_len)) {
    return Error(ErrorCode::kInvalidArgument,
                 "packet: data_id length exceeds buffer");
  }
  pkt.data_id = r.bytes(id_len);
  const std::uint32_t payload_len = r.u32();
  if (!r.ok || payload_len > kMaxFieldLen || !r.take(payload_len)) {
    return Error(ErrorCode::kInvalidArgument,
                 "packet: payload length exceeds buffer");
  }
  pkt.payload = r.bytes(payload_len);

  if (!r.ok) {
    return Error(ErrorCode::kInvalidArgument, "packet: truncated header");
  }
  if (r.pos != len) {
    return Error(ErrorCode::kInvalidArgument,
                 "packet: " + std::to_string(len - r.pos) +
                     " trailing bytes after payload");
  }
  const Status well_formed = validate_packet(pkt);
  if (!well_formed.ok()) return well_formed.error();
  return pkt;
}

Result<Packet> decode_packet(const std::vector<std::uint8_t>& bytes) {
  return decode_packet(bytes.data(), bytes.size());
}

}  // namespace gred::sden
