// The packet format of the GRED data plane. Mirrors the P4 header the
// prototype parses: a request tag (placement vs retrieval, Section V-C),
// the data identifier and its hashed virtual-space position, and the
// virtual-link relay fields <dest, sour, relay> of Section V-A used
// while a packet traverses a multi-hop DT edge.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/data_key.hpp"
#include "geometry/point.hpp"
#include "topology/edge_network.hpp"

namespace gred::sden {

using SwitchId = topology::SwitchId;
using ServerId = topology::ServerId;
inline constexpr SwitchId kNoSwitch = static_cast<SwitchId>(-1);

enum class PacketType : std::uint8_t {
  kPlacement,  ///< deliver payload to the responsible server
  kRetrieval,  ///< request the data back from the responsible server
  kRemoval,    ///< invalidate the data (Section V-B: items expire or
               ///< migrate to the cloud); routed like a retrieval
};

struct Packet {
  PacketType type = PacketType::kPlacement;

  /// Application-level data identifier d.
  std::string data_id;
  /// H(d) reduced to the virtual space (Section III).
  geometry::Point2D target;
  /// Payload carried by a placement (empty for retrievals).
  std::string payload;

  // --- virtual-link traversal state (Section V-A) ---
  /// End switch of the virtual link currently being traversed, or
  /// kNoSwitch when the packet is in greedy mode.
  SwitchId vlink_dest = kNoSwitch;
  /// Source switch of the virtual link (diagnostics; the paper's d.sour).
  SwitchId vlink_sour = kNoSwitch;

  bool on_virtual_link() const { return vlink_dest != kNoSwitch; }
  void clear_virtual_link() {
    vlink_dest = kNoSwitch;
    vlink_sour = kNoSwitch;
  }

  // --- cached key derivation (fast-path metadata, not on the wire) ---
  /// H(d), filled in by whoever already hashed data_id (GredProtocol,
  /// the bench drivers). The terminal switch needs H(d) for the
  /// H(d) mod s server choice; the cache spares it a second SHA-256
  /// per packet. Transparent to the codec and to equality of routing
  /// results: a packet without the cache routes identically, just
  /// slower.
  bool has_key_digest = false;
  crypto::Digest key_digest{};

  /// Retry ordinal of this packet (0 = first send). Not on the wire:
  /// it only salts the deterministic flaky-link drop hash so a resend
  /// of the same request rolls a fresh drop decision instead of
  /// deterministically falling into the same hole forever. Zero keeps
  /// the salt bit-identical to the pre-retry derivation.
  std::uint32_t retry_attempt = 0;

  void set_key(const crypto::DataKey& key) {
    key_digest = key.digest();
    has_key_digest = true;
  }
  /// The packet's data key: cached digest when present, else derived
  /// from data_id (identical by construction).
  crypto::DataKey key() const {
    return has_key_digest ? crypto::DataKey(key_digest)
                          : crypto::DataKey(data_id);
  }
};

}  // namespace gred::sden
