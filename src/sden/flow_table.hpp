// The forwarding state a GRED switch holds — exactly what the control
// plane proactively installs (Section III "Control plane" / Section
// IV-C), and nothing else. Three match-action tables:
//
//   1. Greedy candidates: one entry per physical neighbor and per
//      multi-hop DT neighbor, carrying the neighbor's virtual position
//      (the P4 pipeline's per-neighbor distance stages) and the first
//      physical hop toward it.
//   2. Relay tuples <sour, pred, succ, dest>: forwarding along the
//      multi-hop path of a virtual link when this switch is an
//      intermediate node (Section IV-C's F_u).
//   3. Range-extension rewrites: data destined to an overloaded local
//      server is redirected to a delegate server on a neighbor switch
//      (Section V-B, Tables I/II).
//
// The size of this state — independent of flow count — is what
// Fig. 9(d) measures; `entry_count()` reports it.
//
// Storage is entry-vector + index: the vectors keep insertion order
// (the observable match semantics and the validators' view), while
// flat hash indexes make every match O(1) — relays keyed by dest and
// deduplicated by <sour, dest>, rewrites keyed by server, candidates
// keyed by neighbor. Candidate positions are additionally mirrored
// into structure-of-arrays x/y columns so the per-hop nearest-
// candidate scan (`best_candidate`) runs branch-light over contiguous
// doubles instead of chasing 40-byte entries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "geometry/point.hpp"
#include "sden/packet.hpp"

namespace gred::sden {

/// A greedy-forwarding candidate: a physical or multi-hop DT neighbor.
struct NeighborEntry {
  SwitchId neighbor = kNoSwitch;       ///< candidate switch v (or v~)
  geometry::Point2D position;          ///< v's virtual coordinates
  bool physical = false;               ///< directly linked to this switch
  /// First physical hop toward `neighbor` (== neighbor when physical).
  SwitchId first_hop = kNoSwitch;
};

/// The paper's 4-tuple relay entry for multi-hop DT neighbor paths.
struct RelayEntry {
  SwitchId sour = kNoSwitch;
  SwitchId pred = kNoSwitch;
  SwitchId succ = kNoSwitch;
  SwitchId dest = kNoSwitch;
};

/// Range-extension rewrite: traffic for `original` (a local server) is
/// redirected toward `replacement` attached to `via_switch`.
struct RewriteEntry {
  ServerId original = topology::kNoServer;
  ServerId replacement = topology::kNoServer;
  SwitchId via_switch = kNoSwitch;
};

class FlowTable {
 public:
  void add_neighbor(const NeighborEntry& entry);
  void add_relay(const RelayEntry& entry);
  void add_rewrite(const RewriteEntry& entry);
  /// Removes the rewrite for `original` (server back to normal load —
  /// Section V-B's entry deletion). No-op when absent.
  void remove_rewrite(ServerId original);

  const std::vector<NeighborEntry>& neighbors() const { return neighbors_; }
  const std::vector<RelayEntry>& relays() const { return relays_; }
  const std::vector<RewriteEntry>& rewrites() const { return rewrites_; }

  /// Relay entry whose dest matches (the paper matches t.dest == d.dest).
  std::optional<RelayEntry> match_relay(SwitchId dest) const {
    const RelayEntry* e = find_relay(dest);
    if (e == nullptr) return std::nullopt;
    return *e;
  }

  /// Rewrite for a server, if installed.
  std::optional<RewriteEntry> match_rewrite(ServerId original) const {
    const RewriteEntry* e = find_rewrite(original);
    if (e == nullptr) return std::nullopt;
    return *e;
  }

  /// Allocation-free relay match: pointer into the entry vector (valid
  /// until the next table mutation), or nullptr. First-installed entry
  /// wins for a dest, exactly like the sequential scan it replaces.
  const RelayEntry* find_relay(SwitchId dest) const {
    const std::uint32_t* idx = relay_by_dest_.find(dest);
    return idx == nullptr ? nullptr : &relays_[*idx];
  }

  /// Allocation-free rewrite match (same lifetime rule as find_relay).
  const RewriteEntry* find_rewrite(ServerId original) const {
    const std::uint32_t* idx = rewrite_by_server_.find(original);
    return idx == nullptr ? nullptr : &rewrites_[*idx];
  }

  /// Index of the greedy candidate nearest to `target` under the
  /// paper's total order (squared distance, ties by lexicographic
  /// position — geometry::closer_to), or geometry::kNoSite when the
  /// table has no candidates. Runs over the SoA position columns.
  std::size_t best_candidate(const geometry::Point2D& target) const;

  /// Total installed entries — the Fig. 9(d) metric.
  std::size_t entry_count() const {
    return neighbors_.size() + relays_.size() + rewrites_.size();
  }

  void clear();

  /// Multi-line human-readable dump (operator debugging; the moral
  /// equivalent of a P4 table read).
  std::string to_string() const;

 private:
  std::vector<NeighborEntry> neighbors_;
  /// SoA mirror of neighbors_[i].position, kept in lockstep.
  std::vector<double> cand_x_;
  std::vector<double> cand_y_;
  std::vector<RelayEntry> relays_;
  std::vector<RewriteEntry> rewrites_;

  FlatMap<std::uint64_t, std::uint32_t> neighbor_index_;   ///< neighbor -> slot
  FlatMap<Key2, std::uint32_t> relay_by_pair_;             ///< <sour,dest> -> slot
  FlatMap<std::uint64_t, std::uint32_t> relay_by_dest_;    ///< dest -> first slot
  FlatMap<std::uint64_t, std::uint32_t> rewrite_by_server_;  ///< original -> slot
};

}  // namespace gred::sden
