// Open-addressing key-value store for server items, tuned for the
// delivery hot path. std::unordered_map resolves a lookup through two
// dependent cache misses (bucket array, then the node) before the
// payload can be read; here a slot holds the id and the payload inline
// (both SSO-sized in the workloads that matter), so a hit costs a
// single dependent miss: hash, probe, compare, copy — all in one slot.
//
// Linear probing over a power-of-two table, backward-shift deletion
// (no tombstones), iteration in slot order. Semantics match the map it
// replaces: upsert overwrites, ids are compared by full string
// equality, and iteration yields const std::pair<std::string,
// std::string>& (what the controller's structured bindings expect).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"

namespace gred::sden {

/// 8-bytes-at-a-time string hash (mix64 avalanche per chunk). Data ids
/// are short ("sensor-1234"), so this is one or two rounds.
inline std::uint64_t hash_item_id(const std::string& id) {
  const char* p = id.data();
  std::size_t n = id.size();
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (n * 0xff51afd7ed558ccdULL);
  while (n >= 8) {
    std::uint64_t k;
    std::memcpy(&k, p, 8);
    h = mix64(h ^ k);
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t k = 0;
    std::memcpy(&k, p, n);
    h = mix64(h ^ k);
  }
  return h;
}

class ItemStore {
 public:
  using value_type = std::pair<std::string, std::string>;

 private:
  struct Slot {
    std::uint8_t used = 0;
    value_type kv;
  };

 public:
  class const_iterator {
   public:
    const_iterator(const Slot* slot, const Slot* end)
        : slot_(slot), end_(end) {
      skip_unused();
    }
    const value_type& operator*() const { return slot_->kv; }
    const value_type* operator->() const { return &slot_->kv; }
    const_iterator& operator++() {
      ++slot_;
      skip_unused();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return slot_ == o.slot_;
    }
    bool operator!=(const const_iterator& o) const {
      return slot_ != o.slot_;
    }

   private:
    friend class ItemStore;
    void skip_unused() {
      while (slot_ != end_ && !slot_->used) ++slot_;
    }
    const Slot* slot_;
    const Slot* end_;
  };

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool contains(const std::string& id) const { return find(id) != nullptr; }

  /// Pointer to the stored payload, or nullptr. Valid until the next
  /// mutation (rehash or backward-shift may move slots).
  const std::string* find(const std::string& id) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = hash_item_id(id) & mask_;
    while (slots_[i].used) {
      if (slots_[i].kv.first == id) return &slots_[i].kv.second;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// Inserts or overwrites `id`.
  void upsert(const std::string& id, std::string payload) {
    if (slots_.empty() || size_ + 1 > (slots_.size() * 7) / 8) grow();
    std::size_t i = hash_item_id(id) & mask_;
    while (slots_[i].used) {
      if (slots_[i].kv.first == id) {
        slots_[i].kv.second = std::move(payload);
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i].used = 1;
    slots_[i].kv.first = id;
    slots_[i].kv.second = std::move(payload);
    ++size_;
  }

  /// Removes `id`; true when it was present.
  bool erase(const std::string& id) {
    if (slots_.empty()) return false;
    std::size_t i = hash_item_id(id) & mask_;
    while (slots_[i].used && slots_[i].kv.first != id) i = (i + 1) & mask_;
    if (!slots_[i].used) return false;
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].used) {
      const std::size_t home = hash_item_id(slots_[j].kv.first) & mask_;
      const bool reachable = hole <= j ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
      if (reachable) {
        slots_[hole].kv = std::move(slots_[j].kv);
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].used = 0;
    slots_[hole].kv.first.clear();
    slots_[hole].kv.second.clear();
    --size_;
    return true;
  }

  const_iterator begin() const {
    return const_iterator(slots_.data(), slots_.data() + slots_.size());
  }
  const_iterator end() const {
    return const_iterator(slots_.data() + slots_.size(),
                          slots_.data() + slots_.size());
  }

 private:
  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 8 : old.size() * 2;
    slots_.clear();
    slots_.resize(cap);
    mask_ = cap - 1;
    size_ = 0;
    for (Slot& s : old) {
      if (s.used) upsert(s.kv.first, std::move(s.kv.second));
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gred::sden
