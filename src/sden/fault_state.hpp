// Injected physical-layer faults, as the data plane sees them. A
// FaultState describes which switches have crashed, which links are
// down, and which links drop packets probabilistically — the state of
// the PHYSICAL network during the window between a failure and the
// controller's recompute, while the (stale) forwarding tables still
// point into the hole. SdenNetwork::route and the reference router
// consult the same state through SdenNetwork::set_fault_state, so the
// fast-path/live differential stays bit-identical under faults.
//
// Drop decisions are deterministic: a flaky link drops a packet based
// on a hash of (seed, link, packet key digest), never on global RNG
// state, so a seeded chaos run is reproducible packet by packet and
// thread-count invariant.
//
// The struct is owned by the fault injector (gred::fault), not by the
// network; the network holds a raw observer pointer that is null in
// normal operation, costing the steady state one predicted branch per
// route call.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "sden/packet.hpp"

namespace gred::sden {

struct FaultState {
  /// 1 = crashed. Indexed by switch id; ids beyond the vector are up.
  std::vector<std::uint8_t> switch_down;
  /// Canonical (min, max) link key -> drop probability in (0, 1].
  /// 1.0 means the link is hard-down.
  FlatMap<Key2, double> link_drop;
  /// Seed for the per-(packet, link) drop hash.
  std::uint64_t seed = 0;

  /// Switches currently down (kept in step with switch_down so any()
  /// stays O(1) on the per-packet fast path).
  std::size_t down_count = 0;

  bool any() const { return down_count != 0 || !link_drop.empty(); }

  bool switch_is_down(SwitchId s) const {
    return s < switch_down.size() && switch_down[s] != 0;
  }

  static Key2 link_key(SwitchId u, SwitchId v) {
    const std::uint64_t a = u;
    const std::uint64_t b = v;
    return a < b ? Key2{a, b} : Key2{b, a};
  }

  /// Drop probability of link (u, v); 0 when the link is healthy.
  double link_drop_probability(SwitchId u, SwitchId v) const {
    const double* p = link_drop.find(link_key(u, v));
    return p == nullptr ? 0.0 : *p;
  }

  void set_switch_down(SwitchId s, bool down) {
    if (s >= switch_down.size()) switch_down.resize(s + 1, 0);
    const std::uint8_t next = down ? 1 : 0;
    if (switch_down[s] != next) {
      if (down) {
        ++down_count;
      } else {
        --down_count;
      }
    }
    switch_down[s] = next;
  }
  void set_link_drop(SwitchId u, SwitchId v, double probability) {
    link_drop.insert_or_assign(link_key(u, v), probability);
  }
  void clear_link(SwitchId u, SwitchId v) {
    link_drop.erase(link_key(u, v));
  }

  /// Deterministic per-(packet, link) drop decision for probability
  /// `p`: both routers call this with the same salt (the packet's key
  /// digest prefix), so they agree on every drop.
  bool drops(double p, SwitchId u, SwitchId v,
             std::uint64_t packet_salt) const {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    const Key2 k = link_key(u, v);
    const std::uint64_t h =
        mix64(seed ^ mix64(k.a ^ mix64(k.b ^ packet_salt)));
    // Map the hash to [0, 1) with 53-bit precision.
    const double unit =
        static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    return unit < p;
  }
};

/// Salt used by both routers for the drop hash: the low 64 bits of the
/// cached key digest when present, else a hash of the identifier. The
/// two derivations agree for any packet built through Packet::set_key.
/// A non-zero retry ordinal is mixed in on top, so a retried request
/// re-rolls every flaky-link drop decision instead of hashing to the
/// identical drop forever; attempt 0 leaves the salt untouched, which
/// keeps plain (non-retry) routing bit-identical to older seeds.
inline std::uint64_t fault_packet_salt(const Packet& pkt) {
  std::uint64_t h = 0;
  if (pkt.has_key_digest) {
    for (std::size_t i = 0; i < 8; ++i) {
      h = (h << 8) | pkt.key_digest[24 + i];
    }
  } else {
    h = 0x9e3779b97f4a7c15ULL;
    for (const char c : pkt.data_id) {
      h = mix64(h ^ static_cast<std::uint8_t>(c));
    }
  }
  if (pkt.retry_attempt != 0) {
    h = mix64(h ^ (0xd1b54a32d192ed03ULL + pkt.retry_attempt));
  }
  return h;
}

}  // namespace gred::sden
