#include "sden/network.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <limits>

#include "common/mutex.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/switch_load.hpp"
#include "obs/trace.hpp"
#include "sden/plan_walk.hpp"
#include "sden/route_errors.hpp"

namespace gred::sden {

namespace {
constexpr double kMissingLink = std::numeric_limits<double>::quiet_NaN();

/// Metric references route() records into, resolved once. Looking them
/// up involves registry locks, allocation, and static-init guards, so
/// the lookup sits behind a cold boundary and the hot recording path
/// only ever touches the returned cached references.
struct RouteMetrics {
  obs::Counter& packets;
  obs::Counter& drops;
  obs::Histogram& hops;
  obs::RouteTraceRing& ring;
};

// cold: one registry lookup (locks + may allocate) per process; every
// later call is a guarded static read, off the per-packet closure.
GRED_COLD_PATH const RouteMetrics& route_metrics() {
  static RouteMetrics m{obs::registry().counter("sden.packets_routed"),
                        obs::registry().counter("sden.packets_dropped"),
                        obs::registry().histogram("sden.route_hops"),
                        obs::route_trace()};
  return m;
}

/// Per-packet observability hook for route(). Decided once at entry
/// (a single relaxed load); when off, construction and destruction
/// are a stored bool and one branch — the steady state stays
/// allocation-free either way, since ring writes and counter bumps
/// never allocate and the metric references are cached behind
/// route_metrics().
class RouteTraceGuard {
 public:
  RouteTraceGuard(const Packet& pkt, const RouteResult& result,
                  SwitchId ingress)
      : active_(obs::enabled()),
        pkt_(pkt),
        result_(result),
        ingress_(ingress) {}

  GRED_HOT_PATH ~RouteTraceGuard() {
    if (!active_) return;
    const RouteMetrics& m = route_metrics();
    m.packets.add();
    if (!result_.status.ok()) m.drops.add();
    m.hops.record(static_cast<double>(result_.hop_count()));

    obs::RouteTraceSample s;
    s.ingress = static_cast<std::uint32_t>(ingress_);
    s.egress = result_.switch_path.empty()
                   ? s.ingress
                   : static_cast<std::uint32_t>(result_.switch_path.back());
    s.hops = static_cast<std::uint32_t>(result_.hop_count());
    s.type = static_cast<std::uint8_t>(pkt_.type);
    s.found = result_.found;
    s.ok = result_.status.ok();
    s.path_cost = result_.path_cost;
    m.ring.record(s);
  }

  RouteTraceGuard(const RouteTraceGuard&) = delete;
  RouteTraceGuard& operator=(const RouteTraceGuard&) = delete;

 private:
  const bool active_;
  const Packet& pkt_;
  const RouteResult& result_;
  const SwitchId ingress_;
};

}  // namespace

SdenNetwork::SdenNetwork(topology::EdgeNetwork description)
    : description_(std::move(description)),
      plan_(std::make_unique<PlanState>()) {
  switches_.reserve(description_.switch_count());
  for (SwitchId id = 0; id < description_.switch_count(); ++id) {
    switches_.emplace_back(id);
  }
  servers_.reserve(description_.server_count());
  for (const topology::EdgeServer& s : description_.all_servers()) {
    servers_.emplace_back(s);
  }
  // Greedy walks run close to the physical diameter (O(log n) on the
  // Waxman substrates) plus virtual-link detours; 8*log2(n)+8 leaves
  // ample slack without over-reserving on small testbeds.
  const std::size_t n = switches_.empty() ? 1 : switches_.size();
  path_reserve_hint_ =
      8 * static_cast<std::size_t>(std::bit_width(n)) + 8;
}

RouteResult SdenNetwork::inject(Packet pkt, SwitchId ingress) {
  RouteResult result;
  route(pkt, ingress, result);
  return result;
}

void SdenNetwork::route(Packet& pkt, SwitchId ingress, RouteResult& result) {
  result.reset();
  // Route-trace hook: samples the finished RouteResult at every return
  // path below, including the compiled fast-path delivery.
  const RouteTraceGuard trace(pkt, result, ingress);
  if (ingress >= switches_.size()) {
    result.status = route_errors::bad_ingress();
    return;
  }

  // The walk runs entirely over the compiled plan: a hop is one random
  // jump into the hot array (header, candidate position columns, and
  // forwarding actions contiguous per switch), and every link weight
  // (and link-existence check) was precompiled into the chosen
  // candidate/relay, so no Switch, FlowTable, or Graph memory is
  // touched until delivery. The per-iteration logic lives in
  // plan_step (sden/plan_walk.hpp), shared with the sharded runtime.
  const RoutePlan& plan = ensure_plan();

  // Injected physical faults: null in normal operation, so the healthy
  // steady state pays one predicted branch per traversal. The salt is
  // derived once per packet (both routers derive the same value).
  const FaultState* const faults =
      (faults_ != nullptr && faults_->any()) ? faults_ : nullptr;
  const std::uint64_t salt =
      faults != nullptr ? fault_packet_salt(pkt) : 0;
  if (faults != nullptr && faults->switch_is_down(ingress)) {
    result.fail(route_errors::ingress_down(ingress));
    return;
  }

  std::uint32_t cur = static_cast<std::uint32_t>(ingress);
  result.switch_path.reserve(path_reserve_hint_);
  result.switch_path.push_back(cur);

  // A greedy walk strictly decreases distance-to-target and each
  // virtual link is a simple path, so 4n + 16 hops is a generous bound;
  // exceeding it means a forwarding-table bug.
  const std::size_t max_hops = max_route_hops();
  for (std::size_t step = 0; step < max_hops; ++step) {
    const PlanStep st = plan_step(plan, cur, pkt);
    switch (st.kind) {
      case PlanStep::Kind::kHop:
        if (faults != nullptr) {
          Status hop =
              route_errors::check_traversal(*faults, cur, st.next, salt);
          if (!hop.ok()) {
            result.fail(std::move(hop));
            return;
          }
        }
        result.path_cost += st.weight;
        cur = st.next;
        result.switch_path.push_back(cur);
        break;
      case PlanStep::Kind::kDeliver: {
        // No neighbor is closer: this switch owns the data.
        const double* const base = plan.hot.data() + plan.offset[cur];
        Status delivered = deliver_compiled(plan, base, pkt, cur, result);
        if (!delivered.ok()) {
          result.fail(std::move(delivered));
        }
        return;
      }
      case PlanStep::Kind::kNoRelay:
        result.fail(route_errors::no_relay(cur));
        return;
      case PlanStep::Kind::kNonDtTransit:
        result.fail(route_errors::non_dt_transit(cur));
        return;
      case PlanStep::Kind::kMissingLink:
        result.fail(route_errors::missing_link(cur, st.next));
        return;
    }
  }
  result.fail(route_errors::hop_bound());
}

Status SdenNetwork::deliver_compiled(const RoutePlan& plan, const double* base,
                                     Packet& pkt, std::uint32_t terminal,
                                     RouteResult& result) {
  const std::uint32_t server_begin = plan_lo(base[2]);
  const std::uint32_t server_count = plan_hi(base[3]);
  const std::uint32_t flags = plan_lo(base[3]);
  if ((flags & kPlanFlagDeliverFallback) != 0) {
    // Range-extension rewrites are installed here: run the live
    // pipeline, which resolves the rewrite targets. The greedy stage
    // re-derives the same "deliver here" decision (identical tables).
    Decision decision = switches_[terminal].process(pkt);
    if (decision.kind == Decision::Kind::kDeliver) {
      return deliver_to_targets(decision, pkt, terminal, result);
    }
    if (decision.kind == Decision::Kind::kDrop) {
      return route_errors::pipeline_drop(terminal, decision.drop_code,
                                         decision.drop_reason);
    }
    return Status(ErrorCode::kInternal,
                  "compiled plan and live pipeline diverged at delivery");
  }

  if (server_count == 0) {
    return route_errors::no_servers(terminal);
  }

  // Section V-B: serial number H(d) mod s. The cached digest (filled in
  // by the sender) goes straight through digest_mod — no SHA-256 and no
  // DataKey position derivation on the fast path.
  const std::size_t idx = static_cast<std::size_t>(
      pkt.has_key_digest ? crypto::digest_mod(pkt.key_digest, server_count)
                         : pkt.key().mod(server_count));
  const ServerId chosen = plan.servers[server_begin + idx];
  if (chosen >= servers_.size()) {
    return Status(ErrorCode::kInternal, "delivery to unknown server");
  }
  result.delivered_to.push_back(chosen);

  ServerNode& node = servers_[chosen];
  if (pkt.type == PacketType::kPlacement) {
    return node.store(pkt.data_id, std::move(pkt.payload));
  }
  if (pkt.type == PacketType::kRetrieval) {
    if (const std::string* payload = node.find(pkt.data_id)) {
      result.found = true;
      result.responder = chosen;
      // assign() reuses the scratch string's capacity.
      result.payload.assign(*payload);
      node.note_retrieval();
    }
  } else {  // kRemoval
    if (node.erase(pkt.data_id)) {
      result.found = true;
      result.responder = chosen;
    }
  }
  return Status::Ok();
}

const RoutePlan& SdenNetwork::ensure_plan() {
  // acquire: a clean flag read here pairs with rebuild_plan_slow's
  // release store, publishing the rebuilt plan to this router.
  if (plan_->dirty.load(std::memory_order_acquire)) {
    rebuild_plan_slow();
  }
  return plan_->plan;
}

void SdenNetwork::rebuild_plan_slow() {
  PlanState& state = *plan_;
  // First router after an invalidation rebuilds; concurrent routers
  // wait on the mutex and then read the fresh plan. (Mutating the
  // network while packets are in flight was never supported; this
  // only coordinates the rebuild itself.)
  MutexLock lock(state.rebuild_mutex);
  // relaxed: the mutex orders this re-check against the previous
  // holder's store; only the flag value matters here.
  if (state.dirty.load(std::memory_order_relaxed)) {
    rebuild_plan(state.plan);
    // release: publishes the rebuilt plan to lock-free readers that
    // acquire dirty==false in ensure_plan.
    state.dirty.store(false, std::memory_order_release);
  }
}

void SdenNetwork::rebuild_plan(RoutePlan& plan) const {
  // The whole-network plan is the subset plan that owns every switch.
  std::vector<std::uint32_t> owned(switches_.size());
  for (std::size_t i = 0; i < owned.size(); ++i) {
    owned[i] = static_cast<std::uint32_t>(i);
  }
  compile_plan_subset(plan, owned.data(), owned.size());
}

void SdenNetwork::compile_switch_region(
    std::size_t i, std::uint32_t server_begin, std::vector<double>& words,
    std::vector<std::uint32_t>& servers, std::vector<std::uint32_t>& dests,
    std::vector<std::pair<Key2, PlanRelay>>& relays) const {
  const graph::Graph& links = description_.switches();
  const Switch& sw = switches_[i];
  const FlowTable& table = sw.table();
  const std::size_t k = table.neighbors().size();

  for (ServerId s : sw.local_servers()) {
    servers.push_back(static_cast<std::uint32_t>(s));
  }
  const std::uint32_t server_count =
      static_cast<std::uint32_t>(sw.local_servers().size());
  std::uint32_t flags = 0;
  if (sw.dt_participant()) flags |= kPlanFlagDt;
  if (!table.rewrites().empty()) flags |= kPlanFlagDeliverFallback;

  const std::size_t region = words.size();
  words.resize(region + kPlanHeaderWords + 4 * k);
  double* const base = words.data() + region;
  base[0] = sw.position().x;
  base[1] = sw.position().y;
  base[2] = plan_pack(static_cast<std::uint32_t>(k), server_begin);
  base[3] = plan_pack(server_count, flags);

  // The columns are emitted in lex-position order so the route-time
  // argmin's first-minimum-wins rule reproduces the closer_to lex
  // tie-break without a second pass. (Entry order never affects the
  // winner when positions are distinct, which CVT sites are.)
  std::array<std::uint32_t, 64> perm_buf;
  std::vector<std::uint32_t> perm_vec;
  std::uint32_t* perm = perm_buf.data();
  if (k > perm_buf.size()) {
    perm_vec.resize(k);
    perm = perm_vec.data();
  }
  for (std::size_t c = 0; c < k; ++c) perm[c] = static_cast<std::uint32_t>(c);
  std::sort(perm, perm + k, [&table](std::uint32_t a, std::uint32_t b) {
    const geometry::Point2D& pa = table.neighbors()[a].position;
    const geometry::Point2D& pb = table.neighbors()[b].position;
    return pa.x != pb.x ? pa.x < pb.x : pa.y < pb.y;
  });

  double* const xs = base + kPlanHeaderWords;
  double* const ys = xs + k;
  double* const acts = ys + k;
  double* const weights = acts + k;
  for (std::size_t c = 0; c < k; ++c) {
    const NeighborEntry& ne = table.neighbors()[perm[c]];
    xs[c] = ne.position.x;
    ys[c] = ne.position.y;
    const SwitchId next = ne.physical ? ne.neighbor : ne.first_hop;
    const std::uint32_t vlink_dest =
        ne.physical ? kNoPlanSwitch : static_cast<std::uint32_t>(ne.neighbor);
    acts[c] = plan_pack(static_cast<std::uint32_t>(next), vlink_dest);
    const graph::EdgeTo* edge =
        next < switches_.size() ? links.find_edge(i, next) : nullptr;
    weights[c] = edge != nullptr ? edge->weight : kMissingLink;
  }

  // First-installed relay per dest wins, like FlowTable::find_relay.
  // The dedup only needs this switch's own dests: relay keys embed the
  // switch id, so no other region can collide.
  const std::size_t dests_start = dests.size();
  for (const RelayEntry& r : table.relays()) {
    const std::uint32_t dest = static_cast<std::uint32_t>(r.dest);
    bool seen = false;
    for (std::size_t d = dests_start; d < dests.size(); ++d) {
      if (dests[d] == dest) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    dests.push_back(dest);
    const graph::EdgeTo* edge =
        r.succ < switches_.size() ? links.find_edge(i, r.succ) : nullptr;
    relays.emplace_back(
        Key2{static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(r.dest)},
        PlanRelay{static_cast<std::uint32_t>(r.succ), 0,
                  edge != nullptr ? edge->weight : kMissingLink});
  }
}

void SdenNetwork::compile_plan_subset(RoutePlan& plan,
                                      const std::uint32_t* owned,
                                      std::size_t count) const {
  plan.clear();
  plan.offset.assign(switches_.size(), kPlanNoRegion);
  plan.relay_dests.resize(switches_.size());

  // Blob size up front: header words plus four columns per candidate,
  // for every owned switch, each region rounded up to a cache line.
  std::size_t words = 0;
  for (std::size_t j = 0; j < count; ++j) {
    const Switch& sw = switches_[owned[j]];
    words += (kPlanHeaderWords + 4 * sw.table().neighbors().size() + 7) & ~7u;
  }
  plan.hot.reserve(words);

  std::vector<std::uint32_t> dests;
  std::vector<std::pair<Key2, PlanRelay>> relays;
  for (std::size_t j = 0; j < count; ++j) {
    const std::size_t i = owned[j];
    // Cache-line-aligned region start (the vector data itself is
    // 16-byte aligned at worst; 64-byte relative alignment still keeps
    // the header plus first column words on the minimum line count).
    const std::size_t region = (plan.hot.size() + 7) & ~std::size_t{7};
    plan.hot.resize(region);
    plan.offset[i] = static_cast<std::uint32_t>(region);

    dests.clear();
    relays.clear();
    compile_switch_region(
        i, static_cast<std::uint32_t>(plan.servers.size()), plan.hot,
        plan.servers, dests, relays);
    for (const auto& [key, relay] : relays) {
      plan.relays.insert_or_assign(key, relay);
    }
    plan.relay_dests[i] = dests;
  }
}

bool SdenNetwork::prepare_plan_patch(RoutePlan& plan,
                                     const std::uint32_t* touched,
                                     std::size_t count,
                                     PlanPatch& patch) const {
  patch.regions.clear();
  patch.dead_delta = 0;
  // A plan that was never compiled has nothing to patch into.
  if (plan.offset.empty()) return false;

  // A dynamics event only ever grows the switch-id space; extend the
  // offset and sidecar tables so new switches can receive regions.
  plan.offset.resize(switches_.size(), kPlanNoRegion);
  plan.relay_dests.resize(switches_.size());

  std::size_t hot_end = plan.hot.size();
  std::size_t servers_end = plan.servers.size();
  std::size_t relay_inserts = 0;
  patch.regions.reserve(count);
  for (std::size_t j = 0; j < count; ++j) {
    const std::uint32_t t = touched[j];
    if (t >= switches_.size()) continue;
    PlanPatchRegion r;
    r.sw = t;
    compile_switch_region(t, 0, r.words, r.servers, r.dests, r.relays);
    const std::uint32_t k = plan_hi(r.words[2]);

    // Server slice: reuse the existing slice when its content is
    // unchanged (the common case — attachments only change on switch
    // join); otherwise append a fresh slice at the tail.
    const std::uint32_t off = plan.offset[t];
    bool reuse_servers = false;
    if (off != kPlanNoRegion) {
      const double* const old_base = plan.hot.data() + off;
      const std::uint32_t old_begin = plan_lo(old_base[2]);
      const std::uint32_t old_count = plan_hi(old_base[3]);
      if (old_count == r.servers.size() &&
          std::equal(r.servers.begin(), r.servers.end(),
                     plan.servers.begin() + old_begin)) {
        r.server_begin = old_begin;
        r.servers.clear();
        reuse_servers = true;
      }
    }
    if (!reuse_servers) {
      r.server_begin = static_cast<std::uint32_t>(servers_end);
      servers_end += r.servers.size();
    }
    r.words[2] = plan_pack(k, r.server_begin);

    // Region placement: overwrite in place when the recompiled region
    // fits the old footprint; otherwise append at an aligned tail
    // position and orphan the old words.
    const std::size_t new_words = r.words.size();
    std::size_t old_words = 0;
    if (off != kPlanNoRegion) {
      old_words =
          kPlanHeaderWords + 4 * plan_hi(plan.hot[off + 2]);
    }
    if (off != kPlanNoRegion && new_words <= old_words) {
      r.new_offset = off;
      patch.dead_delta += old_words - new_words;
    } else {
      const std::size_t tail = (hot_end + 7) & ~std::size_t{7};
      r.new_offset = static_cast<std::uint32_t>(tail);
      hot_end = tail + new_words;
      patch.dead_delta += old_words;
    }
    relay_inserts += r.relays.size();
    patch.regions.push_back(std::move(r));
  }

  // Compaction: once half the hot array is dead, a fresh compile costs
  // about as much as the patch saves — decline and let the caller
  // recompile (which resets dead_words).
  if (2 * (plan.dead_words + patch.dead_delta) > hot_end) return false;

  plan.hot.resize(hot_end, 0.0);
  plan.servers.resize(servers_end, 0);
  plan.relays.reserve(plan.relays.size() + relay_inserts);
  return true;
}

void SdenNetwork::commit_plan_patch(RoutePlan& plan, PlanPatch& patch) const {
  for (PlanPatchRegion& r : patch.regions) {
    std::vector<std::uint32_t>& old_dests = plan.relay_dests[r.sw];
    for (const std::uint32_t dest : old_dests) {
      plan.relays.erase(Key2{static_cast<std::uint64_t>(r.sw),
                             static_cast<std::uint64_t>(dest)});
    }
    for (const auto& [key, relay] : r.relays) {
      plan.relays.insert_assume_capacity(key, relay);
    }
    old_dests.swap(r.dests);

    double* const dst = plan.hot.data() + r.new_offset;
    for (std::size_t w = 0; w < r.words.size(); ++w) dst[w] = r.words[w];
    for (std::size_t s = 0; s < r.servers.size(); ++s) {
      plan.servers[r.server_begin + s] = r.servers[s];
    }
    plan.offset[r.sw] = r.new_offset;
  }
  plan.dead_words += patch.dead_delta;
}

void SdenNetwork::patch_plan(const std::uint32_t* touched,
                             std::size_t count) {
  PlanState& state = *plan_;
  MutexLock lock(state.rebuild_mutex);
  PlanPatch patch;
  if (prepare_plan_patch(state.plan, touched, count, patch)) {
    commit_plan_patch(state.plan, patch);
  } else {
    rebuild_plan(state.plan);
  }
  // release: publishes the patched plan to lock-free readers that
  // acquire dirty==false in ensure_plan, like rebuild_plan_slow.
  state.dirty.store(false, std::memory_order_release);
}

Status SdenNetwork::deliver_to_targets(const Decision& decision, Packet& pkt,
                                       SwitchId terminal,
                                       RouteResult& result) {
  const std::size_t target_count = decision.targets.size();
  for (std::size_t t = 0; t < target_count; ++t) {
    const Decision::DeliveryTarget& target = decision.targets[t];
    if (target.server >= servers_.size()) {
      return Status(ErrorCode::kInternal, "delivery to unknown server");
    }
    // A cross-switch delivery (range extension) must use a physical
    // link from the terminal switch (the paper's port p5 to switch 2).
    if (target.via != terminal) {
      const graph::EdgeTo* edge =
          description_.switches().find_edge(terminal, target.via);
      if (edge == nullptr) {
        return route_errors::handoff_missing_link();
      }
      if (faults_ != nullptr && faults_->any()) {
        Status hop = route_errors::check_traversal(
            *faults_, terminal, target.via, fault_packet_salt(pkt));
        if (!hop.ok()) return hop;
      }
      result.path_cost += edge->weight;
      result.switch_path.push_back(target.via);
    }
    result.delivered_to.push_back(target.server);

    ServerNode& node = servers_[target.server];
    if (pkt.type == PacketType::kPlacement) {
      // The last target takes the payload by move; a placement only
      // ever has one target today, so this is the common case.
      const Status stored =
          node.store(pkt.data_id, t + 1 == target_count
                                      ? std::move(pkt.payload)
                                      : pkt.payload);
      if (!stored.ok()) return stored;
    } else if (pkt.type == PacketType::kRetrieval) {
      if (const std::string* payload = node.find(pkt.data_id)) {
        result.found = true;
        result.responder = target.server;
        // assign() reuses the scratch string's capacity.
        result.payload.assign(*payload);
        node.note_retrieval();
      }
    } else {  // kRemoval
      if (node.erase(pkt.data_id)) {
        result.found = true;
        result.responder = target.server;
      }
    }
  }
  return Status::Ok();
}

std::vector<std::size_t> SdenNetwork::server_loads() const {
  std::vector<std::size_t> loads;
  loads.reserve(servers_.size());
  for (const ServerNode& s : servers_) loads.push_back(s.item_count());
  return loads;
}

std::vector<std::size_t> SdenNetwork::table_entry_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(switches_.size());
  for (const Switch& sw : switches_) {
    counts.push_back(sw.table().entry_count());
  }
  return counts;
}

Result<SwitchId> SdenNetwork::add_switch(
    const std::vector<SwitchId>& links) {
  for (SwitchId v : links) {
    if (v >= switches_.size()) {
      return Error(ErrorCode::kOutOfRange,
                   "add_switch: link target out of range");
    }
  }
  invalidate_plan();
  const SwitchId id = description_.add_switch();
  switches_.emplace_back(id);
  if (hot_cache_) hot_cache_->ensure_switches(switches_.size());
  // Grow the load tracker too: record() silently ignores ids beyond
  // its size, so without this a post-join switch would be invisible
  // to extend_for_load no matter how hot it runs.
  if (load_tracker_) load_tracker_->ensure_switches(switches_.size());
  for (SwitchId v : links) {
    const Status s = description_.mutable_switches().add_edge(id, v);
    if (!s.ok()) return s.error();
  }
  return id;
}

Result<ServerId> SdenNetwork::attach_server(SwitchId sw,
                                            std::size_t capacity) {
  invalidate_plan();
  auto id = description_.attach_server(sw, capacity);
  if (!id.ok()) return id.error();
  servers_.emplace_back(description_.server(id.value()));
  return id.value();
}

void SdenNetwork::remove_switch_links(SwitchId sw) {
  if (sw >= switches_.size()) return;
  invalidate_plan();
  description_.mutable_switches().remove_edges_of(sw);
  description_.detach_servers(sw);
  switches_[sw].reset();
}

void SdenNetwork::truncate_switches(std::size_t switch_count,
                                    std::size_t server_count) {
  if (switches_.size() <= switch_count && servers_.size() <= server_count) {
    return;
  }
  invalidate_plan();
  description_.truncate(switch_count, server_count);
  if (switches_.size() > switch_count) {
    switches_.erase(switches_.begin() +
                        static_cast<std::ptrdiff_t>(switch_count),
                    switches_.end());
  }
  if (servers_.size() > server_count) {
    servers_.erase(servers_.begin() +
                       static_cast<std::ptrdiff_t>(server_count),
                   servers_.end());
  }
}

void SdenNetwork::clear_storage() {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i] = ServerNode(servers_[i].info());
  }
  // Every cached retrieval answer points at an item that no longer
  // exists; the fresh-trial reset must not serve ghosts.
  if (hot_cache_) hot_cache_->invalidate_all();
}

HotKeyCache& SdenNetwork::enable_hot_key_cache(std::size_t ways) {
  if (!hot_cache_ || hot_cache_->ways() != ways) {
    hot_cache_ = std::make_unique<HotKeyCache>(switches_.size(), ways);
  } else {
    hot_cache_->ensure_switches(switches_.size());
    hot_cache_->set_enabled(true);
  }
  return *hot_cache_;
}

}  // namespace gred::sden
