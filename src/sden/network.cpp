#include "sden/network.hpp"

namespace gred::sden {

SdenNetwork::SdenNetwork(topology::EdgeNetwork description)
    : description_(std::move(description)) {
  switches_.reserve(description_.switch_count());
  for (SwitchId id = 0; id < description_.switch_count(); ++id) {
    switches_.emplace_back(id);
  }
  servers_.reserve(description_.server_count());
  for (const topology::EdgeServer& s : description_.all_servers()) {
    servers_.emplace_back(s);
  }
}

RouteResult SdenNetwork::inject(Packet pkt, SwitchId ingress) {
  RouteResult result;
  if (ingress >= switches_.size()) {
    result.status =
        Status(ErrorCode::kOutOfRange, "inject: ingress switch out of range");
    return result;
  }

  SwitchId cur = ingress;
  result.switch_path.push_back(cur);

  // A greedy walk strictly decreases distance-to-target and each
  // virtual link is a simple path, so 4n + 16 hops is a generous bound;
  // exceeding it means a forwarding-table bug.
  const std::size_t max_hops = 4 * switches_.size() + 16;
  for (std::size_t step = 0; step < max_hops; ++step) {
    Decision decision = switches_[cur].process(pkt);
    switch (decision.kind) {
      case Decision::Kind::kForward: {
        const SwitchId next = decision.next_hop;
        if (next >= switches_.size() ||
            !description_.switches().has_edge(cur, next)) {
          result.status = Status(
              ErrorCode::kInternal,
              "switch " + std::to_string(cur) +
                  " forwarded over a non-existent link to switch " +
                  std::to_string(next));
          return result;
        }
        result.path_cost +=
            description_.switches().edge_weight(cur, next).value_or(1.0);
        cur = next;
        result.switch_path.push_back(cur);
        break;
      }
      case Decision::Kind::kDeliver: {
        result.status = deliver_to_targets(decision, pkt, cur, result);
        return result;
      }
      case Decision::Kind::kDrop: {
        result.status = Status(
            ErrorCode::kInternal,
            std::string("packet dropped at switch ") + std::to_string(cur) +
                ": " +
                (decision.drop_reason ? decision.drop_reason : "unknown"));
        return result;
      }
    }
  }
  result.status =
      Status(ErrorCode::kInternal, "routing loop: hop bound exceeded");
  return result;
}

Status SdenNetwork::deliver_to_targets(const Decision& decision,
                                       const Packet& pkt, SwitchId terminal,
                                       RouteResult& result) {
  for (const Decision::DeliveryTarget& target : decision.targets) {
    if (target.server >= servers_.size()) {
      return Status(ErrorCode::kInternal, "delivery to unknown server");
    }
    // A cross-switch delivery (range extension) must use a physical
    // link from the terminal switch (the paper's port p5 to switch 2).
    if (target.via != terminal) {
      if (!description_.switches().has_edge(terminal, target.via)) {
        return Status(ErrorCode::kInternal,
                      "range-extension handoff over non-existent link");
      }
      result.path_cost +=
          description_.switches().edge_weight(terminal, target.via)
              .value_or(1.0);
      result.switch_path.push_back(target.via);
    }
    result.delivered_to.push_back(target.server);

    ServerNode& node = servers_[target.server];
    if (pkt.type == PacketType::kPlacement) {
      const Status stored = node.store(pkt.data_id, pkt.payload);
      if (!stored.ok()) return stored;
    } else if (pkt.type == PacketType::kRetrieval) {
      const auto payload = node.fetch(pkt.data_id);
      if (payload.has_value()) {
        result.found = true;
        result.responder = target.server;
        result.payload = *payload;
        node.note_retrieval();
      }
    } else {  // kRemoval
      if (node.erase(pkt.data_id)) {
        result.found = true;
        result.responder = target.server;
      }
    }
  }
  return Status::Ok();
}

std::vector<std::size_t> SdenNetwork::server_loads() const {
  std::vector<std::size_t> loads;
  loads.reserve(servers_.size());
  for (const ServerNode& s : servers_) loads.push_back(s.item_count());
  return loads;
}

std::vector<std::size_t> SdenNetwork::table_entry_counts() const {
  std::vector<std::size_t> counts;
  counts.reserve(switches_.size());
  for (const Switch& sw : switches_) {
    counts.push_back(sw.table().entry_count());
  }
  return counts;
}

Result<SwitchId> SdenNetwork::add_switch(
    const std::vector<SwitchId>& links) {
  for (SwitchId v : links) {
    if (v >= switches_.size()) {
      return Error(ErrorCode::kOutOfRange,
                   "add_switch: link target out of range");
    }
  }
  const SwitchId id = description_.add_switch();
  switches_.emplace_back(id);
  for (SwitchId v : links) {
    const Status s = description_.mutable_switches().add_edge(id, v);
    if (!s.ok()) return s.error();
  }
  return id;
}

Result<ServerId> SdenNetwork::attach_server(SwitchId sw,
                                            std::size_t capacity) {
  auto id = description_.attach_server(sw, capacity);
  if (!id.ok()) return id.error();
  servers_.emplace_back(description_.server(id.value()));
  return id.value();
}

void SdenNetwork::remove_switch_links(SwitchId sw) {
  if (sw >= switches_.size()) return;
  description_.mutable_switches().remove_edges_of(sw);
  description_.detach_servers(sw);
  switches_[sw].reset();
}

void SdenNetwork::clear_storage() {
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i] = ServerNode(servers_[i].info());
  }
}

}  // namespace gred::sden
