// The compiled data plane. Routing over the live Switch/FlowTable
// objects chases five scattered heap allocations per hop (switch ->
// table -> candidate columns -> neighbor entry -> graph adjacency),
// and on random workloads those dependent cache misses cost several
// times more than the actual arithmetic. RoutePlan flattens the
// forwarding state of every switch into ONE contiguous region of a
// shared array — header, candidate position columns, and forwarding
// actions back to back — so a greedy hop performs a single random
// jump (offset table, then the region) and streams the rest
// sequentially, which the hardware prefetcher hides. Physical-link
// weights (and link-existence) are precompiled into every action, so
// the steady-state walk never touches the Switch objects or the graph
// at all.
//
// Per-switch region layout inside `hot` (doubles; integers are
// bit_cast-packed so the region is a single typed allocation):
//
//   base[0]  px               own virtual position
//   base[1]  py
//   base[2]  u64( cand_count   << 32 | server_begin )
//   base[3]  u64( server_count << 32 | flags )        flags: bit0 dt,
//                                                     bit1 deliver_fallback
//   base[4 .. 4+k)        candidate x coordinates
//   base[4+k .. 4+2k)     candidate y coordinates
//   base[4+2k .. 4+3k)    u64( next_hop << 32 | vlink_dest )
//   base[4+3k .. 4+4k)    link weight to next_hop (NaN = missing link)
//
// The plan is a pure cache: SdenNetwork rebuilds it (lazily, under a
// mutex) whenever control-plane state may have changed, which every
// mutating accessor signals through the dirty flag. Semantics are
// bit-identical to the live pipeline by construction; the differential
// test in tests/data_plane_test.cpp holds the two paths together.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "common/mutex.hpp"

namespace gred::sden {

/// Compact switch id inside the plan (ids are dense and small; 32 bits
/// keeps the packed actions to one double each).
inline constexpr std::uint32_t kNoPlanSwitch = 0xffffffffu;

/// Offset-table sentinel for a switch with no region in this plan. The
/// whole-network plan never contains it; shard-subset plans
/// (SdenNetwork::compile_plan_subset) use it for switches owned by
/// other shards, whose walks must never be stepped here.
inline constexpr std::uint32_t kPlanNoRegion = 0xffffffffu;

inline constexpr std::uint32_t kPlanFlagDt = 1u;
inline constexpr std::uint32_t kPlanFlagDeliverFallback = 2u;

/// Header words per switch region before the candidate columns.
inline constexpr std::size_t kPlanHeaderWords = 4;

inline double plan_pack(std::uint32_t hi, std::uint32_t lo) {
  return std::bit_cast<double>((static_cast<std::uint64_t>(hi) << 32) | lo);
}
inline std::uint32_t plan_hi(double d) {
  return static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(d) >> 32);
}
inline std::uint32_t plan_lo(double d) {
  return static_cast<std::uint32_t>(std::bit_cast<std::uint64_t>(d));
}

/// Relay action for one <switch, vlink destination> pair.
struct PlanRelay {
  std::uint32_t succ = kNoPlanSwitch;  ///< next hop along the virtual link
  std::uint32_t pad = 0;
  double weight = 0.0;  ///< link weight to succ; NaN when missing
};

struct RoutePlan {
  /// Start of each switch's region inside `hot`.
  std::vector<std::uint32_t> offset;
  /// All per-switch regions, back to back (layout above).
  std::vector<double> hot;
  /// Attached servers of every switch, serial order, concatenated.
  std::vector<std::uint32_t> servers;
  /// <switch, dest> -> relay action; first-installed entry wins,
  /// exactly like FlowTable::find_relay.
  FlatMap<Key2, PlanRelay> relays;
  /// Per-switch list of the relay dests actually present in `relays`
  /// (first-wins deduped). The FlatMap has no iteration, so this
  /// sidecar is what lets a patch erase exactly one switch's stale
  /// relay keys. Cold-side metadata: the walk never reads it.
  std::vector<std::vector<std::uint32_t>> relay_dests;
  /// Words in `hot` no longer referenced by any offset — left behind
  /// when a patch moved a grown region to the tail or shrank one in
  /// place. Patching compacts (recompiles) once this passes half the
  /// array.
  std::size_t dead_words = 0;

  void clear() {
    offset.clear();
    hot.clear();
    servers.clear();
    relays.clear();
    relay_dests.clear();
    dead_words = 0;
  }
};

/// One switch's recompiled state inside a PlanPatch.
struct PlanPatchRegion {
  std::uint32_t sw = 0;
  /// Where the region words land in `hot`: the old offset when the new
  /// region fits in place, else the (aligned) append position.
  std::uint32_t new_offset = 0;
  /// Start of the switch's server slice; points at the existing slice
  /// when its content is unchanged (then `servers` below is empty).
  std::uint32_t server_begin = 0;
  std::vector<double> words;           ///< compiled region blob
  std::vector<std::uint32_t> servers;  ///< slice to write at server_begin
  std::vector<std::uint32_t> dests;    ///< new relay_dests[sw] value
  /// Relay inserts, already first-wins deduped per dest.
  std::vector<std::pair<Key2, PlanRelay>> relays;
};

/// A prepared two-phase route-plan patch (SdenNetwork::patch_plan).
/// prepare_plan_patch performs every allocation — compiling the
/// touched regions, growing hot/offset/servers/relay_dests to their
/// final sizes, reserving FlatMap slack — so commit_plan_patch is a
/// pure write pass that the hot-path verifier admits (no allocation,
/// no locks, no I/O).
struct PlanPatch {
  std::vector<PlanPatchRegion> regions;
  /// Words orphaned by moved or shrunk regions, added to
  /// RoutePlan::dead_words at commit.
  std::size_t dead_delta = 0;
};

/// The plan plus its rebuild coordination. Held behind a unique_ptr so
/// SdenNetwork stays movable (the address also keeps the dirty flag
/// stable across moves). Routing threads only ever read `dirty` and
/// `plan`; the first router after an invalidation rebuilds under the
/// mutex while late arrivals wait, then everyone reads the immutable
/// result.
struct PlanState {
  gred::Mutex rebuild_mutex;
  std::atomic<bool> dirty{true};
  /// tsa: deliberately NOT GRED_GUARDED_BY(rebuild_mutex) — the steady
  /// state
  /// reads `plan` lock-free after an acquire load of dirty==false
  /// (double-checked publication — the rebuilder's release store of
  /// dirty publishes the finished plan). Only rebuilds, which do hold
  /// rebuild_mutex, write it.
  RoutePlan plan;
};

}  // namespace gred::sden
