#include "sden/hot_key_cache.hpp"

namespace gred::sden {

HotKeyCache::HotKeyCache(std::size_t switches, std::size_t ways)
    // Zero ways would make every set degenerate (and CLOCK spin
    // forever); clamp to direct-mapped instead of depending on
    // gred_check from inside sden (check links sden).
    : switch_count_(switches), ways_(ways == 0 ? 1 : ways) {
  entries_.resize(switch_count_ * ways_);
  ref_ = std::make_unique<std::atomic<std::uint8_t>[]>(entries_.size());
  hand_.assign(switch_count_, 0);
}

const HotKeyCache::Entry* HotKeyCache::probe(topology::SwitchId sw,
                                             const crypto::Digest& digest) {
  if (!enabled_ || sw >= switch_count_) return nullptr;
  // relaxed: entries are only written by the control-plane side, which
  // never runs concurrently with probes; the epoch read needs no
  // ordering against them.
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  const std::size_t base = slot_base(sw);
  for (std::size_t w = 0; w < ways_; ++w) {
    const Entry& e = entries_[base + w];
    if (e.used && e.epoch == now && e.digest == digest) {
      // relaxed: the reference bit is an eviction hint — lost or
      // reordered updates only degrade CLOCK's recency estimate.
      ref_[base + w].store(1, std::memory_order_relaxed);
      // relaxed: commutative tally.
      hits_.fetch_add(1, std::memory_order_relaxed);
      return &e;
    }
  }
  // relaxed: commutative tally.
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void HotKeyCache::insert(topology::SwitchId sw, const crypto::Digest& digest,
                         const std::string& payload, topology::SwitchId home,
                         topology::ServerId responder) {
  if (!enabled_ || sw >= switch_count_) return;
  // relaxed: single control-plane-side writer (see header contract).
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  const std::size_t base = slot_base(sw);

  // Refresh in place when the key is already cached, and prefer any
  // unused-or-stale slot over an eviction.
  std::size_t victim = static_cast<std::size_t>(-1);
  for (std::size_t w = 0; w < ways_; ++w) {
    Entry& e = entries_[base + w];
    if (e.used && e.epoch == now && e.digest == digest) {
      victim = w;
      break;
    }
    if (victim == static_cast<std::size_t>(-1) &&
        (!e.used || e.epoch != now)) {
      victim = w;
    }
  }
  // CLOCK: sweep from the hand, clearing reference bits until an
  // unreferenced way turns up (bounded: after one lap every bit is 0).
  if (victim == static_cast<std::size_t>(-1)) {
    std::size_t h = hand_[sw];
    for (;;) {
      // relaxed: eviction hint only (see probe).
      if (ref_[base + h].exchange(0, std::memory_order_relaxed) == 0) {
        victim = h;
        hand_[sw] = static_cast<std::uint8_t>((h + 1) % ways_);
        break;
      }
      h = (h + 1) % ways_;
    }
  }

  Entry& e = entries_[base + victim];
  e.digest = digest;
  e.payload.assign(payload);  // reuses the slot's string capacity
  e.home = home;
  e.responder = responder;
  e.epoch = now;
  e.used = true;
  // relaxed: eviction hint only (see probe).
  ref_[base + victim].store(1, std::memory_order_relaxed);
  ++insertions_;
}

void HotKeyCache::invalidate_id(const crypto::Digest& digest) {
  // relaxed: control-plane-side single writer (see header contract).
  const std::uint64_t now = epoch_.load(std::memory_order_relaxed);
  for (Entry& e : entries_) {
    if (e.used && e.epoch == now && e.digest == digest) e.used = false;
  }
  // relaxed: commutative tally.
  invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void HotKeyCache::ensure_switches(std::size_t switches) {
  if (switches <= switch_count_) return;
  switch_count_ = switches;
  entries_.resize(switch_count_ * ways_);
  ref_ = std::make_unique<std::atomic<std::uint8_t>[]>(entries_.size());
  hand_.assign(switch_count_, 0);
}

void HotKeyCache::clear() {
  invalidate_all();
  for (Entry& e : entries_) {
    e.used = false;
    e.payload = std::string();
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    // relaxed: control-plane-side reset.
    ref_[i].store(0, std::memory_order_relaxed);
  }
  hand_.assign(switch_count_, 0);
}

void HotKeyCache::reset_stats() {
  // relaxed: control-plane-side reset of reporting tallies.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  insertions_ = 0;
}

}  // namespace gred::sden
