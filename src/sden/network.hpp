// The assembled software-defined edge network (SDEN, Fig. 3): switches
// with flow tables, edge servers, and the physical links between them.
// `inject()` walks a packet hop by hop through switch pipelines exactly
// as the testbed forwards frames, validating that every forwarding
// decision uses a real physical link, and applies the storage side
// effects at the delivering server(s).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/thread_annotations.hpp"
#include "sden/fault_state.hpp"
#include "sden/hot_key_cache.hpp"
#include "sden/packet.hpp"
#include "sden/route_plan.hpp"
#include "sden/server_node.hpp"
#include "sden/switch.hpp"
#include "topology/edge_network.hpp"

namespace gred::obs {
class SwitchLoadTracker;
}  // namespace gred::obs

namespace gred::sden {

/// Outcome of routing one packet. Reusable as routing scratch: route()
/// calls reset(), which clears every field but keeps the vectors' and
/// the payload string's capacity, so a reused RouteResult makes the
/// steady-state routing path allocation-free.
struct RouteResult {
  Status status = Status::Ok();
  /// Physical switch path walked by the request, ingress first. When a
  /// range-extension handoff crosses to a neighbor switch, that switch
  /// is included.
  std::vector<SwitchId> switch_path;
  /// Servers the packet was delivered to (1 normally; 2 for retrieval
  /// under range extension).
  std::vector<ServerId> delivered_to;
  /// For retrievals: the server that actually held the data, and the
  /// returned payload.
  ServerId responder = topology::kNoServer;
  std::string payload;
  bool found = false;
  /// Sum of link weights along switch_path — equals hop_count() on
  /// unit-weight topologies, propagation latency on weighted ones.
  double path_cost = 0.0;

  /// Physical link traversals of the request path.
  std::size_t hop_count() const {
    return switch_path.empty() ? 0 : switch_path.size() - 1;
  }

  /// Marks the route failed with `s`, enforcing the failure-path
  /// contract (route_errors.hpp): the partial switch_path and
  /// path_cost walked so far are kept, but delivery state is cleared —
  /// a failed route never reports delivered_to/responder/payload.
  void fail(Status s) {
    status = std::move(s);
    delivered_to.clear();
    responder = topology::kNoServer;
    payload.clear();
    found = false;
  }

  /// Back to the just-constructed state, retaining heap capacity.
  void reset() {
    status = Status::Ok();
    switch_path.clear();
    delivered_to.clear();
    responder = topology::kNoServer;
    payload.clear();
    found = false;
    path_cost = 0.0;
  }
};

class SdenNetwork {
 public:
  /// Builds switches and servers from the static description. Flow
  /// tables start empty — a controller (gred::core::Controller) must
  /// install state before packets can be routed.
  explicit SdenNetwork(topology::EdgeNetwork description);

  std::size_t switch_count() const { return switches_.size(); }
  std::size_t server_count() const { return servers_.size(); }

  /// Mutable switch access (controller installs). Conservatively
  /// invalidates the compiled route plan: every flow-table or position
  /// change flows through here.
  Switch& switch_at(SwitchId id) {
    invalidate_plan();
    return switches_[id];
  }
  const Switch& switch_at(SwitchId id) const { return switches_[id]; }
  /// Read-only switch access that does NOT invalidate the compiled
  /// route plan, callable through a non-const network reference.
  /// Inspection passes (validators, reference routers, metrics) must
  /// use this — going through the mutable switch_at() silently
  /// destroys the fast path on every call.
  const Switch& const_switch_at(SwitchId id) const { return switches_[id]; }
  ServerNode& server(ServerId id) { return servers_[id]; }
  const ServerNode& server(ServerId id) const { return servers_[id]; }

  const topology::EdgeNetwork& description() const { return description_; }
  /// Mutable topology access for the controller's dynamics (link
  /// add/remove); application code should go through the Controller.
  /// Invalidates the compiled route plan (link weights are baked in).
  topology::EdgeNetwork& mutable_description() {
    invalidate_plan();
    return description_;
  }

  /// Routes `pkt` from `ingress` until delivery/drop. Placement stores
  /// the payload; retrieval reads it (and bumps the responder's served
  /// counter).
  RouteResult inject(Packet pkt, SwitchId ingress);

  /// Fast-path variant: routes `pkt` in place, writing into `out`
  /// (reset first, capacity kept). The packet's virtual-link fields
  /// are rewritten during the walk and a placement's payload is moved
  /// into storage, so the caller must treat `pkt` as consumed. With a
  /// reused `out` and a cached key digest on the packet, the steady
  /// state performs no heap allocations. Concurrent calls are safe for
  /// retrievals/removals on disjoint (pkt, out) pairs.
  GRED_HOT_PATH void route(Packet& pkt, SwitchId ingress, RouteResult& out);

  /// Capacity hint for RouteResult::switch_path: comfortably above the
  /// greedy walk's typical length (≈ network diameter + virtual-link
  /// detours) so a hinted reserve avoids mid-route growth.
  std::size_t path_reserve_hint() const { return path_reserve_hint_; }

  /// Stored-item count per server, indexed by global server id — the
  /// load vector for the max/avg metric.
  std::vector<std::size_t> server_loads() const;

  /// Flow-table entries per switch (Fig. 9(d)).
  std::vector<std::size_t> table_entry_counts() const;

  /// Drops every stored item and resets load counters (fresh trial).
  void clear_storage();

  /// Adds a new switch with physical links to `links` (dynamics,
  /// Section VI). Returns the new switch id.
  Result<SwitchId> add_switch(const std::vector<SwitchId>& links);

  /// Attaches a fresh server to `sw`.
  Result<ServerId> attach_server(SwitchId sw, std::size_t capacity = 0);

  /// Tears down a leaving switch (dynamics): removes its physical
  /// links and detaches its servers. The switch id stays valid as an
  /// inert transit node so ids remain dense.
  void remove_switch_links(SwitchId sw);

  /// Rolls the network back to earlier switch/server counts, undoing a
  /// partially-applied add_switch/attach_server sequence (the counts
  /// come from before the sequence started). Tail-only: dropped
  /// servers must have attached to dropped-or-tail switches, which the
  /// add_switch path guarantees. Stored items on dropped servers are
  /// destroyed with them — callers roll back before any migration.
  void truncate_switches(std::size_t switch_count,
                         std::size_t server_count);

  /// Marks the compiled route plan stale; the next route() rebuilds it.
  /// Also the hot-key cache's conservative coherence hook: any
  /// mutation that could move data or rewrite forwarding flows through
  /// here, so cached retrieval answers are dropped alongside the plan.
  void invalidate_plan() {
    // release: not needed for publication (the REBUILDER's release
    // store of dirty=false publishes the plan), kept so a stale flag
    // observed by route_plan_stale() orders after the mutation.
    plan_->dirty.store(true, std::memory_order_release);
    if (hot_cache_) hot_cache_->invalidate_all();
  }

  /// Whether the compiled plan is currently marked stale (diagnostics
  /// and regression tests: a read-only inspection pass must leave a
  /// fresh plan intact).
  bool route_plan_stale() const {
    // acquire: pairs with invalidate_plan / the rebuilder's stores.
    return plan_->dirty.load(std::memory_order_acquire);
  }

  /// Compiles a shard-local route plan covering exactly the `count`
  /// switches listed in `owned`: their regions, their attached-server
  /// slices, and the relay entries whose source switch is owned. The
  /// offset table spans all switches, with kPlanNoRegion for non-owned
  /// ones. The sharded runtime builds one such plan per shard from the
  /// same flow tables the whole-network plan compiles from, so a walk
  /// stepping only through owned regions (sden/plan_walk.hpp) stays
  /// bit-identical to the single-plan walk. Read-only: does not touch
  /// the network's own cached plan or its dirty flag.
  void compile_plan_subset(RoutePlan& plan, const std::uint32_t* owned,
                           std::size_t count) const;

  /// Incremental counterpart of compile_plan_subset: recompiles only
  /// the regions of the `count` switches in `touched` (sorted, unique)
  /// into an already-compiled `plan`, leaving every other region
  /// untouched. Fills `patch` with the compiled blobs and grows the
  /// plan's arrays to their final sizes (all allocation happens here);
  /// commit_plan_patch then applies the writes. Returns false when the
  /// patch is not worth applying — the plan was never compiled, or the
  /// accumulated dead words would pass half the hot array — in which
  /// case the caller should recompile the subset from scratch.
  /// Read-only with respect to the flow tables; `plan` may be the
  /// network's own cached plan or a shard-subset plan.
  bool prepare_plan_patch(RoutePlan& plan, const std::uint32_t* touched,
                          std::size_t count, PlanPatch& patch) const;

  /// Applies a prepared patch: erases the touched switches' stale
  /// relay keys, inserts the recompiled relays (capacity reserved by
  /// prepare), writes the region words and server slices, and flips
  /// the offsets. Alloc- and lock-free by construction — verified
  /// statically as a hot-path root (tools/hotpath_check.py), because
  /// this is the data-plane half of every incremental control-plane
  /// event.
  GRED_HOT_PATH void commit_plan_patch(RoutePlan& plan,
                                       PlanPatch& patch) const;

  /// Patches the network's own cached plan in place for the given
  /// touched switches and marks it fresh. Falls back to a full
  /// recompile when prepare_plan_patch declines (never-compiled plan
  /// or compaction due). Must not run concurrently with routing, like
  /// any control-plane mutation.
  void patch_plan(const std::uint32_t* touched, std::size_t count);

  /// Hop bound of a single walk (relay hops included): exceeding it
  /// means a forwarding-table bug, classified as kRoutingLoop. Shared
  /// by route() and the sharded runtime so their bound trips at the
  /// identical step.
  std::size_t max_route_hops() const { return 4 * switches_.size() + 16; }

  /// Compiled delivery at a terminal switch owning the packet's data.
  /// `base` is the terminal's region inside `plan` (which may be a
  /// shard-subset plan — its servers array is self-contained). Public
  /// for the sharded runtime; switches with rewrites installed take the
  /// live pipeline via the deliver-fallback flag. Concurrent calls are
  /// safe for retrievals/removals on disjoint (pkt, result) pairs.
  // cold: delivery mutates server storage / copies the payload string —
  // out of the hop loop's closure; one call per packet, not per hop.
  GRED_COLD_PATH Status deliver_compiled(const RoutePlan& plan,
                                         const double* base, Packet& pkt,
                                         std::uint32_t terminal,
                                         RouteResult& result);

  /// Installs (or clears, with nullptr) the injected physical-fault
  /// state. Not owned; the pointer must stay valid while set. Both the
  /// compiled fast path and the reference router consult it, so their
  /// differential stays bit-identical under faults. Routing with
  /// faults installed classifies drops as kLinkDown.
  void set_fault_state(const FaultState* faults) { faults_ = faults; }
  const FaultState* fault_state() const { return faults_; }

  /// Creates (or resizes) the per-switch hot-key cache with `ways`
  /// entries per switch and returns it. The cache is owned by the
  /// network so every component (protocol, controller hooks, tests)
  /// sees the same instance; GredProtocol::retrieve consults it.
  HotKeyCache& enable_hot_key_cache(std::size_t ways = 8);
  /// The hot-key cache, or nullptr when never enabled.
  HotKeyCache* hot_key_cache() { return hot_cache_.get(); }
  const HotKeyCache* hot_key_cache() const { return hot_cache_.get(); }

  /// Installs (or clears, with nullptr) the per-switch retrieval-load
  /// tracker consulted by GredProtocol::retrieve. Not owned; must stay
  /// valid while set (same idiom as set_fault_state).
  void set_load_tracker(obs::SwitchLoadTracker* tracker) {
    load_tracker_ = tracker;
  }
  obs::SwitchLoadTracker* load_tracker() const { return load_tracker_; }

 private:
  Status deliver_to_targets(const Decision& decision, Packet& pkt,
                            SwitchId terminal, RouteResult& result);
  /// Returns the up-to-date compiled plan, rebuilding it first when a
  /// mutating accessor flagged it dirty. The dirty check itself stays
  /// on the hot path (one acquire load); the lock-and-rebuild lives in
  /// rebuild_plan_slow behind a cold boundary.
  const RoutePlan& ensure_plan();
  // cold: takes the rebuild mutex and recompiles the whole plan; runs
  // only after a control-plane mutation, never in the steady state.
  GRED_COLD_PATH void rebuild_plan_slow();
  void rebuild_plan(RoutePlan& plan) const;
  /// Compiles switch `i`'s plan region, appending the region words
  /// (header + four candidate columns) to `words`, the attached-server
  /// ids to `servers`, and the first-wins-deduped relay actions to
  /// `relays` with their dests to `dests`. `server_begin` is what the
  /// header encodes as the server-slice start; callers that relocate
  /// the slice afterwards re-pack words[2].
  void compile_switch_region(
      std::size_t i, std::uint32_t server_begin, std::vector<double>& words,
      std::vector<std::uint32_t>& servers, std::vector<std::uint32_t>& dests,
      std::vector<std::pair<Key2, PlanRelay>>& relays) const;

  topology::EdgeNetwork description_;
  std::vector<Switch> switches_;
  std::vector<ServerNode> servers_;
  std::size_t path_reserve_hint_ = 16;
  std::unique_ptr<PlanState> plan_;
  const FaultState* faults_ = nullptr;
  std::unique_ptr<HotKeyCache> hot_cache_;
  obs::SwitchLoadTracker* load_tracker_ = nullptr;
};

}  // namespace gred::sden
