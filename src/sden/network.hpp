// The assembled software-defined edge network (SDEN, Fig. 3): switches
// with flow tables, edge servers, and the physical links between them.
// `inject()` walks a packet hop by hop through switch pipelines exactly
// as the testbed forwards frames, validating that every forwarding
// decision uses a real physical link, and applies the storage side
// effects at the delivering server(s).
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "sden/packet.hpp"
#include "sden/server_node.hpp"
#include "sden/switch.hpp"
#include "topology/edge_network.hpp"

namespace gred::sden {

/// Outcome of routing one packet.
struct RouteResult {
  Status status = Status::Ok();
  /// Physical switch path walked by the request, ingress first. When a
  /// range-extension handoff crosses to a neighbor switch, that switch
  /// is included.
  std::vector<SwitchId> switch_path;
  /// Servers the packet was delivered to (1 normally; 2 for retrieval
  /// under range extension).
  std::vector<ServerId> delivered_to;
  /// For retrievals: the server that actually held the data, and the
  /// returned payload.
  ServerId responder = topology::kNoServer;
  std::string payload;
  bool found = false;
  /// Sum of link weights along switch_path — equals hop_count() on
  /// unit-weight topologies, propagation latency on weighted ones.
  double path_cost = 0.0;

  /// Physical link traversals of the request path.
  std::size_t hop_count() const {
    return switch_path.empty() ? 0 : switch_path.size() - 1;
  }
};

class SdenNetwork {
 public:
  /// Builds switches and servers from the static description. Flow
  /// tables start empty — a controller (gred::core::Controller) must
  /// install state before packets can be routed.
  explicit SdenNetwork(topology::EdgeNetwork description);

  std::size_t switch_count() const { return switches_.size(); }
  std::size_t server_count() const { return servers_.size(); }

  Switch& switch_at(SwitchId id) { return switches_[id]; }
  const Switch& switch_at(SwitchId id) const { return switches_[id]; }
  ServerNode& server(ServerId id) { return servers_[id]; }
  const ServerNode& server(ServerId id) const { return servers_[id]; }

  const topology::EdgeNetwork& description() const { return description_; }
  /// Mutable topology access for the controller's dynamics (link
  /// add/remove); application code should go through the Controller.
  topology::EdgeNetwork& mutable_description() { return description_; }

  /// Routes `pkt` from `ingress` until delivery/drop. Placement stores
  /// the payload; retrieval reads it (and bumps the responder's served
  /// counter).
  RouteResult inject(Packet pkt, SwitchId ingress);

  /// Stored-item count per server, indexed by global server id — the
  /// load vector for the max/avg metric.
  std::vector<std::size_t> server_loads() const;

  /// Flow-table entries per switch (Fig. 9(d)).
  std::vector<std::size_t> table_entry_counts() const;

  /// Drops every stored item and resets load counters (fresh trial).
  void clear_storage();

  /// Adds a new switch with physical links to `links` (dynamics,
  /// Section VI). Returns the new switch id.
  Result<SwitchId> add_switch(const std::vector<SwitchId>& links);

  /// Attaches a fresh server to `sw`.
  Result<ServerId> attach_server(SwitchId sw, std::size_t capacity = 0);

  /// Tears down a leaving switch (dynamics): removes its physical
  /// links and detaches its servers. The switch id stays valid as an
  /// inert transit node so ids remain dense.
  void remove_switch_links(SwitchId sw);

 private:
  Status deliver_to_targets(const Decision& decision, const Packet& pkt,
                            SwitchId terminal, RouteResult& result);

  topology::EdgeNetwork description_;
  std::vector<Switch> switches_;
  std::vector<ServerNode> servers_;
};

}  // namespace gred::sden
