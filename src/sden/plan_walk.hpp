// One iteration of the compiled greedy walk, shared by
// SdenNetwork::route (whole-network plan) and the sharded runtime
// (per-shard plan subsets). Extracting the step keeps the two
// bit-identical by construction: there is exactly one implementation of
// the relay stage, the branch-free argmin, and the closer_to tie-break,
// and both callers feed it the same per-switch region layout
// (route_plan.hpp).
//
// The caller owns everything around the step: the hop bound, fault
// checks on a committed hop (which come AFTER the missing-link check,
// matching the historical order), path/cost accounting, and delivery.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "common/thread_annotations.hpp"
#include "sden/packet.hpp"
#include "sden/route_plan.hpp"

namespace gred::sden {

/// Outcome of one walk iteration at switch `cur`.
struct PlanStep {
  enum class Kind : std::uint8_t {
    kHop,           ///< commit the hop to `next` with `weight`
    kDeliver,       ///< `cur` owns the data: deliver here
    kNoRelay,       ///< relay-table miss (route_errors::no_relay)
    kNonDtTransit,  ///< greedy packet at a non-DT switch
    kMissingLink,   ///< flow entry over a missing link toward `next`
  };
  Kind kind = Kind::kDeliver;
  std::uint32_t next = kNoPlanSwitch;
  double weight = 0.0;
};

/// Executes one iteration of the compiled walk: the virtual-link relay
/// stage (Section V-A) or one greedy decision (Algorithm 2) over the
/// plan's contiguous candidate columns. Mutates `pkt`'s virtual-link
/// fields exactly as the live pipeline would (clearing them at a link
/// endpoint, setting them when entering a multi-hop DT edge — the
/// latter happens even when the step then fails on a missing link,
/// matching SdenNetwork::route's historical order; a failed result
/// discards the scratch packet anyway). `plan` must contain a region
/// for `cur` — sharded callers check ownership first.
GRED_HOT_PATH inline PlanStep plan_step(const RoutePlan& plan,
                                        std::uint32_t cur, Packet& pkt) {
  const double* const hot = plan.hot.data();
  const double tx = pkt.target.x;
  const double ty = pkt.target.y;

  // Stage 1: virtual-link relay. While d.relay != null and we are not
  // the link endpoint, the packet moves along pre-installed relay
  // tuples without greedy logic.
  if (pkt.on_virtual_link()) {
    if (pkt.vlink_dest == cur) {
      pkt.clear_virtual_link();
    } else {
      const PlanRelay* relay = plan.relays.find(
          Key2{cur, static_cast<std::uint64_t>(pkt.vlink_dest)});
      if (relay == nullptr) {
        return {PlanStep::Kind::kNoRelay, kNoPlanSwitch, 0.0};
      }
      if (std::isnan(relay->weight)) {
        return {PlanStep::Kind::kMissingLink, relay->succ, 0.0};
      }
      return {PlanStep::Kind::kHop, relay->succ, relay->weight};
    }
  }

  const double* const base = hot + plan.offset[cur];
  const std::uint32_t flags = plan_lo(base[3]);
  if ((flags & kPlanFlagDt) == 0) {
    return {PlanStep::Kind::kNonDtTransit, kNoPlanSwitch, 0.0};
  }

  // Algorithm 2: one pass over the contiguous candidate columns under
  // the paper's total order (squared distance, ties by lex position)
  // — same unique minimizer as FlowTable::best_candidate. The compile
  // step sorted the columns by lex position, so the FIRST index
  // achieving the minimum distance is the lex-smallest tie winner,
  // and a strict-less argmin (two independent accumulator chains,
  // branch-free minsd + cmov, no rescan) is exact.
  const std::size_t k = plan_hi(base[2]);
  const double* const xs = base + kPlanHeaderWords;
  const double* const ys = xs + k;
  double m0 = std::numeric_limits<double>::infinity();
  double m1 = m0;
  std::size_t b0 = k;
  std::size_t b1 = k;
  std::size_t i = 0;
  for (; i + 1 < k; i += 2) {
    const double dx0 = xs[i] - tx;
    const double dy0 = ys[i] - ty;
    const double d0 = dx0 * dx0 + dy0 * dy0;
    const double dx1 = xs[i + 1] - tx;
    const double dy1 = ys[i + 1] - ty;
    const double d1 = dx1 * dx1 + dy1 * dy1;
    b0 = d0 < m0 ? i : b0;
    m0 = d0 < m0 ? d0 : m0;
    b1 = d1 < m1 ? i + 1 : b1;
    m1 = d1 < m1 ? d1 : m1;
  }
  if (i < k) {
    const double dx = xs[i] - tx;
    const double dy = ys[i] - ty;
    const double d2 = dx * dx + dy * dy;
    b0 = d2 < m0 ? i : b0;
    m0 = d2 < m0 ? d2 : m0;
  }
  // Merge the even/odd chains; on equal distance the smaller index
  // (lex-smaller position) wins.
  const double best_d2 = m1 < m0 ? m1 : m0;
  const std::size_t best = (m1 < m0 || (m1 == m0 && b1 < b0)) ? b1 : b0;

  if (best != k) {
    // closer_to(target, best, self): strictly smaller distance, or
    // equal distance and lexicographically smaller position.
    const double px = base[0];
    const double py = base[1];
    const double bx = xs[best];
    const double by = ys[best];
    const double sdx = px - tx;
    const double sdy = py - ty;
    const double self_d2 = sdx * sdx + sdy * sdy;
    if (best_d2 < self_d2 ||
        (best_d2 == self_d2 && (bx != px ? bx < px : by < py))) {
      const double act = ys[k + best];         // packed action word
      const double weight = ys[2 * k + best];  // link-weight column
      const std::uint32_t vlink_dest = plan_lo(act);
      if (vlink_dest != kNoPlanSwitch) {
        // Enter the virtual link toward the multi-hop DT neighbor.
        pkt.vlink_dest = vlink_dest;
        pkt.vlink_sour = cur;
      }
      if (std::isnan(weight)) {
        return {PlanStep::Kind::kMissingLink, plan_hi(act), 0.0};
      }
      return {PlanStep::Kind::kHop, plan_hi(act), weight};
    }
  }

  // No neighbor is closer: this switch owns the data.
  return {PlanStep::Kind::kDeliver, cur, 0.0};
}

}  // namespace gred::sden
