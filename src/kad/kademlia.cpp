#include "kad/kademlia.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace gred::kad {

Result<KademliaNetwork> KademliaNetwork::build(
    const topology::EdgeNetwork& net, const KademliaOptions& options) {
  if (net.server_count() == 0) {
    return Error(ErrorCode::kFailedPrecondition,
                 "KademliaNetwork: network has no servers");
  }
  if (options.bucket_size == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "KademliaNetwork: bucket_size must be >= 1");
  }

  KademliaNetwork kad;
  kad.nodes_.resize(net.server_count());
  for (const topology::EdgeServer& s : net.all_servers()) {
    kad.nodes_[s.id].id =
        crypto::DataKey("kad-node-" + std::to_string(s.id)).prefix64();
    kad.nodes_[s.id].server = s.id;
  }

  // Fill k-buckets: bucket b of node n holds candidates m whose XOR
  // distance has bit-length b+1 (i.e., 2^b <= d < 2^(b+1)); keep the
  // `bucket_size` closest per bucket.
  const std::size_t n = kad.nodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::vector<std::size_t>> buckets(64);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const KadId d = xor_distance(kad.nodes_[i].id, kad.nodes_[j].id);
      if (d == 0) continue;  // id collision: skip (astronomically rare)
      const int bucket = 63 - std::countl_zero(d);
      buckets[bucket].push_back(j);
    }
    for (auto& bucket : buckets) {
      if (bucket.size() > options.bucket_size) {
        std::partial_sort(
            bucket.begin(),
            bucket.begin() + static_cast<std::ptrdiff_t>(options.bucket_size),
            bucket.end(), [&](std::size_t a, std::size_t b) {
              return xor_distance(kad.nodes_[i].id, kad.nodes_[a].id) <
                     xor_distance(kad.nodes_[i].id, kad.nodes_[b].id);
            });
        bucket.resize(options.bucket_size);
      }
      kad.nodes_[i].contacts.insert(kad.nodes_[i].contacts.end(),
                                    bucket.begin(), bucket.end());
    }
  }
  return kad;
}

std::size_t KademliaNetwork::index_closest(KadId key) const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (xor_distance(nodes_[i].id, key) <
        xor_distance(nodes_[best].id, key)) {
      best = i;
    }
  }
  return best;
}

topology::ServerId KademliaNetwork::closest_server(KadId key) const {
  return nodes_[index_closest(key)].server;
}

KadLookupTrace KademliaNetwork::lookup(topology::ServerId from,
                                       KadId key) const {
  KadLookupTrace trace;
  if (from >= nodes_.size()) {
    trace.home = closest_server(key);
    return trace;
  }

  // Greedy iterative lookup: at each step, move to the best contact
  // strictly closer to the key. Kademlia's bucket structure guarantees
  // each hop at least halves the XOR distance, so this terminates at
  // the global minimum.
  std::size_t cur = from;
  const std::size_t max_steps = 2 * 64 + 8;  // distance halves per hop
  for (std::size_t step = 0; step < max_steps; ++step) {
    const KadId cur_d = xor_distance(nodes_[cur].id, key);
    std::size_t best = cur;
    KadId best_d = cur_d;
    for (std::size_t contact : nodes_[cur].contacts) {
      const KadId d = xor_distance(nodes_[contact].id, key);
      if (d < best_d) {
        best = contact;
        best_d = d;
      }
    }
    if (best == cur) break;  // local (== global) minimum
    trace.overlay_path.push_back(nodes_[best].server);
    cur = best;
  }
  trace.home = nodes_[cur].server;
  return trace;
}

std::size_t KademliaNetwork::routing_entries(
    topology::ServerId server) const {
  if (server >= nodes_.size()) return 0;
  return nodes_[server].contacts.size();
}

KadRouteReport KademliaNetwork::measure_lookup(
    const topology::EdgeNetwork& net, const graph::ApspResult& apsp,
    topology::ServerId from, KadId key) const {
  KadRouteReport report;
  report.trace = lookup(from, key);

  auto switch_of = [&net](topology::ServerId s) {
    return net.server(s).attached_to;
  };
  topology::ServerId prev = from;
  for (topology::ServerId next : report.trace.overlay_path) {
    const std::size_t hops =
        apsp.hop_count(switch_of(prev), switch_of(next));
    if (hops != graph::kNoPath) report.physical_hops += hops;
    prev = next;
  }
  const std::size_t shortest =
      apsp.hop_count(switch_of(from), switch_of(report.trace.home));
  report.shortest_hops =
      shortest == graph::kNoPath ? 0 : shortest;
  if (report.shortest_hops == 0) {
    report.stretch = report.physical_hops == 0
                         ? 1.0
                         : static_cast<double>(report.physical_hops);
  } else {
    report.stretch = static_cast<double>(report.physical_hops) /
                     static_cast<double>(report.shortest_hops);
  }
  return report;
}

}  // namespace gred::kad
