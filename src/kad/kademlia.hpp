// Kademlia (Maymounkov & Mazières, IPTPS'02) as a second DHT baseline
// beyond the paper's Chord comparison. Nodes and keys live on a 64-bit
// identifier space under the XOR metric; each node keeps k-buckets of
// contacts (one bucket per distance magnitude, up to k closest
// contacts each), and lookups greedily step to the contact closest to
// the key. Like Chord, every overlay hop costs a physical path between
// the two servers' switches — the mismatch GRED eliminates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "crypto/data_key.hpp"
#include "graph/shortest_path.hpp"
#include "topology/edge_network.hpp"

namespace gred::kad {

using KadId = std::uint64_t;

/// XOR distance between two identifiers.
inline KadId xor_distance(KadId a, KadId b) { return a ^ b; }

struct KademliaOptions {
  /// Contacts per bucket (the protocol's k).
  std::size_t bucket_size = 8;
};

struct KadLookupTrace {
  topology::ServerId home = topology::kNoServer;  ///< XOR-closest server
  /// Servers queried in order (excluding the origin).
  std::vector<topology::ServerId> overlay_path;
  std::size_t overlay_hop_count() const { return overlay_path.size(); }
};

struct KadRouteReport {
  KadLookupTrace trace;
  std::size_t physical_hops = 0;
  std::size_t shortest_hops = 0;
  double stretch = 1.0;
};

class KademliaNetwork {
 public:
  /// Builds the overlay across all servers of `net`. Node ids are
  /// SHA-256("kad-node-<server>") truncated to 64 bits; buckets are
  /// filled with the XOR-closest candidates per distance magnitude
  /// (the steady state a healthy deployment converges to).
  static Result<KademliaNetwork> build(const topology::EdgeNetwork& net,
                                       const KademliaOptions& options = {});

  /// Key of a data identifier (same digest as GRED/Chord).
  static KadId key_of(const crypto::DataKey& key) { return key.prefix64(); }

  /// The server whose node id is XOR-closest to `key`.
  topology::ServerId closest_server(KadId key) const;

  /// Iterative greedy lookup from `from`'s routing table; terminates at
  /// the globally XOR-closest node.
  KadLookupTrace lookup(topology::ServerId from, KadId key) const;

  /// Routing-table entries a server stores.
  std::size_t routing_entries(topology::ServerId server) const;

  std::size_t node_count() const { return nodes_.size(); }

  /// Prices a lookup on the physical topology (like Chord's underlay
  /// mapping).
  KadRouteReport measure_lookup(const topology::EdgeNetwork& net,
                                const graph::ApspResult& apsp,
                                topology::ServerId from, KadId key) const;

 private:
  struct Node {
    KadId id = 0;
    topology::ServerId server = topology::kNoServer;
    /// Indices into nodes_, bucketed by distance magnitude; flattened
    /// with per-bucket boundaries implicit (contacts only, sorted by
    /// XOR distance within construction).
    std::vector<std::size_t> contacts;
  };

  std::size_t index_closest(KadId key) const;

  std::vector<Node> nodes_;              ///< one per server, by server id
};

}  // namespace gred::kad
