// Per-switch observed retrieval load (ROADMAP "Hotspot traffic"): the
// signal that drives load-based range extension. The data plane bumps
// a relaxed per-switch window counter on every served retrieval
// (record(), hot path); the control plane periodically folds the
// window into a per-switch EWMA (roll_window()) and compares hot
// switches against the fleet mean (Controller::extend_for_load).
//
// Concurrency: record() is safe from concurrent retrievals (relaxed
// atomic adds). roll_window()/ensure_switches()/the EWMA accessors are
// control-plane-side and must not run concurrently with record(),
// matching the network-wide control-vs-data-plane contract.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

namespace gred::obs {

class SwitchLoadTracker {
 public:
  /// `alpha` is the EWMA smoothing factor in (0, 1]: 1 = only the
  /// last window counts.
  explicit SwitchLoadTracker(std::size_t switches, double alpha = 0.5);

  std::size_t switch_count() const { return count_; }
  double alpha() const { return alpha_; }

  /// Records one served retrieval at switch `sw`. Out-of-range ids
  /// (a switch added since construction) are dropped, not UB.
  GRED_HOT_PATH void record(std::size_t sw) {
    // relaxed: commutative per-switch tally shared only with other
    // record() calls; roll_window() reads it after the data plane
    // quiesces, so no ordering is needed.
    if (sw < count_) window_[sw].fetch_add(1, std::memory_order_relaxed);
  }

  /// Current (un-rolled) window count of `sw`.
  std::uint64_t window_count(std::size_t sw) const {
    // relaxed: reporting read on the control-plane side.
    return sw < count_ ? window_[sw].load(std::memory_order_relaxed) : 0;
  }

  /// Folds the current window into each switch's EWMA and zeroes the
  /// window. Returns the total retrievals observed in the window.
  std::uint64_t roll_window();

  /// Smoothed per-window load of `sw` (0 for out-of-range).
  double ewma(std::size_t sw) const {
    return sw < ewma_.size() ? ewma_[sw] : 0.0;
  }
  /// Mean EWMA across the given switches (the extension baseline);
  /// empty list = all switches.
  double mean_ewma(const std::vector<std::size_t>& over = {}) const;
  double max_ewma() const;

  /// Grows to cover `switches` (dynamics add_switch); existing window
  /// counts and EWMAs are kept.
  void ensure_switches(std::size_t switches);

  /// Zeroes both the window and the EWMAs.
  void reset();

 private:
  std::size_t count_ = 0;
  double alpha_ = 0.5;
  std::unique_ptr<std::atomic<std::uint64_t>[]> window_;
  std::vector<double> ewma_;
};

}  // namespace gred::obs
