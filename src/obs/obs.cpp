#include "obs/obs.hpp"

#include <cstdlib>

namespace gred::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  // relaxed: an independent on/off flag; instrumentation sites that see
  // it flip need no other data published with it.
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

bool init_from_env() {
  const char* v = std::getenv("GRED_OBS");
  if (v != nullptr) {
    // The variable is authoritative when present: GRED_OBS=0 (or
    // empty) turns the layer off even if code enabled it earlier.
    set_enabled(v[0] != '\0' && !(v[0] == '0' && v[1] == '\0'));
  }
  return enabled();
}

}  // namespace gred::obs
