// The gred::obs metrics registry: named counters, gauges, and
// histograms with stable addresses (register once at setup, record
// through the cached reference on the hot path).
//
// Write-side design follows the repo's thread-count-invariant reduction
// discipline (DESIGN.md §7): every metric is sharded into a fixed
// number of cache-line-sized slots, each writer thread is pinned to one
// slot (thread-local assignment, round-robin), and readers merge the
// shards in slot order. Counter and histogram bin merges are integer
// sums — exact and order-independent — while the floating-point
// sum/min/max merges run in the same slot order on every read, so two
// snapshots of an idle registry are identical regardless of how many
// threads wrote.
//
// Recording never allocates: shards are embedded in the metric object
// and bins are fixed. Registration (name -> metric) takes a mutex and
// may allocate, so instrumentation sites that sit on packet paths must
// look their metric up once and keep the reference.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gred::obs {

/// Writer shards per metric. More than the container's core count so
/// slot collisions (two threads pinned to one slot) stay rare; atomic
/// slot updates keep collisions correct, just contended.
inline constexpr std::size_t kMetricShards = 16;

/// Slot index of the calling thread (assigned round-robin on first
/// use, unless pinned).
std::size_t this_thread_shard();

/// Pins the calling thread's metric slot to `slot % kMetricShards`.
/// The sharded data plane pins each shard worker to its shard id, so a
/// metric's per-slot breakdown is the per-shard breakdown and a shard's
/// hot-path bumps never contend with another shard's slot.
void pin_this_thread_shard(std::size_t slot);

/// Monotonic event counter.
class Counter {
 public:
  GRED_HOT_PATH void add(std::uint64_t delta = 1) {
    // relaxed: per-slot tally; readers merge slots and only need each
    // slot's own modification order, not cross-slot ordering.
    slots_[gred::obs::this_thread_shard()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Shards merged in slot order.
  std::uint64_t value() const;
  void reset();

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  Slot slots_[kMetricShards];
};

/// Last-written scalar (single value, not sharded: gauges record a
/// state, not a stream, and the last writer wins by definition).
class Gauge {
 public:
  // relaxed: a gauge is a standalone last-writer-wins scalar; nothing
  // is published through it.
  GRED_HOT_PATH void set(double v) { v_.store(v, std::memory_order_relaxed); }
  // relaxed: see set().
  double value() const { return v_.load(std::memory_order_relaxed); }
  // relaxed: see set().
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bin histogram for durations and sizes: 40 power-of-two bins
/// covering [2^-20, 2^20) (sub-microsecond to ~17 minutes when fed
/// milliseconds), plus count/sum/min/max. Bin counts are exact integer
/// merges; sum/min/max merge in slot order.
class Histogram {
 public:
  static constexpr std::size_t kBins = 40;
  static constexpr int kMinExp = -20;  ///< bin 0 holds v < 2^(kMinExp+1)

  GRED_HOT_PATH void record(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when count == 0
    double max = 0.0;
    std::uint64_t bins[kBins] = {};

    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Upper edge of bin i (2^(kMinExp + 1 + i)).
    static double bin_upper(std::size_t i);
  };
  Snapshot snapshot() const;
  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_bits{0};  ///< double, CAS-accumulated
    std::atomic<std::uint64_t> min_bits;     ///< double bits, CAS-min
    std::atomic<std::uint64_t> max_bits;     ///< double bits, CAS-max
    std::atomic<std::uint64_t> bins[kBins];
    Shard();
  };
  Shard shards_[kMetricShards];
};

/// Name -> metric map with stable addresses. One process-wide instance
/// (registry()); tests may build their own.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
  };
  /// All metrics, name-sorted (std::map order) for deterministic dumps.
  Snapshot snapshot() const;

  /// Zeroes every registered metric (names stay registered — cached
  /// references remain valid). Benches call this between sections.
  void reset_values();

 private:
  mutable gred::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      GRED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GRED_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GRED_GUARDED_BY(mu_);
};

/// The process-wide registry every library instrumentation site uses.
Registry& registry();

}  // namespace gred::obs
