#include "obs/export.hpp"

#include <cstdio>
#include <fstream>

namespace gred::obs {

namespace {

/// %.17g round-trips doubles exactly; integral values print bare.
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string num(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Metric names are library-chosen identifiers ([a-z0-9._]), but
/// escape defensively so a hostile name cannot break the document.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; dots become
/// underscores and everything gets the gred_ namespace prefix.
std::string prom_name(const std::string& name) {
  std::string out = "gred_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void append_histogram_json(std::string& out, const Histogram::Snapshot& h) {
  out += "{\"count\": ";
  out += num(h.count);
  out += ", \"sum\": ";
  out += num(h.sum);
  out += ", \"min\": ";
  out += num(h.min);
  out += ", \"max\": ";
  out += num(h.max);
  out += ", \"mean\": ";
  out += num(h.mean());
  out += ", \"bins\": [";
  // Sparse dump: [upper_edge, count] pairs for non-empty bins only.
  bool first = true;
  for (std::size_t i = 0; i < Histogram::kBins; ++i) {
    if (h.bins[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += '[';
    out += num(Histogram::Snapshot::bin_upper(i));
    out += ", ";
    out += num(h.bins[i]);
    out += ']';
  }
  out += "]}";
}

void append_metrics_json(std::string& out, const Registry& reg) {
  const Registry::Snapshot snap = reg.snapshot();
  out += "  \"metrics\": {\n    \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += json_escape(snap.counters[i].first);
    out += "\": ";
    out += num(snap.counters[i].second);
  }
  out += "},\n    \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    out += '"';
    out += json_escape(snap.gauges[i].first);
    out += "\": ";
    out += num(snap.gauges[i].second);
  }
  out += "},\n    \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    out += i ? ",\n      " : "\n      ";
    out += '"';
    out += json_escape(snap.histograms[i].first);
    out += "\": ";
    append_histogram_json(out, snap.histograms[i].second);
  }
  out += snap.histograms.empty() ? "}\n  }" : "\n    }\n  }";
}

void append_trace_json(std::string& out, const RouteTraceRing& ring,
                       std::size_t max_samples) {
  std::vector<RouteTraceSample> samples = ring.snapshot();
  if (max_samples < samples.size()) {
    samples.erase(samples.begin(),
                  samples.end() - static_cast<std::ptrdiff_t>(max_samples));
  }
  out += "  \"route_trace\": {\n    \"recorded\": ";
  out += num(ring.recorded());
  out += ",\n    \"dropped\": ";
  out += num(ring.dropped());
  out += ",\n    \"capacity\": ";
  out += num(static_cast<std::uint64_t>(ring.capacity()));
  out += ",\n    \"samples\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RouteTraceSample& s = samples[i];
    out += i ? ",\n      " : "\n      ";
    out += "{\"seq\": ";
    out += num(s.seq);
    out += ", \"type\": ";
    out += num(static_cast<std::uint64_t>(s.type));
    out += ", \"ingress\": ";
    out += num(static_cast<std::uint64_t>(s.ingress));
    out += ", \"egress\": ";
    out += num(static_cast<std::uint64_t>(s.egress));
    out += ", \"hops\": ";
    out += num(static_cast<std::uint64_t>(s.hops));
    out += ", \"path_cost\": ";
    out += num(s.path_cost);
    out += ", \"found\": ";
    out += s.found ? "true" : "false";
    out += ", \"ok\": ";
    out += s.ok ? "true" : "false";
    out += '}';
  }
  out += samples.empty() ? "]\n  }" : "\n    ]\n  }";
}

void append_events_json(std::string& out, const EventLog& log) {
  const std::vector<DynamicsEvent> events = log.snapshot();
  out += "  \"events\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const DynamicsEvent& e = events[i];
    out += i ? ",\n    " : "\n    ";
    out += "{\"seq\": ";
    out += num(e.seq);
    out += ", \"kind\": \"";
    out += event_kind_name(e.kind);
    out += "\", \"ok\": ";
    out += e.ok ? "true" : "false";
    out += ", \"status\": \"";
    out += json_escape(e.status);
    out += "\", \"subject\": ";
    out += num(static_cast<std::uint64_t>(e.subject));
    out += ", \"peer\": ";
    out += num(static_cast<std::uint64_t>(e.peer));
    out += ", \"migrated\": ";
    out += num(static_cast<std::uint64_t>(e.migrated));
    out += ", \"entries_before\": ";
    out += num(static_cast<std::uint64_t>(e.entries_before));
    out += ", \"entries_after\": ";
    out += num(static_cast<std::uint64_t>(e.entries_after));
    out += ", \"duration_ms\": ";
    out += num(e.duration_ms);
    out += '}';
  }
  out += events.empty() ? "]" : "\n  ]";
}

}  // namespace

ExportSources default_sources() {
  ExportSources s;
  s.registry = &registry();
  s.trace = &route_trace();
  s.events = &event_log();
  return s;
}

std::string to_json(const ExportSources& sources,
                    std::size_t max_trace_samples) {
  std::string out = "{\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  if (sources.registry != nullptr) {
    sep();
    append_metrics_json(out, *sources.registry);
  }
  if (sources.trace != nullptr) {
    sep();
    append_trace_json(out, *sources.trace, max_trace_samples);
  }
  if (sources.events != nullptr) {
    sep();
    append_events_json(out, *sources.events);
  }
  out += "\n}\n";
  return out;
}

std::string to_prometheus(const ExportSources& sources) {
  std::string out;
  if (sources.registry != nullptr) {
    const Registry::Snapshot snap = sources.registry->snapshot();
    auto line = [&out](const std::string& name, const std::string& value) {
      out += name;
      out += ' ';
      out += value;
      out += '\n';
    };
    for (const auto& [name, v] : snap.counters) {
      const std::string p = prom_name(name);
      out += "# TYPE ";
      out += p;
      out += " counter\n";
      line(p, num(v));
    }
    for (const auto& [name, v] : snap.gauges) {
      const std::string p = prom_name(name);
      out += "# TYPE ";
      out += p;
      out += " gauge\n";
      line(p, num(v));
    }
    for (const auto& [name, h] : snap.histograms) {
      const std::string p = prom_name(name);
      out += "# TYPE ";
      out += p;
      out += " histogram\n";
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < Histogram::kBins; ++i) {
        if (h.bins[i] == 0) continue;  // sparse: emit non-empty buckets
        cumulative += h.bins[i];
        out += p;
        out += "_bucket{le=\"";
        out += num(Histogram::Snapshot::bin_upper(i));
        out += "\"} ";
        out += num(cumulative);
        out += '\n';
      }
      out += p;
      out += "_bucket{le=\"+Inf\"} ";
      out += num(h.count);
      out += '\n';
      line(p + "_sum", num(h.sum));
      line(p + "_count", num(h.count));
    }
  }
  if (sources.trace != nullptr) {
    out += "# TYPE gred_route_trace_recorded_total counter\n";
    out += "gred_route_trace_recorded_total ";
    out += num(sources.trace->recorded());
    out += "\n# TYPE gred_route_trace_dropped_total counter\n";
    out += "gred_route_trace_dropped_total ";
    out += num(sources.trace->dropped());
    out += '\n';
  }
  if (sources.events != nullptr) {
    out += "# TYPE gred_dynamics_events_total counter\n";
    out += "gred_dynamics_events_total ";
    out += num(static_cast<std::uint64_t>(sources.events->size()));
    out += '\n';
  }
  return out;
}

Status write_text_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    return Status(ErrorCode::kUnavailable, "cannot open " + path);
  }
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  f.flush();
  if (!f) {
    return Status(ErrorCode::kUnavailable, "write failed: " + path);
  }
  return Status::Ok();
}

}  // namespace gred::obs
