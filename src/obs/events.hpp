// Dynamics event log: an audit trail of every Section VI topology
// change and Section V-B range-extension change the controller
// executes. Each entry records what was asked, whether it succeeded,
// how many items migrated, and the installed flow-entry count before
// and after — enough to reconstruct what a reconfiguration actually
// did to the data plane.
//
// Control-plane rate only (a handful of events per churn op), so a
// mutex-guarded vector is the right tool; entries are appended only
// while obs::enabled() is on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gred::obs {

enum class EventKind : std::uint8_t {
  kAddSwitch,
  kRemoveSwitch,
  kAddLink,
  kRemoveLink,
  kExtendRange,
  kRetractRange,
};

const char* event_kind_name(EventKind kind);

struct DynamicsEvent {
  std::uint64_t seq = 0;  ///< assigned by the log, append order
  EventKind kind = EventKind::kAddSwitch;
  bool ok = false;            ///< the operation returned Status Ok
  std::string status;         ///< status message when !ok, else empty
  /// Primary subject: the switch added/removed, the u of a link op,
  /// or the overloaded server of an extension.
  std::uint32_t subject = 0;
  /// Secondary subject: the v of a link op, the delegate server of an
  /// extension; 0 otherwise.
  std::uint32_t peer = 0;
  std::size_t migrated = 0;        ///< items moved by the op
  std::size_t entries_before = 0;  ///< installed flow entries, pre-op
  std::size_t entries_after = 0;   ///< installed flow entries, post-op
  double duration_ms = 0.0;
};

class EventLog {
 public:
  /// Appends (assigning seq) and returns the entry's seq.
  std::uint64_t append(DynamicsEvent ev);

  std::vector<DynamicsEvent> snapshot() const;
  std::size_t size() const;
  void clear();

 private:
  mutable gred::Mutex mu_;
  std::vector<DynamicsEvent> events_ GRED_GUARDED_BY(mu_);
  std::uint64_t next_seq_ GRED_GUARDED_BY(mu_) = 0;
};

/// The process-wide log the controller appends to.
EventLog& event_log();

}  // namespace gred::obs
