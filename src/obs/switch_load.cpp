#include "obs/switch_load.hpp"

#include <algorithm>
#include <cmath>

namespace gred::obs {

SwitchLoadTracker::SwitchLoadTracker(std::size_t switches, double alpha)
    : count_(switches),
      // Degenerate smoothing factors silently freeze (0) or explode
      // (NaN) the EWMA; clamp into (0, 1].
      alpha_(std::isfinite(alpha) ? std::clamp(alpha, 1e-3, 1.0) : 0.5),
      window_(std::make_unique<std::atomic<std::uint64_t>[]>(switches)),
      ewma_(switches, 0.0) {}

std::uint64_t SwitchLoadTracker::roll_window() {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < count_; ++s) {
    // relaxed: the data plane has quiesced when the control plane
    // rolls the window (contract in the header).
    const std::uint64_t n = window_[s].exchange(0, std::memory_order_relaxed);
    total += n;
    ewma_[s] = alpha_ * static_cast<double>(n) + (1.0 - alpha_) * ewma_[s];
  }
  return total;
}

double SwitchLoadTracker::mean_ewma(const std::vector<std::size_t>& over) const {
  if (over.empty()) {
    if (ewma_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : ewma_) sum += v;
    return sum / static_cast<double>(ewma_.size());
  }
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t s : over) {
    if (s < ewma_.size()) {
      sum += ewma_[s];
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double SwitchLoadTracker::max_ewma() const {
  double best = 0.0;
  for (double v : ewma_) best = std::max(best, v);
  return best;
}

void SwitchLoadTracker::ensure_switches(std::size_t switches) {
  if (switches <= count_) return;
  auto grown = std::make_unique<std::atomic<std::uint64_t>[]>(switches);
  for (std::size_t s = 0; s < count_; ++s) {
    // relaxed: control-plane-side copy during growth.
    grown[s].store(window_[s].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  window_ = std::move(grown);
  ewma_.resize(switches, 0.0);
  count_ = switches;
}

void SwitchLoadTracker::reset() {
  for (std::size_t s = 0; s < count_; ++s) {
    // relaxed: control-plane-side reset.
    window_[s].store(0, std::memory_order_relaxed);
  }
  std::fill(ewma_.begin(), ewma_.end(), 0.0);
}

}  // namespace gred::obs
