#include "obs/events.hpp"

namespace gred::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kAddSwitch:
      return "add_switch";
    case EventKind::kRemoveSwitch:
      return "remove_switch";
    case EventKind::kAddLink:
      return "add_link";
    case EventKind::kRemoveLink:
      return "remove_link";
    case EventKind::kExtendRange:
      return "extend_range";
    case EventKind::kRetractRange:
      return "retract_range";
  }
  return "unknown";
}

std::uint64_t EventLog::append(DynamicsEvent ev) {
  gred::MutexLock lock(mu_);
  ev.seq = next_seq_++;
  events_.push_back(std::move(ev));
  return events_.back().seq;
}

std::vector<DynamicsEvent> EventLog::snapshot() const {
  gred::MutexLock lock(mu_);
  return events_;
}

std::size_t EventLog::size() const {
  gred::MutexLock lock(mu_);
  return events_.size();
}

void EventLog::clear() {
  gred::MutexLock lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

EventLog& event_log() {
  static EventLog instance;
  return instance;
}

}  // namespace gred::obs
