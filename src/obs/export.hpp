// Serializes the observability state — metrics registry, route-trace
// ring, dynamics event log — as JSON (the BENCH_*.json house style:
// flat keys, machine-diffable) and as Prometheus text exposition
// (`gred_` prefix, counters/gauges/histograms with le-labelled
// cumulative buckets). Schemas are documented in README.md
// ("Observability output") and DESIGN.md §10.
#pragma once

#include <string>

#include "common/error.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gred::obs {

/// Everything export covers, bundled so callers can export a subset
/// or a test-local instance.
struct ExportSources {
  const Registry* registry = nullptr;
  const RouteTraceRing* trace = nullptr;
  const EventLog* events = nullptr;
};

/// The process-wide registry/ring/log.
ExportSources default_sources();

/// JSON document: {"metrics": {...}, "route_trace": {...},
/// "events": [...]}. Sections whose source pointer is null are
/// omitted. `max_trace_samples` caps the embedded sample array
/// (newest kept); 0 embeds none (summary only).
std::string to_json(const ExportSources& sources,
                    std::size_t max_trace_samples = 64);

/// Prometheus text exposition of the metrics (plus trace/event-log
/// summary gauges when those sources are present).
std::string to_prometheus(const ExportSources& sources);

/// Writes `text` to `path` (kUnavailable on I/O failure).
Status write_text_file(const std::string& path, const std::string& text);

}  // namespace gred::obs
