#include "obs/metrics.hpp"

#include <bit>
#include <cmath>
#include <limits>

namespace gred::obs {

namespace {

double bits_to_double(std::uint64_t b) { return std::bit_cast<double>(b); }
std::uint64_t double_to_bits(double d) { return std::bit_cast<std::uint64_t>(d); }

/// CAS-accumulate into a double stored as bits.
void atomic_add_double(std::atomic<std::uint64_t>& bits, double delta) {
  // relaxed: metric cells are independent tallies read at export time,
  // after the traffic being measured quiesced; the CAS loop only needs
  // this cell's own modification order.
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      cur, double_to_bits(bits_to_double(cur) + delta),
      std::memory_order_relaxed)) {  // relaxed: see above
  }
}

void atomic_min_double(std::atomic<std::uint64_t>& bits, double v) {
  // relaxed: same independent-tally argument as atomic_add_double.
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (bits_to_double(cur) > v &&
         !bits.compare_exchange_weak(
             cur, double_to_bits(v),
             std::memory_order_relaxed)) {  // relaxed: see above
  }
}

void atomic_max_double(std::atomic<std::uint64_t>& bits, double v) {
  // relaxed: same independent-tally argument as atomic_add_double.
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  while (bits_to_double(cur) < v &&
         !bits.compare_exchange_weak(
             cur, double_to_bits(v),
             std::memory_order_relaxed)) {  // relaxed: see above
  }
}

std::atomic<std::size_t> g_next_shard{0};

constexpr std::size_t kUnassignedShard = static_cast<std::size_t>(-1);
thread_local std::size_t t_shard = kUnassignedShard;

}  // namespace

std::size_t this_thread_shard() {
  if (t_shard == kUnassignedShard) {
    // relaxed: a pure ticket counter — each thread only needs a unique
    // value, not any ordering with other memory.
    t_shard =
        g_next_shard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  }
  return t_shard;
}

void pin_this_thread_shard(std::size_t slot) {
  t_shard = slot % kMetricShards;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Slot& s : slots_) {
    // relaxed: slot-order merge of independent tallies; exactness comes
    // from each slot's modification order, not inter-slot ordering.
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  // relaxed: reset races with writers by contract (callers quiesce).
  for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
}

Histogram::Shard::Shard()
    : min_bits(double_to_bits(std::numeric_limits<double>::infinity())),
      max_bits(double_to_bits(-std::numeric_limits<double>::infinity())) {
  // relaxed: construction precedes any concurrent access.
  for (auto& b : bins) b.store(0, std::memory_order_relaxed);
}

void Histogram::record(double v) {
  Shard& sh = shards_[this_thread_shard()];
  // relaxed: independent per-shard tally (see atomic_add_double).
  sh.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sh.sum_bits, v);
  atomic_min_double(sh.min_bits, v);
  atomic_max_double(sh.max_bits, v);

  int exp = 0;
  if (v > 0.0 && std::isfinite(v)) {
    (void)std::frexp(v, &exp);  // v in [2^(exp-1), 2^exp)
  } else {
    exp = kMinExp;  // non-positive / non-finite values clamp to bin 0
  }
  std::size_t bin = 0;
  if (exp > kMinExp) {
    bin = static_cast<std::size_t>(exp - kMinExp);
    if (bin >= kBins) bin = kBins - 1;
  }
  // relaxed: independent per-shard tally (see atomic_add_double).
  sh.bins[bin].fetch_add(1, std::memory_order_relaxed);
}

double Histogram::Snapshot::bin_upper(std::size_t i) {
  return std::ldexp(1.0, kMinExp + 1 + static_cast<int>(i));
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  // Slot-order merge (the block-order reduction discipline).
  // relaxed: snapshots are taken after the measured traffic quiesced;
  // per-cell modification order is all the merge relies on.
  for (const Shard& sh : shards_) {
    out.count += sh.count.load(std::memory_order_relaxed);
    out.sum += bits_to_double(sh.sum_bits.load(std::memory_order_relaxed));
    mn = std::min(mn, bits_to_double(sh.min_bits.load(std::memory_order_relaxed)));
    mx = std::max(mx, bits_to_double(sh.max_bits.load(std::memory_order_relaxed)));
    for (std::size_t i = 0; i < kBins; ++i) {
      out.bins[i] += sh.bins[i].load(std::memory_order_relaxed);
    }
  }
  out.min = out.count > 0 ? mn : 0.0;
  out.max = out.count > 0 ? mx : 0.0;
  return out;
}

void Histogram::reset() {
  // relaxed: reset races with writers by contract (callers quiesce).
  for (Shard& sh : shards_) {
    sh.count.store(0, std::memory_order_relaxed);
    sh.sum_bits.store(double_to_bits(0.0), std::memory_order_relaxed);
    sh.min_bits.store(double_to_bits(std::numeric_limits<double>::infinity()),
                      std::memory_order_relaxed);
    sh.max_bits.store(double_to_bits(-std::numeric_limits<double>::infinity()),
                      std::memory_order_relaxed);
    for (auto& b : sh.bins) b.store(0, std::memory_order_relaxed);
  }
}

Counter& Registry::counter(const std::string& name) {
  gred::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  gred::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  gred::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

Registry::Snapshot Registry::snapshot() const {
  gred::MutexLock lock(mu_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.emplace_back(name, h->snapshot());
  }
  return out;
}

void Registry::reset_values() {
  gred::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace gred::obs
