// Master switch for the gred::obs observability layer.
//
// Every instrumentation site in the library (control-plane phase
// timers, the per-packet route trace, the dynamics event log) is
// guarded by `obs::enabled()`: a single relaxed atomic load plus one
// predictable branch. With the switch off — the default — no metric is
// touched, no sample is written, and the data-plane fast path keeps its
// zero-allocations-per-packet steady state; the bench harness asserts
// exactly that. Flipping the switch on requires no rebuild: it is a
// process-wide runtime flag (set_enabled, or the GRED_OBS environment
// variable read once via init_from_env).
#pragma once

#include <atomic>

namespace gred::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the observability layer is recording. Hot-path guard:
/// relaxed load, no fence, no function call.
inline bool enabled() {
  // relaxed: an independent on/off flag — consumers (trace ring,
  // metrics) do their own synchronization; see set_enabled.
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns the layer on or off at runtime (benches flip it per section).
void set_enabled(bool on);

/// Applies the GRED_OBS environment variable when it is set: any
/// non-empty value other than "0" enables the layer, "0" or empty
/// disables it; when unset the current state is kept. Returns the
/// resulting enabled state. Call once at process start (benches and
/// examples); the library never reads the environment on its own.
bool init_from_env();

}  // namespace gred::obs
