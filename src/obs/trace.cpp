#include "obs/trace.hpp"

namespace gred::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

void RouteTraceRing::enable(std::size_t capacity) {
  // release: quiesce the ring before swapping storage (writers that
  // already saw active==true may still be in flight; enable/disable
  // are control-plane calls made while the data plane is stopped).
  active_.store(false, std::memory_order_release);
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
  // relaxed: counters reset before the release store below publishes
  // them together with the new storage.
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  // release: publishes slots_/mask_/counters to writers that acquire
  // active_ in record().
  active_.store(true, std::memory_order_release);
}

void RouteTraceRing::disable() {
  // release: see enable(); called with the data plane stopped.
  active_.store(false, std::memory_order_release);
  slots_.reset();
  mask_ = 0;
}

void RouteTraceRing::record(RouteTraceSample sample) {
  // acquire: pairs with enable()'s release so slots_/mask_ are visible.
  if (!active_.load(std::memory_order_acquire)) return;
  // relaxed: slot claim only needs a unique ticket; slot contents are
  // ordered by the per-slot busy/valid flags below.
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Claim the slot; if a lapped writer still holds it, drop rather
  // than tear the sample.
  // acquire: pairs with the release store of busy=false so this writer
  // sees the previous writer's completed sample fields.
  if (slot.busy.exchange(true, std::memory_order_acquire)) {
    // relaxed: standalone statistic.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sample.seq = seq;
  slot.sample = sample;
  // release: publish the sample fields before marking the slot
  // readable / reclaimable.
  slot.valid.store(true, std::memory_order_release);
  slot.busy.store(false, std::memory_order_release);
}

std::vector<RouteTraceSample> RouteTraceRing::snapshot() const {
  std::vector<RouteTraceSample> out;
  if (!slots_) return out;
  const std::size_t cap = mask_ + 1;
  out.reserve(cap);
  // Oldest-first: the slot the head would overwrite next is the oldest.
  // acquire: order the slot scans after the head read.
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[(head + i) & mask_];
    // acquire: pair with record()'s release stores so a slot observed
    // quiescent-and-valid has fully written sample fields.
    if (slot.busy.load(std::memory_order_acquire)) continue;
    if (!slot.valid.load(std::memory_order_acquire)) continue;
    out.push_back(slot.sample);
  }
  return out;
}

RouteTraceRing& route_trace() {
  static RouteTraceRing instance;
  return instance;
}

}  // namespace gred::obs
