#include "obs/trace.hpp"

namespace gred::obs {

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

void RouteTraceRing::enable(std::size_t capacity) {
  active_.store(false, std::memory_order_release);
  const std::size_t cap = round_up_pow2(capacity < 2 ? 2 : capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
  head_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_release);
}

void RouteTraceRing::disable() {
  active_.store(false, std::memory_order_release);
  slots_.reset();
  mask_ = 0;
}

void RouteTraceRing::record(RouteTraceSample sample) {
  if (!active_.load(std::memory_order_acquire)) return;
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq & mask_];
  // Claim the slot; if a lapped writer still holds it, drop rather
  // than tear the sample.
  if (slot.busy.exchange(true, std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sample.seq = seq;
  slot.sample = sample;
  slot.valid.store(true, std::memory_order_release);
  slot.busy.store(false, std::memory_order_release);
}

std::vector<RouteTraceSample> RouteTraceRing::snapshot() const {
  std::vector<RouteTraceSample> out;
  if (!slots_) return out;
  const std::size_t cap = mask_ + 1;
  out.reserve(cap);
  // Oldest-first: the slot the head would overwrite next is the oldest.
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[(head + i) & mask_];
    if (slot.busy.load(std::memory_order_acquire)) continue;
    if (!slot.valid.load(std::memory_order_acquire)) continue;
    out.push_back(slot.sample);
  }
  return out;
}

RouteTraceRing& route_trace() {
  static RouteTraceRing instance;
  return instance;
}

}  // namespace gred::obs
