// Scoped wall-clock timer for control-plane phases. When obs is
// enabled at construction, the destructor records the elapsed
// milliseconds into the named histogram of the process registry and
// bumps a matching `<name>.runs` counter; when disabled, construction
// is one relaxed load and the destructor does nothing.
//
// Phase timers wrap whole control-plane phases (APSP, MDS embed, CVT,
// DT build, install) — milliseconds of work each — so the
// registration lookup on the enabled path is noise, not hot-path cost.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace gred::obs {

class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(const char* name)
      : name_(enabled() ? name : nullptr) {
    if (name_ != nullptr) start_ = Clock::now();
  }
  ~ScopedPhaseTimer() {
    if (name_ == nullptr) return;
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - start_)
            .count();
    Registry& reg = registry();
    reg.histogram(std::string("control.phase.") + name_ + ".ms").record(ms);
    reg.counter(std::string("control.phase.") + name_ + ".runs").add();
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  const char* name_;  ///< nullptr when obs was off at construction
  Clock::time_point start_{};
};

}  // namespace gred::obs
