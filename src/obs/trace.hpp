// Per-packet route-trace ring buffer. A fixed-capacity, preallocated
// ring that the data plane writes one POD sample into per routed
// packet when tracing is enabled. Recording is lock-free and
// allocation-free: writers claim a slot with an atomic head
// fetch_add, then take a per-slot busy flag with exchange; a writer
// that lands on a slot still being written by a lapped writer drops
// its sample (counted) instead of tearing the slot. Readers snapshot
// only quiescent slots, so a snapshot never observes a half-written
// sample.
//
// The ring is sized at enable() time and freed at disable(); when
// disabled (the default) the data plane's only cost is the
// obs::enabled() branch it already pays.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.hpp"

namespace gred::obs {

/// One routed packet, as seen at the end of SdenNetwork::route /
/// inject. POD on purpose: slot writes are field stores, no
/// allocation, no destructor.
struct RouteTraceSample {
  std::uint64_t seq = 0;       ///< global route sequence number
  std::uint32_t ingress = 0;   ///< ingress switch id
  std::uint32_t egress = 0;    ///< last switch on the walked path
  std::uint32_t hops = 0;      ///< physical link traversals
  std::uint8_t type = 0;       ///< sden::PacketType as integer
  bool found = false;          ///< retrieval located the payload
  bool ok = false;             ///< route status was Ok
  double path_cost = 0.0;      ///< sum of link weights on the path
};

class RouteTraceRing {
 public:
  /// Allocates the ring (capacity rounded up to a power of two,
  /// minimum 2) and starts accepting samples. Idempotent per size:
  /// re-enabling reallocates and resets seq/dropped.
  void enable(std::size_t capacity);
  /// Stops accepting samples and frees the ring.
  void disable();
  // acquire: pairs with enable()'s release store so a reader that sees
  // active==true also sees the allocated slots_/mask_.
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Records one sample (sample.seq is assigned here). No-op when the
  /// ring is not active. Never allocates, never blocks; may drop the
  /// sample under writer collision (see dropped()).
  GRED_HOT_PATH void record(RouteTraceSample sample);

  /// Samples currently in the ring, oldest first, skipping slots that
  /// are mid-write. Not linearizable with concurrent writers — meant
  /// to be read after traffic quiesces or as a best-effort peek.
  std::vector<RouteTraceSample> snapshot() const;

  /// Total samples offered to record() while active.
  std::uint64_t recorded() const {
    // relaxed: standalone statistic; no data is published through it.
    return head_.load(std::memory_order_relaxed);
  }
  /// Samples dropped because the target slot was busy.
  std::uint64_t dropped() const {
    // relaxed: standalone statistic; no data is published through it.
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return mask_ == 0 ? 0 : mask_ + 1; }

 private:
  struct Slot {
    std::atomic<bool> busy{false};
    std::atomic<bool> valid{false};
    RouteTraceSample sample;
  };

  std::atomic<bool> active_{false};
  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = 0;  ///< capacity - 1 (capacity is a power of two)
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// The process-wide ring the sden data plane records into.
RouteTraceRing& route_trace();

}  // namespace gred::obs
