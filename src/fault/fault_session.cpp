#include "fault/fault_session.hpp"

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace gred::fault {

FaultSession::FaultSession(core::GredSystem& system, FaultPlan plan)
    : system_(&system), plan_(std::move(plan)) {
  state_.seed = plan_.options().seed;
  system_->network().set_fault_state(&state_);
}

FaultSession::~FaultSession() {
  system_->network().set_fault_state(nullptr);
}

Result<std::size_t> FaultSession::advance(std::size_t now) {
  const std::vector<FaultEvent>& events = plan_.events();
  std::size_t applied = 0;
  while (true) {
    const bool can_inject =
        next_inject_ < events.size() && events[next_inject_].at_event <= now;
    const bool can_repair =
        next_repair_ < events.size() && events[next_repair_].repair_at <= now;
    if (!can_inject && !can_repair) break;
    const bool do_inject =
        can_inject &&
        (!can_repair ||
         events[next_inject_].at_event <= events[next_repair_].repair_at);
    if (do_inject) {
      inject(events[next_inject_]);
      ++next_inject_;
    } else {
      Status repaired = repair(events[next_repair_]);
      if (!repaired.ok()) return repaired.error();
      ++next_repair_;
    }
    ++applied;
  }
  return applied;
}

Result<std::size_t> FaultSession::finish() {
  return advance(std::numeric_limits<std::size_t>::max());
}

void FaultSession::inject(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kSwitchCrash:
      state_.set_switch_down(event.subject, true);
      break;
    case FaultKind::kLinkDown:
      state_.set_link_drop(event.subject, event.peer, 1.0);
      break;
    case FaultKind::kLinkFlaky:
      state_.set_link_drop(event.subject, event.peer,
                           event.drop_probability);
      break;
  }
  if (obs::enabled()) {
    static obs::Counter& injected =
        obs::registry().counter("fault.injected");
    injected.add();
  }
}

Status FaultSession::repair(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kSwitchCrash: {
      // The crash destroyed the switch's storage: wipe its servers
      // before the controller tears it down, so remove_switch's
      // graceful orphan rescue has nothing to save and the data is
      // genuinely lost unless replicas exist elsewhere.
      for (const topology::ServerId sid :
           system_->network().description().servers_at(event.subject)) {
        sden::ServerNode& server = system_->network().server(sid);
        std::vector<std::string> ids;
        ids.reserve(server.item_count());
        for (const auto& [id, payload] : server.items()) ids.push_back(id);
        for (const std::string& id : ids) server.erase(id);
        items_wiped_ += ids.size();
      }
      Status removed = system_->remove_switch(event.subject);
      if (!removed.ok()) return removed;
      state_.set_switch_down(event.subject, false);
      break;
    }
    case FaultKind::kLinkDown: {
      Status removed = system_->remove_link(event.subject, event.peer);
      if (!removed.ok()) return removed;
      state_.clear_link(event.subject, event.peer);
      break;
    }
    case FaultKind::kLinkFlaky:
      // Transient loss subsides on its own; the topology is intact.
      state_.clear_link(event.subject, event.peer);
      break;
  }
  if (obs::enabled()) {
    static obs::Counter& repaired =
        obs::registry().counter("fault.repaired");
    repaired.add();
  }
  return Status::Ok();
}

}  // namespace gred::fault
