#include "fault/fault_session.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sden/hot_key_cache.hpp"

namespace gred::fault {

FaultSession::FaultSession(core::GredSystem& system, FaultPlan plan)
    : system_(&system), plan_(std::move(plan)) {
  state_.seed = plan_.options().seed;
  system_->network().set_fault_state(&state_);
}

FaultSession::~FaultSession() {
  system_->network().set_fault_state(nullptr);
}

Result<std::size_t> FaultSession::advance(std::size_t now) {
  const std::vector<FaultEvent>& events = plan_.events();
  std::size_t applied = 0;
  while (true) {
    const bool can_inject =
        next_inject_ < events.size() && events[next_inject_].at_event <= now;
    const bool can_repair =
        next_repair_ < events.size() && events[next_repair_].repair_at <= now;
    if (!can_inject && !can_repair) break;
    const bool do_inject =
        can_inject &&
        (!can_repair ||
         events[next_inject_].at_event <= events[next_repair_].repair_at);
    std::size_t acted_at = 0;
    if (do_inject) {
      acted_at = events[next_inject_].at_event;
      inject(events[next_inject_]);
      ++next_inject_;
    } else {
      acted_at = events[next_repair_].repair_at;
      Status repaired = repair(events[next_repair_]);
      if (!repaired.ok()) return repaired.error();
      ++next_repair_;
    }
    ++applied;
    // Recovery accounting samples availability at every state change,
    // stamped with the action's own event-clock time.
    if (track_recovery_) scan_recovery(acted_at);
  }
  return applied;
}

Result<std::size_t> FaultSession::finish() {
  return advance(std::numeric_limits<std::size_t>::max());
}

void FaultSession::inject(const FaultEvent& event) {
  bool hard = true;
  switch (event.kind) {
    case FaultKind::kSwitchCrash:
      state_.set_switch_down(event.subject, true);
      break;
    case FaultKind::kLinkDown:
      state_.set_link_drop(event.subject, event.peer, 1.0);
      break;
    case FaultKind::kLinkFlaky:
      state_.set_link_drop(event.subject, event.peer,
                           event.drop_probability);
      hard = false;
      break;
    case FaultKind::kRegionKill:
      // The whole region dies in one timeline step — the correlated
      // analogue of kSwitchCrash.
      for (const topology::SwitchId m : event.members) {
        state_.set_switch_down(m, true);
      }
      break;
    case FaultKind::kPartition:
      // Every link crossing the cut goes hard-down together.
      for (const auto& [u, v] : event.cut_links) {
        state_.set_link_drop(u, v, 1.0);
      }
      break;
  }
  // A hard fault breaks the hot-key cache's coherence contract: a
  // crash destroys the cached holder's data, and a hard link-down
  // precedes a repair that migrates it. Without this bump, a cached
  // pre-crash answer keeps serving a payload whose only copy just
  // died, masking the outage (and corrupting RPO accounting). Flaky
  // links keep data intact and reachable, so they don't invalidate.
  if (hard) {
    if (sden::HotKeyCache* cache = system_->network().hot_key_cache()) {
      cache->invalidate_all();
    }
  }
  if (obs::enabled()) {
    static obs::Counter& injected =
        obs::registry().counter("fault.injected");
    injected.add();
  }
}

namespace {

/// Erases everything stored on `sw`'s servers — the copies a crash
/// physically destroyed — so the controller teardown's orphan rescue
/// has nothing to save. Returns the number of items wiped.
std::size_t wipe_switch_storage(core::GredSystem& system,
                                topology::SwitchId sw) {
  std::size_t wiped = 0;
  for (const topology::ServerId sid :
       system.network().description().servers_at(sw)) {
    sden::ServerNode& server = system.network().server(sid);
    std::vector<std::string> ids;
    ids.reserve(server.item_count());
    for (const auto& [id, payload] : server.items()) ids.push_back(id);
    for (const std::string& id : ids) server.erase(id);
    wiped += ids.size();
  }
  return wiped;
}

}  // namespace

Status FaultSession::repair(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kSwitchCrash: {
      // The crash destroyed the switch's storage: wipe its servers
      // before the controller tears it down, so remove_switch's
      // graceful orphan rescue has nothing to save and the data is
      // genuinely lost unless replicas exist elsewhere.
      items_wiped_ += wipe_switch_storage(*system_, event.subject);
      Status removed = system_->remove_switch(event.subject);
      if (!removed.ok()) return removed;
      state_.set_switch_down(event.subject, false);
      break;
    }
    case FaultKind::kLinkDown: {
      Status removed = system_->remove_link(event.subject, event.peer);
      if (!removed.ok()) return removed;
      state_.clear_link(event.subject, event.peer);
      break;
    }
    case FaultKind::kLinkFlaky:
      // Transient loss subsides on its own; the topology is intact.
      state_.clear_link(event.subject, event.peer);
      break;
    case FaultKind::kRegionKill: {
      // Every member crashed at inject time, so wipe ALL their storage
      // before any teardown: a mid-repair restore_replication pass
      // must never find a "surviving" copy on a switch that is merely
      // later in the removal order — that would resurrect destroyed
      // data. Then replay the generator's removal order, every prefix
      // of which keeps the survivors connected.
      for (const topology::SwitchId m : event.members) {
        items_wiped_ += wipe_switch_storage(*system_, m);
      }
      for (const topology::SwitchId m : event.members) {
        Status removed = system_->remove_switch(m);
        if (!removed.ok()) return removed;
        state_.set_switch_down(m, false);
      }
      break;
    }
    case FaultKind::kPartition:
      // The cut heals: links come back as one correlated restore. The
      // topology was never changed, so there is no controller surgery
      // — just the data plane clearing.
      for (const auto& [u, v] : event.cut_links) {
        state_.clear_link(u, v);
      }
      break;
  }
  if (obs::enabled()) {
    static obs::Counter& repaired =
        obs::registry().counter("fault.repaired");
    repaired.add();
  }
  return Status::Ok();
}

void FaultSession::enable_recovery_tracking() {
  track_recovery_ = true;
  scan_recovery(0);  // baseline: everything placed so far, healthy
}

void FaultSession::scan_recovery(std::size_t now) {
  const auto& net = system_->network();
  const auto& desc = net.description();
  const std::size_t n = desc.switch_count();

  // Reachable = up and inside the largest connected component of the
  // up topology with hard-down links removed (what a surviving ingress
  // can actually route in). Partitions make this non-trivial.
  std::vector<std::uint8_t> up(n, 0);
  for (topology::SwitchId s = 0; s < n; ++s) {
    up[s] = state_.switch_is_down(s) ? 0 : 1;
  }
  std::vector<std::uint32_t> comp(n, 0);  // 0 = unvisited
  std::uint32_t next_comp = 0;
  std::uint32_t best_comp = 0;
  std::size_t best_size = 0;
  std::vector<topology::SwitchId> stack;
  for (topology::SwitchId s = 0; s < n; ++s) {
    if (up[s] == 0 || comp[s] != 0) continue;
    ++next_comp;
    comp[s] = next_comp;
    stack.assign(1, s);
    std::size_t size = 0;
    while (!stack.empty()) {
      const topology::SwitchId u = stack.back();
      stack.pop_back();
      ++size;
      for (const graph::EdgeTo& e : desc.switches().neighbors(u)) {
        const auto v = static_cast<topology::SwitchId>(e.to);
        if (up[v] == 0 || comp[v] != 0) continue;
        if (state_.link_drop_probability(u, v) >= 1.0) continue;
        comp[v] = next_comp;
        stack.push_back(v);
      }
    }
    if (size > best_size) {
      best_size = size;
      best_comp = next_comp;
    }
  }

  // Count reachable copies per item over attached servers only (a
  // removed switch keeps no attached servers, so teardown naturally
  // drops its storage from the census).
  std::map<std::string, std::size_t> reachable;
  for (topology::SwitchId s = 0; s < n; ++s) {
    const bool ok = up[s] != 0 && comp[s] == best_comp;
    for (const topology::ServerId sid : desc.servers_at(s)) {
      for (const auto& [id, payload] : net.server(sid).items()) {
        auto [it, inserted] = reachable.emplace(id, 0);
        if (ok) ++it->second;
        (void)inserted;
      }
    }
  }
  for (const auto& [id, copies] : reachable) {
    (void)copies;
    recovery_.emplace(id, RecoveryRecord{});
  }

  const std::size_t target =
      std::min(system_->controller().replication_factor(),
               system_->controller().space().participants().size());
  for (auto& [id, rec] : recovery_) {
    const auto it = reachable.find(id);
    const std::size_t copies = it == reachable.end() ? 0 : it->second;
    rec.lost = copies == 0;
    if (copies == 0) {
      if (rec.first_unavailable == RecoveryRecord::kNever) {
        rec.first_unavailable = now;
      }
      rec.degraded = true;
    } else if (copies < target) {
      rec.degraded = true;
    } else if (rec.degraded) {
      rec.restored_at = now;
      rec.degraded = false;
    }
  }
}

std::size_t FaultSession::items_ever_unavailable() const {
  std::size_t count = 0;
  for (const auto& [id, rec] : recovery_) {
    if (rec.first_unavailable != RecoveryRecord::kNever) ++count;
  }
  return count;
}

std::size_t FaultSession::items_lost() const {
  std::size_t count = 0;
  for (const auto& [id, rec] : recovery_) {
    if (rec.lost) ++count;
  }
  return count;
}

std::size_t FaultSession::max_recovery_time() const {
  std::size_t worst = 0;
  for (const auto& [id, rec] : recovery_) {
    if (rec.first_unavailable == RecoveryRecord::kNever) continue;
    if (rec.restored_at == RecoveryRecord::kNever) continue;
    if (rec.restored_at > rec.first_unavailable) {
      worst = std::max(worst, rec.restored_at - rec.first_unavailable);
    }
  }
  return worst;
}

}  // namespace gred::fault
