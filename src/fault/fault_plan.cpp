#include "fault/fault_plan.hpp"

#include <algorithm>
#include <utility>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gred::fault {
namespace {

/// Candidate draws per event before degrading to a weaker fault kind
/// (crash -> link down -> flaky). Bounds the search on topologies where
/// most switches are articulation points.
constexpr std::size_t kCandidateTries = 32;

/// True when every alive switch is reachable from the first alive one
/// over alive switches only — the invariant each permanent failure must
/// preserve so routing (from any surviving ingress) and the controller
/// repair both stay well-defined.
bool alive_connected(const graph::Graph& g,
                     const std::vector<std::uint8_t>& alive) {
  const std::size_t n = g.node_count();
  std::size_t start = n;
  std::size_t alive_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0) {
      if (start == n) start = i;
      ++alive_count;
    }
  }
  if (alive_count <= 1) return alive_count == 1;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<graph::NodeId> stack{start};
  seen[start] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const graph::NodeId u = stack.back();
    stack.pop_back();
    for (const graph::EdgeTo& e : g.neighbors(u)) {
      if (alive[e.to] == 0 || seen[e.to] != 0) continue;
      seen[e.to] = 1;
      ++visited;
      stack.push_back(e.to);
    }
  }
  return visited == alive_count;
}

/// A live edge of the probe graph, uniform over edges, or nullopt when
/// none remain.
bool pick_edge(const graph::Graph& probe, Rng& rng, graph::NodeId& u,
               graph::NodeId& v) {
  const auto edges = probe.edges();
  if (edges.empty()) return false;
  const auto& e = edges[rng.next_below(edges.size())];
  u = e.first;
  v = e.second;
  return true;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSwitchCrash:
      return "switch-crash";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkFlaky:
      return "link-flaky";
  }
  return "unknown";
}

std::size_t FaultPlan::switch_crashes() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSwitchCrash) ++n;
  }
  return n;
}

Result<FaultPlan> FaultPlan::generate(const topology::EdgeNetwork& net,
                                      const FaultPlanOptions& options) {
  if (options.schedule_length <= options.stale_window) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: schedule_length must exceed stale_window");
  }
  const double total_weight = options.crash_weight +
                              options.link_down_weight +
                              options.flaky_weight;
  if (options.crash_weight < 0.0 || options.link_down_weight < 0.0 ||
      options.flaky_weight < 0.0 || total_weight <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: kind weights must be non-negative with a "
                 "positive sum");
  }
  if (options.flaky_drop_probability <= 0.0 ||
      options.flaky_drop_probability > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: flaky_drop_probability must be in (0, 1]");
  }
  const std::size_t n = net.switch_count();
  if (n < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: need at least two switches");
  }

  FaultPlan plan;
  plan.options_ = options;
  if (options.event_count == 0) return plan;

  Rng rng(options.seed);

  // Failure times ascending; every repair then fits the timeline and
  // repairs apply in failure order (constant window).
  std::vector<std::size_t> times(options.event_count);
  const std::size_t horizon = options.schedule_length - options.stale_window;
  for (std::size_t& t : times) t = rng.next_below(horizon);
  std::sort(times.begin(), times.end());

  // Sequential probe: the topology after every permanent failure
  // planned so far. Candidates are validated against it, so the
  // controller repairs stay applicable when replayed in order.
  graph::Graph probe = net.switches();
  std::vector<std::uint8_t> alive(n, 1);

  for (const std::size_t at : times) {
    // Weighted kind draw; degraded below when no valid candidate
    // exists (flaky always has one while any edge is live).
    const double r = rng.next_double() * total_weight;
    FaultKind kind = FaultKind::kLinkFlaky;
    if (r < options.crash_weight) {
      kind = FaultKind::kSwitchCrash;
    } else if (r < options.crash_weight + options.link_down_weight) {
      kind = FaultKind::kLinkDown;
    }

    FaultEvent event;
    event.at_event = at;
    event.repair_at = at + options.stale_window;
    bool placed = false;

    if (kind == FaultKind::kSwitchCrash) {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        const graph::NodeId s = rng.next_below(n);
        if (alive[s] == 0) continue;
        alive[s] = 0;
        if (alive_connected(probe, alive)) {
          probe.remove_edges_of(s);
          event.kind = FaultKind::kSwitchCrash;
          event.subject = s;
          placed = true;
        } else {
          alive[s] = 1;
        }
      }
      if (!placed) kind = FaultKind::kLinkDown;
    }

    if (kind == FaultKind::kLinkDown && !placed) {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        graph::NodeId u = 0;
        graph::NodeId v = 0;
        if (!pick_edge(probe, rng, u, v)) break;
        const auto weight = probe.edge_weight(u, v);
        if (!weight.ok()) break;
        probe.remove_edge(u, v);
        if (alive_connected(probe, alive)) {
          event.kind = FaultKind::kLinkDown;
          event.subject = u;
          event.peer = v;
          placed = true;
        } else {
          (void)probe.add_edge(u, v, weight.value());
        }
      }
      if (!placed) kind = FaultKind::kLinkFlaky;
    }

    if (kind == FaultKind::kLinkFlaky && !placed) {
      graph::NodeId u = 0;
      graph::NodeId v = 0;
      if (pick_edge(probe, rng, u, v)) {
        event.kind = FaultKind::kLinkFlaky;
        event.subject = u;
        event.peer = v;
        event.drop_probability = options.flaky_drop_probability;
        placed = true;
      }
    }

    // No candidate of any kind (the probe ran out of edges): the
    // remaining timeline cannot host more failures.
    if (!placed) break;
    plan.events_.push_back(event);
  }
  return plan;
}

}  // namespace gred::fault
