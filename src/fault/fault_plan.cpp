#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gred::fault {
namespace {

/// Candidate draws per event before degrading to a weaker fault kind
/// (crash -> link down -> flaky). Bounds the search on topologies where
/// most switches are articulation points.
constexpr std::size_t kCandidateTries = 32;

/// True when every alive switch is reachable from the first alive one
/// over alive switches only — the invariant each permanent failure must
/// preserve so routing (from any surviving ingress) and the controller
/// repair both stay well-defined.
bool alive_connected(const graph::Graph& g,
                     const std::vector<std::uint8_t>& alive) {
  const std::size_t n = g.node_count();
  std::size_t start = n;
  std::size_t alive_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (alive[i] != 0) {
      if (start == n) start = i;
      ++alive_count;
    }
  }
  if (alive_count <= 1) return alive_count == 1;
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<graph::NodeId> stack{start};
  seen[start] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const graph::NodeId u = stack.back();
    stack.pop_back();
    for (const graph::EdgeTo& e : g.neighbors(u)) {
      if (alive[e.to] == 0 || seen[e.to] != 0) continue;
      seen[e.to] = 1;
      ++visited;
      stack.push_back(e.to);
    }
  }
  return visited == alive_count;
}

/// A live edge of the probe graph, uniform over edges, or nullopt when
/// none remain.
bool pick_edge(const graph::Graph& probe, Rng& rng, graph::NodeId& u,
               graph::NodeId& v) {
  const auto edges = probe.edges();
  if (edges.empty()) return false;
  const auto& e = edges[rng.next_below(edges.size())];
  u = e.first;
  v = e.second;
  return true;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSwitchCrash:
      return "switch-crash";
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kLinkFlaky:
      return "link-flaky";
    case FaultKind::kRegionKill:
      return "region-kill";
    case FaultKind::kPartition:
      return "partition";
  }
  return "unknown";
}

std::size_t FaultPlan::switch_crashes() const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == FaultKind::kSwitchCrash) ++n;
  }
  return n;
}

std::size_t FaultPlan::count(FaultKind kind) const {
  std::size_t n = 0;
  for (const FaultEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

Result<FaultPlan> FaultPlan::generate(const topology::EdgeNetwork& net,
                                      const FaultPlanOptions& options) {
  if (options.schedule_length <= options.stale_window) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: schedule_length must exceed stale_window");
  }
  const double total_weight = options.crash_weight +
                              options.link_down_weight +
                              options.flaky_weight;
  if (options.crash_weight < 0.0 || options.link_down_weight < 0.0 ||
      options.flaky_weight < 0.0 || total_weight <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: kind weights must be non-negative with a "
                 "positive sum");
  }
  if (options.flaky_drop_probability <= 0.0 ||
      options.flaky_drop_probability > 1.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: flaky_drop_probability must be in (0, 1]");
  }
  const std::size_t n = net.switch_count();
  if (n < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "FaultPlan: need at least two switches");
  }

  FaultPlan plan;
  plan.options_ = options;
  if (options.event_count == 0) return plan;

  Rng rng(options.seed);

  // Failure times ascending; every repair then fits the timeline and
  // repairs apply in failure order (constant window).
  std::vector<std::size_t> times(options.event_count);
  const std::size_t horizon = options.schedule_length - options.stale_window;
  for (std::size_t& t : times) t = rng.next_below(horizon);
  std::sort(times.begin(), times.end());

  // Sequential probe: the topology after every permanent failure
  // planned so far. Candidates are validated against it, so the
  // controller repairs stay applicable when replayed in order.
  graph::Graph probe = net.switches();
  std::vector<std::uint8_t> alive(n, 1);

  for (const std::size_t at : times) {
    // Weighted kind draw; degraded below when no valid candidate
    // exists (flaky always has one while any edge is live).
    const double r = rng.next_double() * total_weight;
    FaultKind kind = FaultKind::kLinkFlaky;
    if (r < options.crash_weight) {
      kind = FaultKind::kSwitchCrash;
    } else if (r < options.crash_weight + options.link_down_weight) {
      kind = FaultKind::kLinkDown;
    }

    FaultEvent event;
    event.at_event = at;
    event.repair_at = at + options.stale_window;
    bool placed = false;

    if (kind == FaultKind::kSwitchCrash) {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        const graph::NodeId s = rng.next_below(n);
        if (alive[s] == 0) continue;
        alive[s] = 0;
        if (alive_connected(probe, alive)) {
          probe.remove_edges_of(s);
          event.kind = FaultKind::kSwitchCrash;
          event.subject = s;
          placed = true;
        } else {
          alive[s] = 1;
        }
      }
      if (!placed) kind = FaultKind::kLinkDown;
    }

    if (kind == FaultKind::kLinkDown && !placed) {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        graph::NodeId u = 0;
        graph::NodeId v = 0;
        if (!pick_edge(probe, rng, u, v)) break;
        const auto weight = probe.edge_weight(u, v);
        if (!weight.ok()) break;
        probe.remove_edge(u, v);
        if (alive_connected(probe, alive)) {
          event.kind = FaultKind::kLinkDown;
          event.subject = u;
          event.peer = v;
          placed = true;
        } else {
          (void)probe.add_edge(u, v, weight.value());
        }
      }
      if (!placed) kind = FaultKind::kLinkFlaky;
    }

    if (kind == FaultKind::kLinkFlaky && !placed) {
      graph::NodeId u = 0;
      graph::NodeId v = 0;
      if (pick_edge(probe, rng, u, v)) {
        event.kind = FaultKind::kLinkFlaky;
        event.subject = u;
        event.peer = v;
        event.drop_probability = options.flaky_drop_probability;
        placed = true;
      }
    }

    // No candidate of any kind (the probe ran out of edges): the
    // remaining timeline cannot host more failures.
    if (!placed) break;
    plan.events_.push_back(event);
  }
  return plan;
}

namespace {

/// Grid-cell label of `p` on a g x g partition of the unit square,
/// clamped at the borders (same formula as the hotspot workload's
/// region_of, so kill boxes line up with replication region labels).
std::size_t cell_of(const geometry::Point2D& p, std::size_t g) {
  const auto clamp_axis = [g](double v) {
    if (!(v > 0.0)) return std::size_t{0};  // also catches NaN
    const std::size_t cell =
        static_cast<std::size_t>(v * static_cast<double>(g));
    return cell >= g ? g - 1 : cell;
  };
  return clamp_axis(p.x) + g * clamp_axis(p.y);
}

}  // namespace

Result<FaultPlan> FaultPlan::generate_disasters(
    const topology::EdgeNetwork& net,
    const std::vector<topology::SwitchId>& participants,
    const std::vector<geometry::Point2D>& positions,
    const DisasterPlanOptions& options) {
  const std::size_t window =
      std::max(options.stale_window, options.partition_length);
  if (options.schedule_length <= window) {
    return Error(ErrorCode::kInvalidArgument,
                 "generate_disasters: schedule_length must exceed the "
                 "repair windows");
  }
  if (participants.size() != positions.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "generate_disasters: participants/positions size mismatch");
  }
  if (options.region_shape == RegionShape::kDisc &&
      options.region_radius <= 0.0) {
    return Error(ErrorCode::kInvalidArgument,
                 "generate_disasters: region_radius must be positive");
  }
  if (options.region_shape == RegionShape::kBox && options.box_grid == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "generate_disasters: box_grid must be >= 1");
  }
  const std::size_t n = net.switch_count();
  if (n < 2) {
    return Error(ErrorCode::kInvalidArgument,
                 "generate_disasters: need at least two switches");
  }
  for (const topology::SwitchId sw : participants) {
    if (sw >= n) {
      return Error(ErrorCode::kInvalidArgument,
                   "generate_disasters: participant out of range");
    }
  }

  FaultPlan plan;
  // Carry seed / windows in the base options so FaultSession derives
  // the same data-plane drop seed from a disaster plan.
  plan.options_.seed = options.seed;
  plan.options_.stale_window = options.stale_window;
  plan.options_.schedule_length = options.schedule_length;
  plan.options_.event_count = options.region_kills + options.partitions;
  if (plan.options_.event_count == 0) return plan;

  Rng rng(options.seed);

  std::vector<std::size_t> times(plan.options_.event_count);
  const std::size_t horizon = options.schedule_length - window;
  for (std::size_t& t : times) t = rng.next_below(horizon);
  std::sort(times.begin(), times.end());

  std::vector<FaultKind> kinds;
  kinds.reserve(plan.options_.event_count);
  kinds.insert(kinds.end(), options.region_kills, FaultKind::kRegionKill);
  kinds.insert(kinds.end(), options.partitions, FaultKind::kPartition);
  rng.shuffle(kinds);

  // Sequential probe as in generate(): region kills permanently remove
  // their members, so later disasters validate against the survivors.
  graph::Graph probe = net.switches();
  std::vector<std::uint8_t> alive(n, 1);

  // Keeps repair_at non-decreasing across the mixed stale/partition
  // windows, so FaultSession's in-order repair cursor never stalls a
  // due repair behind an earlier event with a longer window.
  std::size_t last_repair = 0;

  for (std::size_t ei = 0; ei < times.size(); ++ei) {
    const std::size_t at = times[ei];
    FaultEvent event;
    event.kind = kinds[ei];
    event.at_event = at;
    bool placed = false;

    if (kinds[ei] == FaultKind::kRegionKill) {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        const std::size_t a = rng.next_below(participants.size());
        if (alive[participants[a]] == 0) continue;
        // Footprint: every alive positioned switch in the disc / box
        // anchored at participant `a`.
        std::vector<topology::SwitchId> members;
        for (std::size_t i = 0; i < participants.size(); ++i) {
          if (alive[participants[i]] == 0) continue;
          bool inside = false;
          if (options.region_shape == RegionShape::kDisc) {
            const double dx = positions[i].x - positions[a].x;
            const double dy = positions[i].y - positions[a].y;
            inside = dx * dx + dy * dy <=
                     options.region_radius * options.region_radius;
          } else {
            inside = cell_of(positions[i], options.box_grid) ==
                     cell_of(positions[a], options.box_grid);
          }
          if (inside) members.push_back(participants[i]);
        }
        std::size_t alive_total = 0;
        for (const std::uint8_t flag : alive) alive_total += flag;
        if (members.empty() || members.size() + 1 > alive_total) continue;
        for (const topology::SwitchId m : members) alive[m] = 0;
        if (!alive_connected(probe, alive)) {
          for (const topology::SwitchId m : members) alive[m] = 1;
          continue;
        }
        // The survivors stay connected with the whole region gone, so
        // a removal order whose every prefix is safe exists: any
        // member whose removal leaves a pure-member component can be
        // deferred behind that component's members. Greedy search,
        // re-validated step by step against the probe.
        for (const topology::SwitchId m : members) alive[m] = 1;
        std::vector<topology::SwitchId> order;
        std::vector<topology::SwitchId> remaining = members;
        std::sort(remaining.begin(), remaining.end());
        bool stuck = false;
        while (!remaining.empty() && !stuck) {
          stuck = true;
          for (std::size_t i = 0; i < remaining.size(); ++i) {
            const topology::SwitchId m = remaining[i];
            alive[m] = 0;
            if (alive_connected(probe, alive)) {
              order.push_back(m);
              remaining.erase(remaining.begin() +
                              static_cast<std::ptrdiff_t>(i));
              stuck = false;
              break;
            }
            alive[m] = 1;
          }
        }
        if (stuck) {
          for (const topology::SwitchId m : order) alive[m] = 1;
          continue;
        }
        for (const topology::SwitchId m : order) probe.remove_edges_of(m);
        event.members = std::move(order);
        event.center = positions[a];
        event.radius = options.region_shape == RegionShape::kDisc
                           ? options.region_radius
                           : 0.0;
        event.repair_at = at + options.stale_window;
        placed = true;
      }
    } else {
      for (std::size_t attempt = 0; attempt < kCandidateTries && !placed;
           ++attempt) {
        const std::size_t a = rng.next_below(participants.size());
        if (alive[participants[a]] == 0) continue;
        const geometry::Point2D c = positions[a];
        const double theta = rng.next_double() * 3.14159265358979323846;
        const geometry::Point2D nrm{std::cos(theta), std::sin(theta)};
        // Side of the cut line through `c` with normal `nrm`; links
        // whose positioned endpoints straddle it are severed.
        const auto side = [&](std::size_t idx) {
          const double d = (positions[idx].x - c.x) * nrm.x +
                           (positions[idx].y - c.y) * nrm.y;
          return d >= 0.0;
        };
        std::vector<std::size_t> index_of(n, participants.size());
        for (std::size_t i = 0; i < participants.size(); ++i) {
          index_of[participants[i]] = i;
        }
        std::vector<std::pair<topology::SwitchId, topology::SwitchId>> cut;
        for (const auto& [u, v] : probe.edges()) {
          if (alive[u] == 0 || alive[v] == 0) continue;
          const std::size_t iu = index_of[u];
          const std::size_t iv = index_of[v];
          if (iu == participants.size() || iv == participants.size()) {
            continue;  // unpositioned transit: the cut can't see it
          }
          if (side(iu) != side(iv)) cut.emplace_back(u, v);
        }
        if (cut.empty()) continue;
        event.cut_links = std::move(cut);
        event.center = c;
        event.normal = nrm;
        event.repair_at = at + options.partition_length;
        placed = true;
      }
    }

    // A disaster without a valid footprint is skipped, not fatal:
    // later scheduled disasters may still fit the surviving topology.
    if (!placed) continue;
    event.repair_at = std::max(event.repair_at, last_repair);
    last_repair = event.repair_at;
    plan.events_.push_back(event);
  }
  return plan;
}

}  // namespace gred::fault
