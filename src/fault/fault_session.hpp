// FaultSession: replays a FaultPlan against a live GredSystem. The
// session owns the data-plane FaultState and installs it on the
// network for its lifetime; advancing the event clock first *injects*
// due failures (packets start dropping, classified kLinkDown) and then
// *repairs* due events — the delayed controller recompute:
//
//   switch crash -> wipe the dead switch's servers (those copies are
//                   genuinely lost; only replicas survive), then
//                   Controller::remove_switch
//   link down    -> Controller::remove_link
//   flaky link   -> the transient loss clears; no topology change
//
// Each repair also clears the matching data-plane fault, so after a
// fully advanced plan the FaultState is empty again. With replication
// enabled on the controller, every repair ends in a
// restore_replication pass that brings surviving items back to the
// replication factor.
#pragma once

#include <cstddef>

#include "common/error.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"
#include "sden/fault_state.hpp"

namespace gred::fault {

class FaultSession {
 public:
  /// Installs this session's FaultState on `system`'s network. The
  /// system must outlive the session.
  FaultSession(core::GredSystem& system, FaultPlan plan);
  ~FaultSession();

  FaultSession(const FaultSession&) = delete;
  FaultSession& operator=(const FaultSession&) = delete;
  FaultSession(FaultSession&&) = delete;
  FaultSession& operator=(FaultSession&&) = delete;

  /// Applies everything due at or before `now` on the event clock:
  /// injections and repairs interleaved in time order (injections
  /// first on ties, so a zero stale window still injects before it
  /// repairs). Returns the number of actions applied. A failed
  /// controller repair aborts with its status.
  Result<std::size_t> advance(std::size_t now);

  /// Runs the remainder of the plan to completion.
  Result<std::size_t> finish();

  std::size_t injected() const { return next_inject_; }
  std::size_t repaired() const { return next_repair_; }
  bool done() const { return next_repair_ == plan_.events().size(); }

  /// Items wiped from crashed switches' servers so far — copies the
  /// fault genuinely destroyed; only replication can recover them.
  std::size_t items_wiped() const { return items_wiped_; }

  const FaultPlan& plan() const { return plan_; }
  const sden::FaultState& state() const { return state_; }

 private:
  void inject(const FaultEvent& event);
  Status repair(const FaultEvent& event);

  core::GredSystem* system_;
  FaultPlan plan_;
  sden::FaultState state_;
  std::size_t next_inject_ = 0;
  std::size_t next_repair_ = 0;
  std::size_t items_wiped_ = 0;
};

}  // namespace gred::fault
