// FaultSession: replays a FaultPlan against a live GredSystem. The
// session owns the data-plane FaultState and installs it on the
// network for its lifetime; advancing the event clock first *injects*
// due failures (packets start dropping, classified kLinkDown) and then
// *repairs* due events — the delayed controller recompute:
//
//   switch crash -> wipe the dead switch's servers (those copies are
//                   genuinely lost; only replicas survive), then
//                   Controller::remove_switch
//   link down    -> Controller::remove_link
//   flaky link   -> the transient loss clears; no topology change
//
// Each repair also clears the matching data-plane fault, so after a
// fully advanced plan the FaultState is empty again. With replication
// enabled on the controller, every repair ends in a
// restore_replication pass that brings surviving items back to the
// replication factor.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "common/error.hpp"
#include "core/system.hpp"
#include "fault/fault_plan.hpp"
#include "sden/fault_state.hpp"

namespace gred::fault {

/// Per-item recovery accounting (RPO/RTO inputs). Times are event-clock
/// indices of the session scans that observed each transition.
struct RecoveryRecord {
  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
  /// First scan at which zero copies were reachable (kNever = always
  /// available). Items counted here are the recovery *point* exposure.
  std::size_t first_unavailable = kNever;
  /// First scan back at the full replication target after a
  /// degradation; with first_unavailable, yields the recovery time.
  std::size_t restored_at = kNever;
  /// Zero copies reachable at the latest scan (a final true = the
  /// disaster destroyed every copy; the item is gone).
  bool lost = false;
  /// Currently below the replication target (internal bookkeeping,
  /// exposed for diagnostics).
  bool degraded = false;
};

class FaultSession {
 public:
  /// Installs this session's FaultState on `system`'s network. The
  /// system must outlive the session.
  FaultSession(core::GredSystem& system, FaultPlan plan);
  ~FaultSession();

  FaultSession(const FaultSession&) = delete;
  FaultSession& operator=(const FaultSession&) = delete;
  FaultSession(FaultSession&&) = delete;
  FaultSession& operator=(FaultSession&&) = delete;

  /// Applies everything due at or before `now` on the event clock:
  /// injections and repairs interleaved in time order (injections
  /// first on ties, so a zero stale window still injects before it
  /// repairs). Returns the number of actions applied. A failed
  /// controller repair aborts with its status.
  Result<std::size_t> advance(std::size_t now);

  /// Runs the remainder of the plan to completion.
  Result<std::size_t> finish();

  std::size_t injected() const { return next_inject_; }
  std::size_t repaired() const { return next_repair_; }
  bool done() const { return next_repair_ == plan_.events().size(); }

  /// Items wiped from crashed switches' servers so far — copies the
  /// fault genuinely destroyed; only replication can recover them.
  std::size_t items_wiped() const { return items_wiped_; }

  /// Opt-in RPO/RTO accounting: scans item availability after every
  /// applied action (and once now, as the baseline). A copy counts as
  /// reachable when its server is attached to an up switch inside the
  /// largest connected component of the up topology with hard-down
  /// links removed — i.e. the network a surviving ingress can actually
  /// route in. O(servers + items) per action; keep off on hot benches.
  void enable_recovery_tracking();
  bool recovery_tracking() const { return track_recovery_; }
  const std::map<std::string, RecoveryRecord>& recovery() const {
    return recovery_;
  }
  /// Items that at some scan had zero reachable copies (RPO exposure).
  std::size_t items_ever_unavailable() const;
  /// Items with zero copies at the latest scan (destroyed outright).
  std::size_t items_lost() const;
  /// Max event-clock span from first-unavailable to fully-restored
  /// over recovered items (0 when nothing went unavailable and came
  /// back) — the observed worst-case recovery time.
  std::size_t max_recovery_time() const;

  const FaultPlan& plan() const { return plan_; }
  const sden::FaultState& state() const { return state_; }

 private:
  void inject(const FaultEvent& event);
  Status repair(const FaultEvent& event);
  void scan_recovery(std::size_t now);

  core::GredSystem* system_;
  FaultPlan plan_;
  sden::FaultState state_;
  std::size_t next_inject_ = 0;
  std::size_t next_repair_ = 0;
  std::size_t items_wiped_ = 0;
  bool track_recovery_ = false;
  std::map<std::string, RecoveryRecord> recovery_;
};

}  // namespace gred::fault
