// gred::fault — deterministic failure injection for the fault-tolerance
// layer. A FaultPlan is a seeded, pre-validated schedule of failures
// (switch crash, link down, flaky link) on an event-index timeline.
// Each failure carries a repair time `stale_window` events later: the
// window models the delay between the physical fault and the
// controller's recompute, during which the data plane routes on stale
// tables and packets fall into the hole (classified kLinkDown).
//
// Generation is validated against a sequential probe of the topology:
// crash and link-down candidates are accepted only when the surviving
// switches stay connected after every previously planned permanent
// failure, so the matching controller repairs (remove_switch /
// remove_link) are guaranteed applicable in repair order. Link events
// draw from the probe's live edges, so no event touches an
// already-crashed switch. The plan is a pure function of
// (topology, options) — same seed, same plan.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "topology/edge_network.hpp"

namespace gred::fault {

enum class FaultKind : std::uint8_t {
  kSwitchCrash,  ///< switch dies; its stored items are lost
  kLinkDown,     ///< permanent link failure (repaired by remove_link)
  kLinkFlaky,    ///< transient loss: link drops packets with probability p
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSwitchCrash;
  /// Event-clock index at which the fault appears in the data plane.
  std::size_t at_event = 0;
  /// Crashed switch, or link endpoint u.
  topology::SwitchId subject = 0;
  /// Link endpoint v (link events only).
  topology::SwitchId peer = 0;
  /// Per-packet drop probability while injected (1.0 = hard down).
  double drop_probability = 1.0;
  /// Event-clock index of the controller recompute
  /// (= at_event + stale_window).
  std::size_t repair_at = 0;
};

struct FaultPlanOptions {
  std::size_t event_count = 8;
  /// Length of the event-clock timeline; failures are drawn from
  /// [0, schedule_length - stale_window) so every repair fits.
  std::size_t schedule_length = 1000;
  /// Relative frequencies of the three fault kinds.
  double crash_weight = 1.0;
  double link_down_weight = 1.0;
  double flaky_weight = 1.0;
  /// Drop probability of a kLinkFlaky event.
  double flaky_drop_probability = 0.3;
  /// Events between a failure and its controller recompute (the
  /// stale-position window of the fault model).
  std::size_t stale_window = 4;
  std::uint64_t seed = 1;
};

class FaultPlan {
 public:
  /// Builds a schedule against `net`'s switch topology. Fails on a
  /// degenerate request (empty timeline, non-positive weights, fewer
  /// than two switches).
  static Result<FaultPlan> generate(const topology::EdgeNetwork& net,
                                    const FaultPlanOptions& options = {});

  /// Events ascending by at_event; repair_at is ascending too (the
  /// stale window is constant), so repairs apply in the same order.
  const std::vector<FaultEvent>& events() const { return events_; }
  const FaultPlanOptions& options() const { return options_; }

  std::size_t switch_crashes() const;

 private:
  std::vector<FaultEvent> events_;
  FaultPlanOptions options_;
};

}  // namespace gred::fault
