// gred::fault — deterministic failure injection for the fault-tolerance
// layer. A FaultPlan is a seeded, pre-validated schedule of failures
// (switch crash, link down, flaky link) on an event-index timeline.
// Each failure carries a repair time `stale_window` events later: the
// window models the delay between the physical fault and the
// controller's recompute, during which the data plane routes on stale
// tables and packets fall into the hole (classified kLinkDown).
//
// Generation is validated against a sequential probe of the topology:
// crash and link-down candidates are accepted only when the surviving
// switches stay connected after every previously planned permanent
// failure, so the matching controller repairs (remove_switch /
// remove_link) are guaranteed applicable in repair order. Link events
// draw from the probe's live edges, so no event touches an
// already-crashed switch. The plan is a pure function of
// (topology, options) — same seed, same plan.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "geometry/point.hpp"
#include "topology/edge_network.hpp"

namespace gred::fault {

enum class FaultKind : std::uint8_t {
  kSwitchCrash,  ///< switch dies; its stored items are lost
  kLinkDown,     ///< permanent link failure (repaired by remove_link)
  kLinkFlaky,    ///< transient loss: link drops packets with probability p
  kRegionKill,   ///< correlated disaster: every switch in a region of the
                 ///< virtual space crashes in the same timeline step
  kPartition,    ///< correlated disaster: every link crossing a sampled
                 ///< cut line goes down, restored together later
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSwitchCrash;
  /// Event-clock index at which the fault appears in the data plane.
  std::size_t at_event = 0;
  /// Crashed switch, or link endpoint u.
  topology::SwitchId subject = 0;
  /// Link endpoint v (link events only).
  topology::SwitchId peer = 0;
  /// Per-packet drop probability while injected (1.0 = hard down).
  double drop_probability = 1.0;
  /// Event-clock index of the controller recompute
  /// (= at_event + stale_window).
  std::size_t repair_at = 0;

  // --- correlated disasters only ---
  /// kRegionKill: the switches dying together, pre-ordered so that
  /// removing them one by one keeps the survivors connected after
  /// every prefix (the repair replays exactly this order).
  std::vector<topology::SwitchId> members;
  /// kPartition: the links crossing the sampled cut, as drawn from the
  /// probe topology at generation time.
  std::vector<std::pair<topology::SwitchId, topology::SwitchId>> cut_links;
  /// Disaster geometry (diagnostics): disc/box anchor for a region
  /// kill; a point on the cut line for a partition.
  geometry::Point2D center{};
  /// Disc radius of a kRegionKill (0 for box kills).
  double radius = 0.0;
  /// Unit normal of a kPartition cut line.
  geometry::Point2D normal{};
};

struct FaultPlanOptions {
  std::size_t event_count = 8;
  /// Length of the event-clock timeline; failures are drawn from
  /// [0, schedule_length - stale_window) so every repair fits.
  std::size_t schedule_length = 1000;
  /// Relative frequencies of the three fault kinds.
  double crash_weight = 1.0;
  double link_down_weight = 1.0;
  double flaky_weight = 1.0;
  /// Drop probability of a kLinkFlaky event.
  double flaky_drop_probability = 0.3;
  /// Events between a failure and its controller recompute (the
  /// stale-position window of the fault model).
  std::size_t stale_window = 4;
  std::uint64_t seed = 1;
};

/// Footprint of a region-kill disaster in the virtual space.
enum class RegionShape : std::uint8_t {
  kDisc,  ///< all switches within `region_radius` of a sampled anchor
  kBox,   ///< all switches in the anchor's cell of a GxG grid
};

/// Options of FaultPlan::generate_disasters — a schedule of correlated
/// events (region kills and partitions) instead of independent point
/// faults. Disasters are drawn against the *virtual-space positions*
/// of the participants, so a kill footprint matches the region labels
/// replica placement diversifies over.
struct DisasterPlanOptions {
  std::size_t region_kills = 1;
  std::size_t partitions = 0;
  RegionShape region_shape = RegionShape::kDisc;
  /// kDisc: kill radius in virtual-space units ([0,1]^2 space).
  double region_radius = 0.15;
  /// kBox: grid dimension; the kill wipes one whole G x G cell. Align
  /// with ReplicationOptions::region_grid to model "a labelled region
  /// dies" exactly.
  std::size_t box_grid = 4;
  std::size_t schedule_length = 1000;
  /// Events between a region kill and its controller recompute.
  std::size_t stale_window = 4;
  /// Events a partition stays up before the cut heals (partitions are
  /// restored, not repaired by topology surgery).
  std::size_t partition_length = 8;
  std::uint64_t seed = 1;
};

class FaultPlan {
 public:
  /// Builds a schedule against `net`'s switch topology. Fails on a
  /// degenerate request (empty timeline, non-positive weights, fewer
  /// than two switches).
  static Result<FaultPlan> generate(const topology::EdgeNetwork& net,
                                    const FaultPlanOptions& options = {});

  /// Builds a correlated-disaster schedule. `participants` /
  /// `positions` are the controller's virtual-space embedding (parallel
  /// vectors); links between switches without a position are never cut
  /// and unpositioned switches never die in a region kill. Same
  /// applicability guarantee as generate(): every region kill keeps
  /// the survivors connected (validated against a sequential probe,
  /// with a per-member removal order every prefix of which stays
  /// connected), so the repair-time remove_switch calls always apply.
  /// Partitions may disconnect the network — that is their point — but
  /// they heal without a topology change. A disaster that finds no
  /// valid footprint after bounded tries is skipped, so the plan can
  /// carry fewer events than requested.
  static Result<FaultPlan> generate_disasters(
      const topology::EdgeNetwork& net,
      const std::vector<topology::SwitchId>& participants,
      const std::vector<geometry::Point2D>& positions,
      const DisasterPlanOptions& options = {});

  /// Events ascending by at_event; repair_at is non-decreasing too
  /// (constant window for point faults; disaster generation clamps),
  /// so repairs apply in the same order.
  const std::vector<FaultEvent>& events() const { return events_; }
  const FaultPlanOptions& options() const { return options_; }

  std::size_t switch_crashes() const;
  /// Events of a given kind in the plan.
  std::size_t count(FaultKind kind) const;

 private:
  std::vector<FaultEvent> events_;
  FaultPlanOptions options_;
};

}  // namespace gred::fault
