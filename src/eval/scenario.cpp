#include "eval/scenario.hpp"

#include "common/rng.hpp"
#include "topology/waxman.hpp"

namespace gred::eval {

Result<topology::EdgeNetwork> build_network(const ScenarioOptions& options) {
  Rng rng(options.topology_seed);
  topology::WaxmanOptions wopt;
  wopt.node_count = options.switches;
  wopt.min_degree = options.min_degree;
  wopt.latency_weights = options.latency_weights;
  auto topo = topology::generate_waxman(wopt, rng);
  if (!topo.ok()) return topo.error();
  return topology::uniform_edge_network(std::move(topo).value().graph,
                                        options.servers_per_switch);
}

Result<core::GredSystem> build_gred(const topology::EdgeNetwork& net,
                                    const ScenarioOptions& options) {
  core::VirtualSpaceOptions vs;
  vs.use_cvt = options.cvt_iterations > 0;
  vs.cvt_iterations = options.cvt_iterations;
  vs.cvt_samples = 1000;  // the paper's sampling density
  return core::GredSystem::create(net, vs);
}

Result<core::GredSystem> build_gred_nocvt(const topology::EdgeNetwork& net,
                                          const ScenarioOptions& options) {
  (void)options;
  core::VirtualSpaceOptions vs;
  vs.use_cvt = false;
  return core::GredSystem::create(net, vs);
}

Result<chord::ChordRing> build_chord(const topology::EdgeNetwork& net) {
  return chord::ChordRing::build(net);
}

}  // namespace gred::eval
