#include "eval/experiments.hpp"

#include "chord/underlay.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace gred::eval {

std::vector<std::string> workload_ids(std::size_t count,
                                      std::uint64_t trial) {
  std::vector<std::string> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back("data-" + std::to_string(trial) + "-" + std::to_string(i));
  }
  return ids;
}

StretchResult measure_gred_stretch(core::GredSystem& system,
                                   const StretchOptions& options) {
  Rng rng(options.seed);
  const std::size_t switches = system.network().switch_count();
  std::vector<double> hop, latency, hops_walked;
  hop.reserve(options.items);
  for (std::size_t i = 0; i < options.items; ++i) {
    const std::string id = "stretch-" + std::to_string(options.seed) + "-" +
                           std::to_string(i);
    auto r = system.place(id, "", rng.next_below(switches));
    if (!r.ok()) continue;  // skip unroutable (cannot happen when green)
    hop.push_back(r.value().stretch);
    latency.push_back(r.value().latency_stretch);
    hops_walked.push_back(static_cast<double>(r.value().selected_hops));
  }
  StretchResult out;
  out.hop_stretch = summarize(std::move(hop));
  out.latency_stretch = summarize(std::move(latency));
  out.selected_hops = summarize(std::move(hops_walked));
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("eval.stretch_measurements").add();
    reg.histogram("eval.hop_stretch").record(out.hop_stretch.mean);
    reg.gauge("eval.last_hop_stretch_p99").set(out.hop_stretch.p99);
  }
  return out;
}

StretchResult measure_chord_stretch(const chord::ChordRing& ring,
                                    const topology::EdgeNetwork& net,
                                    const graph::ApspResult& apsp,
                                    const StretchOptions& options) {
  Rng rng(options.seed ^ 0xc402d);
  std::vector<double> hop, hops_walked;
  hop.reserve(options.items);
  for (std::size_t i = 0; i < options.items; ++i) {
    const std::string id = "stretch-" + std::to_string(options.seed) + "-" +
                           std::to_string(i);
    const topology::ServerId origin = rng.next_below(net.server_count());
    const chord::ChordRouteReport r = chord::measure_lookup(
        ring, net, apsp, origin, crypto::DataKey(id).prefix64());
    hop.push_back(r.stretch);
    hops_walked.push_back(static_cast<double>(r.physical_hops));
  }
  StretchResult out;
  out.hop_stretch = summarize(hop);
  out.latency_stretch = summarize(hop);  // Chord runs on hop costs here
  out.selected_hops = summarize(std::move(hops_walked));
  return out;
}

BalanceResult measure_gred_balance(core::GredSystem& system,
                                   const std::vector<std::string>& ids) {
  BalanceResult out;
  out.loads.assign(system.network().server_count(), 0);
  for (const std::string& id : ids) {
    const auto placement = system.controller().expected_placement(
        system.network(), crypto::DataKey(id));
    if (placement.ok()) ++out.loads[placement.value().server];
  }
  out.report = core::load_balance(out.loads);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("eval.balance_measurements").add();
    reg.histogram("eval.max_over_avg").record(out.report.max_over_avg);
    reg.gauge("eval.last_jain_fairness").set(out.report.jain);
  }
  return out;
}

BalanceResult measure_chord_balance(const chord::ChordRing& ring,
                                    const topology::EdgeNetwork& net,
                                    const std::vector<std::string>& ids) {
  std::vector<chord::RingId> keys;
  keys.reserve(ids.size());
  for (const std::string& id : ids) {
    keys.push_back(crypto::DataKey(id).prefix64());
  }
  BalanceResult out;
  out.loads = chord::chord_key_loads(ring, net, keys);
  out.report = core::load_balance(out.loads);
  return out;
}

Summary measure_table_entries(const sden::SdenNetwork& net) {
  std::vector<double> counts;
  counts.reserve(net.switch_count());
  for (std::size_t c : net.table_entry_counts()) {
    counts.push_back(static_cast<double>(c));
  }
  return summarize(std::move(counts));
}

double mean_chord_fingers(const chord::ChordRing& ring,
                          const topology::EdgeNetwork& net) {
  if (net.server_count() == 0) return 0.0;
  double total = 0.0;
  for (topology::ServerId s = 0; s < net.server_count(); ++s) {
    total += static_cast<double>(ring.finger_entries(s));
  }
  return total / static_cast<double>(net.server_count());
}

}  // namespace gred::eval
