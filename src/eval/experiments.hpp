// The evaluation harness as a library: the measurement procedures of
// Section VII (routing stretch, load balance, forwarding-table size)
// as reusable, tested functions. The per-figure bench binaries are thin
// wrappers over these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chord/chord.hpp"
#include "common/stats.hpp"
#include "core/metrics.hpp"
#include "core/system.hpp"
#include "graph/shortest_path.hpp"

namespace gred::eval {

struct StretchOptions {
  std::size_t items = 100;   ///< placements per measurement (paper: 100)
  std::uint64_t seed = 1;    ///< drives item ids and access points
};

struct StretchResult {
  Summary hop_stretch;       ///< the paper's routing-stretch metric
  Summary latency_stretch;   ///< cost-based view (== hop view on unit links)
  Summary selected_hops;
};

/// Places `items` random data ids from random access switches through
/// the GRED data plane and summarizes the stretch samples.
StretchResult measure_gred_stretch(core::GredSystem& system,
                                   const StretchOptions& options);

/// Same workload against Chord: each lookup starts at a random server;
/// overlay hops are priced on the physical topology via `apsp`.
StretchResult measure_chord_stretch(const chord::ChordRing& ring,
                                    const topology::EdgeNetwork& net,
                                    const graph::ApspResult& apsp,
                                    const StretchOptions& options);

struct BalanceResult {
  core::LoadBalanceReport report;
  std::vector<std::size_t> loads;  ///< per-server assignment counts
};

/// Assigns `ids` with GRED's placement function (home switch +
/// H(d) mod s) and reports the per-server balance.
BalanceResult measure_gred_balance(core::GredSystem& system,
                                   const std::vector<std::string>& ids);

/// Assigns `ids` with Chord's successor function.
BalanceResult measure_chord_balance(const chord::ChordRing& ring,
                                    const topology::EdgeNetwork& net,
                                    const std::vector<std::string>& ids);

/// Forwarding-table entries per switch (Fig. 9(d) metric).
Summary measure_table_entries(const sden::SdenNetwork& net);

/// Mean distinct finger entries per server for the Chord comparison.
double mean_chord_fingers(const chord::ChordRing& ring,
                          const topology::EdgeNetwork& net);

/// Deterministic workload ids ("data-<trial>-<i>").
std::vector<std::string> workload_ids(std::size_t count,
                                      std::uint64_t trial);

}  // namespace gred::eval
