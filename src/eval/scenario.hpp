// Scenario factory mirroring the paper's Section VII-B simulation
// defaults: a Waxman switch graph with a min-degree knob, N servers per
// switch, and the three protocol configurations under comparison
// (GRED, GRED-NoCVT, Chord).
#pragma once

#include <cstdint>

#include "chord/chord.hpp"
#include "common/error.hpp"
#include "core/system.hpp"
#include "topology/edge_network.hpp"

namespace gred::eval {

struct ScenarioOptions {
  std::size_t switches = 100;
  std::size_t servers_per_switch = 10;  ///< the paper's default
  std::size_t min_degree = 3;
  std::uint64_t topology_seed = 1;
  /// C-regulation iterations for the GRED variant (paper default 50).
  std::size_t cvt_iterations = 50;
  bool latency_weights = false;  ///< weighted links for latency studies
};

/// The physical substrate shared by all protocols in a comparison.
Result<topology::EdgeNetwork> build_network(const ScenarioOptions& options);

/// GRED with C-regulation (T = options.cvt_iterations).
Result<core::GredSystem> build_gred(const topology::EdgeNetwork& net,
                                    const ScenarioOptions& options);

/// GRED-NoCVT: M-position only.
Result<core::GredSystem> build_gred_nocvt(const topology::EdgeNetwork& net,
                                          const ScenarioOptions& options);

/// The Chord baseline on the same servers (v = 1 as in the paper).
Result<chord::ChordRing> build_chord(const topology::EdgeNetwork& net);

}  // namespace gred::eval
