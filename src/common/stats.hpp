// Statistics helpers used by the benchmark harness and the evaluation
// metrics: summary statistics, percentiles, confidence intervals (the
// paper reports 90% CIs on routing stretch and table sizes), and a
// simple fixed-bin histogram.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gred {

/// Streaming accumulator (Welford) for mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Half-width of the two-sided confidence interval of the mean at the
  /// given level (0.90 or 0.95), using the normal approximation (the
  /// paper averages >= 100 samples per point, so z is appropriate).
  double ci_halfwidth(double level = 0.90) const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Summary of a finished sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
  double ci90 = 0.0;  ///< 90% CI half-width of the mean.

  std::string to_string() const;
};

/// Computes a Summary from raw samples (copies and sorts internally).
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// max/avg load-balance metric from per-server load counts, as used
/// throughout the paper's Section VII-E. Returns 0 when all loads are 0.
double max_over_avg(const std::vector<std::size_t>& loads);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1 = perfectly fair.
double jain_fairness(const std::vector<std::size_t>& loads);

/// Coefficient of variation (stddev/mean) of loads; 0 when mean == 0.
double coefficient_of_variation(const std::vector<std::size_t>& loads);

/// Fixed-width histogram over [lo, hi); values outside are clamped to
/// the first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// Multi-line ASCII rendering (for bench diagnostics).
  std::string to_string(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace gred
