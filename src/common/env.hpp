// Validated parsing of the parallelism knobs (GRED_THREADS,
// GRED_SHARDS). A silently misparsed value used to degrade to a
// confusing default (e.g. GRED_THREADS=8x configuring one thread);
// these helpers reject garbage loudly and fall back to the hardware
// instead.
#pragma once

#include <cstddef>

namespace gred {

/// Upper bound any parallelism knob may request. Values above this are
/// treated as misconfiguration (a stray "1e9" or unit suffix), not as a
/// real ask — no machine this code targets has a four-digit core count.
inline constexpr std::size_t kMaxParallelism = 1024;

/// Reads the environment variable `var` as a parallelism degree.
/// Returns the parsed value when it is a plain positive integer in
/// [1, kMaxParallelism]. Returns 0 — "use the fallback" — when the
/// variable is unset; when it is set but non-numeric, has trailing
/// junk, is zero, or exceeds kMaxParallelism, logs one GRED_WARN line
/// naming the variable and the rejected value, then also returns 0.
std::size_t env_parallelism(const char* var);

/// env_parallelism(var), falling back to
/// std::thread::hardware_concurrency() (minimum 1) when it returns 0.
std::size_t env_parallelism_or_hardware(const char* var);

/// Reads the environment variable `var` as a boolean toggle: "1",
/// "true", "on", "yes" enable and "0", "false", "off", "no" disable
/// (case-insensitive). Unset returns `fallback`; any other value logs
/// one GRED_WARN line and also returns `fallback`.
bool env_flag(const char* var, bool fallback);

}  // namespace gred
