// Lightweight Result<T> / Error types used across all GRED modules.
//
// We deliberately avoid exceptions on hot paths (per-packet forwarding,
// per-item placement): fallible operations return Result<T>, which is a
// thin std::variant wrapper with an ergonomic API similar to
// std::expected (which libstdc++ 12 does not yet ship).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace gred {

/// Machine-readable error category; `message` carries human detail.
enum class ErrorCode {
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  // Routing-failure taxonomy (data plane). Distinct codes so retry
  // logic can tell a retryable drop from an invariant violation
  // (which stays kInternal).
  kRoutingLoop,  ///< hop bound exceeded (transient loop under stale tables)
  kNoRoute,      ///< flow-table miss: no relay/candidate/server to forward to
  kLinkDown,     ///< forwarding over a dead or missing physical link/switch
};

/// Human-readable name of an ErrorCode ("invalid_argument", ...).
constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kFailedPrecondition: return "failed_precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kRoutingLoop: return "routing_loop";
    case ErrorCode::kNoRoute: return "no_route";
    case ErrorCode::kLinkDown: return "link_down";
  }
  return "unknown";
}

/// True for the routing-failure codes a client may retry (the drop was
/// caused by transient network state — a loop during reconvergence, a
/// stale table, a dead link — not by a broken invariant).
constexpr bool is_retryable_route_error(ErrorCode code) {
  return code == ErrorCode::kRoutingLoop || code == ErrorCode::kNoRoute ||
         code == ErrorCode::kLinkDown;
}

/// An error with a category and a human-readable message.
struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  Error() = default;
  Error(ErrorCode c, std::string msg) : code(c), message(std::move(msg)) {}

  /// "invalid_argument: n must be positive"
  std::string to_string() const {
    return std::string(gred::to_string(code)) + ": " + message;
  }
};

/// Result<T>: either a value of type T or an Error.
///
/// Usage:
///   Result<int> r = parse(s);
///   if (!r.ok()) return r.error();
///   use(r.value());
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}      // NOLINT(google-explicit-constructor)
  Result(ErrorCode code, std::string msg) : storage_(Error{code, std::move(msg)}) {}

  bool ok() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(storage_);
  }
  T& value() & {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok() && "Result::value() called on error");
    return std::get<T>(std::move(storage_));
  }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  const Error& error() const {
    assert(!ok() && "Result::error() called on value");
    return std::get<Error>(storage_);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue: success, or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT
  Status(ErrorCode code, std::string msg)
      : error_(code, std::move(msg)), failed_(true) {}

  static Status Ok() { return Status(); }

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(failed_ && "Status::error() called on success");
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace gred
