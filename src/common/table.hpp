// ASCII table renderer: every figure-reproduction bench prints its data
// series through this so the output reads like the paper's plots.
#pragma once

#include <string>
#include <vector>

namespace gred {

/// Column-aligned ASCII table with a header row.
///
///   Table t({"n switches", "GRED", "Chord"});
///   t.add_row({"20", "1.21", "3.87"});
///   std::cout << t.to_string();
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  std::size_t rows() const { return rows_.size(); }

  std::string to_string() const;

  /// Comma-separated rendering (header + rows); cells containing commas
  /// or quotes are quoted per RFC 4180.
  std::string to_csv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace gred
