// Fixed-capacity spill queue for the sharded data plane's cross-shard
// handoffs. When an SPSC ring is full, the producing shard parks the
// continuation here and re-offers it on later poll-loop passes.
//
// This replaces a plain std::vector spill whose partial-drain handling
// had a real mid-round-allocation defect: the vector only reset once
// FULLY drained, so under a sustained ring-full ping-pong (drain a
// little, spill a little more) the dead prefix in front of the
// unretired items grew without bound and the vector eventually
// reallocated — violating the round's documented no-allocation
// invariant. tests/overflow_buffer_test.cpp replays that adversarial
// schedule against this class and asserts the storage address never
// moves.
//
// The fix is an indexed buffer with bounded compaction:
//   * reset(live_capacity, compact_threshold) sizes the storage ONCE to
//     live_capacity + compact_threshold (the only allocation, made
//     during round setup);
//   * push() is a bounds-checked indexed store — structurally incapable
//     of allocating, which is what lets tools/hotpath_check.py prove
//     the spill path clean (a reserved push_back still statically
//     reaches operator new);
//   * consume(n) retires the oldest n items and, when the dead prefix
//     reaches compact_threshold, memmoves the pending tail to the
//     front. Since a single consume() retires at most one ring's worth
//     of items, the prefix stays < compact_threshold at every push, so
//     size() <= compact_threshold + live items and the storage bound
//     holds whenever live items <= live_capacity.
#pragma once

#include <cstddef>
#include <cstring>
#include <type_traits>
#include <vector>

#include "check/check.hpp"
#include "common/thread_annotations.hpp"

namespace gred {

template <typename T>
class OverflowBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "OverflowBuffer compacts with memmove; spill plain "
                "continuation words, not owning objects");

 public:
  /// Sizes the storage to hold `live_capacity` unretired items with a
  /// dead prefix of up to `compact_threshold`, and empties the buffer.
  /// The only allocating call; growth-only (a smaller request keeps the
  /// larger storage), so reusing a buffer across rounds of the same
  /// size allocates once.
  void reset(std::size_t live_capacity, std::size_t compact_threshold) {
    compact_at_ = compact_threshold < 1 ? 1 : compact_threshold;
    const std::size_t want = live_capacity + compact_at_;
    if (buf_.size() < want) buf_.resize(want);
    head_ = 0;
    size_ = 0;
  }

  /// Parks one item. Never allocates: an indexed store into the
  /// pre-sized storage. The capacity invariant (reset's contract) makes
  /// overflow impossible; checked builds verify it.
  GRED_HOT_PATH void push(const T& v) {
    GRED_INVARIANT(size_ < buf_.size(),
                   "OverflowBuffer overflow: live items exceed the "
                   "capacity reset() was sized for");
    buf_[size_++] = v;
  }

  /// Oldest unretired item (valid while pending() > 0).
  const T* data() const { return buf_.data() + head_; }
  /// Unretired items.
  std::size_t pending() const { return size_ - head_; }
  bool empty() const { return head_ == size_; }

  /// Retires the oldest `n` items (n <= pending()). Fully drained
  /// buffers rewind to the front for free; otherwise, once the dead
  /// prefix reaches the compaction threshold, the pending tail is
  /// memmoved down so the prefix can never grow unboundedly.
  GRED_HOT_PATH void consume(std::size_t n) {
    GRED_INVARIANT(n <= size_ - head_, "OverflowBuffer: consuming more than pending");
    head_ += n;
    if (head_ == size_) {
      head_ = 0;
      size_ = 0;
    } else if (head_ >= compact_at_) {
      const std::size_t live = size_ - head_;
      std::memmove(buf_.data(), buf_.data() + head_, live * sizeof(T));
      head_ = 0;
      size_ = live;
    }
  }

  /// Storage address, exposed so tests can assert reallocation never
  /// happens mid-round.
  const T* storage() const { return buf_.data(); }
  std::size_t storage_capacity() const { return buf_.size(); }

 private:
  std::vector<T> buf_;
  std::size_t head_ = 0;       ///< first unretired item
  std::size_t size_ = 0;       ///< one past the last item
  std::size_t compact_at_ = 1; ///< dead-prefix bound triggering compaction
};

}  // namespace gred
