// Move-only callable wrapper with small-buffer optimization, built for
// the event queue's hot path: scheduling a simulation handler must not
// heap-allocate. std::function is copyable (so it cannot hold move-only
// captures) and its libstdc++ small-object buffer is 16 bytes — too
// small for the delay experiment's lambdas, forcing one allocation per
// scheduled event. SmallFunction stores captures up to kInlineBytes in
// place and only falls back to the heap beyond that.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace gred {

template <typename Signature>
class SmallFunction;

template <typename R, typename... Args>
class SmallFunction<R(Args...)> {
 public:
  /// Covers every handler the simulator schedules (a few captured
  /// doubles, ids, and references) without heap fallback.
  static constexpr std::size_t kInlineBytes = 56;

  SmallFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* other) {
        Fn* self = std::launder(reinterpret_cast<Fn*>(s));
        if (op == Op::kDestroy) {
          self->~Fn();
        } else {  // move-construct *other from *self
          ::new (other) Fn(std::move(*self));
          self->~Fn();
        }
      };
    } else {
      ::new (static_cast<void*>(storage_))
          Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* s, Args... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* s, void* other) {
        Fn** self = std::launder(reinterpret_cast<Fn**>(s));
        if (op == Op::kDestroy) {
          delete *self;
        } else {
          ::new (other) Fn*(*self);
        }
      };
    }
  }

  SmallFunction(SmallFunction&& o) noexcept { move_from(std::move(o)); }

  SmallFunction& operator=(SmallFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(std::move(o));
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kDestroy, kMove };

  void reset() {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void move_from(SmallFunction&& o) noexcept {
    if (o.invoke_ != nullptr) {
      o.manage_(Op::kMove, o.storage_, storage_);
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes]{};
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

}  // namespace gred
