// Flat open-addressing hash map for the data-plane fast path: POD
// keys, linear probing over one contiguous slot array, power-of-two
// capacity, backward-shift deletion (no tombstones). Lookups touch a
// single cache line in the common case, which is what makes indexed
// flow-table matches O(1) instead of the O(entries) scans they replace.
//
// Deliberately minimal: no iteration, no rehash-stability, value type
// must be trivially copyable (the flow tables store u32 indices into
// their entry vectors). Not a general-purpose container.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gred {

/// SplitMix64 finalizer — the standard 64-bit avalanche mix.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Key for pair-indexed tables (e.g. relay tuples keyed by
/// <sour, dest>). Full 2x64-bit equality; hashed by mixing both limbs.
struct Key2 {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const Key2&) const = default;
};

inline std::uint64_t flat_hash(std::uint64_t k) { return mix64(k); }
inline std::uint64_t flat_hash(const Key2& k) {
  return mix64(k.a ^ mix64(k.b));
}

template <typename Key, typename Value>
class FlatMap {
 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
  }

  /// Inserts `key -> value`, overwriting an existing mapping.
  void insert_or_assign(const Key& key, const Value& value) {
    if (slots_.empty() || size_ + 1 > (capacity() * 7) / 8) grow();
    std::size_t i = flat_hash(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = {key, value, true};
    ++size_;
  }

  /// Grows the slot array (once, here) so that `n` total entries fit
  /// without insert_or_assign ever rehashing — the cold half of a
  /// two-phase update whose hot half uses insert_assume_capacity.
  void reserve(std::size_t n) {
    std::size_t cap = slots_.empty() ? 16 : capacity();
    while (n + 1 > (cap * 7) / 8) cap *= 2;
    if (cap == capacity()) return;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.used) insert_or_assign(s.key, s.value);
    }
  }

  /// insert_or_assign without the growth check: allocation-free, for
  /// hot-path commits that ran reserve() beforehand. The caller must
  /// have reserved capacity for every insert it performs.
  void insert_assume_capacity(const Key& key, const Value& value) {
    std::size_t i = flat_hash(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = {key, value, true};
    ++size_;
  }

  /// Pointer to the mapped value, or nullptr when absent.
  const Value* find(const Key& key) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = flat_hash(key) & mask_;
    while (slots_[i].used) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  Value* find(const Key& key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  /// Removes `key`; true when it was present. Backward-shift deletion
  /// keeps probe chains intact without tombstones.
  bool erase(const Key& key) {
    if (slots_.empty()) return false;
    std::size_t i = flat_hash(key) & mask_;
    while (slots_[i].used && !(slots_[i].key == key)) i = (i + 1) & mask_;
    if (!slots_[i].used) return false;
    std::size_t hole = i;
    std::size_t j = (i + 1) & mask_;
    while (slots_[j].used) {
      const std::size_t home = flat_hash(slots_[j].key) & mask_;
      // Shift back unless the entry already sits in [home, hole].
      const bool reachable = hole <= j ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
      if (reachable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    slots_[hole].used = false;
    --size_;
    return true;
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  std::size_t capacity() const { return slots_.size(); }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    const std::size_t cap = old.empty() ? 16 : old.size() * 2;
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    size_ = 0;
    for (const Slot& s : old) {
      if (s.used) insert_or_assign(s.key, s.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace gred
