#include "common/shard_partition.hpp"

#include <algorithm>
#include <limits>

namespace gred {

namespace {

/// Spreads the low 21 bits of v onto even bit positions (0, 2, 4, ...).
std::uint64_t interleave_21(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

std::uint64_t quantize_21(double v01) {
  constexpr double kMax = static_cast<double>((1u << 21) - 1);
  if (!(v01 > 0.0)) return 0;  // also maps NaN to 0
  if (v01 >= 1.0) return (1u << 21) - 1;
  return static_cast<std::uint64_t>(v01 * kMax);
}

}  // namespace

std::uint64_t morton_key_2d(double x01, double y01) {
  return interleave_21(quantize_21(x01)) |
         (interleave_21(quantize_21(y01)) << 1);
}

std::vector<std::uint32_t> partition_by_position(
    const double* xs, const double* ys, const unsigned char* valid,
    std::size_t n, std::size_t shards) {
  std::vector<std::uint32_t> map(n, 0);
  if (n == 0) return map;
  if (shards < 1) shards = 1;
  if (shards > n) shards = n;

  // Normalize over the valid positions' bounding box so the 21-bit
  // quantization uses the full resolution regardless of the embedding's
  // scale (MDS coordinates are not confined to the unit square).
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = min_x;
  double max_x = -min_x;
  double max_y = -min_x;
  for (std::size_t i = 0; i < n; ++i) {
    if (valid != nullptr && valid[i] == 0) continue;
    min_x = std::min(min_x, xs[i]);
    max_x = std::max(max_x, xs[i]);
    min_y = std::min(min_y, ys[i]);
    max_y = std::max(max_y, ys[i]);
  }
  const double span_x = max_x > min_x ? max_x - min_x : 1.0;
  const double span_y = max_y > min_y ? max_y - min_y : 1.0;

  // Sort ids by (key, id): Morton key for positioned nodes, and a
  // beyond-maximum sentinel for position-less ones so they form one
  // deterministic id-ordered run at the tail.
  constexpr std::uint64_t kNoPositionKey =
      std::numeric_limits<std::uint64_t>::max();
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const bool has_pos = valid == nullptr || valid[i] != 0;
    const std::uint64_t key =
        has_pos ? morton_key_2d((xs[i] - min_x) / span_x,
                                (ys[i] - min_y) / span_y)
                : kNoPositionKey;
    order.emplace_back(key, static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());

  // Cut into contiguous runs of size ceil/floor(n / shards): the first
  // (n % shards) shards take one extra node.
  const std::size_t base = n / shards;
  const std::size_t extra = n % shards;
  std::size_t pos = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t run = base + (s < extra ? 1 : 0);
    for (std::size_t j = 0; j < run; ++j, ++pos) {
      map[order[pos].second] = static_cast<std::uint32_t>(s);
    }
  }
  return map;
}

}  // namespace gred
