// Fixed-size worker pool for the control plane's embarrassingly
// parallel hot paths (per-source APSP, C-regulation sampling, bench
// trials). The calling thread always participates in its own batch and
// never blocks on unclaimed work, so parallel_for may be nested (e.g.
// a bench trial running on the pool recomputes APSP on the same pool)
// and called concurrently from several threads without deadlock.
//
// Parallelism is configured once per pool: the GRED_THREADS environment
// variable when set, otherwise std::thread::hardware_concurrency().
// With a thread count of 1 no workers are spawned and every call runs
// inline, making the serial path bit-identical to the parallel one.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace gred {

class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// 0 means default_thread_count(). The pool spawns threads - 1
  /// workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured parallelism (workers + the calling thread).
  std::size_t thread_count() const { return thread_count_; }

  /// Splits [begin, end) into chunks of at most `grain` items and runs
  /// `chunk(lo, hi)` for each half-open chunk, fanned across the pool.
  /// Blocks until every chunk completed. Chunks must be independent;
  /// the chunk layout is fixed by (begin, end, grain) alone, so
  /// deterministic algorithms can key per-chunk state (e.g. RNG
  /// streams) on the chunk index regardless of the thread count.
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& chunk);

  /// Runs every task (possibly concurrently) and blocks until all are
  /// done.
  void run_all(const std::vector<std::function<void()>>& tasks);

  /// GRED_THREADS when set to a plain positive integer (validated —
  /// see common/env.hpp; garbage values warn and are ignored),
  /// otherwise std::thread::hardware_concurrency() (minimum 1).
  static std::size_t default_thread_count();

 private:
  struct Batch;

  void worker_loop();
  /// Claims and executes chunks of `b` until none are left. Takes no
  /// pool lock: chunk claiming is an atomic cursor on the batch.
  void help(Batch& b) GRED_EXCLUDES(mu_);

  std::size_t thread_count_ = 1;
  std::vector<std::thread> workers_;
  Mutex mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Batch>> queue_ GRED_GUARDED_BY(mu_);
  bool stop_ GRED_GUARDED_BY(mu_) = false;
};

/// The process-wide pool, created on first use with
/// default_thread_count() threads (GRED_THREADS is read at that point).
ThreadPool& global_pool();

}  // namespace gred
