#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "common/env.hpp"

namespace gred {

/// One parallel_for invocation. Threads claim chunks via an atomic
/// cursor; the last chunk to finish flags completion. Kept alive by
/// shared_ptr so a worker may outlive the submitting call's queue
/// entry without dangling.
struct ThreadPool::Batch {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  const std::function<void(std::size_t, std::size_t)>* chunk = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  Mutex m;
  CondVar cv;
  bool finished GRED_GUARDED_BY(m) = false;

  bool exhausted() const { return next.load() >= end; }
};

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(threads == 0 ? default_thread_count() : threads) {
  workers_.reserve(thread_count_ - 1);
  for (std::size_t i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::help(Batch& b) {
  for (;;) {
    const std::size_t lo = b.next.fetch_add(b.grain);
    if (lo >= b.end) return;
    const std::size_t hi = std::min(b.end, lo + b.grain);
    (*b.chunk)(lo, hi);
    const std::size_t items = hi - lo;
    if (b.done.fetch_add(items) + items == b.end - b.begin) {
      MutexLock lock(b.m);
      b.finished = true;
      b.cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      MutexLock lock(mu_);
      // Explicit wait loop (not a predicate lambda) so the guarded
      // reads sit syntactically inside the locked scope for
      // -Wthread-safety (common/mutex.hpp header comment).
      while (!stop_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to help
      batch = queue_.front();
      if (batch->exhausted()) {
        queue_.pop_front();
        continue;
      }
    }
    help(*batch);
    MutexLock lock(mu_);
    std::erase(queue_, batch);
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || end - begin <= grain) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      chunk(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->chunk = &chunk;
  batch->next.store(begin);
  {
    MutexLock lock(mu_);
    queue_.push_back(batch);
  }
  work_cv_.notify_all();

  help(*batch);
  {
    MutexLock lock(batch->m);
    while (!batch->finished) batch->cv.wait(lock);
  }
  MutexLock lock(mu_);
  std::erase(queue_, batch);
}

void ThreadPool::run_all(const std::vector<std::function<void()>>& tasks) {
  parallel_for(0, tasks.size(), 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) tasks[i]();
  });
}

std::size_t ThreadPool::default_thread_count() {
  // Validated: a malformed or absurd GRED_THREADS logs a warning and
  // falls back to the hardware instead of silently misconfiguring the
  // pool (env.hpp).
  return env_parallelism_or_hardware("GRED_THREADS");
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace gred
