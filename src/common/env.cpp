#include "common/env.hpp"

#include <cctype>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/log.hpp"

namespace gred {

std::size_t env_parallelism(const char* var) {
  const char* env = std::getenv(var);
  if (env == nullptr) return 0;

  // strtoul accepts leading whitespace, signs, and hex prefixes; a
  // parallelism knob should be a plain decimal integer, so pre-reject
  // anything that is not digits-only (this also catches empty values
  // and "-1", which strtoul would silently wrap to a huge count).
  bool digits_only = *env != '\0';
  for (const char* p = env; *p != '\0'; ++p) {
    if (std::isdigit(static_cast<unsigned char>(*p)) == 0) {
      digits_only = false;
      break;
    }
  }
  if (digits_only) {
    char* tail = nullptr;
    const unsigned long v = std::strtoul(env, &tail, 10);
    if (tail != env && *tail == '\0' && v >= 1 && v <= kMaxParallelism) {
      return static_cast<std::size_t>(v);
    }
  }
  GRED_WARN << var << "=\"" << env
            << "\" is not a plain integer in [1, " << kMaxParallelism
            << "]; falling back to hardware concurrency";
  return 0;
}

std::size_t env_parallelism_or_hardware(const char* var) {
  const std::size_t v = env_parallelism(var);
  if (v != 0) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool env_flag(const char* var, bool fallback) {
  const char* env = std::getenv(var);
  if (env == nullptr) return fallback;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  if (v == "1" || v == "true" || v == "on" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  GRED_WARN << var << "=\"" << env
            << "\" is not a recognized boolean; using the default ("
            << (fallback ? "on" : "off") << ")";
  return fallback;
}

}  // namespace gred
