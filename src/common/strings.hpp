// Small string utilities shared across modules.
#pragma once

#include <string>
#include <vector>

namespace gred {

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

/// Joins with a delimiter string.
std::string join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

/// Human-readable byte count ("1.5 KiB", "3.2 MiB").
std::string human_bytes(std::size_t bytes);

}  // namespace gred
