#include "common/rng.hpp"

#include <cassert>
#include <cmath>

namespace gred {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_gaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  shuffle(p);
  return p;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace gred
