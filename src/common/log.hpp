// Minimal leveled logger. Benches and examples use it for progress
// output; library code logs only at kWarn and above. Not thread-hot:
// GRED's simulators are single-threaded and deterministic.
#pragma once

#include <sstream>
#include <string>

namespace gred {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level (default kWarn so library use is quiet).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Writes one formatted line to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

#define GRED_LOG(level) ::gred::detail::LogLine(level)
#define GRED_DEBUG GRED_LOG(::gred::LogLevel::kDebug)
#define GRED_INFO GRED_LOG(::gred::LogLevel::kInfo)
#define GRED_WARN GRED_LOG(::gred::LogLevel::kWarn)
#define GRED_ERROR GRED_LOG(::gred::LogLevel::kError)

}  // namespace gred
