#include "common/strings.hpp"

#include <cctype>
#include <sstream>

namespace gred {

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  out.push_back(cur);
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string human_bytes(std::size_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < sizeof(kUnits) / sizeof(kUnits[0])) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << bytes << " B";
  } else {
    os.precision(1);
    os << std::fixed << v << " " << kUnits[unit];
  }
  return os.str();
}

}  // namespace gred
