#include "common/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace gred {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci_halfwidth(double level) const {
  if (n_ < 2) return 0.0;
  // Two-sided z for the common levels; default to 90%.
  double z = 1.6448536269514722;  // 90%
  if (level >= 0.99) {
    z = 2.5758293035489004;
  } else if (level >= 0.95) {
    z = 1.959963984540054;
  }
  return z * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  RunningStats rs;
  for (double x : samples) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p90 = percentile_sorted(samples, 0.90);
  s.p99 = percentile_sorted(samples, 0.99);
  s.ci90 = rs.ci_halfwidth(0.90);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " +/-" << ci90 << " (90% CI)"
     << " sd=" << stddev << " min=" << min << " p50=" << p50 << " p90=" << p90
     << " p99=" << p99 << " max=" << max;
  return os.str();
}

double max_over_avg(const std::vector<std::size_t>& loads) {
  if (loads.empty()) return 0.0;
  std::size_t mx = 0;
  std::size_t total = 0;
  for (std::size_t x : loads) {
    mx = std::max(mx, x);
    total += x;
  }
  if (total == 0) return 0.0;
  const double avg =
      static_cast<double>(total) / static_cast<double>(loads.size());
  return static_cast<double>(mx) / avg;
}

double jain_fairness(const std::vector<std::size_t>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t x : loads) {
    const double v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(loads.size()) * sum_sq);
}

double coefficient_of_variation(const std::vector<std::size_t>& loads) {
  RunningStats rs;
  for (std::size_t x : loads) rs.add(static_cast<double>(x));
  if (rs.mean() == 0.0) return 0.0;
  return rs.stddev() / rs.mean();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0 && hi > lo);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_low(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

std::string Histogram::to_string(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bin_low(i) << ", " << bin_high(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace gred
