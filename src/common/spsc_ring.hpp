// Bounded single-producer/single-consumer ring for cross-shard packet
// handoff. Wait-free on both sides: the producer writes a slot and
// publishes it with one release store of the tail; the consumer reads
// with one acquire load and retires slots with a release store of the
// head. Head and tail live on their own cache lines, and each side
// keeps a cached copy of the other side's index (the redpanda/folly
// idiom) so the steady state touches the remote line only when its
// cached view says the ring looks full/empty — a batched drain
// amortizes that one coherence miss over the whole batch.
//
// Capacity is rounded up to a power of two at construction and never
// changes; push/pop never allocate. T must be trivially copyable —
// handoffs carry plain packet-continuation words, not owning objects.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.hpp"

namespace gred {

template <typename T>
class SpscRing {
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRing carries raw continuation words; wrap owning "
                "state behind an index instead");

 public:
  /// Rounds `capacity` up to a power of two (minimum 2). All storage is
  /// allocated here; the ring never allocates afterwards.
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(slots_.size() - 1) {}

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full (caller keeps the item).
  GRED_HOT_PATH bool push(const T& v) {
    // relaxed: tail_ is producer-owned; only the producer writes it.
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ == slots_.size()) {
      // acquire: pairs with the consumer's release head retire so the
      // producer sees slots as free only after they were consumed.
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ == slots_.size()) return false;
    }
    slots_[tail & mask_] = v;
    // release: publishes the slot write before the new tail.
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: pushes up to `n` items from `v`, returning how many
  /// fit. One tail publish for the whole batch.
  GRED_HOT_PATH std::size_t push_batch(const T* v, std::size_t n) {
    // relaxed: tail_ is producer-owned (see push).
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = slots_.size() - (tail - head_cache_);
    if (free < n) {
      // acquire: see push.
      head_cache_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - head_cache_);
    }
    const std::size_t count = n < free ? n : free;
    for (std::size_t i = 0; i < count; ++i) {
      slots_[(tail + i) & mask_] = v[i];
    }
    // release: publishes the whole batch of slot writes.
    if (count != 0) tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Consumer side. False when the ring is empty.
  GRED_HOT_PATH bool pop(T& out) {
    // relaxed: head_ is consumer-owned; only the consumer writes it.
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      // acquire: pairs with the producer's release tail publish so the
      // slot reads below see the published contents.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = slots_[head & mask_];
    // release: retires the slot only after its contents were copied out.
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: drains up to `max` items into `out`, returning the
  /// count. One head retire for the whole batch.
  GRED_HOT_PATH std::size_t pop_batch(T* out, std::size_t max) {
    // relaxed: head_ is consumer-owned (see pop).
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = tail_cache_ - head;
    if (avail < max) {
      // acquire: see pop.
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = tail_cache_ - head;
    }
    const std::size_t count = max < avail ? max : avail;
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    // release: retires the whole batch after the copies.
    if (count != 0) head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Consumer-side emptiness check (exact for the consumer: a false
  /// return means at least one item is ready to pop).
  bool empty() const {
    // relaxed: head_ is consumer-owned.
    // acquire: tail pairs with the producer's release publish.
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  // Consumer-written fields share one line; producer-written fields
  // share another — neither side dirties the other's line on its own
  // writes.
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer-owned
  std::size_t tail_cache_ = 0;                    ///< consumer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer-owned
  std::size_t head_cache_ = 0;                    ///< producer's view of head
};

}  // namespace gred
