// Annotated mutex / condition-variable wrappers. libstdc++'s
// std::mutex carries no Clang capability annotations, so locking it
// directly is invisible to -Wthread-safety; these zero-overhead
// wrappers (a std::mutex / std::condition_variable plus attributes —
// every method is a one-line inline forward) are what make the
// analysis real on this toolchain. Library code takes locks ONLY
// through gred::Mutex / gred::MutexLock / gred::CondVar — enforced by
// tools/threadsafety_check.py (rule raw-lock).
//
// Condition waits: Clang's analysis is intraprocedural and cannot see
// into a predicate lambda, so the codebase writes waits as explicit
//   while (!condition) cv.wait(lock);
// loops — the condition reads then happen syntactically inside the
// locked scope and the analysis checks them like any other guarded
// access (DESIGN.md §13).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace gred {

class CondVar;

/// An annotated std::mutex. Same cost, visible to -Wthread-safety.
class GRED_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GRED_ACQUIRE() { mu_.lock(); }
  void unlock() GRED_RELEASE() { mu_.unlock(); }
  bool try_lock() GRED_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over gred::Mutex (the std::lock_guard / std::unique_lock
/// of this codebase). Holds the lock for its whole lifetime; CondVar
/// waits release and reacquire it internally, which the analysis
/// models as the capability being held across the wait.
class GRED_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GRED_ACQUIRE(mu) : lk_(mu.mu_) {}
  ~MutexLock() GRED_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lk_;
};

/// Annotated std::condition_variable over gred::Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `lock`'s mutex and blocks; the mutex is held
  /// again when wait returns. Callers re-test their condition in an
  /// explicit while loop (see header comment).
  void wait(MutexLock& lock) { cv_.wait(lock.lk_); }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gred
