// Clang thread-safety-analysis macros plus the hot-path markers the
// static-analysis tooling keys on (DESIGN.md §13).
//
// The GRED_* thread-safety macros expand to Clang's capability
// attributes under Clang and to nothing elsewhere, so GCC builds are
// unaffected while Clang builds (-Wthread-safety, enabled by the
// top-level CMakeLists for Clang) verify the lock discipline at
// compile time. libstdc++'s std::mutex carries no capability
// annotations, so the analysis only sees locks taken through the
// annotated wrappers in common/mutex.hpp — the lint.threadsafety gate
// (tools/threadsafety_check.py) enforces that library code uses them.
//
// GRED_HOT_PATH / GRED_COLD_PATH are consumed by tools/hotpath_check.py:
// a GRED_HOT_PATH function is a verification root whose whole
// transitive call closure must be allocation-, lock-, and block-free;
// a GRED_COLD_PATH function is a deliberate, documented exit from the
// hot path (plan rebuild, failure-status construction, storage
// mutation) at which the closure walk prunes. Cold functions are
// forced out of line so the pruning boundary exists in the compiler's
// emitted call graph, and must carry a `// cold:` justification
// comment (enforced by tools/lint.py).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define GRED_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GRED_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" by convention).
#define GRED_CAPABILITY(x) GRED_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires on construction, releases on
/// destruction (MutexLock).
#define GRED_SCOPED_CAPABILITY GRED_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define GRED_GUARDED_BY(x) GRED_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by `x` (the pointer
/// itself may be read freely).
#define GRED_PT_GUARDED_BY(x) GRED_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the listed
/// capabilities (private helpers called under the owner's lock).
#define GRED_REQUIRES(...) \
  GRED_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must NOT be called while holding the listed
/// capabilities (public entry points that lock internally).
#define GRED_EXCLUDES(...) GRED_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and holds it on return.
#define GRED_ACQUIRE(...) \
  GRED_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define GRED_RELEASE(...) \
  GRED_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that tries to acquire; `b` is the success return value.
#define GRED_TRY_ACQUIRE(b, ...) \
  GRED_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Asserts (at runtime, by contract) that the capability is held.
#define GRED_ASSERT_CAPABILITY(x) \
  GRED_THREAD_ANNOTATION(assert_capability(x))

/// Function returning a reference to the capability guarding its
/// result.
#define GRED_RETURN_CAPABILITY(x) GRED_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch. Every use must carry a comment justifying why the
/// analysis cannot see the invariant (tools/lint.py: `// tsa:`).
#define GRED_NO_THREAD_SAFETY_ANALYSIS \
  GRED_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Hot-path markers (tools/hotpath_check.py).

#if defined(__GNUC__) || defined(__clang__)
/// Verification root: the transitive call closure of this function
/// must not allocate, lock, or block. tools/hotpath_check.py walks the
/// compiler's emitted call graph from every GRED_HOT_PATH function and
/// fails the build on a reachable operator new / malloc / mutex /
/// condition-variable / sleep / I-O call that is not waived in
/// tools/hotpath_waivers.conf. Also a codegen hint (hot section).
#define GRED_HOT_PATH __attribute__((hot))
/// Deliberate hot-to-cold boundary: the closure walk prunes here.
/// noinline keeps the boundary visible as a call-graph node (an
/// inlined boundary would leak its callees into the hot caller);
/// cold moves the body out of the hot section. Each use carries a
/// `// cold:` justification comment (tools/lint.py).
#define GRED_COLD_PATH __attribute__((cold, noinline))
#else
#define GRED_HOT_PATH
#define GRED_COLD_PATH
#endif
