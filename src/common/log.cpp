#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace gred {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

// relaxed: the level is an independent filter flag; no other data is
// published through it, so no ordering is needed.
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
// relaxed: see set_log_level.
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const std::string& msg) {
  // relaxed: a racing level change may drop or admit one borderline
  // line; the filter itself stays consistent.
  if (static_cast<int>(level) <
      static_cast<int>(g_level.load(std::memory_order_relaxed)))
    return;
  std::fprintf(stderr, "[gred %s] %s\n", level_tag(level), msg.c_str());
}

}  // namespace gred
