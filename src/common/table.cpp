#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace gred {

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto render = [&os](const std::vector<std::string>& row,
                      std::size_t width) {
    for (std::size_t c = 0; c < width; ++c) {
      if (c > 0) os << ",";
      os << csv_escape(c < row.size() ? row[c] : std::string());
    }
    os << "\n";
  };
  render(header_, header_.size());
  for (const auto& row : rows_) render(row, header_.size());
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    return os.str();
  };

  std::ostringstream os;
  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";

  os << sep << "\n" << render_row(header_) << "\n" << sep << "\n";
  for (const auto& row : rows_) os << render_row(row) << "\n";
  os << sep << "\n";
  return os.str();
}

}  // namespace gred
