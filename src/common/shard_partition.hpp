// Shard partitioner: maps n nodes with 2-D virtual positions onto k
// shards as contiguous ranges of a space-filling (Morton / Z-order)
// traversal of the positions. Greedy routing moves between virtually
// adjacent switches, so neighbors along the curve — which are close in
// the plane — usually land in the same shard, keeping most hops
// shard-local. Deterministic: the same (positions, validity, k) input
// always yields the same map, independent of thread or shard count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gred {

/// Morton key of (x, y) after quantizing each normalized coordinate to
/// 21 bits (positions are pre-normalized to [0, 1] by the caller or by
/// partition_by_position below). Interleaves x into even bits.
std::uint64_t morton_key_2d(double x01, double y01);

/// Assigns each of the n nodes (arrays xs/ys, with valid[i] != 0 when
/// node i has a meaningful position) to one of `shards` shards:
/// nodes are ordered by (Morton key of the min/max-normalized
/// position, then id) — invalid-position nodes sort after all valid
/// ones, by id — and the order is cut into `shards` contiguous runs
/// whose sizes differ by at most one. Returns the node -> shard map.
/// `shards` is clamped to [1, n] (n == 0 yields an empty map).
std::vector<std::uint32_t> partition_by_position(
    const double* xs, const double* ys, const unsigned char* valid,
    std::size_t n, std::size_t shards);

}  // namespace gred
