// Deterministic, fast PRNG for simulations: xoshiro256** (Blackman &
// Vigna). Every experiment in this repo seeds its own Rng so results are
// reproducible run-to-run regardless of global state.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace gred {

/// xoshiro256** 1.0 generator. Satisfies std::uniform_random_bit_generator,
/// so it can also drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds via SplitMix64 so that nearby seeds give unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Next raw 64-bit output.
  std::uint64_t operator()() { return next_u64(); }
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0. Unbiased (rejection).
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Marsaglia polar method.
  double next_gaussian();

  /// true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of {0, ..., n-1}.
  std::vector<std::size_t> permutation(std::size_t n);

  /// Forks an independent child stream (useful for per-trial seeding).
  Rng split();

 private:
  std::uint64_t s_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace gred
