// Deterministic preset topologies: the paper's 6-switch P4 testbed
// (Fig. 6) plus standard shapes used by tests and examples.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace gred::topology {

/// The prototype testbed of Section VII-A: 6 P4 switches, each
/// connecting 2 edge servers. The paper does not print the exact link
/// set; we use a 6-ring with its three diagonals (0-3, 1-4, 2-5), a
/// standard small-ISP shape with diameter 2 that matches the reported
/// behaviour (stretch ~1 for both GRED variants).
graph::Graph testbed6();

/// Cycle of n >= 3 nodes.
graph::Graph ring(std::size_t n);

/// Path of n >= 1 nodes.
graph::Graph line(std::size_t n);

/// width x height 4-connected grid.
graph::Graph grid(std::size_t width, std::size_t height);

/// Star: node 0 is the hub of n-1 leaves.
graph::Graph star(std::size_t n);

/// Complete graph on n nodes.
graph::Graph complete(std::size_t n);

}  // namespace gred::topology
