#include "topology/presets.hpp"

namespace gred::topology {

graph::Graph testbed6() {
  graph::Graph g(6);
  // 6-ring...
  for (std::size_t i = 0; i < 6; ++i) {
    (void)g.add_edge(i, (i + 1) % 6);
  }
  // ...with the three diagonals, so every pair is within 2 hops.
  (void)g.add_edge(0, 3);
  (void)g.add_edge(1, 4);
  (void)g.add_edge(2, 5);
  return g;
}

graph::Graph ring(std::size_t n) {
  graph::Graph g(n);
  if (n < 3) return g;
  for (std::size_t i = 0; i < n; ++i) {
    (void)g.add_edge(i, (i + 1) % n);
  }
  return g;
}

graph::Graph line(std::size_t n) {
  graph::Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    (void)g.add_edge(i, i + 1);
  }
  return g;
}

graph::Graph grid(std::size_t width, std::size_t height) {
  graph::Graph g(width * height);
  auto id = [width](std::size_t x, std::size_t y) { return y * width + x; };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) (void)g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) (void)g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

graph::Graph star(std::size_t n) {
  graph::Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    (void)g.add_edge(0, i);
  }
  return g;
}

graph::Graph complete(std::size_t n) {
  graph::Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      (void)g.add_edge(i, j);
    }
  }
  return g;
}

}  // namespace gred::topology
