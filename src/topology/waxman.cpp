#include "topology/waxman.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gred::topology {
namespace {

/// Waxman attachment weight between placed nodes.
double waxman_weight(const geometry::Point2D& a, const geometry::Point2D& b,
                     const WaxmanOptions& options, double max_dist) {
  const double d = geometry::distance(a, b);
  return options.alpha * std::exp(-d / (options.beta * max_dist));
}

/// Picks an index from `weights` with probability proportional to the
/// weight, excluding entries already set to 0.
std::size_t weighted_pick(const std::vector<double>& weights, Rng& rng) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) {
    // All candidates excluded or zero-weight: uniform over non-negative.
    std::vector<std::size_t> viable;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      if (weights[i] >= 0.0) viable.push_back(i);
    }
    return viable[rng.next_below(viable.size())];
  }
  double r = rng.next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace

Result<WaxmanTopology> generate_waxman(const WaxmanOptions& options,
                                       Rng& rng) {
  const std::size_t n = options.node_count;
  if (n == 0) {
    return Error(ErrorCode::kInvalidArgument, "waxman: node_count == 0");
  }
  if (options.min_degree >= n && n > 1) {
    return Error(ErrorCode::kInvalidArgument,
                 "waxman: min_degree must be < node_count");
  }

  WaxmanTopology topo;
  topo.graph = graph::Graph(n);
  topo.placements.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    topo.placements.push_back(
        {rng.uniform(0.0, options.plane_size),
         rng.uniform(0.0, options.plane_size)});
  }
  const double max_dist = options.plane_size * std::sqrt(2.0);
  auto link_weight = [&](std::size_t u, std::size_t v) {
    if (!options.latency_weights) return 1.0;
    return std::max(options.min_latency_ms,
                    geometry::distance(topo.placements[u],
                                       topo.placements[v]) *
                        options.latency_ms_per_unit);
  };

  // Incremental attachment: node i connects to min(i, min_degree)
  // distinct predecessors, Waxman-weighted. This keeps the graph
  // connected by construction.
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t links = std::min(i, options.min_degree);
    std::vector<double> weights(i);
    for (std::size_t j = 0; j < i; ++j) {
      weights[j] = waxman_weight(topo.placements[i], topo.placements[j],
                                 options, max_dist);
    }
    for (std::size_t l = 0; l < links; ++l) {
      const std::size_t j = weighted_pick(weights, rng);
      weights[j] = 0.0;  // no parallel edges
      (void)topo.graph.add_edge(i, j, link_weight(i, j));
    }
  }

  // Patch-up: raise every node to min_degree with Waxman-weighted extra
  // edges (early nodes can be under-connected after the incremental
  // pass).
  for (std::size_t u = 0; u < n; ++u) {
    while (topo.graph.degree(u) < options.min_degree &&
           topo.graph.degree(u) < n - 1) {
      std::vector<double> weights(n, 0.0);
      for (std::size_t v = 0; v < n; ++v) {
        if (v == u || topo.graph.has_edge(u, v)) continue;
        weights[v] = waxman_weight(topo.placements[u], topo.placements[v],
                                   options, max_dist);
      }
      const std::size_t v = weighted_pick(weights, rng);
      if (!topo.graph.add_edge(u, v, link_weight(u, v)).ok()) break;
    }
  }

  return topo;
}

}  // namespace gred::topology
