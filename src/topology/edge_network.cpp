#include "topology/edge_network.hpp"

namespace gred::topology {

EdgeNetwork::EdgeNetwork(graph::Graph switches)
    : switches_(std::move(switches)),
      by_switch_(switches_.node_count()) {}

Result<ServerId> EdgeNetwork::attach_server(SwitchId sw,
                                            std::size_t capacity) {
  if (sw >= switches_.node_count()) {
    return Error(ErrorCode::kOutOfRange,
                 "attach_server: switch id out of range");
  }
  EdgeServer s;
  s.id = servers_.size();
  s.attached_to = sw;
  s.local_index = by_switch_[sw].size();
  s.capacity = capacity;
  // Append-based construction dodges the GCC 12 -Wrestrict false
  // positive on `const char* + std::string&&` (PR105329), which fires
  // under -O2 in some inlining configurations.
  s.name = "h";
  s.name += std::to_string(s.id);
  by_switch_[sw].push_back(s.id);
  servers_.push_back(std::move(s));
  return servers_.back().id;
}

SwitchId EdgeNetwork::add_switch() {
  const SwitchId id = switches_.add_node();
  by_switch_.emplace_back();
  return id;
}

void EdgeNetwork::detach_servers(SwitchId sw) {
  if (sw >= by_switch_.size()) return;
  by_switch_[sw].clear();
}

void EdgeNetwork::truncate(std::size_t switch_count,
                           std::size_t server_count) {
  while (servers_.size() > server_count) {
    const EdgeServer& s = servers_.back();
    // Servers attach in append order, so the victim is the tail of its
    // switch's list and local_index density survives the pop.
    if (s.attached_to < by_switch_.size() &&
        !by_switch_[s.attached_to].empty() &&
        by_switch_[s.attached_to].back() == s.id) {
      by_switch_[s.attached_to].pop_back();
    }
    servers_.pop_back();
  }
  switches_.truncate_nodes(switch_count);
  if (by_switch_.size() > switch_count) by_switch_.resize(switch_count);
}

EdgeNetwork uniform_edge_network(graph::Graph switches,
                                 std::size_t per_switch,
                                 std::size_t capacity) {
  EdgeNetwork net(std::move(switches));
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    for (std::size_t k = 0; k < per_switch; ++k) {
      (void)net.attach_server(sw, capacity);
    }
  }
  return net;
}

EdgeNetwork heterogeneous_edge_network(graph::Graph switches,
                                       const HeterogeneousOptions& options,
                                       Rng& rng) {
  EdgeNetwork net(std::move(switches));
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    const auto count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_servers_per_switch),
        static_cast<std::int64_t>(options.max_servers_per_switch)));
    for (std::size_t k = 0; k < count; ++k) {
      const auto cap = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(options.min_capacity),
          static_cast<std::int64_t>(options.max_capacity)));
      (void)net.attach_server(sw, cap);
    }
  }
  return net;
}

}  // namespace gred::topology
