// An edge network = switch-level topology + edge servers attached to
// switches. This is the substrate both GRED and the Chord baseline run
// on: the paper's simulations attach 10 servers per switch by default
// and also exercise heterogeneous counts and capacities.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gred::topology {

using SwitchId = graph::NodeId;
using ServerId = std::size_t;
inline constexpr ServerId kNoServer = static_cast<ServerId>(-1);

struct EdgeServer {
  ServerId id = kNoServer;     ///< global dense id
  SwitchId attached_to = 0;    ///< switch this server hangs off
  std::size_t local_index = 0; ///< serial number 0..s-1 at its switch
  std::size_t capacity = 0;    ///< storage capacity in items (0 = unbounded)
  std::string name;            ///< "h<id>", for logs and examples
};

/// Topology + servers. Invariant: server ids are dense, and
/// `servers_at(sw)[k].local_index == k` (the serial numbers the
/// terminal switch uses for the H(d) mod s server choice).
class EdgeNetwork {
 public:
  EdgeNetwork() = default;
  explicit EdgeNetwork(graph::Graph switches);

  const graph::Graph& switches() const { return switches_; }
  graph::Graph& mutable_switches() { return switches_; }

  std::size_t switch_count() const { return switches_.node_count(); }
  std::size_t server_count() const { return servers_.size(); }

  /// Attaches a new server to `sw`; returns its global id.
  Result<ServerId> attach_server(SwitchId sw, std::size_t capacity = 0);

  /// Adds a new switch node (dynamics, Section VI); returns its id.
  SwitchId add_switch();

  /// Detaches all servers from `sw` (their records keep their global
  /// ids but no longer appear in servers_at(sw)). Used on switch leave.
  void detach_servers(SwitchId sw);

  /// Drops switches and servers back down to the given counts — the
  /// rollback primitive for a failed add_switch. Only tail entries can
  /// go (ids are dense and append-only), and a dropped server must
  /// belong to a surviving-or-dropped switch's tail, which holds for
  /// the add_switch sequence (servers attach to the new last switch).
  void truncate(std::size_t switch_count, std::size_t server_count);

  const EdgeServer& server(ServerId id) const { return servers_[id]; }
  EdgeServer& mutable_server(ServerId id) { return servers_[id]; }

  /// Global ids of the servers attached to `sw`, ordered by local index.
  const std::vector<ServerId>& servers_at(SwitchId sw) const {
    return by_switch_[sw];
  }

  const std::vector<EdgeServer>& all_servers() const { return servers_; }

 private:
  graph::Graph switches_;
  std::vector<EdgeServer> servers_;
  std::vector<std::vector<ServerId>> by_switch_;
};

/// Attaches exactly `per_switch` servers with `capacity` to every
/// switch (the paper's default: 10 per switch).
EdgeNetwork uniform_edge_network(graph::Graph switches,
                                 std::size_t per_switch,
                                 std::size_t capacity = 0);

struct HeterogeneousOptions {
  std::size_t min_servers_per_switch = 1;
  std::size_t max_servers_per_switch = 10;
  std::size_t min_capacity = 100;
  std::size_t max_capacity = 1000;
};

/// Attaches a random number of servers with random capacities to each
/// switch (the paper: "switches could connect to different numbers of
/// edge servers or servers with different capacity").
EdgeNetwork heterogeneous_edge_network(graph::Graph switches,
                                       const HeterogeneousOptions& options,
                                       Rng& rng);

}  // namespace gred::topology
