// BRITE-style Waxman topology generator (the paper's Section VII-B uses
// "BRITE with the Waxman model ... at the switch level"). Nodes are
// placed uniformly at random in a plane; following BRITE's router-level
// incremental mode, each newly added node attaches to `min_degree`
// distinct existing nodes chosen with probability proportional to the
// Waxman weight
//
//   P(u, v) = alpha * exp( -d(u, v) / (beta * L) )
//
// where d is Euclidean distance and L the maximum possible distance.
// A final patch-up pass adds Waxman-weighted edges until every node has
// degree >= min_degree (matching the paper's "minimal degree of
// switches for interconnection" knob, swept 3..10 in Fig. 9(b)).
#pragma once

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "graph/graph.hpp"

namespace gred::topology {

struct WaxmanOptions {
  std::size_t node_count = 100;
  /// Links added per new node; also the enforced minimum degree.
  std::size_t min_degree = 3;
  double alpha = 0.15;  ///< BRITE default
  double beta = 0.2;    ///< BRITE default
  double plane_size = 1000.0;  ///< nodes placed in [0, plane_size]^2

  /// When true, link weights are propagation latencies derived from
  /// the geographic placements (ms = Euclidean distance *
  /// latency_ms_per_unit, floored at min_latency_ms) instead of unit
  /// hop costs. Enables the latency-aware routing metrics.
  bool latency_weights = false;
  double latency_ms_per_unit = 0.01;
  double min_latency_ms = 0.05;
};

struct WaxmanTopology {
  graph::Graph graph;
  /// Geographic placements used by the Waxman weights (diagnostics; the
  /// GRED virtual space is computed from hop distances, not from these).
  std::vector<geometry::Point2D> placements;
};

/// Generates a connected Waxman graph. Fails when node_count == 0 or
/// min_degree >= node_count.
Result<WaxmanTopology> generate_waxman(const WaxmanOptions& options,
                                       Rng& rng);

}  // namespace gred::topology
