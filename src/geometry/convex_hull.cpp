#include "geometry/convex_hull.hpp"

#include <algorithm>

#include "geometry/predicates.hpp"

namespace gred::geometry {

std::vector<Point2D> convex_hull(std::vector<Point2D> points) {
  std::sort(points.begin(), points.end(), lex_less);
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point2D> hull(2 * n);
  std::size_t k = 0;

  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           signed_area2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           signed_area2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point == first point
  if (hull.size() < 2) {
    // All points coincident after dedup handled above; collinear sets
    // collapse to their extremes.
    hull.assign({points.front(), points.back()});
  }
  return hull;
}

double polygon_area(const std::vector<Point2D>& polygon) {
  double acc = 0.0;
  const std::size_t n = polygon.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point2D& p = polygon[i];
    const Point2D& q = polygon[(i + 1) % n];
    acc += cross(p, q);
  }
  return 0.5 * acc;
}

Point2D polygon_centroid(const std::vector<Point2D>& polygon) {
  double a = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  const std::size_t n = polygon.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point2D& p = polygon[i];
    const Point2D& q = polygon[(i + 1) % n];
    const double w = cross(p, q);
    a += w;
    cx += (p.x + q.x) * w;
    cy += (p.y + q.y) * w;
  }
  if (a == 0.0) {
    // Degenerate polygon: fall back to the vertex average.
    Point2D mean;
    for (const Point2D& p : polygon) mean = mean + p;
    return polygon.empty() ? mean : mean / static_cast<double>(n);
  }
  return {cx / (3.0 * a), cy / (3.0 * a)};
}

}  // namespace gred::geometry
