#include "geometry/cvt.hpp"

#include <algorithm>

namespace gred::geometry {
namespace {

Point2D draw_sample(const CvtOptions& options, Rng& rng) {
  const Rect& d = options.domain;
  if (!options.density) {
    return {rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
  }
  // Rejection sampling against the density bound.
  for (int attempt = 0; attempt < 1024; ++attempt) {
    Point2D p{rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
    const double rho = options.density(p);
    if (rng.next_double() * options.density_bound <= rho) return p;
  }
  // Density nearly zero everywhere; fall back to uniform.
  return {rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
}

}  // namespace

double estimate_cvt_energy(const std::vector<Point2D>& sites,
                           const Rect& domain, std::size_t samples,
                           Rng& rng) {
  if (sites.empty() || samples == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const Point2D p{rng.uniform(domain.min_x, domain.max_x),
                    rng.uniform(domain.min_y, domain.max_y)};
    const std::size_t i = nearest_site(sites, p);
    acc += squared_distance(p, sites[i]);
  }
  return acc / static_cast<double>(samples);
}

CvtResult c_regulation(std::vector<Point2D> sites, const CvtOptions& options,
                       Rng& rng) {
  CvtResult result;
  for (Point2D& s : sites) s = options.domain.clamp(s);
  if (sites.empty()) {
    result.sites = std::move(sites);
    return result;
  }

  std::vector<Point2D> centroid_acc(sites.size());
  std::vector<std::size_t> counts(sites.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(centroid_acc.begin(), centroid_acc.end(), Point2D{});
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    double energy = 0.0;

    for (std::size_t s = 0; s < options.samples_per_iteration; ++s) {
      const Point2D p = draw_sample(options, rng);
      const std::size_t i = nearest_site(sites, p);
      centroid_acc[i] = centroid_acc[i] + p;
      ++counts[i];
      energy += squared_distance(p, sites[i]);
    }
    energy /= static_cast<double>(options.samples_per_iteration);

    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (counts[i] == 0) continue;  // empty cell this round: stay put
      const Point2D centroid =
          centroid_acc[i] / static_cast<double>(counts[i]);
      const Point2D moved =
          sites[i] + (centroid - sites[i]) * options.step;
      sites[i] = options.domain.clamp(moved);
    }

    result.energy_history.push_back(energy);
    result.iterations_run = iter + 1;
    if (options.energy_threshold > 0.0 &&
        energy < options.energy_threshold) {
      break;
    }
  }

  result.sites = std::move(sites);
  return result;
}

}  // namespace gred::geometry
