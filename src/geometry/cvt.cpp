#include "geometry/cvt.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"
#include "geometry/site_grid.hpp"

namespace gred::geometry {
namespace {

Point2D draw_sample(const CvtOptions& options, Rng& rng) {
  const Rect& d = options.domain;
  if (!options.density) {
    return {rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
  }
  // Rejection sampling against the density bound.
  for (int attempt = 0; attempt < 1024; ++attempt) {
    Point2D p{rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
    const double rho = options.density(p);
    if (rng.next_double() * options.density_bound <= rho) return p;
  }
  // Density nearly zero everywhere; fall back to uniform.
  return {rng.uniform(d.min_x, d.max_x), rng.uniform(d.min_y, d.max_y)};
}

/// Samples are drawn in fixed-size blocks so the block layout — and
/// hence each block's RNG stream — depends only on the sample count,
/// never on the thread count. 256 blocks bounds the partial-sum memory;
/// ~128 samples per block keeps enough blocks to feed 8+ threads at the
/// paper's default of 1000 samples per iteration.
std::size_t sample_block_count(std::size_t samples) {
  return std::clamp<std::size_t>((samples + 127) / 128, 1,
                                 std::size_t{256});
}

/// Number of samples block `b` draws: the remainder spreads over the
/// leading blocks.
std::size_t block_size(std::size_t samples, std::size_t blocks,
                       std::size_t b) {
  return samples / blocks + (b < samples % blocks ? 1 : 0);
}

ThreadPool& pool_of(const CvtOptions& options) {
  return options.pool ? *options.pool : global_pool();
}

}  // namespace

double estimate_cvt_energy(const std::vector<Point2D>& sites,
                           const CvtOptions& options, std::size_t samples,
                           Rng& rng) {
  if (sites.empty() || samples == 0) return 0.0;
  const SiteGrid grid(sites, options.domain);
  const std::size_t blocks = sample_block_count(samples);
  const std::uint64_t base_seed = rng.next_u64();
  std::vector<double> partial(blocks, 0.0);
  pool_of(options).parallel_for(
      0, blocks, 1, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t b = lo; b < hi; ++b) {
          Rng block_rng(base_seed + b);
          double acc = 0.0;
          for (std::size_t s = block_size(samples, blocks, b); s > 0; --s) {
            const Point2D p = draw_sample(options, block_rng);
            acc += squared_distance(p, sites[grid.nearest(p)]);
          }
          partial[b] = acc;
        }
      });
  double acc = 0.0;
  for (double e : partial) acc += e;
  return acc / static_cast<double>(samples);
}

CvtResult c_regulation(std::vector<Point2D> sites, const CvtOptions& options,
                       Rng& rng) {
  CvtResult result;
  for (Point2D& s : sites) s = options.domain.clamp(s);
  if (sites.empty()) {
    result.sites = std::move(sites);
    return result;
  }

  ThreadPool& pool = pool_of(options);
  const std::size_t samples = options.samples_per_iteration;
  const std::size_t blocks = sample_block_count(samples);

  // Per-block partial accumulators, reduced in block order below so the
  // floating-point sums are identical for any thread count.
  std::vector<std::vector<Point2D>> block_acc(
      blocks, std::vector<Point2D>(sites.size()));
  std::vector<std::vector<std::size_t>> block_counts(
      blocks, std::vector<std::size_t>(sites.size()));
  std::vector<double> block_energy(blocks);

  std::vector<Point2D> centroid_acc(sites.size());
  std::vector<std::size_t> counts(sites.size());

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    const std::uint64_t iter_seed = rng.next_u64();
    const SiteGrid grid(sites, options.domain);

    pool.parallel_for(0, blocks, 1, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t b = lo; b < hi; ++b) {
        std::fill(block_acc[b].begin(), block_acc[b].end(), Point2D{});
        std::fill(block_counts[b].begin(), block_counts[b].end(),
                  std::size_t{0});
        Rng block_rng(iter_seed + b);
        double energy = 0.0;
        for (std::size_t s = block_size(samples, blocks, b); s > 0; --s) {
          const Point2D p = draw_sample(options, block_rng);
          const std::size_t i = grid.nearest(p);
          block_acc[b][i] = block_acc[b][i] + p;
          ++block_counts[b][i];
          energy += squared_distance(p, sites[i]);
        }
        block_energy[b] = energy;
      }
    });

    std::fill(centroid_acc.begin(), centroid_acc.end(), Point2D{});
    std::fill(counts.begin(), counts.end(), std::size_t{0});
    double energy = 0.0;
    for (std::size_t b = 0; b < blocks; ++b) {
      for (std::size_t i = 0; i < sites.size(); ++i) {
        centroid_acc[i] = centroid_acc[i] + block_acc[b][i];
        counts[i] += block_counts[b][i];
      }
      energy += block_energy[b];
    }
    energy /= static_cast<double>(samples);

    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (counts[i] == 0) continue;  // empty cell this round: stay put
      const Point2D centroid =
          centroid_acc[i] / static_cast<double>(counts[i]);
      const Point2D moved =
          sites[i] + (centroid - sites[i]) * options.step;
      sites[i] = options.domain.clamp(moved);
    }

    result.energy_history.push_back(energy);
    result.iterations_run = iter + 1;
    if (options.energy_threshold > 0.0 &&
        energy < options.energy_threshold) {
      break;
    }
    if (options.energy_delta_tolerance > 0.0 && iter > 0) {
      const double prev = result.energy_history[iter - 1];
      if (std::abs(prev - energy) <= options.energy_delta_tolerance * energy) {
        break;
      }
    }
  }

  result.sites = std::move(sites);
  return result;
}

}  // namespace gred::geometry
