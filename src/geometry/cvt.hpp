// The paper's C-regulation method (Section IV-B, Algorithm 1): a
// sampling-based Centroidal Voronoi Tessellation refinement. Each
// iteration draws sample points from the domain density (1000 by
// default, as in the paper), assigns each to its nearest site, and
// moves every site toward the centroid of its assigned samples. The
// discrete CVT energy (mean squared sample-to-site distance) decreases
// until the site set approximates a CVT, equalizing the Voronoi cell
// sizes and hence the hash load on switches.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "geometry/voronoi.hpp"

namespace gred {
class ThreadPool;
}

namespace gred::geometry {

struct CvtOptions {
  /// Sample points drawn per iteration (the paper uses 1000; "that can
  /// be more").
  std::size_t samples_per_iteration = 1000;
  /// Maximum iterations T (the paper sweeps T in Fig. 11(c)).
  std::size_t max_iterations = 50;
  /// Early stop when the discrete CVT energy estimate drops below this;
  /// 0 disables the energy termination (pure iteration count).
  double energy_threshold = 0.0;
  /// Early stop when the energy moved by less than this fraction of
  /// itself between consecutive iterations (|E_prev - E| <= tol * E);
  /// 0 disables. Warm-started refinement after a dynamics event sets
  /// this so a near-converged site set stops after a few iterations.
  double energy_delta_tolerance = 0.0;
  /// Fractional step toward the sample centroid per iteration; 1.0 is
  /// the classic Lloyd/MacQueen full step.
  double step = 1.0;
  /// Domain of the virtual space.
  Rect domain;
  /// Optional density rho(p) over the domain (default: uniform). Must
  /// be bounded by `density_bound` for rejection sampling.
  std::function<double(const Point2D&)> density;
  double density_bound = 1.0;
  /// Pool the sampling loop fans out on; null means the global
  /// GRED_THREADS pool. Results are bit-identical for any thread count:
  /// samples are drawn in fixed blocks, each from its own RNG stream
  /// keyed on (seed, iteration, block), and the per-block partial sums
  /// are reduced in block order.
  ThreadPool* pool = nullptr;
};

struct CvtResult {
  std::vector<Point2D> sites;
  /// Discrete CVT energy estimate after each executed iteration.
  std::vector<double> energy_history;
  std::size_t iterations_run = 0;
};

/// Runs C-regulation on `sites`. Sites outside the domain are clamped
/// into it first (MDS output is normalized before this is called, but
/// the clamp keeps the function total).
CvtResult c_regulation(std::vector<Point2D> sites, const CvtOptions& options,
                       Rng& rng);

/// Monte-Carlo estimate of the CVT energy of a site set,
/// E = (1/S) * sum over samples r of |r - nearest_site(r)|^2, with
/// samples drawn from the same distribution (domain + density) that
/// c_regulation minimizes over.
double estimate_cvt_energy(const std::vector<Point2D>& sites,
                           const CvtOptions& options, std::size_t samples,
                           Rng& rng);

}  // namespace gred::geometry
