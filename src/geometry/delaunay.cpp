#include "geometry/delaunay.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "geometry/predicates.hpp"

namespace gred::geometry {
namespace {

bool all_collinear(const std::vector<Point2D>& pts) {
  if (pts.size() < 3) return true;
  // Find two distinct points, then test the rest against their line.
  const Point2D& a = pts[0];
  std::size_t second = 1;
  while (second < pts.size() && pts[second] == a) ++second;
  if (second == pts.size()) return true;
  const Point2D& b = pts[second];
  for (std::size_t i = second + 1; i < pts.size(); ++i) {
    if (orient2d(a, b, pts[i]) != Orientation::kCollinear) return false;
  }
  return true;
}

}  // namespace

/// Conflict test: is `p` inside the (possibly unbounded) circumdisk of
/// face `t`? For ghost faces this is the CGAL-style rule — the open
/// half-plane strictly right of the directed hull edge, plus the closed
/// segment for points on its supporting line.
static bool face_in_conflict(const std::vector<Point2D>& pts, std::size_t a,
                             std::size_t b, std::size_t c,
                             std::size_t ghost_vertex, const Point2D& p) {
  if (c != ghost_vertex) {
    return in_circumcircle(pts[a], pts[b], pts[c], p);
  }
  const Point2D& pa = pts[a];
  const Point2D& pb = pts[b];
  switch (orient2d(pa, pb, p)) {
    case Orientation::kClockwise:
      return true;  // strictly outside the hull across this edge
    case Orientation::kCollinear:
      // On the supporting line: conflict only when between a and b
      // (i.e., on the hull edge itself).
      return dot(p - pa, p - pb) <= 0.0;
    case Orientation::kCounterClockwise:
      return false;
  }
  return false;
}

Status DelaunayTriangulation::insert_into_faces(
    const std::vector<Point2D>& pts, std::vector<Face>& faces, std::size_t idx,
    std::vector<std::size_t>* cavity) {
  const Point2D& p = pts[idx];

  using Edge = std::pair<std::size_t, std::size_t>;  // undirected key
  auto canon = [](std::size_t x, std::size_t y) {
    return x < y ? Edge{x, y} : Edge{y, x};
  };

  // Bowyer-Watson cavity over finite and ghost faces.
  std::vector<Face> keep;
  keep.reserve(faces.size());
  std::map<Edge, int> edge_count;
  // For rim edges (x, ghost): whether x was the SOURCE of the removed
  // ghost's directed hull edge (decides the new ghost's direction).
  std::map<std::size_t, bool> ghost_source;
  bool any_conflict = false;

  for (const Face& t : faces) {
    if (!face_in_conflict(pts, t.a, t.b, t.c, kGhostVertex, p)) {
      keep.push_back(t);
      continue;
    }
    any_conflict = true;
    if (cavity != nullptr) {
      if (t.a != kGhostVertex) cavity->push_back(t.a);
      if (t.b != kGhostVertex) cavity->push_back(t.b);
      if (t.c != kGhostVertex) cavity->push_back(t.c);
    }
    ++edge_count[canon(t.a, t.b)];
    ++edge_count[canon(t.b, t.c)];
    ++edge_count[canon(t.c, t.a)];
    if (t.c == kGhostVertex) {
      // When a vertex is source in one removed ghost and target in
      // another, both its (x, ghost) edges are gone (count 2) and the
      // direction is irrelevant.
      ghost_source[t.a] = true;          // t.a is source of edge a->b
      ghost_source.emplace(t.b, false);  // t.b is target
    }
  }
  if (!any_conflict) {
    // With exact predicates this cannot happen for a point not already
    // in the triangulation; fail loudly rather than silently skip.
    return Status(ErrorCode::kInternal,
                  "DelaunayTriangulation: insertion found no conflict "
                  "region for point " +
                      p.to_string());
  }

  faces = std::move(keep);
  for (const auto& [edge, count] : edge_count) {
    if (count != 1) continue;
    if (edge.second == kGhostVertex) {
      // Hull vertex x keeps contact with infinity: new ghost edge
      // oriented by x's role in the removed ghost.
      const std::size_t x = edge.first;
      const bool was_source = ghost_source.count(x) ? ghost_source[x] : true;
      if (was_source) {
        faces.push_back({x, idx, kGhostVertex});
      } else {
        faces.push_back({idx, x, kGhostVertex});
      }
    } else {
      Face t{edge.first, edge.second, idx};
      if (orient2d(pts[t.a], pts[t.b], pts[t.c]) ==
          Orientation::kCollinear) {
        // Exactly collinear rim edge: p extends the hull along this
        // line; the edge stays on the hull, handled by ghost edges.
        continue;
      }
      // Orient with the quad-precision predicate: for sliver triangles
      // (near-collinear sites) the naive double signed_area2 returns
      // sign noise, and one mis-oriented face corrupts every later
      // cavity walk (found by fuzz/fuzz_delaunay.cpp).
      if (orient2d(pts[t.a], pts[t.b], pts[t.c]) ==
          Orientation::kClockwise) {
        std::swap(t.b, t.c);  // make counter-clockwise
      }
      faces.push_back(t);
    }
  }
  return Status::Ok();
}

Result<DelaunayTriangulation> DelaunayTriangulation::build(
    std::vector<Point2D> points, Rng* rng) {
  // Reject duplicates: the nearest-site map would be ambiguous.
  {
    std::vector<Point2D> sorted = points;
    std::sort(sorted.begin(), sorted.end(), lex_less);
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] == sorted[i - 1]) {
        return Error(ErrorCode::kInvalidArgument,
                     "DelaunayTriangulation: duplicate point " +
                         sorted[i].to_string());
      }
    }
  }

  DelaunayTriangulation dt;
  dt.points_ = std::move(points);
  const std::size_t n = dt.points_.size();
  dt.adjacency_.assign(n, {});

  if (n <= 1) return dt;
  if (n == 2) {
    dt.adjacency_[0] = {1};
    dt.adjacency_[1] = {0};
    return dt;
  }

  if (all_collinear(dt.points_)) {
    // Degenerate: connect consecutive points along the line so greedy
    // routing still works in 1-D.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return lex_less(dt.points_[x], dt.points_[y]);
    });
    for (std::size_t i = 0; i + 1 < n; ++i) {
      dt.adjacency_[order[i]].push_back(order[i + 1]);
      dt.adjacency_[order[i + 1]].push_back(order[i]);
    }
    for (auto& adj : dt.adjacency_) std::sort(adj.begin(), adj.end());
    return dt;
  }

  const std::vector<Point2D>& pts = dt.points_;

  // Randomized insertion order (Section IV-C: "points are inserted in
  // random order").
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (rng != nullptr) {
    rng->shuffle(order);
  } else {
    Rng fallback(0x6d5a3f0c9b1e4a27ULL ^ n);
    fallback.shuffle(order);
  }

  // Bootstrap: move a non-collinear triple to the front of the order.
  {
    std::size_t k = 2;
    while (k < n && orient2d(pts[order[0]], pts[order[1]], pts[order[k]]) ==
                        Orientation::kCollinear) {
      ++k;
    }
    // all_collinear() was false, so k < n.
    std::swap(order[2], order[k]);
  }

  dt.faces_.clear();
  {
    Face seed{order[0], order[1], order[2]};
    if (orient2d(pts[seed.a], pts[seed.b], pts[seed.c]) ==
        Orientation::kClockwise) {
      std::swap(seed.b, seed.c);
    }
    // For a CCW triangle the interior is on the left of each directed
    // edge, so the ghost faces carry the edges as-is.
    dt.faces_.push_back(seed);
    dt.faces_.push_back({seed.a, seed.b, kGhostVertex});
    dt.faces_.push_back({seed.b, seed.c, kGhostVertex});
    dt.faces_.push_back({seed.c, seed.a, kGhostVertex});
  }

  for (std::size_t oi = 3; oi < n; ++oi) {
    const Status inserted = insert_into_faces(pts, dt.faces_, order[oi]);
    if (!inserted.ok()) return inserted.error();
  }

  dt.maintainable_ = true;
  dt.refresh_from_faces();
  return dt;
}

Result<std::size_t> DelaunayTriangulation::insert(const Point2D& p,
                                                  RepairInfo* repair) {
  if (repair != nullptr) {
    repair->localized = false;
    repair->affected.clear();
  }
  for (const Point2D& q : points_) {
    if (q == p) {
      return Error(ErrorCode::kInvalidArgument,
                   "DelaunayTriangulation::insert: duplicate point " +
                       p.to_string());
    }
  }

  if (!maintainable_) {
    // Degenerate state (tiny or collinear): rebuild from scratch.
    std::vector<Point2D> pts = points_;
    pts.push_back(p);
    auto rebuilt = build(std::move(pts));
    if (!rebuilt.ok()) return rebuilt.error();
    *this = std::move(rebuilt).value();
    return points_.size() - 1;
  }

  points_.push_back(p);
  const std::size_t idx = points_.size() - 1;
  std::vector<std::size_t> cavity;
  const Status inserted = insert_into_faces(
      points_, faces_, idx, repair != nullptr ? &cavity : nullptr);
  if (!inserted.ok()) {
    points_.pop_back();
    return inserted.error();
  }
  refresh_from_faces();
  if (repair != nullptr) {
    cavity.push_back(idx);
    std::sort(cavity.begin(), cavity.end());
    cavity.erase(std::unique(cavity.begin(), cavity.end()), cavity.end());
    repair->localized = true;
    repair->affected = std::move(cavity);
  }
  return idx;
}

Status DelaunayTriangulation::rebuild_without(std::size_t idx) {
  std::vector<Point2D> pts = points_;
  pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(idx));
  auto rebuilt = build(std::move(pts));
  if (!rebuilt.ok()) return rebuilt.error();
  *this = std::move(rebuilt).value();
  return Status::Ok();
}

Status DelaunayTriangulation::remove(std::size_t idx, RepairInfo* repair) {
  if (repair != nullptr) {
    repair->localized = false;
    repair->affected.clear();
  }
  if (idx >= points_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "DelaunayTriangulation::remove: index out of range");
  }

  // Degenerate or tiny states: adjacency-only representation, rebuild.
  if (!maintainable_ || points_.size() <= 4) return rebuild_without(idx);

  // Hull sites (any ghost face mentions them) change the hull shape;
  // repairing those locally needs the ghost ring rebuilt, which the
  // ear-clipping below does not do. Fall back to a full rebuild.
  for (const Face& f : faces_) {
    if (f.c == kGhostVertex && (f.a == idx || f.b == idx)) {
      return rebuild_without(idx);
    }
  }

  // Interior site: delete the incident faces and re-triangulate the
  // star polygon by Delaunay ear clipping. Collect the link ring in CCW
  // order by chaining the directed opposite edges of incident faces.
  std::map<std::size_t, std::size_t> ring_next;
  for (const Face& f : faces_) {
    if (f.c == kGhostVertex || !(f.a == idx || f.b == idx || f.c == idx)) {
      continue;
    }
    // CCW face (v, a, b): a -> b is the opposite edge, directed CCW
    // around v.
    std::size_t a, b;
    if (f.a == idx) {
      a = f.b;
      b = f.c;
    } else if (f.b == idx) {
      a = f.c;
      b = f.a;
    } else {
      a = f.a;
      b = f.b;
    }
    ring_next[a] = b;
  }
  if (ring_next.size() < 3) return rebuild_without(idx);

  std::vector<std::size_t> ring;
  ring.reserve(ring_next.size());
  std::size_t cur = ring_next.begin()->first;
  for (std::size_t step = 0; step < ring_next.size(); ++step) {
    ring.push_back(cur);
    const auto it = ring_next.find(cur);
    if (it == ring_next.end()) return rebuild_without(idx);
    cur = it->second;
  }
  // The walk must close into a single cycle covering every ring vertex.
  if (cur != ring.front()) return rebuild_without(idx);

  // Ear clipping: repeatedly clip a convex corner whose circumdisk is
  // empty of the remaining ring vertices. The hole filling of a deleted
  // Delaunay vertex has every triangle's circumdisk empty of ALL ring
  // vertices, so a final verification pass against the full ring
  // certifies the result; any failure (degenerate ring) falls back.
  const std::vector<std::size_t> full_ring = ring;
  std::vector<Face> ears;
  ears.reserve(ring.size() - 2);
  while (ring.size() > 3) {
    bool clipped = false;
    for (std::size_t i = 0; i < ring.size(); ++i) {
      const std::size_t a = ring[(i + ring.size() - 1) % ring.size()];
      const std::size_t b = ring[i];
      const std::size_t c = ring[(i + 1) % ring.size()];
      if (orient2d(points_[a], points_[b], points_[c]) !=
          Orientation::kCounterClockwise) {
        continue;
      }
      bool empty = true;
      for (const std::size_t r : ring) {
        if (r == a || r == b || r == c) continue;
        if (in_circumcircle(points_[a], points_[b], points_[c], points_[r])) {
          empty = false;
          break;
        }
      }
      if (!empty) continue;
      ears.push_back({a, b, c});
      ring.erase(ring.begin() + static_cast<std::ptrdiff_t>(i));
      clipped = true;
      break;
    }
    if (!clipped) return rebuild_without(idx);
  }
  if (orient2d(points_[ring[0]], points_[ring[1]], points_[ring[2]]) !=
      Orientation::kCounterClockwise) {
    return rebuild_without(idx);
  }
  ears.push_back({ring[0], ring[1], ring[2]});
  for (const Face& e : ears) {
    for (const std::size_t r : full_ring) {
      if (r == e.a || r == e.b || r == e.c) continue;
      if (in_circumcircle(points_[e.a], points_[e.b], points_[e.c],
                          points_[r])) {
        return rebuild_without(idx);
      }
    }
  }

  // Commit: drop the incident faces, add the ears, erase the site and
  // shift the indices above it down by one (ghost markers excluded).
  std::vector<Face> next_faces;
  next_faces.reserve(faces_.size());
  for (const Face& f : faces_) {
    if (f.c != kGhostVertex && (f.a == idx || f.b == idx || f.c == idx)) {
      continue;
    }
    next_faces.push_back(f);
  }
  next_faces.insert(next_faces.end(), ears.begin(), ears.end());
  const auto compact = [idx](std::size_t v) {
    return (v != kGhostVertex && v > idx) ? v - 1 : v;
  };
  for (Face& f : next_faces) {
    f.a = compact(f.a);
    f.b = compact(f.b);
    f.c = compact(f.c);
  }
  faces_ = std::move(next_faces);
  points_.erase(points_.begin() + static_cast<std::ptrdiff_t>(idx));
  refresh_from_faces();

  if (repair != nullptr) {
    repair->localized = true;
    repair->affected = full_ring;
    for (std::size_t& v : repair->affected) v = compact(v);
    std::sort(repair->affected.begin(), repair->affected.end());
  }
  return Status::Ok();
}

void DelaunayTriangulation::refresh_from_faces() {
  triangles_.clear();
  for (const Face& t : faces_) {
    if (t.c == kGhostVertex) continue;
    triangles_.push_back(Triangle{{t.a, t.b, t.c}});
  }
  build_adjacency();
}

void DelaunayTriangulation::build_adjacency() {
  adjacency_.assign(points_.size(), {});
  for (const Triangle& t : triangles_) {
    for (int i = 0; i < 3; ++i) {
      const std::size_t u = t.v[i];
      const std::size_t v = t.v[(i + 1) % 3];
      adjacency_[u].push_back(v);
      adjacency_[v].push_back(u);
    }
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

bool DelaunayTriangulation::are_neighbors(std::size_t i, std::size_t j) const {
  const auto& adj = adjacency_[i];
  return std::binary_search(adj.begin(), adj.end(), j);
}

std::size_t DelaunayTriangulation::edge_count() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

std::size_t DelaunayTriangulation::nearest_site(const Point2D& p) const {
  std::size_t best = kNoSite;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (best == kNoSite || closer_to(p, points_[i], points_[best])) {
      best = i;
    }
  }
  return best;
}

std::size_t DelaunayTriangulation::greedy_next(std::size_t from,
                                               const Point2D& p) const {
  std::size_t best = kNoSite;
  for (std::size_t nb : adjacency_[from]) {
    if (best == kNoSite || closer_to(p, points_[nb], points_[best])) {
      best = nb;
    }
  }
  if (best == kNoSite) return kNoSite;
  // Advance only when strictly better than the current node under the
  // same total order (distance, then position rank).
  if (closer_to(p, points_[best], points_[from])) return best;
  return kNoSite;
}

std::vector<std::size_t> DelaunayTriangulation::greedy_route(
    std::size_t from, const Point2D& p) const {
  std::vector<std::size_t> path{from};
  std::size_t cur = from;
  // The walk strictly decreases distance-to-p, so it must terminate in
  // at most |sites| steps; the bound is a defensive guard.
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const std::size_t nxt = greedy_next(cur, p);
    if (nxt == kNoSite) break;
    path.push_back(nxt);
    cur = nxt;
  }
  return path;
}

bool DelaunayTriangulation::is_valid_delaunay() const {
  for (const Triangle& t : triangles_) {
    const Point2D& a = points_[t.v[0]];
    const Point2D& b = points_[t.v[1]];
    const Point2D& c = points_[t.v[2]];
    if (orient2d(a, b, c) != Orientation::kCounterClockwise) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (t.has_vertex(i)) continue;
      if (in_circumcircle(a, b, c, points_[i])) return false;
    }
  }
  return true;
}

}  // namespace gred::geometry
