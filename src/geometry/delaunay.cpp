#include "geometry/delaunay.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "geometry/predicates.hpp"

namespace gred::geometry {
namespace {

bool all_collinear(const std::vector<Point2D>& pts) {
  if (pts.size() < 3) return true;
  // Find two distinct points, then test the rest against their line.
  const Point2D& a = pts[0];
  std::size_t second = 1;
  while (second < pts.size() && pts[second] == a) ++second;
  if (second == pts.size()) return true;
  const Point2D& b = pts[second];
  for (std::size_t i = second + 1; i < pts.size(); ++i) {
    if (orient2d(a, b, pts[i]) != Orientation::kCollinear) return false;
  }
  return true;
}

}  // namespace

/// Conflict test: is `p` inside the (possibly unbounded) circumdisk of
/// face `t`? For ghost faces this is the CGAL-style rule — the open
/// half-plane strictly right of the directed hull edge, plus the closed
/// segment for points on its supporting line.
static bool face_in_conflict(const std::vector<Point2D>& pts, std::size_t a,
                             std::size_t b, std::size_t c,
                             std::size_t ghost_vertex, const Point2D& p) {
  if (c != ghost_vertex) {
    return in_circumcircle(pts[a], pts[b], pts[c], p);
  }
  const Point2D& pa = pts[a];
  const Point2D& pb = pts[b];
  switch (orient2d(pa, pb, p)) {
    case Orientation::kClockwise:
      return true;  // strictly outside the hull across this edge
    case Orientation::kCollinear:
      // On the supporting line: conflict only when between a and b
      // (i.e., on the hull edge itself).
      return dot(p - pa, p - pb) <= 0.0;
    case Orientation::kCounterClockwise:
      return false;
  }
  return false;
}

Status DelaunayTriangulation::insert_into_faces(
    const std::vector<Point2D>& pts, std::vector<Face>& faces,
    std::size_t idx) {
  const Point2D& p = pts[idx];

  using Edge = std::pair<std::size_t, std::size_t>;  // undirected key
  auto canon = [](std::size_t x, std::size_t y) {
    return x < y ? Edge{x, y} : Edge{y, x};
  };

  // Bowyer-Watson cavity over finite and ghost faces.
  std::vector<Face> keep;
  keep.reserve(faces.size());
  std::map<Edge, int> edge_count;
  // For rim edges (x, ghost): whether x was the SOURCE of the removed
  // ghost's directed hull edge (decides the new ghost's direction).
  std::map<std::size_t, bool> ghost_source;
  bool any_conflict = false;

  for (const Face& t : faces) {
    if (!face_in_conflict(pts, t.a, t.b, t.c, kGhostVertex, p)) {
      keep.push_back(t);
      continue;
    }
    any_conflict = true;
    ++edge_count[canon(t.a, t.b)];
    ++edge_count[canon(t.b, t.c)];
    ++edge_count[canon(t.c, t.a)];
    if (t.c == kGhostVertex) {
      // When a vertex is source in one removed ghost and target in
      // another, both its (x, ghost) edges are gone (count 2) and the
      // direction is irrelevant.
      ghost_source[t.a] = true;          // t.a is source of edge a->b
      ghost_source.emplace(t.b, false);  // t.b is target
    }
  }
  if (!any_conflict) {
    // With exact predicates this cannot happen for a point not already
    // in the triangulation; fail loudly rather than silently skip.
    return Status(ErrorCode::kInternal,
                  "DelaunayTriangulation: insertion found no conflict "
                  "region for point " +
                      p.to_string());
  }

  faces = std::move(keep);
  for (const auto& [edge, count] : edge_count) {
    if (count != 1) continue;
    if (edge.second == kGhostVertex) {
      // Hull vertex x keeps contact with infinity: new ghost edge
      // oriented by x's role in the removed ghost.
      const std::size_t x = edge.first;
      const bool was_source = ghost_source.count(x) ? ghost_source[x] : true;
      if (was_source) {
        faces.push_back({x, idx, kGhostVertex});
      } else {
        faces.push_back({idx, x, kGhostVertex});
      }
    } else {
      Face t{edge.first, edge.second, idx};
      if (orient2d(pts[t.a], pts[t.b], pts[t.c]) ==
          Orientation::kCollinear) {
        // Exactly collinear rim edge: p extends the hull along this
        // line; the edge stays on the hull, handled by ghost edges.
        continue;
      }
      // Orient with the quad-precision predicate: for sliver triangles
      // (near-collinear sites) the naive double signed_area2 returns
      // sign noise, and one mis-oriented face corrupts every later
      // cavity walk (found by fuzz/fuzz_delaunay.cpp).
      if (orient2d(pts[t.a], pts[t.b], pts[t.c]) ==
          Orientation::kClockwise) {
        std::swap(t.b, t.c);  // make counter-clockwise
      }
      faces.push_back(t);
    }
  }
  return Status::Ok();
}

Result<DelaunayTriangulation> DelaunayTriangulation::build(
    std::vector<Point2D> points, Rng* rng) {
  // Reject duplicates: the nearest-site map would be ambiguous.
  {
    std::vector<Point2D> sorted = points;
    std::sort(sorted.begin(), sorted.end(), lex_less);
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i] == sorted[i - 1]) {
        return Error(ErrorCode::kInvalidArgument,
                     "DelaunayTriangulation: duplicate point " +
                         sorted[i].to_string());
      }
    }
  }

  DelaunayTriangulation dt;
  dt.points_ = std::move(points);
  const std::size_t n = dt.points_.size();
  dt.adjacency_.assign(n, {});

  if (n <= 1) return dt;
  if (n == 2) {
    dt.adjacency_[0] = {1};
    dt.adjacency_[1] = {0};
    return dt;
  }

  if (all_collinear(dt.points_)) {
    // Degenerate: connect consecutive points along the line so greedy
    // routing still works in 1-D.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
      return lex_less(dt.points_[x], dt.points_[y]);
    });
    for (std::size_t i = 0; i + 1 < n; ++i) {
      dt.adjacency_[order[i]].push_back(order[i + 1]);
      dt.adjacency_[order[i + 1]].push_back(order[i]);
    }
    for (auto& adj : dt.adjacency_) std::sort(adj.begin(), adj.end());
    return dt;
  }

  const std::vector<Point2D>& pts = dt.points_;

  // Randomized insertion order (Section IV-C: "points are inserted in
  // random order").
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (rng != nullptr) {
    rng->shuffle(order);
  } else {
    Rng fallback(0x6d5a3f0c9b1e4a27ULL ^ n);
    fallback.shuffle(order);
  }

  // Bootstrap: move a non-collinear triple to the front of the order.
  {
    std::size_t k = 2;
    while (k < n && orient2d(pts[order[0]], pts[order[1]], pts[order[k]]) ==
                        Orientation::kCollinear) {
      ++k;
    }
    // all_collinear() was false, so k < n.
    std::swap(order[2], order[k]);
  }

  dt.faces_.clear();
  {
    Face seed{order[0], order[1], order[2]};
    if (orient2d(pts[seed.a], pts[seed.b], pts[seed.c]) ==
        Orientation::kClockwise) {
      std::swap(seed.b, seed.c);
    }
    // For a CCW triangle the interior is on the left of each directed
    // edge, so the ghost faces carry the edges as-is.
    dt.faces_.push_back(seed);
    dt.faces_.push_back({seed.a, seed.b, kGhostVertex});
    dt.faces_.push_back({seed.b, seed.c, kGhostVertex});
    dt.faces_.push_back({seed.c, seed.a, kGhostVertex});
  }

  for (std::size_t oi = 3; oi < n; ++oi) {
    const Status inserted = insert_into_faces(pts, dt.faces_, order[oi]);
    if (!inserted.ok()) return inserted.error();
  }

  dt.maintainable_ = true;
  dt.refresh_from_faces();
  return dt;
}

Result<std::size_t> DelaunayTriangulation::insert(const Point2D& p) {
  for (const Point2D& q : points_) {
    if (q == p) {
      return Error(ErrorCode::kInvalidArgument,
                   "DelaunayTriangulation::insert: duplicate point " +
                       p.to_string());
    }
  }

  if (!maintainable_) {
    // Degenerate state (tiny or collinear): rebuild from scratch.
    std::vector<Point2D> pts = points_;
    pts.push_back(p);
    auto rebuilt = build(std::move(pts));
    if (!rebuilt.ok()) return rebuilt.error();
    *this = std::move(rebuilt).value();
    return points_.size() - 1;
  }

  points_.push_back(p);
  const std::size_t idx = points_.size() - 1;
  const Status inserted = insert_into_faces(points_, faces_, idx);
  if (!inserted.ok()) {
    points_.pop_back();
    return inserted.error();
  }
  refresh_from_faces();
  return idx;
}

void DelaunayTriangulation::refresh_from_faces() {
  triangles_.clear();
  for (const Face& t : faces_) {
    if (t.c == kGhostVertex) continue;
    triangles_.push_back(Triangle{{t.a, t.b, t.c}});
  }
  build_adjacency();
}

void DelaunayTriangulation::build_adjacency() {
  adjacency_.assign(points_.size(), {});
  for (const Triangle& t : triangles_) {
    for (int i = 0; i < 3; ++i) {
      const std::size_t u = t.v[i];
      const std::size_t v = t.v[(i + 1) % 3];
      adjacency_[u].push_back(v);
      adjacency_[v].push_back(u);
    }
  }
  for (auto& adj : adjacency_) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
}

bool DelaunayTriangulation::are_neighbors(std::size_t i, std::size_t j) const {
  const auto& adj = adjacency_[i];
  return std::binary_search(adj.begin(), adj.end(), j);
}

std::size_t DelaunayTriangulation::edge_count() const {
  std::size_t total = 0;
  for (const auto& adj : adjacency_) total += adj.size();
  return total / 2;
}

std::size_t DelaunayTriangulation::nearest_site(const Point2D& p) const {
  std::size_t best = kNoSite;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (best == kNoSite || closer_to(p, points_[i], points_[best])) {
      best = i;
    }
  }
  return best;
}

std::size_t DelaunayTriangulation::greedy_next(std::size_t from,
                                               const Point2D& p) const {
  std::size_t best = kNoSite;
  for (std::size_t nb : adjacency_[from]) {
    if (best == kNoSite || closer_to(p, points_[nb], points_[best])) {
      best = nb;
    }
  }
  if (best == kNoSite) return kNoSite;
  // Advance only when strictly better than the current node under the
  // same total order (distance, then position rank).
  if (closer_to(p, points_[best], points_[from])) return best;
  return kNoSite;
}

std::vector<std::size_t> DelaunayTriangulation::greedy_route(
    std::size_t from, const Point2D& p) const {
  std::vector<std::size_t> path{from};
  std::size_t cur = from;
  // The walk strictly decreases distance-to-p, so it must terminate in
  // at most |sites| steps; the bound is a defensive guard.
  for (std::size_t step = 0; step < points_.size(); ++step) {
    const std::size_t nxt = greedy_next(cur, p);
    if (nxt == kNoSite) break;
    path.push_back(nxt);
    cur = nxt;
  }
  return path;
}

bool DelaunayTriangulation::is_valid_delaunay() const {
  for (const Triangle& t : triangles_) {
    const Point2D& a = points_[t.v[0]];
    const Point2D& b = points_[t.v[1]];
    const Point2D& c = points_[t.v[2]];
    if (orient2d(a, b, c) != Orientation::kCounterClockwise) return false;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      if (t.has_vertex(i)) continue;
      if (in_circumcircle(a, b, c, points_[i])) return false;
    }
  }
  return true;
}

}  // namespace gred::geometry
