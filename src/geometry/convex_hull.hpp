// Convex hull (Andrew's monotone chain). Used to validate that a
// Delaunay triangulation covers the hull of its sites and by the
// Voronoi clipping diagnostics.
#pragma once

#include <vector>

#include "geometry/point.hpp"

namespace gred::geometry {

/// Returns the hull vertices in counter-clockwise order, without
/// repeating the first point. Collinear input returns the two extreme
/// points; fewer than 3 distinct points are returned as-is (deduped).
std::vector<Point2D> convex_hull(std::vector<Point2D> points);

/// Area of a simple polygon given in counter-clockwise order.
double polygon_area(const std::vector<Point2D>& polygon);

/// Centroid of a simple polygon (counter-clockwise, nonzero area).
Point2D polygon_centroid(const std::vector<Point2D>& polygon);

}  // namespace gred::geometry
