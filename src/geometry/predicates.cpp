#include "geometry/predicates.hpp"

#include <cmath>

namespace gred::geometry {
namespace {

// Quad-precision (113-bit mantissa) determinant evaluation. The virtual
// positions handled here live in [0,1]^2 (plus a bounding super-triangle
// ~1e2 away), so determinant magnitudes stay far above the ~1e-34
// relative error of __float128; the guard epsilon below only has to
// catch *exact* degeneracies (true collinearity / cocircularity), which
// makes the predicates deterministic without full adaptive arithmetic.
using quad = __float128;

quad qabs(quad x) { return x < 0 ? -x : x; }

constexpr quad kEps = 1e-30;

}  // namespace

double signed_area2(const Point2D& a, const Point2D& b, const Point2D& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

Orientation orient2d(const Point2D& a, const Point2D& b, const Point2D& c) {
  const quad det = (quad(b.x) - quad(a.x)) * (quad(c.y) - quad(a.y)) -
                   (quad(b.y) - quad(a.y)) * (quad(c.x) - quad(a.x));
  const quad scale = qabs(quad(b.x) - quad(a.x)) +
                     qabs(quad(b.y) - quad(a.y)) +
                     qabs(quad(c.x) - quad(a.x)) +
                     qabs(quad(c.y) - quad(a.y));
  if (qabs(det) <= kEps * scale * scale) return Orientation::kCollinear;
  return det > 0 ? Orientation::kCounterClockwise : Orientation::kClockwise;
}

bool in_circumcircle(const Point2D& a, const Point2D& b, const Point2D& c,
                     const Point2D& p) {
  const quad ax = quad(a.x) - quad(p.x);
  const quad ay = quad(a.y) - quad(p.y);
  const quad bx = quad(b.x) - quad(p.x);
  const quad by = quad(b.y) - quad(p.y);
  const quad cx = quad(c.x) - quad(p.x);
  const quad cy = quad(c.y) - quad(p.y);

  const quad a2 = ax * ax + ay * ay;
  const quad b2 = bx * bx + by * by;
  const quad c2 = cx * cx + cy * cy;

  const quad det = ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) +
                   a2 * (bx * cy - by * cx);

  const quad scale = a2 + b2 + c2;
  return det > kEps * scale * scale;
}

Point2D circumcenter(const Point2D& a, const Point2D& b, const Point2D& c) {
  const double d =
      2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  const double a2 = a.x * a.x + a.y * a.y;
  const double b2 = b.x * b.x + b.y * b.y;
  const double c2 = c.x * c.x + c.y * c.y;
  const double ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  const double uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  return {ux, uy};
}

bool point_in_triangle(const Point2D& a, const Point2D& b, const Point2D& c,
                       const Point2D& p) {
  const double d1 = signed_area2(a, b, p);
  const double d2 = signed_area2(b, c, p);
  const double d3 = signed_area2(c, a, p);
  const bool has_neg = (d1 < 0) || (d2 < 0) || (d3 < 0);
  const bool has_pos = (d1 > 0) || (d2 > 0) || (d3 > 0);
  return !(has_neg && has_pos);
}

}  // namespace gred::geometry
