#include "geometry/site_grid.hpp"

#include <algorithm>
#include <cmath>

namespace gred::geometry {
namespace {

/// True when candidate `i` beats `best` as "nearest to p": the brute
/// force scans indices ascending and replaces only on closer_to, so
/// among coincident sites the lowest index wins. This predicate makes
/// that a total order independent of scan order.
bool better_candidate(const Point2D& p, const std::vector<Point2D>& sites,
                      std::size_t i, std::size_t best) {
  if (best == kNoSite) return true;
  if (closer_to(p, sites[i], sites[best])) return true;
  return sites[i] == sites[best] && i < best;
}

/// Strict total order "i ranks before j as a neighbor of p": distance,
/// then lexicographic position, then site index — the k-candidate
/// generalization of better_candidate.
bool rank_before(const Point2D& p, const std::vector<Point2D>& sites,
                 std::size_t i, std::size_t j) {
  if (closer_to(p, sites[i], sites[j])) return true;
  return sites[i] == sites[j] && i < j;
}

}  // namespace

SiteGrid::SiteGrid(std::vector<Point2D> sites, const Rect& domain)
    : sites_(std::move(sites)), built_n_(sites_.size()) {
  if (sites_.empty()) return;

  double max_x = domain.max_x;
  double max_y = domain.max_y;
  min_x_ = domain.min_x;
  min_y_ = domain.min_y;
  for (const Point2D& s : sites_) {
    min_x_ = std::min(min_x_, s.x);
    min_y_ = std::min(min_y_, s.y);
    max_x = std::max(max_x, s.x);
    max_y = std::max(max_y, s.y);
  }

  // ~1 site per cell: sqrt(n) cells per axis.
  const auto side = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(sites_.size())));
  nx_ = ny_ = std::max<std::size_t>(1, side);
  const double width = max_x - min_x_;
  const double height = max_y - min_y_;
  cell_w_ = width > 0.0 ? width / static_cast<double>(nx_) : 1.0;
  cell_h_ = height > 0.0 ? height / static_cast<double>(ny_) : 1.0;

  // Counting sort of site indices by cell, ascending within each cell.
  std::vector<std::size_t> cell_of(sites_.size());
  std::vector<std::size_t> counts(nx_ * ny_ + 1, 0);
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    cell_of[i] = cell_y(sites_[i].y) * nx_ + cell_x(sites_[i].x);
    ++counts[cell_of[i] + 1];
  }
  for (std::size_t c = 1; c < counts.size(); ++c) counts[c] += counts[c - 1];
  cell_start_ = counts;
  cell_items_.resize(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    cell_items_[counts[cell_of[i]]++] = i;
  }
}

bool SiteGrid::insert(const Point2D& p) {
  if (sites_.empty()) return false;  // never indexed: build from scratch
  // Outside the covered bounding box the clamped-cell search order is
  // still correct, but the box should track the sites, so rebuild.
  if (p.x < min_x_ || p.y < min_y_ ||
      p.x > min_x_ + static_cast<double>(nx_) * cell_w_ ||
      p.y > min_y_ + static_cast<double>(ny_) * cell_h_) {
    return false;
  }
  if (sites_.size() + 1 > 2 * built_n_) return false;  // cells too coarse

  const std::size_t idx = sites_.size();
  sites_.push_back(p);
  const std::size_t cell = cell_y(p.y) * nx_ + cell_x(p.x);
  // The new index is the maximum, so appending at the end of the
  // cell's run keeps the run ascending.
  cell_items_.insert(
      cell_items_.begin() + static_cast<std::ptrdiff_t>(cell_start_[cell + 1]),
      idx);
  for (std::size_t c = cell + 1; c < cell_start_.size(); ++c) {
    ++cell_start_[c];
  }
  return true;
}

bool SiteGrid::erase(std::size_t idx) {
  if (idx >= sites_.size()) return false;
  if (2 * (sites_.size() - 1) < built_n_) return false;  // cells too fine

  const std::size_t cell = cell_y(sites_[idx].y) * nx_ + cell_x(sites_[idx].x);
  const auto lo =
      cell_items_.begin() + static_cast<std::ptrdiff_t>(cell_start_[cell]);
  const auto hi =
      cell_items_.begin() + static_cast<std::ptrdiff_t>(cell_start_[cell + 1]);
  const auto pos = std::lower_bound(lo, hi, idx);
  if (pos == hi || *pos != idx) return false;  // corrupted index: rebuild
  cell_items_.erase(pos);
  for (std::size_t c = cell + 1; c < cell_start_.size(); ++c) {
    --cell_start_[c];
  }
  // Indices above idx shift down by one (ascending runs stay sorted).
  for (std::size_t& item : cell_items_) {
    if (item > idx) --item;
  }
  sites_.erase(sites_.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

std::size_t SiteGrid::cell_x(double x) const {
  const double f = (x - min_x_) / cell_w_;
  if (f <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(f);
  return std::min(c, nx_ - 1);
}

std::size_t SiteGrid::cell_y(double y) const {
  const double f = (y - min_y_) / cell_h_;
  if (f <= 0.0) return 0;
  const auto c = static_cast<std::size_t>(f);
  return std::min(c, ny_ - 1);
}

void SiteGrid::scan_cell(const Point2D& p, std::size_t cx, std::size_t cy,
                         std::size_t& best, double& best_sq) const {
  const std::size_t cell = cy * nx_ + cx;
  const std::size_t lo = cell_start_[cell];
  const std::size_t hi = cell_start_[cell + 1];
  if (lo == hi) return;

  if (best != kNoSite) {
    // Distance from p to the cell's bounding box; skip only when
    // strictly farther (a tie could still win by the lex rank).
    const double bx0 = min_x_ + static_cast<double>(cx) * cell_w_;
    const double by0 = min_y_ + static_cast<double>(cy) * cell_h_;
    const double dx = std::max({bx0 - p.x, 0.0, p.x - (bx0 + cell_w_)});
    const double dy = std::max({by0 - p.y, 0.0, p.y - (by0 + cell_h_)});
    // Slack absorbs the rounding of the bbox corners, so a site one ulp
    // outside its nominal cell can still tie-break its way in.
    if (dx * dx + dy * dy > best_sq + 1e-12 * (1.0 + best_sq)) return;
  }
  for (std::size_t k = lo; k < hi; ++k) {
    const std::size_t i = cell_items_[k];
    if (better_candidate(p, sites_, i, best)) {
      best = i;
      best_sq = squared_distance(p, sites_[i]);
    }
  }
}

void SiteGrid::scan_cell_k(const Point2D& p, std::size_t cx, std::size_t cy,
                           std::size_t k, std::vector<std::size_t>& best,
                           double& worst_sq) const {
  const std::size_t cell = cy * nx_ + cx;
  const std::size_t lo = cell_start_[cell];
  const std::size_t hi = cell_start_[cell + 1];
  if (lo == hi) return;

  if (best.size() == k) {
    const double bx0 = min_x_ + static_cast<double>(cx) * cell_w_;
    const double by0 = min_y_ + static_cast<double>(cy) * cell_h_;
    const double dx = std::max({bx0 - p.x, 0.0, p.x - (bx0 + cell_w_)});
    const double dy = std::max({by0 - p.y, 0.0, p.y - (by0 + cell_h_)});
    if (dx * dx + dy * dy > worst_sq + 1e-12 * (1.0 + worst_sq)) return;
  }
  for (std::size_t idx = lo; idx < hi; ++idx) {
    const std::size_t i = cell_items_[idx];
    if (best.size() == k && !rank_before(p, sites_, i, best.back())) {
      continue;
    }
    // Sorted insert (k is tiny — replica factors of 2-4).
    auto pos = best.begin();
    while (pos != best.end() && rank_before(p, sites_, *pos, i)) ++pos;
    best.insert(pos, i);
    if (best.size() > k) best.pop_back();
    if (best.size() == k) {
      worst_sq = squared_distance(p, sites_[best.back()]);
    }
  }
}

std::vector<std::size_t> SiteGrid::nearest_k(const Point2D& p,
                                             std::size_t k) const {
  std::vector<std::size_t> best;
  if (sites_.empty() || k == 0) return best;
  k = std::min(k, sites_.size());
  best.reserve(k + 1);

  const auto ix = static_cast<std::ptrdiff_t>(cell_x(p.x));
  const auto iy = static_cast<std::ptrdiff_t>(cell_y(p.y));
  const auto snx = static_cast<std::ptrdiff_t>(nx_);
  const auto sny = static_cast<std::ptrdiff_t>(ny_);
  const std::ptrdiff_t max_ring =
      std::max(std::max(ix, snx - 1 - ix), std::max(iy, sny - 1 - iy));
  const double min_cell = std::min(cell_w_, cell_h_);

  double worst_sq = 0.0;
  for (std::ptrdiff_t r = 0; r <= max_ring; ++r) {
    if (best.size() == k && r >= 1) {
      // Same ring cutoff as nearest(), against the k-th best distance.
      const double gap = static_cast<double>(r - 1) * min_cell;
      if (gap * gap > worst_sq) break;
    }
    const auto in_x = [&](std::ptrdiff_t x) { return x >= 0 && x < snx; };
    const auto in_y = [&](std::ptrdiff_t y) { return y >= 0 && y < sny; };
    if (r == 0) {
      scan_cell_k(p, static_cast<std::size_t>(ix),
                  static_cast<std::size_t>(iy), k, best, worst_sq);
      continue;
    }
    for (std::ptrdiff_t x = ix - r; x <= ix + r; ++x) {
      if (!in_x(x)) continue;
      for (std::ptrdiff_t y : {iy - r, iy + r}) {
        if (in_y(y)) {
          scan_cell_k(p, static_cast<std::size_t>(x),
                      static_cast<std::size_t>(y), k, best, worst_sq);
        }
      }
    }
    for (std::ptrdiff_t y = iy - r + 1; y <= iy + r - 1; ++y) {
      if (!in_y(y)) continue;
      for (std::ptrdiff_t x : {ix - r, ix + r}) {
        if (in_x(x)) {
          scan_cell_k(p, static_cast<std::size_t>(x),
                      static_cast<std::size_t>(y), k, best, worst_sq);
        }
      }
    }
  }
  return best;
}

std::size_t SiteGrid::nearest(const Point2D& p) const {
  if (sites_.empty()) return kNoSite;

  const auto ix = static_cast<std::ptrdiff_t>(cell_x(p.x));
  const auto iy = static_cast<std::ptrdiff_t>(cell_y(p.y));
  const auto snx = static_cast<std::ptrdiff_t>(nx_);
  const auto sny = static_cast<std::ptrdiff_t>(ny_);
  // Chebyshev radius that covers the whole grid from (ix, iy).
  const std::ptrdiff_t max_ring =
      std::max(std::max(ix, snx - 1 - ix), std::max(iy, sny - 1 - iy));
  const double min_cell = std::min(cell_w_, cell_h_);

  std::size_t best = kNoSite;
  double best_sq = 0.0;
  for (std::ptrdiff_t r = 0; r <= max_ring; ++r) {
    if (best != kNoSite && r >= 1) {
      // Any cell at ring r is at least (r - 1) whole cells away from
      // the clamped query cell along some axis; strictly farther
      // candidates cannot win even on the tie-break.
      const double gap = static_cast<double>(r - 1) * min_cell;
      if (gap * gap > best_sq) break;
    }
    const auto in_x = [&](std::ptrdiff_t x) { return x >= 0 && x < snx; };
    const auto in_y = [&](std::ptrdiff_t y) { return y >= 0 && y < sny; };
    if (r == 0) {
      scan_cell(p, static_cast<std::size_t>(ix), static_cast<std::size_t>(iy),
                best, best_sq);
      continue;
    }
    for (std::ptrdiff_t x = ix - r; x <= ix + r; ++x) {
      if (!in_x(x)) continue;
      for (std::ptrdiff_t y : {iy - r, iy + r}) {
        if (in_y(y)) {
          scan_cell(p, static_cast<std::size_t>(x),
                    static_cast<std::size_t>(y), best, best_sq);
        }
      }
    }
    for (std::ptrdiff_t y = iy - r + 1; y <= iy + r - 1; ++y) {
      if (!in_y(y)) continue;
      for (std::ptrdiff_t x : {ix - r, ix + r}) {
        if (in_x(x)) {
          scan_cell(p, static_cast<std::size_t>(x),
                    static_cast<std::size_t>(y), best, best_sq);
        }
      }
    }
  }
  return best;
}

}  // namespace gred::geometry
