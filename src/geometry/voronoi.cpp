#include "geometry/voronoi.hpp"

#include <algorithm>

#include "geometry/convex_hull.hpp"

namespace gred::geometry {
namespace {

/// Clips a convex polygon with the half-plane { q : dot(q, n) <= c }
/// (Sutherland-Hodgman, one plane).
std::vector<Point2D> clip_half_plane(const std::vector<Point2D>& poly,
                                     const Point2D& n, double c) {
  std::vector<Point2D> out;
  const std::size_t k = poly.size();
  if (k == 0) return out;
  out.reserve(k + 1);
  for (std::size_t i = 0; i < k; ++i) {
    const Point2D& p = poly[i];
    const Point2D& q = poly[(i + 1) % k];
    const double dp = dot(p, n) - c;
    const double dq = dot(q, n) - c;
    const bool pin = dp <= 0.0;
    const bool qin = dq <= 0.0;
    if (pin) out.push_back(p);
    if (pin != qin) {
      const double t = dp / (dp - dq);
      out.push_back({p.x + t * (q.x - p.x), p.y + t * (q.y - p.y)});
    }
  }
  return out;
}

}  // namespace

Point2D Rect::clamp(const Point2D& p) const {
  return {std::clamp(p.x, min_x, max_x), std::clamp(p.y, min_y, max_y)};
}

std::size_t nearest_site(const std::vector<Point2D>& sites,
                         const Point2D& p) {
  std::size_t best = kNoSite;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (best == kNoSite || closer_to(p, sites[i], sites[best])) {
      best = i;
    }
  }
  return best;
}

std::vector<Point2D> voronoi_cell(const std::vector<Point2D>& sites,
                                  std::size_t i, const Rect& domain) {
  // Start from the domain rectangle, CCW.
  std::vector<Point2D> poly{{domain.min_x, domain.min_y},
                            {domain.max_x, domain.min_y},
                            {domain.max_x, domain.max_y},
                            {domain.min_x, domain.max_y}};
  const Point2D& si = sites[i];
  for (std::size_t j = 0; j < sites.size(); ++j) {
    if (j == i) continue;
    const Point2D& sj = sites[j];
    // Half-plane of points at least as close to si as to sj:
    //   |q - si|^2 <= |q - sj|^2
    //   2 (sj - si) . q <= |sj|^2 - |si|^2
    const Point2D n = (sj - si) * 2.0;
    const double c = dot(sj, sj) - dot(si, si);
    poly = clip_half_plane(poly, n, c);
    if (poly.empty()) break;
  }
  return poly;
}

std::vector<double> voronoi_cell_areas(const std::vector<Point2D>& sites,
                                       const Rect& domain) {
  std::vector<double> areas(sites.size(), 0.0);
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto cell = voronoi_cell(sites, i, domain);
    if (cell.size() >= 3) areas[i] = polygon_area(cell);
  }
  return areas;
}

std::vector<Point2D> voronoi_cell_centroids(const std::vector<Point2D>& sites,
                                            const Rect& domain) {
  std::vector<Point2D> centroids(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const auto cell = voronoi_cell(sites, i, domain);
    centroids[i] = cell.size() >= 3 ? polygon_centroid(cell) : sites[i];
  }
  return centroids;
}

}  // namespace gred::geometry
