// Voronoi-cell computations over a rectangular domain. Used for two
// purposes: (1) exact cell areas — the load of a GRED switch under a
// uniform hash is proportional to its Voronoi cell area in the unit
// square, so tests and ablations can reason about balance analytically;
// (2) centroid queries for validating the C-regulation output.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"

namespace gred::geometry {

/// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 1.0;
  double max_y = 1.0;

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double area() const { return width() * height(); }
  bool contains(const Point2D& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  Point2D clamp(const Point2D& p) const;
};

/// Index of the site nearest to `p` (tie-break by the paper's (x, y)
/// rank). Returns kNoSite for an empty site vector.
std::size_t nearest_site(const std::vector<Point2D>& sites, const Point2D& p);

/// The Voronoi cell of `sites[i]` clipped to `domain`, as a convex
/// polygon in counter-clockwise order (possibly empty if the cell does
/// not intersect the domain — cannot happen when the site is inside).
std::vector<Point2D> voronoi_cell(const std::vector<Point2D>& sites,
                                  std::size_t i, const Rect& domain);

/// Exact areas of all Voronoi cells clipped to `domain`. They sum to
/// domain.area() (up to floating-point error).
std::vector<double> voronoi_cell_areas(const std::vector<Point2D>& sites,
                                       const Rect& domain);

/// Centroids of all Voronoi cells clipped to `domain`.
std::vector<Point2D> voronoi_cell_centroids(const std::vector<Point2D>& sites,
                                            const Rect& domain);

}  // namespace gred::geometry
