// Delaunay triangulation of the switch positions in the virtual space
// (Section IV-C). Built by randomized incremental insertion into a
// bounding super-triangle (Bowyer-Watson cavity retriangulation, which
// yields the same DT as the paper's insert-and-flip description).
//
// The DT's defining property — greedy routing over DT edges always
// terminates at the site closest to the target point — is what gives
// GRED its guaranteed delivery; `greedy_route` implements that walk and
// the property tests in tests/delaunay_test.cpp verify it on random
// point sets.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geometry/point.hpp"

namespace gred::geometry {

/// A triangle as indices into the site vector, counter-clockwise.
struct Triangle {
  std::array<std::size_t, 3> v{};

  bool has_vertex(std::size_t i) const {
    return v[0] == i || v[1] == i || v[2] == i;
  }
};

/// What an incremental insert/remove touched. When `localized` the
/// repair was a cavity re-triangulation and `affected` lists the
/// post-operation site indices whose DT adjacency may have changed
/// (sorted, deduplicated; the inserted site included). When the
/// structure fell back to a full rebuild, `localized` is false and
/// `affected` is empty — every site must be treated as changed.
struct RepairInfo {
  bool localized = false;
  std::vector<std::size_t> affected;
};

class DelaunayTriangulation {
 public:
  /// An empty triangulation (no sites); fill via build().
  DelaunayTriangulation() = default;

  /// Builds the DT of `points`. Duplicate points are rejected
  /// (kInvalidArgument): the virtual-space layer guarantees distinct
  /// switch positions. Collinear inputs degenerate to a chain (no
  /// triangles; consecutive points along the line become neighbors),
  /// which preserves the greedy-delivery property in 1-D.
  /// Insertion order is randomized with `rng` when provided, else a
  /// deterministic shuffle seeded from the point count.
  static Result<DelaunayTriangulation> build(std::vector<Point2D> points,
                                             Rng* rng = nullptr);

  const std::vector<Point2D>& points() const { return points_; }
  const std::vector<Triangle>& triangles() const { return triangles_; }

  /// DT neighbors of site i, sorted ascending.
  const std::vector<std::size_t>& neighbors(std::size_t i) const {
    return adjacency_[i];
  }
  std::size_t size() const { return points_.size(); }
  bool are_neighbors(std::size_t i, std::size_t j) const;

  /// Total number of DT edges.
  std::size_t edge_count() const;

  /// The site nearest to `p` over ALL sites (brute force; tie-break by
  /// the paper's (x, y) rank). This is the ground truth greedy routing
  /// must reach.
  std::size_t nearest_site(const Point2D& p) const;

  /// One greedy step from site `from` toward `p`: the neighbor strictly
  /// closer to `p` than `from` that minimizes distance (tie-break by
  /// position rank), or kNoSite when `from` is a local minimum.
  std::size_t greedy_next(std::size_t from, const Point2D& p) const;

  /// Full greedy walk from `from` toward `p`; the returned path starts
  /// at `from` and ends at the local (= global, on a DT) minimum.
  std::vector<std::size_t> greedy_route(std::size_t from,
                                        const Point2D& p) const;

  /// Validity check for tests: every triangle's circumcircle is empty
  /// of other sites and all triangles are counter-clockwise.
  bool is_valid_delaunay() const;

  /// Incrementally inserts one site (node join, Section VI): only the
  /// faces whose circumdisk contains `p` are retriangulated, so the
  /// update cost is local. Returns the new site's index. Fails on
  /// duplicates. Degenerate triangulations (fewer than 3 sites or a
  /// collinear chain) fall back to a full rebuild internally.
  /// `repair` (optional) reports the touched sites.
  Result<std::size_t> insert(const Point2D& p, RepairInfo* repair = nullptr);

  /// Removes site `idx` (node leave). Interior sites are removed
  /// locally: their incident faces are deleted and the star polygon is
  /// re-triangulated by Delaunay ear clipping, so only the link ring is
  /// touched. Hull sites and degenerate states fall back to a full
  /// rebuild (reported via `repair`). Site indices above `idx` shift
  /// down by one, exactly like erasing from the point vector.
  Status remove(std::size_t idx, RepairInfo* repair = nullptr);

 private:
  /// Face record including ghost faces: finite faces are CCW triangles;
  /// ghost faces have c == kGhostVertex and (a, b) is a directed hull
  /// edge with the triangulated region on its left.
  struct Face {
    std::size_t a, b, c;
  };
  static constexpr std::size_t kGhostVertex = static_cast<std::size_t>(-2);

  /// Bowyer-Watson insertion of points_[idx] into `faces`. `cavity`
  /// (optional) receives the distinct non-ghost vertices of the
  /// conflict faces — the sites whose adjacency the insertion can
  /// change.
  static Status insert_into_faces(const std::vector<Point2D>& pts,
                                  std::vector<Face>& faces, std::size_t idx,
                                  std::vector<std::size_t>* cavity = nullptr);

  /// Rebuilds from scratch over the current points with `idx` erased;
  /// shared fallback for remove().
  Status rebuild_without(std::size_t idx);

  /// Refreshes triangles_ and adjacency_ from faces_.
  void refresh_from_faces();

  void build_adjacency();

  std::vector<Point2D> points_;
  std::vector<Triangle> triangles_;
  std::vector<std::vector<std::size_t>> adjacency_;
  std::vector<Face> faces_;   ///< empty for degenerate triangulations
  bool maintainable_ = false; ///< faces_ valid (>= 3 non-collinear sites)
};

}  // namespace gred::geometry
