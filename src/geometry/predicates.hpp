// Geometric predicates for the Delaunay construction. Implemented with
// long-double accumulation and a relative-epsilon guard: the virtual
// positions produced by MDS + CVT are in general position (continuous
// coordinates), so fully adaptive exact arithmetic is unnecessary; the
// guard only has to keep near-degenerate cases deterministic.
#pragma once

#include "geometry/point.hpp"

namespace gred::geometry {

enum class Orientation { kClockwise, kCollinear, kCounterClockwise };

/// Orientation of the ordered triple (a, b, c).
Orientation orient2d(const Point2D& a, const Point2D& b, const Point2D& c);

/// Signed twice-area of triangle (a, b, c); >0 when counter-clockwise.
double signed_area2(const Point2D& a, const Point2D& b, const Point2D& c);

/// True iff `p` lies strictly inside the circumcircle of the
/// counter-clockwise triangle (a, b, c).
bool in_circumcircle(const Point2D& a, const Point2D& b, const Point2D& c,
                     const Point2D& p);

/// Circumcenter of triangle (a, b, c). Precondition: not collinear.
Point2D circumcenter(const Point2D& a, const Point2D& b, const Point2D& c);

/// True iff p is inside or on the boundary of triangle (a,b,c) given in
/// counter-clockwise order.
bool point_in_triangle(const Point2D& a, const Point2D& b, const Point2D& c,
                       const Point2D& p);

}  // namespace gred::geometry
