// Uniform-grid spatial index over a fixed site set for expected-O(1)
// nearest-site queries. The answer agrees exactly with the brute-force
// `nearest_site` scan — same distance metric, same (x, y)-rank
// tie-break, lowest index among coincident sites — so the data plane's
// per-packet home-switch lookup and the C-regulation sampling loop can
// replace the O(n) scan without changing a single placement.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/voronoi.hpp"

namespace gred::geometry {

class SiteGrid {
 public:
  SiteGrid() = default;

  /// Indexes `sites` over a grid covering the bounding box of `domain`
  /// and of the sites themselves; queries anywhere in the plane remain
  /// correct (the search expands from the clamped cell).
  SiteGrid(std::vector<Point2D> sites, const Rect& domain);

  std::size_t size() const { return sites_.size(); }
  bool empty() const { return sites_.empty(); }
  const std::vector<Point2D>& sites() const { return sites_; }

  /// Index of the site nearest to `p` under the paper's total order
  /// (squared distance, then lexicographic position, then site index);
  /// kNoSite when the grid is empty.
  std::size_t nearest(const Point2D& p) const;

  /// The k sites nearest to `p`, ascending under the same total order
  /// as nearest() (so nearest_k(p, 1)[0] == nearest(p)). Returns fewer
  /// than k entries only when the grid holds fewer than k sites.
  /// Replica placement uses this to pick fallback homes.
  std::vector<std::size_t> nearest_k(const Point2D& p, std::size_t k) const;

  /// Appends one site (index size()) into its cell in place. Returns
  /// false — leaving the grid untouched — when the point falls outside
  /// the covered bounding box or the site count has drifted 2x from
  /// the build-time count (cells too coarse/fine): the caller must
  /// rebuild. Query answers are layout-independent, so a mutated grid
  /// answers exactly like a freshly built one.
  bool insert(const Point2D& p);

  /// Erases site `idx`; indices above shift down by one, exactly like
  /// erasing from the site vector. Returns false (grid untouched) on
  /// 2x density drift. The bounding box never shrinks — covering more
  /// area than needed does not change any answer.
  bool erase(std::size_t idx);

 private:
  std::size_t cell_x(double x) const;
  std::size_t cell_y(double y) const;
  /// Considers every site of cell (cx, cy) as a candidate for `p`,
  /// updating `best`/`best_sq`. Skips the cell when its bounding box
  /// is strictly farther than `best_sq`.
  void scan_cell(const Point2D& p, std::size_t cx, std::size_t cy,
                 std::size_t& best, double& best_sq) const;
  /// k-candidate variant: keeps `best` sorted ascending under the
  /// total order, capped at `k` entries; `worst_sq` tracks the squared
  /// distance of best.back() once the list is full.
  void scan_cell_k(const Point2D& p, std::size_t cx, std::size_t cy,
                   std::size_t k, std::vector<std::size_t>& best,
                   double& worst_sq) const;

  std::vector<Point2D> sites_;
  /// Site count the cell resolution was chosen for; insert/erase
  /// refuse once the live count drifts 2x away from it.
  std::size_t built_n_ = 0;
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  double cell_w_ = 1.0;
  double cell_h_ = 1.0;
  std::size_t nx_ = 0;
  std::size_t ny_ = 0;
  /// CSR cell layout: cell (cx, cy) holds site indices
  /// cell_items_[cell_start_[cy * nx_ + cx] .. cell_start_[.. + 1]),
  /// ascending, so scan order inside a cell matches the brute force.
  std::vector<std::size_t> cell_start_;
  std::vector<std::size_t> cell_items_;
};

}  // namespace gred::geometry
