// 2-D points in the virtual space. The paper breaks distance ties by
// ranking the x coordinate, then the y coordinate (Section V-A), which
// `lex_less` implements; all "closest switch" logic must use
// `closer_to` so every component (controller, switches, simulators)
// agrees on the unique nearest node.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

namespace gred::geometry {

/// Sentinel for "no such site" (empty site sets).
inline constexpr std::size_t kNoSite = static_cast<std::size_t>(-1);

struct Point2D {
  double x = 0.0;
  double y = 0.0;

  constexpr Point2D() = default;
  constexpr Point2D(double px, double py) : x(px), y(py) {}

  constexpr Point2D operator+(const Point2D& o) const {
    return {x + o.x, y + o.y};
  }
  constexpr Point2D operator-(const Point2D& o) const {
    return {x - o.x, y - o.y};
  }
  constexpr Point2D operator*(double s) const { return {x * s, y * s}; }
  constexpr Point2D operator/(double s) const { return {x / s, y / s}; }

  constexpr bool operator==(const Point2D& o) const = default;

  // Built by appends: the `"(" + std::to_string(...)` spelling trips
  // GCC 12's -Wrestrict false positive (PR105329) under -O2, which
  // the -Werror CI leg would turn fatal.
  std::string to_string() const {
    std::string out;
    out.reserve(48);
    out += '(';
    out += std::to_string(x);
    out += ", ";
    out += std::to_string(y);
    out += ')';
    return out;
  }
};

inline double dot(const Point2D& a, const Point2D& b) {
  return a.x * b.x + a.y * b.y;
}

inline double cross(const Point2D& a, const Point2D& b) {
  return a.x * b.y - a.y * b.x;
}

inline double squared_distance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(squared_distance(a, b));
}

inline double norm(const Point2D& a) { return std::sqrt(dot(a, a)); }

/// Strict lexicographic order: by x, then by y (the paper's tie-break).
inline bool lex_less(const Point2D& a, const Point2D& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.y < b.y;
}

/// True when candidate `a` beats candidate `b` as "closest to target":
/// strictly smaller distance, or equal distance and lexicographically
/// smaller position. This total order makes the nearest node unique.
inline bool closer_to(const Point2D& target, const Point2D& a,
                      const Point2D& b) {
  const double da = squared_distance(target, a);
  const double db = squared_distance(target, b);
  if (da != db) return da < db;
  return lex_less(a, b);
}

}  // namespace gred::geometry
