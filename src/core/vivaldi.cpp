#include "core/vivaldi.hpp"

#include <cmath>

#include "linalg/mds.hpp"

namespace gred::core {

Result<VivaldiResult> vivaldi_embedding(const linalg::Matrix& distances,
                                        const VivaldiOptions& options) {
  const std::size_t n = distances.rows();
  if (n == 0 || distances.cols() != n) {
    return Error(ErrorCode::kInvalidArgument,
                 "vivaldi: distance matrix must be square and non-empty");
  }
  if (!distances.is_symmetric(1e-9)) {
    return Error(ErrorCode::kInvalidArgument,
                 "vivaldi: distance matrix must be symmetric");
  }

  Rng rng(options.seed);
  VivaldiResult out;
  out.coordinates.assign(n, {});
  if (n == 1) {
    out.mean_error = 0.0;
    return out;
  }

  // Small random initial placement (breaking symmetry) and unit
  // confidence error, per the original algorithm.
  for (geometry::Point2D& p : out.coordinates) {
    p = {rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5)};
  }
  std::vector<double> error(n, 1.0);

  for (std::size_t round = 0; round < options.rounds; ++round) {
    const std::size_t i = rng.next_below(n);
    std::size_t j = rng.next_below(n - 1);
    if (j >= i) ++j;
    const double rtt = distances(i, j);
    if (rtt <= 0.0 || rtt == std::numeric_limits<double>::infinity()) {
      continue;
    }

    geometry::Point2D diff = out.coordinates[i] - out.coordinates[j];
    double dist = geometry::norm(diff);
    if (dist < 1e-9) {
      // Coincident points: pick a deterministic pseudo-random direction.
      diff = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
      dist = geometry::norm(diff);
      if (dist < 1e-9) diff = {1.0, 0.0}, dist = 1.0;
    }
    const geometry::Point2D unit = diff / dist;

    // Confidence-weighted adaptive timestep.
    const double w = error[i] / (error[i] + error[j]);
    const double e_sample = std::fabs(dist - rtt) / rtt;
    error[i] = e_sample * options.ce * w + error[i] * (1.0 - options.ce * w);
    const double delta = options.cc * w;
    out.coordinates[i] =
        out.coordinates[i] + unit * (delta * (rtt - dist));
  }

  // Diagnostics.
  linalg::Matrix coords(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    coords(i, 0) = out.coordinates[i].x;
    coords(i, 1) = out.coordinates[i].y;
  }
  out.stress = linalg::kruskal_stress(distances, coords);
  double err_total = 0.0;
  for (double e : error) err_total += e;
  out.mean_error = err_total / static_cast<double>(n);
  return out;
}

}  // namespace gred::core
