// Multi-hop Delaunay triangulation (Section IV-C, after Lam & Qian's
// MDT): the DT of the switch virtual positions, where DT edges between
// switches that are not physically adjacent are realized as physical
// shortest paths. The structure computed here is exactly what the
// controller installs: greedy candidate entries (with the first
// physical hop of each virtual link) and the <sour, pred, succ, dest>
// relay tuples at intermediate switches.
//
// Besides the one-shot build() the structure supports incremental
// maintenance: participants can join/leave via localized Delaunay
// repair, and individual participants' candidate/relay state can be
// re-derived after a graph change. Relay vectors are kept in the
// (sour, dest)-lexicographic order a fresh build produces (ascending
// participant loop x ascending DT-neighbor loop), so a chain of
// incremental updates yields bit-identical installable state.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "geometry/delaunay.hpp"
#include "graph/shortest_path.hpp"
#include "sden/flow_table.hpp"
#include "topology/edge_network.hpp"

namespace gred::core {

/// A greedy candidate of one switch, ready to install.
struct DtNeighborInfo {
  topology::SwitchId neighbor = 0;
  geometry::Point2D position;
  bool physical = false;
  topology::SwitchId first_hop = 0;
  /// Physical hops to reach the neighbor (1 when physical).
  std::size_t path_length = 1;
};

class MultiHopDT {
 public:
  /// An empty structure; fill via build().
  MultiHopDT() = default;

  /// Builds the DT over (participants, positions) and resolves every
  /// non-physical DT edge to the physical shortest path from `apsp`.
  /// `physical` is the full switch graph (relays may pass through
  /// non-participant transit switches). Fails when positions collide or
  /// some DT edge cannot be realized (disconnected participants).
  static Result<MultiHopDT> build(
      const std::vector<topology::SwitchId>& participants,
      const std::vector<geometry::Point2D>& positions,
      const graph::Graph& physical, const graph::ApspResult& apsp);

  /// Greedy candidates per participant (indexed as participants()).
  const std::vector<DtNeighborInfo>& candidates_of(
      topology::SwitchId sw) const;

  /// Relay tuples to install, keyed by the switch that stores them.
  const std::map<topology::SwitchId, std::vector<sden::RelayEntry>>&
  relay_entries() const {
    return relays_;
  }

  const geometry::DelaunayTriangulation& triangulation() const { return dt_; }
  const std::vector<topology::SwitchId>& participants() const {
    return participants_;
  }

  /// Mean physical path length of the virtual (multi-hop) DT edges —
  /// diagnostics for the embedding quality.
  double mean_vlink_length() const;

  // ----- incremental maintenance ------------------------------------

  /// Joins `sw` at `position` via localized Delaunay repair (cavity
  /// re-triangulation) and rebuilds the candidates/relays of every
  /// participant whose DT adjacency changed. `affected` receives the
  /// post-insert indices of those participants (the new one included);
  /// `touched_switches` (optional) accumulates every switch whose
  /// installable state changed — rebuilt participants plus old and new
  /// virtual-link intermediates. The graph must already contain the
  /// new switch's links and `apsp` must already be updated.
  Status add_participant(topology::SwitchId sw,
                         const geometry::Point2D& position,
                         const graph::Graph& physical,
                         const graph::ApspResult& apsp,
                         std::vector<std::size_t>* affected,
                         std::vector<topology::SwitchId>* touched_switches);

  /// Removes `sw` via localized repair (full rebuild for hull sites)
  /// and rebuilds the rim participants. `affected` receives the
  /// post-removal indices of participants whose adjacency changed.
  Status remove_participant(topology::SwitchId sw,
                            const graph::Graph& physical,
                            const graph::ApspResult& apsp,
                            std::vector<std::size_t>* affected,
                            std::vector<topology::SwitchId>* touched_switches);

  /// Re-derives candidates_[i] plus the relays and cached paths of the
  /// virtual links sourced at participants()[i], exactly as build()
  /// would produce them. Used after a graph change invalidated the
  /// participant's shortest paths (DT adjacency unchanged).
  Status rebuild_participant(std::size_t i, const graph::Graph& physical,
                             const graph::ApspResult& apsp,
                             std::vector<topology::SwitchId>* touched_switches);

  /// Participants whose cached virtual-link paths traverse any switch
  /// in `nodes`. After those switches' adjacency changed, the canonical
  /// paths of exactly these participants' virtual links may differ even
  /// when their distance rows did not move.
  std::vector<std::size_t> participants_with_vlinks_through(
      const std::vector<topology::SwitchId>& nodes) const;

 private:
  /// Fills candidates_[i] (cleared first) and registers the relays +
  /// cached paths of i's multi-hop DT edges. Relay vectors are kept
  /// sorted by (sour, dest); `touched_switches` gets the new
  /// intermediates when given.
  Status build_candidates_for(std::size_t i, const graph::Graph& physical,
                              const graph::ApspResult& apsp,
                              std::vector<topology::SwitchId>* touched);

  /// Drops every relay + cached path sourced at `u`; old intermediates
  /// go to `touched` when given.
  void drop_vlinks_of(topology::SwitchId u,
                      std::vector<topology::SwitchId>* touched);

  /// Rebuilds every participant (after a non-localized DT repair).
  Status rebuild_all(const graph::Graph& physical,
                     const graph::ApspResult& apsp,
                     std::vector<topology::SwitchId>* touched);

  std::vector<topology::SwitchId> participants_;
  geometry::DelaunayTriangulation dt_;
  /// candidates_[i] belongs to participants_[i].
  std::vector<std::vector<DtNeighborInfo>> candidates_;
  std::map<topology::SwitchId, std::vector<sden::RelayEntry>> relays_;
  std::map<topology::SwitchId, std::size_t> index_;
  /// Physical path of every multi-hop DT edge, keyed by the DIRECTED
  /// (sour, dest) switch pair — the canonical path u -> v is not the
  /// reverse of v -> u in weighted mode, and relays are installed per
  /// direction. This is both the repair footprint (which intermediates
  /// hold relays to drop) and the path-change filter's input.
  std::map<std::pair<topology::SwitchId, topology::SwitchId>,
           std::vector<graph::NodeId>>
      vlink_paths_;
};

}  // namespace gred::core
