// Multi-hop Delaunay triangulation (Section IV-C, after Lam & Qian's
// MDT): the DT of the switch virtual positions, where DT edges between
// switches that are not physically adjacent are realized as physical
// shortest paths. The structure computed here is exactly what the
// controller installs: greedy candidate entries (with the first
// physical hop of each virtual link) and the <sour, pred, succ, dest>
// relay tuples at intermediate switches.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "geometry/delaunay.hpp"
#include "graph/shortest_path.hpp"
#include "sden/flow_table.hpp"
#include "topology/edge_network.hpp"

namespace gred::core {

/// A greedy candidate of one switch, ready to install.
struct DtNeighborInfo {
  topology::SwitchId neighbor = 0;
  geometry::Point2D position;
  bool physical = false;
  topology::SwitchId first_hop = 0;
  /// Physical hops to reach the neighbor (1 when physical).
  std::size_t path_length = 1;
};

class MultiHopDT {
 public:
  /// An empty structure; fill via build().
  MultiHopDT() = default;

  /// Builds the DT over (participants, positions) and resolves every
  /// non-physical DT edge to the physical shortest path from `apsp`.
  /// `physical` is the full switch graph (relays may pass through
  /// non-participant transit switches). Fails when positions collide or
  /// some DT edge cannot be realized (disconnected participants).
  static Result<MultiHopDT> build(
      const std::vector<topology::SwitchId>& participants,
      const std::vector<geometry::Point2D>& positions,
      const graph::Graph& physical, const graph::ApspResult& apsp);

  /// Greedy candidates per participant (indexed as participants()).
  const std::vector<DtNeighborInfo>& candidates_of(
      topology::SwitchId sw) const;

  /// Relay tuples to install, keyed by the switch that stores them.
  const std::map<topology::SwitchId, std::vector<sden::RelayEntry>>&
  relay_entries() const {
    return relays_;
  }

  const geometry::DelaunayTriangulation& triangulation() const { return dt_; }
  const std::vector<topology::SwitchId>& participants() const {
    return participants_;
  }

  /// Mean physical path length of the virtual (multi-hop) DT edges —
  /// diagnostics for the embedding quality.
  double mean_vlink_length() const;

 private:
  std::vector<topology::SwitchId> participants_;
  geometry::DelaunayTriangulation dt_;
  /// candidates_[i] belongs to participants_[i].
  std::vector<std::vector<DtNeighborInfo>> candidates_;
  std::map<topology::SwitchId, std::vector<sden::RelayEntry>> relays_;
  std::map<topology::SwitchId, std::size_t> index_;
};

}  // namespace gred::core
