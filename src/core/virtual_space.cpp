#include "core/virtual_space.hpp"

#include <algorithm>
#include <cmath>

#include "check/invariants.hpp"
#include "core/vivaldi.hpp"
#include "linalg/mds.hpp"
#include "obs/phase_timer.hpp"

namespace gred::core {
namespace {

using geometry::Point2D;

/// Deterministically separates exactly coincident embedded points
/// (possible for graphs with strong symmetry) so the DT has distinct
/// sites. The nudge is far below one hop of embedded distance.
void separate_duplicates(std::vector<Point2D>& pts) {
  bool moved = true;
  double eps = 1e-9;
  while (moved) {
    moved = false;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      for (std::size_t j = i + 1; j < pts.size(); ++j) {
        if (pts[i] == pts[j]) {
          pts[j].x += eps * static_cast<double>(j + 1);
          pts[j].y += eps * static_cast<double>(i + 1);
          moved = true;
        }
      }
    }
    eps *= 2.0;
  }
}

}  // namespace

Result<VirtualSpace> VirtualSpace::build(
    const std::vector<topology::SwitchId>& participants,
    const graph::ApspResult& apsp, const VirtualSpaceOptions& options) {
  if (participants.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "VirtualSpace: no DT participants");
  }
  if (options.margin < 0.0 || options.margin >= 0.5) {
    return Error(ErrorCode::kInvalidArgument,
                 "VirtualSpace: margin must be in [0, 0.5)");
  }

  VirtualSpace vs;
  vs.participants_ = participants;
  const std::size_t n = participants.size();

  {
    const obs::ScopedPhaseTimer embed_timer("mds_embed");
  // Tiny networks: MDS needs m < n; place directly.
  if (n == 1) {
    vs.mds_positions_ = {{0.5, 0.5}};
  } else if (n <= 3) {
    static const Point2D kTiny[3] = {{0.25, 0.35}, {0.75, 0.35}, {0.5, 0.75}};
    vs.mds_positions_.assign(kTiny, kTiny + n);
    // Scale: the layout spans ~0.5 units for a 1-hop distance.
    const double d01 = apsp.dist(participants[0], participants[1]);
    if (d01 == graph::kUnreachable) {
      return Error(ErrorCode::kFailedPrecondition,
                   "VirtualSpace: participants are disconnected");
    }
    vs.scale_ = d01 > 0 ? 0.5 / d01 : 1.0;
  } else {
    // Distance sub-matrix of the participants (hop counts, or latency
    // costs under weighted_embedding — apsp is chosen by the caller).
    linalg::Matrix dist(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        const double d = apsp.dist(participants[i], participants[j]);
        if (d == graph::kUnreachable) {
          return Error(ErrorCode::kFailedPrecondition,
                       "VirtualSpace: participants are disconnected");
        }
        dist(i, j) = d;
      }
    }

    // Raw embedding: M-position (classical MDS) or Vivaldi.
    std::vector<Point2D> raw(n);
    if (options.embedding == EmbeddingAlgorithm::kMPosition) {
      auto mds = linalg::classical_mds(dist, 2);
      if (!mds.ok()) return mds.error();
      vs.stress_ = mds.value().stress;
      for (std::size_t i = 0; i < n; ++i) {
        raw[i] = {mds.value().coordinates(i, 0),
                  mds.value().coordinates(i, 1)};
      }
    } else {
      VivaldiOptions vopt;
      vopt.seed = options.seed ^ 0x5649u;
      auto viv = vivaldi_embedding(dist, vopt);
      if (!viv.ok()) return viv.error();
      vs.stress_ = viv.value().stress;
      raw = std::move(viv).value().coordinates;
    }

    // Normalize into the unit square, uniform scale, centered.
    double min_x = raw[0].x, max_x = raw[0].x;
    double min_y = raw[0].y, max_y = raw[0].y;
    for (const Point2D& p : raw) {
      min_x = std::min(min_x, p.x);
      max_x = std::max(max_x, p.x);
      min_y = std::min(min_y, p.y);
      max_y = std::max(max_y, p.y);
    }
    const double extent = std::max(max_x - min_x, max_y - min_y);
    const double usable = 1.0 - 2.0 * options.margin;
    const double scale = extent > 0.0 ? usable / extent : 1.0;
    vs.scale_ = scale;
    const double cx = 0.5 * (min_x + max_x);
    const double cy = 0.5 * (min_y + max_y);
    vs.mds_positions_.reserve(n);
    for (const Point2D& p : raw) {
      vs.mds_positions_.push_back(
          {0.5 + (p.x - cx) * scale, 0.5 + (p.y - cy) * scale});
    }
  }

  separate_duplicates(vs.mds_positions_);
  }  // embed_timer: the raw-embedding phase ends before C-regulation

  // C-regulation (skipped for the NoCVT variant).
  if (options.use_cvt && options.cvt_iterations > 0 && n > 1) {
    const obs::ScopedPhaseTimer cvt_timer("cvt");
    geometry::CvtOptions cvt;
    cvt.samples_per_iteration = options.cvt_samples;
    cvt.max_iterations = options.cvt_iterations;
    cvt.energy_threshold = options.cvt_energy_threshold;
    cvt.domain = geometry::Rect{0.0, 0.0, 1.0, 1.0};
    cvt.density = options.cvt_density;
    cvt.density_bound = options.cvt_density_bound;
    Rng rng(options.seed);
    geometry::CvtResult refined =
        geometry::c_regulation(vs.mds_positions_, cvt, rng);
    vs.positions_ = std::move(refined.sites);
    vs.energy_history_ = std::move(refined.energy_history);
    separate_duplicates(vs.positions_);
  } else {
    vs.positions_ = vs.mds_positions_;
  }

  vs.rebuild_grid();
  return vs;
}

Result<VirtualSpace> VirtualSpace::from_positions(
    std::vector<topology::SwitchId> participants,
    std::vector<geometry::Point2D> positions, const graph::ApspResult& apsp) {
  if (participants.empty() || participants.size() != positions.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "from_positions: participants/positions size mismatch");
  }
  for (std::size_t i = 0; i < positions.size(); ++i) {
    const Point2D& p = positions[i];
    if (p.x < 0.0 || p.x > 1.0 || p.y < 0.0 || p.y > 1.0) {
      return Error(ErrorCode::kInvalidArgument,
                   "from_positions: position outside the unit square: " +
                       p.to_string());
    }
    for (std::size_t j = i + 1; j < positions.size(); ++j) {
      if (positions[i] == positions[j]) {
        return Error(ErrorCode::kInvalidArgument,
                     "from_positions: duplicate position " + p.to_string());
      }
    }
  }

  VirtualSpace vs;
  vs.participants_ = std::move(participants);
  vs.positions_ = std::move(positions);
  vs.mds_positions_ = vs.positions_;

  // Scale estimate: mean (virtual distance / hop distance) over pairs.
  double ratio_sum = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < vs.participants_.size(); ++i) {
    for (std::size_t j = i + 1; j < vs.participants_.size(); ++j) {
      const double hops =
          apsp.dist(vs.participants_[i], vs.participants_[j]);
      if (hops == graph::kUnreachable) {
        return Error(ErrorCode::kFailedPrecondition,
                     "from_positions: participants are disconnected");
      }
      if (hops > 0.0) {
        ratio_sum +=
            geometry::distance(vs.positions_[i], vs.positions_[j]) / hops;
        ++pairs;
      }
    }
  }
  vs.scale_ = pairs > 0 ? ratio_sum / static_cast<double>(pairs) : 1.0;
  vs.rebuild_grid();
  return vs;
}

std::size_t VirtualSpace::index_of(topology::SwitchId sw) const {
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    if (participants_[i] == sw) return i;
  }
  return kNoIndex;
}

topology::SwitchId VirtualSpace::nearest_participant(
    const geometry::Point2D& p) const {
  return participants_[grid_.nearest(p)];
}

std::vector<topology::SwitchId> VirtualSpace::nearest_participants(
    const geometry::Point2D& p, std::size_t k) const {
  std::vector<topology::SwitchId> out;
  for (const std::size_t idx : grid_.nearest_k(p, k)) {
    out.push_back(participants_[idx]);
  }
  return out;
}

void VirtualSpace::rebuild_grid() {
  grid_ = geometry::SiteGrid(positions_, geometry::Rect{0.0, 0.0, 1.0, 1.0});
  // Every packet's home-switch lookup goes through the grid, so each
  // rebuild re-proves (in Debug / GRED_CHECKED builds) that it agrees
  // with the brute-force nearest-site scan on sampled probes.
  GRED_CHECK(check::validate_virtual_space(
      positions_,
      [this](const geometry::Point2D& p) { return grid_.nearest(p); }));
}

void VirtualSpace::add_participant(topology::SwitchId sw,
                                   const geometry::Point2D& p) {
  participants_.push_back(sw);
  positions_.push_back(p);
  mds_positions_.push_back(p);

  // Fast path: a join at a fresh position extends the grid in place.
  // Grid answers are layout-independent, so this is exactly the state
  // a full rebuild would produce. A position collision (the join
  // nudges other sites) or a refused insert (bounding-box growth,
  // density drift) falls back to the rebuild.
  bool collided = false;
  for (std::size_t i = 0; i + 1 < positions_.size(); ++i) {
    if (positions_[i] == p) {
      collided = true;
      break;
    }
  }
  if (!collided && grid_.insert(p)) return;
  separate_duplicates(positions_);
  rebuild_grid();
}

void VirtualSpace::remove_participant(topology::SwitchId sw) {
  const std::size_t idx = index_of(sw);
  if (idx == kNoIndex) return;
  participants_.erase(participants_.begin() +
                      static_cast<std::ptrdiff_t>(idx));
  positions_.erase(positions_.begin() + static_cast<std::ptrdiff_t>(idx));
  mds_positions_.erase(mds_positions_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
  if (grid_.erase(idx)) return;
  rebuild_grid();
}

std::size_t VirtualSpace::refine_cvt(const VirtualSpaceOptions& options,
                                     double energy_delta_tolerance) {
  if (!options.use_cvt || options.cvt_iterations == 0 ||
      positions_.size() <= 1) {
    return 0;
  }
  const obs::ScopedPhaseTimer cvt_timer("cvt_warm");
  geometry::CvtOptions cvt;
  cvt.samples_per_iteration = options.cvt_samples;
  cvt.max_iterations = options.cvt_iterations;
  cvt.energy_threshold = options.cvt_energy_threshold;
  cvt.energy_delta_tolerance = energy_delta_tolerance;
  cvt.domain = geometry::Rect{0.0, 0.0, 1.0, 1.0};
  cvt.density = options.cvt_density;
  cvt.density_bound = options.cvt_density_bound;
  Rng rng(options.seed);
  geometry::CvtResult refined = geometry::c_regulation(positions_, cvt, rng);
  positions_ = std::move(refined.sites);
  energy_history_.insert(energy_history_.end(),
                         refined.energy_history.begin(),
                         refined.energy_history.end());
  separate_duplicates(positions_);
  rebuild_grid();
  return refined.iterations_run;
}

}  // namespace gred::core
