#include "core/delay_experiment.hpp"

#include <algorithm>
#include <unordered_map>

#include "sden/event_queue.hpp"

namespace gred::core {

Result<DelayExperimentResult> RetrievalDelayExperiment::run(
    const std::vector<RetrievalRequest>& requests) {
  DelayExperimentResult out;
  out.requests = requests.size();

  const auto& apsp_hops = system_->controller().apsp();
  const auto& apsp_lat = system_->controller().apsp_latency();

  sden::EventQueue queue;
  std::unordered_map<topology::ServerId, double> server_free;
  std::vector<double> delays;
  delays.reserve(requests.size());

  for (const RetrievalRequest& req : requests) {
    auto report = system_->retrieve(req.data_id, req.ingress);
    if (!report.ok()) return report.error();
    if (!report.value().route.found) {
      ++out.not_found;
      continue;
    }

    // Request leg: cost of the walked route; response leg: weighted
    // shortest path back from the responder's switch.
    const topology::ServerId responder = report.value().route.responder;
    const topology::SwitchId responder_sw =
        system_->network().server(responder).info().attached_to;

    double req_ms, resp_ms;
    if (options_.weights_are_latencies) {
      req_ms = report.value().selected_cost;
      const double back = apsp_lat.dist(responder_sw, req.ingress);
      resp_ms = back == graph::kUnreachable ? 0.0 : back;
    } else {
      req_ms = static_cast<double>(report.value().selected_hops) *
               options_.link_latency_ms;
      const std::size_t back_hops =
          apsp_hops.hop_count(responder_sw, req.ingress);
      resp_ms = back_hops == graph::kNoPath
                    ? 0.0
                    : static_cast<double>(back_hops) *
                          options_.link_latency_ms;
    }

    const double inject = req.at_ms;
    queue.schedule_at(inject, [&, inject, req_ms, resp_ms, responder] {
      queue.schedule_after(req_ms, [&, inject, resp_ms, responder] {
        double& free_at = server_free[responder];
        const double start = std::max(queue.now(), free_at);
        free_at = start + options_.service_time_ms;
        queue.schedule_at(free_at + resp_ms, [&, inject] {
          delays.push_back(queue.now() - inject);
        });
      });
    });
  }

  queue.run();
  out.makespan_ms = queue.now();
  out.delay = summarize(std::move(delays));
  return out;
}

Result<DelayExperimentResult> RetrievalDelayExperiment::run_uniform(
    const std::vector<std::string>& ids, std::size_t count,
    double spacing_ms, Rng& rng) {
  if (ids.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "run_uniform: no data ids to retrieve");
  }
  std::vector<RetrievalRequest> requests;
  requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    RetrievalRequest req;
    req.data_id = ids[rng.next_below(ids.size())];
    req.ingress = rng.next_below(system_->network().switch_count());
    req.at_ms = static_cast<double>(i) * spacing_ms;
    requests.push_back(std::move(req));
  }
  return run(requests);
}

}  // namespace gred::core
