#include "core/delay_experiment.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "common/thread_pool.hpp"
#include "sden/event_queue.hpp"

namespace gred::core {
namespace {

/// Requests per shard for both generation and routing. Fixed, so the
/// shard layout — and each shard's RNG stream — depends only on the
/// request count, never on the thread count.
constexpr std::size_t kShardSize = 64;

/// Phase-1 result slot of one request.
struct RoutedRequest {
  enum class Outcome : std::uint8_t { kOk, kNotFound, kError };
  Outcome outcome = Outcome::kError;
  double req_ms = 0.0;
  double resp_ms = 0.0;
  topology::ServerId responder = topology::kNoServer;
  Error error;
  std::size_t attempts = 1;
  std::size_t fallbacks = 0;
  bool recovered = false;
  bool cached = false;
};

}  // namespace

Result<DelayExperimentResult> RetrievalDelayExperiment::run(
    const std::vector<RetrievalRequest>& requests) {
  DelayExperimentResult out;
  out.requests = requests.size();

  const auto& apsp_hops = system_->controller().apsp();
  const auto& apsp_lat = system_->controller().apsp_latency();

  // --- Phase 1: route every request (parallel, per-slot results). ---
  // Retrievals are independent and mutate nothing but a relaxed server
  // counter, so shards of the request list fan out across the pool.
  std::vector<RoutedRequest> routed(requests.size());
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : global_pool();
  pool.parallel_for(
      0, requests.size(), kShardSize, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const RetrievalRequest& req = requests[i];
          RoutedRequest& slot = routed[i];
          OpReport report;
          double client_backoff_ms = 0.0;
          if (options_.use_fallback) {
            auto outcome = system_->retrieve_with_fallback(
                req.data_id, req.ingress, options_.retry);
            if (!outcome.ok()) {
              slot.outcome = RoutedRequest::Outcome::kError;
              slot.error = outcome.error();
              continue;
            }
            RetrievalOutcome& out = outcome.value();
            slot.attempts = out.attempts;
            slot.fallbacks = out.fallbacks;
            slot.recovered = out.recovered;
            if (!out.found) {
              slot.outcome = RoutedRequest::Outcome::kNotFound;
              continue;
            }
            client_backoff_ms = out.backoff_ms;
            report = std::move(out.report);
          } else {
            auto single = system_->retrieve(req.data_id, req.ingress);
            if (!single.ok()) {
              slot.outcome = RoutedRequest::Outcome::kError;
              slot.error = single.error();
              continue;
            }
            if (!single.value().route.found) {
              slot.outcome = RoutedRequest::Outcome::kNotFound;
              continue;
            }
            report = std::move(single).value();
          }
          // A cache hit is answered at the ingress: no network legs,
          // no server visit — phase 2 charges cache_service_ms only.
          if (report.served_from_cache) {
            slot.cached = true;
            slot.outcome = RoutedRequest::Outcome::kOk;
            continue;
          }
          // Request leg: cost of the walked route (plus any client
          // backoff spent retrying); response leg: weighted shortest
          // path back from the responder's switch.
          slot.responder = report.route.responder;
          const topology::SwitchId responder_sw =
              system_->network().server(slot.responder).info().attached_to;
          if (options_.weights_are_latencies) {
            slot.req_ms = report.selected_cost;
            const double back = apsp_lat.dist(responder_sw, req.ingress);
            slot.resp_ms = back == graph::kUnreachable ? 0.0 : back;
          } else {
            slot.req_ms = static_cast<double>(report.selected_hops) *
                          options_.link_latency_ms;
            const std::size_t back_hops =
                apsp_hops.hop_count(responder_sw, req.ingress);
            slot.resp_ms = back_hops == graph::kNoPath
                               ? 0.0
                               : static_cast<double>(back_hops) *
                                     options_.link_latency_ms;
          }
          slot.req_ms += client_backoff_ms;
          slot.outcome = RoutedRequest::Outcome::kOk;
        }
      });

  // Errors surface in request order (the serial path reported the
  // first failing request; the parallel one must agree).
  for (const RoutedRequest& slot : routed) {
    if (slot.outcome == RoutedRequest::Outcome::kError) return slot.error;
  }
  for (const RoutedRequest& slot : routed) {
    out.attempts += slot.attempts;
    out.fallbacks += slot.fallbacks;
    if (slot.recovered) ++out.recovered;
  }

  // --- Phase 2: serial event-queue replay in request order. ---
  sden::EventQueue queue;
  queue.reserve(requests.size() + 1);
  std::unordered_map<topology::ServerId, double> server_free;
  std::vector<double> delays;
  delays.reserve(requests.size());

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RoutedRequest& slot = routed[i];
    if (slot.outcome == RoutedRequest::Outcome::kNotFound) {
      ++out.not_found;
      continue;
    }
    const double inject = requests[i].at_ms;
    if (slot.cached) {
      ++out.cache_hits;
      queue.schedule_at(inject + options_.cache_service_ms,
                        [&, inject] { delays.push_back(queue.now() - inject); });
      continue;
    }
    const double req_ms = slot.req_ms;
    const double resp_ms = slot.resp_ms;
    const topology::ServerId responder = slot.responder;
    queue.schedule_at(inject, [&, inject, req_ms, resp_ms, responder] {
      queue.schedule_after(req_ms, [&, inject, resp_ms, responder] {
        double& free_at = server_free[responder];
        const double start = std::max(queue.now(), free_at);
        free_at = start + options_.service_time_ms;
        queue.schedule_at(free_at + resp_ms, [&, inject] {
          delays.push_back(queue.now() - inject);
        });
      });
    });
  }

  queue.run();
  out.makespan_ms = queue.now();
  out.delay = summarize(std::move(delays));
  return out;
}

Result<DelayExperimentResult> RetrievalDelayExperiment::run_uniform(
    const std::vector<std::string>& ids, std::size_t count,
    double spacing_ms, Rng& rng) {
  if (ids.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "run_uniform: no data ids to retrieve");
  }
  // Per-shard RNG streams (the C-regulation idiom): one base seed from
  // the caller's generator, shard s draws from Rng(base + s). The
  // generated request set is a pure function of (seed, ids, count).
  const std::uint64_t base_seed = rng.next_u64();
  const std::size_t switch_count = system_->network().switch_count();
  std::vector<RetrievalRequest> requests(count);
  const std::size_t shards = (count + kShardSize - 1) / kShardSize;
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool : global_pool();
  pool.parallel_for(0, shards, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      Rng shard_rng(base_seed + s);
      const std::size_t begin = s * kShardSize;
      const std::size_t end = std::min(count, begin + kShardSize);
      for (std::size_t i = begin; i < end; ++i) {
        RetrievalRequest& req = requests[i];
        req.data_id = ids[shard_rng.next_below(ids.size())];
        req.ingress = shard_rng.next_below(switch_count);
        req.at_ms = static_cast<double>(i) * spacing_ms;
      }
    }
  });
  return run(requests);
}

}  // namespace gred::core
