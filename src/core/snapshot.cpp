#include "core/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/strings.hpp"

namespace gred::core {

namespace {
constexpr const char* kMagic = "gred-snapshot v1";
}  // namespace

Result<Snapshot> capture_snapshot(const Controller& controller) {
  if (!controller.initialized()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "capture_snapshot: controller not initialized");
  }
  Snapshot s;
  s.participants = controller.space().participants();
  s.positions = controller.space().positions();
  return s;
}

std::string serialize_snapshot(const Snapshot& snapshot) {
  std::ostringstream os;
  os << kMagic << "\n" << snapshot.participants.size() << "\n";
  char buf[96];
  for (std::size_t i = 0; i < snapshot.participants.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu %.17g %.17g\n",
                  snapshot.participants[i], snapshot.positions[i].x,
                  snapshot.positions[i].y);
    os << buf;
  }
  return os.str();
}

Result<Snapshot> parse_snapshot(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || trim(line) != kMagic) {
    return Error(ErrorCode::kInvalidArgument,
                 "parse_snapshot: bad or missing header");
  }
  std::size_t count = 0;
  if (!(in >> count)) {
    return Error(ErrorCode::kInvalidArgument,
                 "parse_snapshot: missing participant count");
  }
  Snapshot s;
  // Reserve from the declared count only up to a sane bound: a
  // hostile header must not size an allocation (the loop below grows
  // the vectors naturally and fails on truncated input anyway).
  constexpr std::size_t kReserveCap = 4096;
  s.participants.reserve(std::min(count, kReserveCap));
  s.positions.reserve(std::min(count, kReserveCap));
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t sw = 0;
    double x = 0.0, y = 0.0;
    if (!(in >> sw >> x >> y)) {
      return Error(ErrorCode::kInvalidArgument,
                   "parse_snapshot: truncated at entry " +
                       std::to_string(i));
    }
    s.participants.push_back(sw);
    s.positions.push_back({x, y});
  }
  return s;
}

Status restore_snapshot(Controller& controller, sden::SdenNetwork& net,
                        const Snapshot& snapshot) {
  return controller.initialize_with_positions(net, snapshot.participants,
                                              snapshot.positions);
}

}  // namespace gred::core
