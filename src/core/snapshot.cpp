#include "core/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/strings.hpp"

namespace gred::core {

namespace {
constexpr const char* kMagic = "gred-snapshot v1";
}  // namespace

Result<Snapshot> capture_snapshot(const Controller& controller) {
  if (!controller.initialized()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "capture_snapshot: controller not initialized");
  }
  Snapshot s;
  s.participants = controller.space().participants();
  s.positions = controller.space().positions();
  return s;
}

Result<Snapshot> capture_snapshot(const Controller& controller,
                                  const sden::SdenNetwork& net) {
  auto s = capture_snapshot(controller);
  if (!s.ok()) return s;
  for (topology::SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    for (const sden::RewriteEntry& rw : net.switch_at(sw).table().rewrites()) {
      s.value().rewrites.emplace_back(sw, rw);
    }
  }
  return s;
}

std::string serialize_snapshot(const Snapshot& snapshot) {
  std::ostringstream os;
  os << kMagic << "\n" << snapshot.participants.size() << "\n";
  char buf[96];
  for (std::size_t i = 0; i < snapshot.participants.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%zu %.17g %.17g\n",
                  snapshot.participants[i], snapshot.positions[i].x,
                  snapshot.positions[i].y);
    os << buf;
  }
  if (!snapshot.rewrites.empty()) {
    os << "rewrites " << snapshot.rewrites.size() << "\n";
    for (const auto& [sw, rw] : snapshot.rewrites) {
      std::snprintf(buf, sizeof(buf), "%zu %zu %zu %zu\n", sw,
                    rw.original, rw.replacement, rw.via_switch);
      os << buf;
    }
  }
  return os.str();
}

Result<Snapshot> parse_snapshot(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || trim(line) != kMagic) {
    return Error(ErrorCode::kInvalidArgument,
                 "parse_snapshot: bad or missing header");
  }
  std::size_t count = 0;
  if (!(in >> count)) {
    return Error(ErrorCode::kInvalidArgument,
                 "parse_snapshot: missing participant count");
  }
  Snapshot s;
  // Reserve from the declared count only up to a sane bound: a
  // hostile header must not size an allocation (the loop below grows
  // the vectors naturally and fails on truncated input anyway).
  constexpr std::size_t kReserveCap = 4096;
  s.participants.reserve(std::min(count, kReserveCap));
  s.positions.reserve(std::min(count, kReserveCap));
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t sw = 0;
    double x = 0.0, y = 0.0;
    if (!(in >> sw >> x >> y)) {
      return Error(ErrorCode::kInvalidArgument,
                   "parse_snapshot: truncated at entry " +
                       std::to_string(i));
    }
    s.participants.push_back(sw);
    s.positions.push_back({x, y});
  }
  // Optional trailing rewrites section (absent in pre-extension
  // snapshots and for extension-free networks).
  std::string tag;
  if (in >> tag) {
    if (tag != "rewrites") {
      return Error(ErrorCode::kInvalidArgument,
                   "parse_snapshot: unexpected trailing token '" + tag + "'");
    }
    std::size_t rewrite_count = 0;
    if (!(in >> rewrite_count)) {
      return Error(ErrorCode::kInvalidArgument,
                   "parse_snapshot: missing rewrite count");
    }
    s.rewrites.reserve(std::min(rewrite_count, kReserveCap));
    for (std::size_t i = 0; i < rewrite_count; ++i) {
      std::size_t sw = 0;
      sden::RewriteEntry rw;
      if (!(in >> sw >> rw.original >> rw.replacement >> rw.via_switch)) {
        return Error(ErrorCode::kInvalidArgument,
                     "parse_snapshot: truncated at rewrite " +
                         std::to_string(i));
      }
      s.rewrites.emplace_back(sw, rw);
    }
  }
  return s;
}

Status restore_snapshot(Controller& controller, sden::SdenNetwork& net,
                        const Snapshot& snapshot) {
  const Status init = controller.initialize_with_positions(
      net, snapshot.participants, snapshot.positions);
  if (!init.ok()) return init;
  // Re-install the captured range extensions after the flow tables
  // exist. Validate against this network: a snapshot is text from
  // outside and must not install a rewrite the topology can't serve.
  for (const auto& [sw, rw] : snapshot.rewrites) {
    if (sw >= net.switch_count() || rw.via_switch >= net.switch_count() ||
        rw.original >= net.server_count() ||
        rw.replacement >= net.server_count()) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_snapshot: rewrite references unknown ids");
    }
    if (net.description().switches().find_edge(sw, rw.via_switch) ==
        nullptr) {
      return Status(ErrorCode::kInvalidArgument,
                    "restore_snapshot: rewrite handoff link missing");
    }
    sden::FlowTable& table = net.switch_at(sw).table();
    if (table.find_rewrite(rw.original) != nullptr) {
      table.remove_rewrite(rw.original);  // snapshot wins over live state
    }
    table.add_rewrite(rw);
  }
  // Every mutation above already rode through invalidate_plan(), but a
  // restore replaces the whole control-plane state wholesale: bump the
  // hot-key-cache epoch explicitly so no pre-restore cached answer —
  // whatever path built it — can name a holder the restored plan no
  // longer agrees with.
  if (sden::HotKeyCache* cache = net.hot_key_cache()) {
    cache->invalidate_all();
  }
  return Status::Ok();
}

}  // namespace gred::core
