// GredSystem: the one-stop facade — build a GRED deployment from an
// edge-network description in one call, then place/retrieve data. This
// is the API the examples and most tests use; components remain
// individually accessible for advanced use (benches drive Controller
// and SdenNetwork directly).
#pragma once

#include <memory>
#include <string>

#include "common/error.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "sden/network.hpp"
#include "topology/edge_network.hpp"

namespace gred::core {

class GredSystem {
 public:
  /// Builds the network simulator, runs the control-plane pipeline, and
  /// installs all switch state.
  static Result<GredSystem> create(topology::EdgeNetwork description,
                                   VirtualSpaceOptions options = {});

  GredSystem(GredSystem&&) = default;
  GredSystem& operator=(GredSystem&&) = default;

  // --- data operations (Section V) ---
  Result<OpReport> place(const std::string& data_id,
                         const std::string& payload,
                         topology::SwitchId ingress) {
    return protocol().place(data_id, payload, ingress);
  }
  Result<OpReport> retrieve(const std::string& data_id,
                            topology::SwitchId ingress) {
    return protocol().retrieve(data_id, ingress);
  }
  Result<OpReport> remove(const std::string& data_id,
                          topology::SwitchId ingress) {
    return protocol().remove(data_id, ingress);
  }
  Result<std::vector<OpReport>> place_replicated(
      const std::string& data_id, const std::string& payload,
      unsigned copies, topology::SwitchId ingress) {
    return protocol().place_replicated(data_id, payload, copies, ingress);
  }
  Result<OpReport> retrieve_nearest_replica(const std::string& data_id,
                                            unsigned copies,
                                            topology::SwitchId ingress) {
    return protocol().retrieve_nearest_replica(data_id, copies, ingress);
  }
  /// Fault-tolerant retrieval with replica fallback (see
  /// GredProtocol::retrieve_with_fallback).
  Result<RetrievalOutcome> retrieve_with_fallback(
      const std::string& data_id, topology::SwitchId ingress,
      const RetryPolicy& policy = {}) {
    return protocol().retrieve_with_fallback(data_id, ingress, policy);
  }

  // --- management operations ---
  /// Opts into k-replica placement (fault-tolerance layer).
  Status enable_replication(ReplicationOptions opts = {}) {
    return controller_.enable_replication(*net_, opts);
  }
  Status extend_range(topology::ServerId overloaded) {
    return controller_.extend_range(*net_, overloaded);
  }
  Status retract_range(topology::ServerId overloaded) {
    return controller_.retract_range(*net_, overloaded);
  }
  /// Load-driven range extension (see Controller::extend_for_load).
  Result<std::size_t> extend_for_load(const obs::SwitchLoadTracker& loads,
                                      const LoadExtensionOptions& opts = {}) {
    return controller_.extend_for_load(*net_, loads, opts);
  }
  Result<topology::SwitchId> add_switch(
      const std::vector<topology::SwitchId>& links, std::size_t servers,
      std::size_t capacity = 0) {
    return controller_.add_switch(*net_, links, servers, capacity);
  }
  Status remove_switch(topology::SwitchId sw) {
    return controller_.remove_switch(*net_, sw);
  }
  Status add_link(topology::SwitchId u, topology::SwitchId v,
                  double weight = 1.0) {
    return controller_.add_link(*net_, u, v, weight);
  }
  Status remove_link(topology::SwitchId u, topology::SwitchId v) {
    return controller_.remove_link(*net_, u, v);
  }

  // --- component access ---
  sden::SdenNetwork& network() { return *net_; }
  const sden::SdenNetwork& network() const { return *net_; }
  Controller& controller() { return controller_; }
  const Controller& controller() const { return controller_; }
  GredProtocol protocol() { return GredProtocol(*net_, controller_); }

 private:
  GredSystem(std::unique_ptr<sden::SdenNetwork> net, Controller controller)
      : net_(std::move(net)), controller_(std::move(controller)) {}

  std::unique_ptr<sden::SdenNetwork> net_;
  Controller controller_;
};

}  // namespace gred::core
