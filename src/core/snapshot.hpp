// Snapshot save/restore of the control plane's virtual-space layout.
// The layout (switch -> position) is the only state that is expensive
// or nondeterministic to recompute (MDS + stochastic CVT); everything
// else (DT, relay paths, flow entries) derives from it and the physical
// topology. Pinning a snapshot makes deployments reproducible across
// controller restarts and lets experiments replay a published layout.
//
// Format (line-oriented text):
//   gred-snapshot v1
//   <count>
//   <switch-id> <x> <y>        (one line per participant, full
//                               precision round-trip via %.17g)
//   rewrites <count>           (optional trailing section: the active
//   <sw> <original> <replacement> <via>    range-extension rewrites,
//                               one per line — without it a restored
//                               network would silently lose every
//                               delegation and strand delegated items)
//
// Snapshots written before the rewrites section existed parse fine
// (the section is optional); new snapshots of extension-free networks
// omit it, so those files are byte-identical to the v1 output.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/controller.hpp"

namespace gred::core {

struct Snapshot {
  std::vector<topology::SwitchId> participants;
  std::vector<geometry::Point2D> positions;
  /// Active range-extension rewrites, as (switch, entry) pairs.
  std::vector<std::pair<topology::SwitchId, sden::RewriteEntry>> rewrites;
};

/// Captures the current layout of an initialized controller. This
/// overload sees no data plane, so `rewrites` is left empty — use the
/// two-argument overload to snapshot a network that may have active
/// range extensions.
Result<Snapshot> capture_snapshot(const Controller& controller);

/// Captures the layout plus the network's installed range-extension
/// rewrites, so a restore reproduces the full forwarding state.
Result<Snapshot> capture_snapshot(const Controller& controller,
                                  const sden::SdenNetwork& net);

/// Serializes to the text format above.
std::string serialize_snapshot(const Snapshot& snapshot);

/// Parses the text format; validates structure but not the network
/// (restore does that).
Result<Snapshot> parse_snapshot(const std::string& text);

/// Re-initializes `controller` over `net` using the snapshot layout
/// instead of running M-position/C-regulation: rebuilds the multi-hop
/// DT and reinstalls all flow entries. The snapshot's participants must
/// exactly match the switches of `net` that have servers.
Status restore_snapshot(Controller& controller, sden::SdenNetwork& net,
                        const Snapshot& snapshot);

}  // namespace gred::core
