#include "core/multihop_dt.hpp"

#include <algorithm>

#include "obs/phase_timer.hpp"

namespace gred::core {
namespace {

using RelayVec = std::vector<sden::RelayEntry>;

/// Position of (sour, dest) in a relay vector kept sorted by that key.
/// Each virtual link visits an intermediate at most once, so the key is
/// unique within a vector.
RelayVec::iterator relay_lower_bound(RelayVec& v, topology::SwitchId sour,
                                     topology::SwitchId dest) {
  return std::lower_bound(
      v.begin(), v.end(), std::make_pair(sour, dest),
      [](const sden::RelayEntry& e,
         const std::pair<topology::SwitchId, topology::SwitchId>& key) {
        return std::make_pair(e.sour, e.dest) < key;
      });
}

}  // namespace

Status MultiHopDT::build_candidates_for(
    std::size_t i, const graph::Graph& physical, const graph::ApspResult& apsp,
    std::vector<topology::SwitchId>* touched) {
  const topology::SwitchId u = participants_[i];
  const std::vector<geometry::Point2D>& positions = dt_.points();
  candidates_[i].clear();

  // All DT neighbors of u; physical adjacency decides direct vs
  // multi-hop. Physical neighbors that are NOT DT neighbors are added
  // too when they participate in the DT (Algorithm 2 compares both
  // neighbor kinds).
  std::vector<bool> added(participants_.size(), false);
  for (std::size_t j : dt_.neighbors(i)) {
    const topology::SwitchId v = participants_[j];
    DtNeighborInfo info;
    info.neighbor = v;
    info.position = positions[j];
    info.physical = physical.has_edge(u, v);
    if (info.physical) {
      info.first_hop = v;
      info.path_length = 1;
    } else {
      std::vector<graph::NodeId> path = apsp.path(u, v, physical);
      if (path.size() < 2) {
        return Status(ErrorCode::kFailedPrecondition,
                      "MultiHopDT: DT neighbors " + std::to_string(u) +
                          " and " + std::to_string(v) +
                          " are physically disconnected");
      }
      info.first_hop = path[1];
      info.path_length = path.size() - 1;
      // Relay tuples at every intermediate switch of the virtual link
      // u -> v, inserted at their (sour, dest)-sorted slot. (The
      // reverse direction is installed when the DT edge is visited
      // from v's side.)
      for (std::size_t k = 1; k + 1 < path.size(); ++k) {
        sden::RelayEntry relay;
        relay.sour = u;
        relay.pred = path[k - 1];
        relay.succ = path[k + 1];
        relay.dest = v;
        RelayVec& vec = relays_[path[k]];
        vec.insert(relay_lower_bound(vec, u, v), relay);
        if (touched != nullptr) touched->push_back(path[k]);
      }
      vlink_paths_[{u, v}] = std::move(path);
    }
    candidates_[i].push_back(info);
    added[j] = true;
  }

  // Physical neighbors that participate in the DT but are not DT
  // neighbors of u.
  for (const graph::EdgeTo& e : physical.neighbors(u)) {
    const auto it = index_.find(e.to);
    if (it == index_.end() || added[it->second]) continue;
    DtNeighborInfo info;
    info.neighbor = e.to;
    info.position = positions[it->second];
    info.physical = true;
    info.first_hop = e.to;
    info.path_length = 1;
    candidates_[i].push_back(info);
    added[it->second] = true;
  }
  return Status::Ok();
}

Result<MultiHopDT> MultiHopDT::build(
    const std::vector<topology::SwitchId>& participants,
    const std::vector<geometry::Point2D>& positions,
    const graph::Graph& physical, const graph::ApspResult& apsp) {
  const obs::ScopedPhaseTimer timer("dt_build");
  if (participants.size() != positions.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "MultiHopDT: participants/positions size mismatch");
  }

  MultiHopDT out;
  out.participants_ = participants;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    out.index_[participants[i]] = i;
  }

  auto dt = geometry::DelaunayTriangulation::build(positions);
  if (!dt.ok()) return dt.error();
  out.dt_ = std::move(dt).value();

  out.candidates_.assign(participants.size(), {});
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const Status s = out.build_candidates_for(i, physical, apsp, nullptr);
    if (!s.ok()) return s.error();
  }
  return out;
}

const std::vector<DtNeighborInfo>& MultiHopDT::candidates_of(
    topology::SwitchId sw) const {
  static const std::vector<DtNeighborInfo> kEmpty;
  const auto it = index_.find(sw);
  if (it == index_.end()) return kEmpty;
  return candidates_[it->second];
}

double MultiHopDT::mean_vlink_length() const {
  std::size_t total = 0;
  std::size_t count = 0;
  for (const auto& list : candidates_) {
    for (const DtNeighborInfo& info : list) {
      if (!info.physical) {
        total += info.path_length;
        ++count;
      }
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(count);
}

void MultiHopDT::drop_vlinks_of(topology::SwitchId u,
                                std::vector<topology::SwitchId>* touched) {
  auto it = vlink_paths_.lower_bound({u, 0});
  while (it != vlink_paths_.end() && it->first.first == u) {
    const topology::SwitchId dest = it->first.second;
    const std::vector<graph::NodeId>& path = it->second;
    for (std::size_t k = 1; k + 1 < path.size(); ++k) {
      const auto rit = relays_.find(path[k]);
      if (rit != relays_.end()) {
        const auto pos = relay_lower_bound(rit->second, u, dest);
        if (pos != rit->second.end() && pos->sour == u && pos->dest == dest) {
          rit->second.erase(pos);
        }
        // Keep the relay map's key set identical to what a fresh build
        // produces: it never creates empty vectors.
        if (rit->second.empty()) relays_.erase(rit);
      }
      if (touched != nullptr) touched->push_back(path[k]);
    }
    it = vlink_paths_.erase(it);
  }
}

Status MultiHopDT::rebuild_participant(
    std::size_t i, const graph::Graph& physical, const graph::ApspResult& apsp,
    std::vector<topology::SwitchId>* touched) {
  if (i >= participants_.size()) {
    return Status(ErrorCode::kInvalidArgument,
                  "MultiHopDT::rebuild_participant: index out of range");
  }
  drop_vlinks_of(participants_[i], touched);
  if (touched != nullptr) touched->push_back(participants_[i]);
  return build_candidates_for(i, physical, apsp, touched);
}

Status MultiHopDT::rebuild_all(const graph::Graph& physical,
                               const graph::ApspResult& apsp,
                               std::vector<topology::SwitchId>* touched) {
  relays_.clear();
  vlink_paths_.clear();
  candidates_.assign(participants_.size(), {});
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    const Status s = build_candidates_for(i, physical, apsp, nullptr);
    if (!s.ok()) return s;
  }
  if (touched != nullptr) {
    touched->insert(touched->end(), participants_.begin(), participants_.end());
    for (const auto& [pair, path] : vlink_paths_) {
      for (std::size_t k = 1; k + 1 < path.size(); ++k) {
        touched->push_back(path[k]);
      }
    }
  }
  return Status::Ok();
}

Status MultiHopDT::add_participant(
    topology::SwitchId sw, const geometry::Point2D& position,
    const graph::Graph& physical, const graph::ApspResult& apsp,
    std::vector<std::size_t>* affected,
    std::vector<topology::SwitchId>* touched_switches) {
  if (affected != nullptr) affected->clear();
  if (index_.count(sw) != 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "MultiHopDT::add_participant: switch " + std::to_string(sw) +
                      " already participates");
  }

  geometry::RepairInfo repair;
  auto inserted = dt_.insert(position, &repair);
  if (!inserted.ok()) return inserted.error();
  const std::size_t idx = inserted.value();

  participants_.push_back(sw);
  index_[sw] = idx;
  candidates_.emplace_back();

  if (!repair.localized) {
    if (affected != nullptr) {
      affected->resize(participants_.size());
      for (std::size_t i = 0; i < affected->size(); ++i) (*affected)[i] = i;
    }
    return rebuild_all(physical, apsp, touched_switches);
  }

  for (const std::size_t i : repair.affected) {
    const Status s = rebuild_participant(i, physical, apsp, touched_switches);
    if (!s.ok()) return s;
  }
  if (affected != nullptr) *affected = repair.affected;
  return Status::Ok();
}

Status MultiHopDT::remove_participant(
    topology::SwitchId sw, const graph::Graph& physical,
    const graph::ApspResult& apsp, std::vector<std::size_t>* affected,
    std::vector<topology::SwitchId>* touched_switches) {
  if (affected != nullptr) affected->clear();
  const auto it = index_.find(sw);
  if (it == index_.end()) {
    return Status(ErrorCode::kNotFound,
                  "MultiHopDT::remove_participant: switch " +
                      std::to_string(sw) + " does not participate");
  }
  const std::size_t idx = it->second;

  // Drop the leaver's own virtual links first; the rim participants
  // (whose links ended at sw) are rebuilt below and drop theirs then.
  drop_vlinks_of(sw, touched_switches);
  if (touched_switches != nullptr) touched_switches->push_back(sw);

  geometry::RepairInfo repair;
  const Status removed = dt_.remove(idx, &repair);
  if (!removed.ok()) return removed;

  participants_.erase(participants_.begin() +
                      static_cast<std::ptrdiff_t>(idx));
  candidates_.erase(candidates_.begin() + static_cast<std::ptrdiff_t>(idx));
  index_.clear();
  for (std::size_t i = 0; i < participants_.size(); ++i) {
    index_[participants_[i]] = i;
  }

  if (!repair.localized) {
    if (affected != nullptr) {
      affected->resize(participants_.size());
      for (std::size_t i = 0; i < affected->size(); ++i) (*affected)[i] = i;
    }
    return rebuild_all(physical, apsp, touched_switches);
  }

  for (const std::size_t i : repair.affected) {
    const Status s = rebuild_participant(i, physical, apsp, touched_switches);
    if (!s.ok()) return s;
  }
  if (affected != nullptr) *affected = repair.affected;
  return Status::Ok();
}

std::vector<std::size_t> MultiHopDT::participants_with_vlinks_through(
    const std::vector<topology::SwitchId>& nodes) const {
  std::vector<std::size_t> out;
  for (const auto& [pair, path] : vlink_paths_) {
    for (const graph::NodeId hop : path) {
      if (std::find(nodes.begin(), nodes.end(),
                    static_cast<topology::SwitchId>(hop)) == nodes.end()) {
        continue;
      }
      const auto it = index_.find(pair.first);
      if (it != index_.end()) out.push_back(it->second);
      break;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace gred::core
