#include "core/multihop_dt.hpp"

#include "obs/phase_timer.hpp"

namespace gred::core {

Result<MultiHopDT> MultiHopDT::build(
    const std::vector<topology::SwitchId>& participants,
    const std::vector<geometry::Point2D>& positions,
    const graph::Graph& physical, const graph::ApspResult& apsp) {
  const obs::ScopedPhaseTimer timer("dt_build");
  if (participants.size() != positions.size()) {
    return Error(ErrorCode::kInvalidArgument,
                 "MultiHopDT: participants/positions size mismatch");
  }

  MultiHopDT out;
  out.participants_ = participants;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    out.index_[participants[i]] = i;
  }

  auto dt = geometry::DelaunayTriangulation::build(positions);
  if (!dt.ok()) return dt.error();
  out.dt_ = std::move(dt).value();

  out.candidates_.assign(participants.size(), {});
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const topology::SwitchId u = participants[i];

    // All DT neighbors of u; physical adjacency decides direct vs
    // multi-hop. Physical neighbors that are NOT DT neighbors are added
    // too when they participate in the DT (Algorithm 2 compares both
    // neighbor kinds).
    std::vector<bool> added(participants.size(), false);
    for (std::size_t j : out.dt_.neighbors(i)) {
      const topology::SwitchId v = participants[j];
      DtNeighborInfo info;
      info.neighbor = v;
      info.position = positions[j];
      info.physical = physical.has_edge(u, v);
      if (info.physical) {
        info.first_hop = v;
        info.path_length = 1;
      } else {
        const std::vector<graph::NodeId> path = apsp.path(u, v);
        if (path.size() < 2) {
          return Error(ErrorCode::kFailedPrecondition,
                       "MultiHopDT: DT neighbors " + std::to_string(u) +
                           " and " + std::to_string(v) +
                           " are physically disconnected");
        }
        info.first_hop = path[1];
        info.path_length = path.size() - 1;
        // Relay tuples at every intermediate switch of the virtual
        // link u -> v. (The reverse direction is installed when the DT
        // edge is visited from v's side.)
        for (std::size_t k = 1; k + 1 < path.size(); ++k) {
          sden::RelayEntry relay;
          relay.sour = u;
          relay.pred = path[k - 1];
          relay.succ = path[k + 1];
          relay.dest = v;
          out.relays_[path[k]].push_back(relay);
        }
      }
      out.candidates_[i].push_back(info);
      added[j] = true;
    }

    // Physical neighbors that participate in the DT but are not DT
    // neighbors of u.
    for (const graph::EdgeTo& e : physical.neighbors(u)) {
      const auto it = out.index_.find(e.to);
      if (it == out.index_.end() || added[it->second]) continue;
      DtNeighborInfo info;
      info.neighbor = e.to;
      info.position = positions[it->second];
      info.physical = true;
      info.first_hop = e.to;
      info.path_length = 1;
      out.candidates_[i].push_back(info);
      added[it->second] = true;
    }
  }

  return out;
}

const std::vector<DtNeighborInfo>& MultiHopDT::candidates_of(
    topology::SwitchId sw) const {
  static const std::vector<DtNeighborInfo> kEmpty;
  const auto it = index_.find(sw);
  if (it == index_.end()) return kEmpty;
  return candidates_[it->second];
}

double MultiHopDT::mean_vlink_length() const {
  std::size_t total = 0;
  std::size_t count = 0;
  for (const auto& list : candidates_) {
    for (const DtNeighborInfo& info : list) {
      if (!info.physical) {
        total += info.path_length;
        ++count;
      }
    }
  }
  if (count == 0) return 0.0;
  return static_cast<double>(total) / static_cast<double>(count);
}

}  // namespace gred::core
