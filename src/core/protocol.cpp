#include "core/protocol.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/switch_load.hpp"

namespace gred::core {
namespace {

sden::Packet make_packet(sden::PacketType type, const std::string& data_id,
                         std::string payload) {
  sden::Packet pkt;
  pkt.type = type;
  pkt.data_id = data_id;
  const crypto::DataKey key(data_id);
  const crypto::SpacePoint pos = key.position();
  pkt.target = {pos.x, pos.y};
  // Cache H(d) so the terminal switch's H(d) mod s server choice does
  // not hash the identifier a second time.
  pkt.set_key(key);
  pkt.payload = std::move(payload);
  return pkt;
}

}  // namespace

Result<OpReport> GredProtocol::run(sden::Packet packet,
                                   topology::SwitchId ingress) {
  if (!controller_->initialized()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "GredProtocol: controller not initialized");
  }
  OpReport report;
  report.ingress = ingress;
  net_->route(packet, ingress, report.route);
  if (!report.route.status.ok()) {
    return report.route.status.error();
  }
  if (report.route.delivered_to.empty()) {
    return Error(ErrorCode::kInternal, "packet was not delivered");
  }
  report.destination =
      net_->server(report.route.delivered_to.front()).info().attached_to;
  report.selected_hops = report.route.hop_count();
  const std::size_t shortest =
      controller_->apsp().hop_count(ingress, report.destination);
  report.shortest_hops =
      shortest == graph::kNoPath ? 0 : shortest;
  report.stretch = routing_stretch(report.selected_hops,
                                   report.shortest_hops);

  report.selected_cost = report.route.path_cost;
  const double wdist =
      controller_->apsp_latency().dist(ingress, report.destination);
  report.shortest_cost = wdist == graph::kUnreachable ? 0.0 : wdist;
  if (report.shortest_cost > 0.0) {
    report.latency_stretch = report.selected_cost / report.shortest_cost;
  } else {
    report.latency_stretch = report.selected_cost == 0.0
                                 ? 1.0
                                 : report.selected_cost;
  }
  return report;
}

Result<OpReport> GredProtocol::place(const std::string& data_id,
                                     const std::string& payload,
                                     topology::SwitchId ingress) {
  auto primary = run(
      make_packet(sden::PacketType::kPlacement, data_id, payload), ingress);
  if (!primary.ok()) return primary;
  // A placement may overwrite an existing payload without touching any
  // flow table: cached copies of this id must stop serving the old
  // bytes.
  if (sden::HotKeyCache* cache = net_->hot_key_cache()) {
    cache->invalidate_id(crypto::DataKey(data_id).digest());
  }
  if (controller_->replication_factor() > 1) {
    // k-replica placement: each additional copy keeps the same data_id
    // but re-targets the packet at the replica home's own virtual
    // position, so greedy routing delivers it there and H(d) mod s
    // picks that home's server.
    const crypto::DataKey key(data_id);
    const std::vector<topology::SwitchId> homes =
        controller_->replica_homes(key);
    for (std::size_t c = 1; c < homes.size(); ++c) {
      sden::Packet pkt =
          make_packet(sden::PacketType::kPlacement, data_id, payload);
      pkt.target = net_->const_switch_at(homes[c]).position();
      auto r = run(std::move(pkt), ingress);
      if (!r.ok()) return r.error();
    }
  }
  return primary;
}

Result<OpReport> GredProtocol::retrieve(const std::string& data_id,
                                        topology::SwitchId ingress) {
  sden::Packet pkt = make_packet(sden::PacketType::kRetrieval, data_id, {});
  const crypto::Digest digest = pkt.key_digest;
  sden::HotKeyCache* cache = net_->hot_key_cache();
  obs::SwitchLoadTracker* loads = net_->load_tracker();
  if (cache != nullptr && cache->enabled()) {
    if (!controller_->initialized()) {
      return Error(ErrorCode::kFailedPrecondition,
                   "GredProtocol: controller not initialized");
    }
    if (const sden::HotKeyCache::Entry* hit = cache->probe(ingress, digest)) {
      // Served at the ingress: no routing, no server visit. The report
      // mirrors a zero-hop retrieval (stretch 1 by definition);
      // delivered_to stays empty because no delivery happened.
      OpReport report;
      report.ingress = ingress;
      report.destination = ingress;
      report.served_from_cache = true;
      report.route.switch_path.push_back(ingress);
      report.route.found = true;
      report.route.responder = hit->responder;
      report.route.payload = hit->payload;
      if (loads != nullptr) loads->record(ingress);
      return report;
    }
  }
  auto r = run(std::move(pkt), ingress);
  if (r.ok()) {
    const OpReport& rep = r.value();
    if (rep.route.found && cache != nullptr && cache->enabled() &&
        cache->mode() == sden::HotKeyCache::Mode::kLearn) {
      cache->insert(ingress, digest, rep.route.payload, rep.destination,
                    rep.route.responder);
    }
    // Load lands on the switch whose server answered, which is where
    // hotspot pressure concentrates (a cache hit above lands on the
    // ingress instead).
    if (loads != nullptr) loads->record(rep.destination);
  }
  return r;
}

Result<OpReport> GredProtocol::remove(const std::string& data_id,
                                      topology::SwitchId ingress) {
  sden::Packet pkt = make_packet(sden::PacketType::kRemoval, data_id, {});
  const crypto::Digest digest = pkt.key_digest;
  auto r = run(std::move(pkt), ingress);
  // Cached copies of a removed id must stop serving even though
  // removal changes no flow table (so no plan invalidation fires).
  if (sden::HotKeyCache* cache = net_->hot_key_cache()) {
    cache->invalidate_id(digest);
  }
  return r;
}

Result<std::vector<OpReport>> GredProtocol::place_replicated(
    const std::string& data_id, const std::string& payload, unsigned copies,
    topology::SwitchId ingress) {
  if (copies == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "place_replicated: copies must be >= 1");
  }
  std::vector<OpReport> reports;
  reports.reserve(copies);
  for (unsigned c = 0; c < copies; ++c) {
    auto r = place(crypto::replica_identifier(data_id, c), payload, ingress);
    if (!r.ok()) return r.error();
    reports.push_back(std::move(r).value());
  }
  return reports;
}

Result<OpReport> GredProtocol::retrieve_nearest_replica(
    const std::string& data_id, unsigned copies,
    topology::SwitchId ingress) {
  if (copies == 0) {
    return Error(ErrorCode::kInvalidArgument,
                 "retrieve_nearest_replica: copies must be >= 1");
  }
  // Const view: plain reads must not invalidate the compiled plan.
  const sden::SdenNetwork& net = *net_;
  if (!net.switch_at(ingress).dt_participant()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "retrieve_nearest_replica: ingress is not a DT "
                 "participant (no virtual position)");
  }
  const geometry::Point2D access = net.switch_at(ingress).position();

  // Section VI: distances in the virtual space identify the closest
  // copy, since network distance is embedded in the positions.
  unsigned best_copy = 0;
  double best_dist = 0.0;
  for (unsigned c = 0; c < copies; ++c) {
    const crypto::DataKey key(crypto::replica_identifier(data_id, c));
    const crypto::SpacePoint pos = key.position();
    const topology::SwitchId home =
        controller_->home_switch({pos.x, pos.y});
    const double d = geometry::distance(
        access, net.switch_at(home).position());
    if (c == 0 || d < best_dist) {
      best_copy = c;
      best_dist = d;
    }
  }
  return retrieve(crypto::replica_identifier(data_id, best_copy), ingress);
}

Result<RetrievalOutcome> GredProtocol::retrieve_with_fallback(
    const std::string& data_id, topology::SwitchId ingress,
    const RetryPolicy& policy) {
  if (!controller_->initialized()) {
    return Error(ErrorCode::kFailedPrecondition,
                 "GredProtocol: controller not initialized");
  }
  if (policy.max_attempts < 1) {
    return Error(ErrorCode::kInvalidArgument,
                 "retrieve_with_fallback: max_attempts must be >= 1");
  }

  const crypto::DataKey key(data_id);
  // Attempt i targets homes[i mod k]: primary first, then the next
  // replica homes in virtual-space order, wrapping around.
  const std::vector<topology::SwitchId> homes =
      controller_->replica_homes(key);

  RetrievalOutcome out;
  double backoff = policy.backoff_ms;
  Status last = Status::Ok();
  for (std::size_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Simulated client backoff: charged to the outcome, never slept.
      out.backoff_ms += backoff;
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.backoff_cap_ms);
    }
    const bool fallback = !homes.empty() && attempt % homes.size() != 0;
    sden::Packet pkt = make_packet(sden::PacketType::kRetrieval, data_id, {});
    // Each attempt is a distinct send: salt the flaky-link drop hash
    // with the ordinal so a retry of the same key along the same link
    // gets a fresh drop decision (otherwise a flaky link that dropped
    // attempt 0 drops every retry too, regardless of backoff).
    pkt.retry_attempt = static_cast<std::uint32_t>(attempt);
    if (fallback) {
      pkt.target =
          net_->const_switch_at(homes[attempt % homes.size()]).position();
    }
    ++out.attempts;
    if (fallback) ++out.fallbacks;

    auto r = run(std::move(pkt), ingress);
    if (r.ok() && r.value().route.found) {
      out.found = true;
      out.recovered = attempt > 0;
      out.report = std::move(r).value();
      break;
    }
    if (r.ok()) {
      // Clean miss at this replica: another copy may still exist.
      last = Status(ErrorCode::kNotFound,
                    "retrieve_with_fallback: no replica held the item");
    } else if (is_retryable_route_error(r.error().code)) {
      last = Status(r.error());
    } else {
      // Caller mistake or invariant violation — surface it loudly
      // instead of masking it as a retries-exhausted miss.
      return r.error();
    }
  }
  if (!out.found) out.final_status = last;

  if (obs::enabled()) {
    static obs::Counter& attempts =
        obs::registry().counter("protocol.retrieval_attempts");
    static obs::Counter& fallbacks =
        obs::registry().counter("protocol.retrieval_fallbacks");
    static obs::Counter& recovered =
        obs::registry().counter("protocol.retrieval_recovered");
    static obs::Counter& failed =
        obs::registry().counter("protocol.retrieval_failed");
    attempts.add(out.attempts);
    fallbacks.add(out.fallbacks);
    if (out.recovered) recovered.add();
    if (!out.found) failed.add();
  }
  return out;
}

}  // namespace gred::core
