// Response-delay experiments (the measurement behind Fig. 8): replay a
// set of retrieval requests through the discrete-event engine with
// per-link propagation latency, a per-request service time, and FIFO
// queueing at servers. On latency-weighted topologies the propagation
// term uses the actual link weights; on unit-weight topologies every
// hop costs `link_latency_ms`.
//
// The replay is two-phase so it parallelizes without losing
// determinism: phase 1 routes every request through the data plane —
// requests are independent, so they shard across the thread pool into
// fixed-size blocks with results written to per-request slots; phase 2
// replays the precomputed (request leg, service, response leg) triples
// through the event queue serially in request order. Aggregate
// statistics are therefore bit-identical for every thread count.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/system.hpp"

namespace gred {
class ThreadPool;
}  // namespace gred

namespace gred::core {

struct DelayModelOptions {
  /// Per-hop propagation latency on unit-weight links; on weighted
  /// topologies the link weights themselves are used (already in ms).
  double link_latency_ms = 0.05;
  /// Service time per retrieval at a server (FIFO queue).
  double service_time_ms = 0.20;
  /// Treat link weights as latencies (true for Waxman latency mode).
  bool weights_are_latencies = false;
  /// Pool for the parallel routing phase; nullptr = the global pool
  /// (GRED_THREADS). Results are thread-count invariant either way.
  ThreadPool* pool = nullptr;
  /// Route retrievals through retrieve_with_fallback: classified
  /// routing failures retry against the item's replica homes under
  /// `retry`, and the simulated client backoff is charged to the
  /// request leg. Off by default (single attempt, the paper's model).
  bool use_fallback = false;
  RetryPolicy retry;
  /// Service time charged to a retrieval answered by the ingress
  /// switch's hot-key cache (served_from_cache reports): no network
  /// legs, no server FIFO — the switch answers locally. Only relevant
  /// when the network has its cache enabled; put the cache in kServe
  /// mode first, since phase 1 routes requests concurrently and only
  /// probes are concurrency-safe.
  double cache_service_ms = 0.02;
};

struct DelayExperimentResult {
  Summary delay;              ///< response-delay statistics (ms)
  std::size_t requests = 0;   ///< requests replayed
  std::size_t not_found = 0;  ///< retrievals that missed (excluded)
  double makespan_ms = 0.0;   ///< completion time of the last response
  std::size_t attempts = 0;   ///< route attempts (= requests unless retrying)
  std::size_t fallbacks = 0;  ///< attempts re-targeted at a replica home
  std::size_t recovered = 0;  ///< requests that succeeded only via retry
  std::size_t cache_hits = 0;  ///< requests served from a hot-key cache
};

/// One retrieval request to replay.
struct RetrievalRequest {
  std::string data_id;
  topology::SwitchId ingress = 0;
  double at_ms = 0.0;
};

class RetrievalDelayExperiment {
 public:
  RetrievalDelayExperiment(GredSystem& system, DelayModelOptions options)
      : system_(&system), options_(options) {}

  /// Replays the given requests (data must already be placed).
  Result<DelayExperimentResult> run(
      const std::vector<RetrievalRequest>& requests);

  /// Convenience: `count` retrievals of random ids from `ids`, random
  /// ingress switches, injected `spacing_ms` apart. Requests are drawn
  /// in fixed-size blocks with per-block RNG streams seeded from
  /// `rng`, so the request set depends only on the seed — never on the
  /// thread count.
  Result<DelayExperimentResult> run_uniform(
      const std::vector<std::string>& ids, std::size_t count,
      double spacing_ms, Rng& rng);

 private:
  GredSystem* system_;
  DelayModelOptions options_;
};

}  // namespace gred::core
