#include "core/system.hpp"

namespace gred::core {

Result<GredSystem> GredSystem::create(topology::EdgeNetwork description,
                                      VirtualSpaceOptions options) {
  auto net = std::make_unique<sden::SdenNetwork>(std::move(description));
  Controller controller(options);
  const Status init = controller.initialize(*net);
  if (!init.ok()) return init.error();
  return GredSystem(std::move(net), std::move(controller));
}

}  // namespace gred::core
