// Vivaldi network coordinates (Dabek et al., SIGCOMM'04) as an
// alternative to the paper's M-position algorithm. The related work
// (Section VIII-B) points at decentralized virtual-coordinate schemes;
// Vivaldi is the canonical one: a spring relaxation where each node
// adjusts its position toward consistency with sampled pairwise
// distances, weighted by confidence. Unlike classical MDS it needs no
// global distance matrix factorization — the trade-off is embedding
// quality, which the ablation bench quantifies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "linalg/matrix.hpp"

namespace gred::core {

struct VivaldiOptions {
  /// Pairwise relaxation samples (each adjusts one node).
  std::size_t rounds = 20000;
  double ce = 0.25;  ///< confidence adaptation gain
  double cc = 0.25;  ///< coordinate adaptation gain
  std::uint64_t seed = 0x7672616c64ULL;
};

struct VivaldiResult {
  std::vector<geometry::Point2D> coordinates;
  /// Kruskal stress-1 of the final embedding against `distances`.
  double stress = 0.0;
  /// Mean node confidence error at termination (diagnostics).
  double mean_error = 0.0;
};

/// Embeds the symmetric positive distance matrix into 2-D. Fails on a
/// non-square/asymmetric matrix or n == 0.
Result<VivaldiResult> vivaldi_embedding(const linalg::Matrix& distances,
                                        const VivaldiOptions& options = {});

}  // namespace gred::core
