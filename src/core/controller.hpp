// The GRED SDN controller (Section III "Control plane"): computes the
// virtual space (M-position + C-regulation), builds the multi-hop DT,
// and proactively installs all forwarding state into the switches of an
// SdenNetwork. Also owns the control-plane halves of range extension
// (Section V-B) and network dynamics (Section VI).
#pragma once

#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"
#include "core/multihop_dt.hpp"
#include "core/virtual_space.hpp"
#include "crypto/data_key.hpp"
#include "graph/shortest_path.hpp"
#include "sden/network.hpp"

namespace gred::obs {
class SwitchLoadTracker;
}  // namespace gred::obs

namespace gred::core {

/// Replication policy of the fault-tolerance layer. Replication is
/// opt-in: a default-constructed Controller keeps the paper's
/// single-copy placement; enable_replication() switches every
/// placement, migration, and dynamics repair to k copies.
struct ReplicationOptions {
  /// Total copies per item, including the primary (clamped to the
  /// participant count when the space is smaller).
  std::size_t factor = 2;
  /// Region-diverse placement (disaster tolerance): label each
  /// participant with its cell of a region_grid x region_grid
  /// partition of the virtual space and filter the nearest-k order so
  /// the k replica homes land in k distinct regions whenever that many
  /// regions are alive — a correlated regional outage then destroys at
  /// most one copy. Falls back to plain nearest order for whatever
  /// can't be diversified. The primary home (element 0) is never
  /// moved, so single-copy routing is unchanged.
  bool region_diverse = false;
  /// G of the G x G region partition (>= 1).
  std::size_t region_grid = 4;
};

/// Policy of Controller::extend_for_load.
struct LoadExtensionOptions {
  /// Threshold multiple over the mean EWMA (>= 1).
  double hot_factor = 2.0;
  /// Extensions per call (hottest switches first).
  std::size_t max_extensions = 1;
  /// Move half the overloaded server's owned items (by digest parity)
  /// onto the delegate, so existing hot keys — not just future
  /// placements — spread across the extension. retract_range remains
  /// the exact inverse (it moves back everything whose expected
  /// placement is the overloaded server).
  bool migrate_hot_items = true;
};

class Controller {
 public:
  explicit Controller(VirtualSpaceOptions options = {})
      : options_(options) {}

  /// Full control-plane pipeline over `net`: collect topology, compute
  /// APSP, embed, refine, triangulate, and install all flow entries.
  /// Participants are the switches with at least one attached server;
  /// others act as pure transit (Section IV-C).
  Status initialize(sden::SdenNetwork& net);

  /// Variant used by snapshot restore: skips M-position/C-regulation
  /// and adopts the given switch positions verbatim, then rebuilds the
  /// DT and installs flow entries. `participants` must be exactly the
  /// switches of `net` with at least one server.
  Status initialize_with_positions(
      sden::SdenNetwork& net,
      const std::vector<topology::SwitchId>& participants,
      const std::vector<geometry::Point2D>& positions);

  bool initialized() const { return initialized_; }
  const VirtualSpaceOptions& options() const { return options_; }
  const VirtualSpace& space() const { return space_; }
  const MultiHopDT& dt() const { return dt_; }
  /// Hop-count (unweighted) all-pairs shortest paths — the stretch
  /// metric's baseline.
  const graph::ApspResult& apsp() const { return apsp_; }
  /// Latency-weighted all-pairs shortest paths (equal to apsp() on
  /// unit-weight topologies) — baseline for the cost/latency metrics.
  const graph::ApspResult& apsp_latency() const { return apsp_weighted_; }

  /// The switch whose position is closest to `p` — the owner of any
  /// data hashed there. Ground truth for tests and migration.
  topology::SwitchId home_switch(const geometry::Point2D& p) const;

  /// The (switch, server) that should store `key` absent any range
  /// extension: home switch, then serial H(d) mod s.
  struct Placement {
    topology::SwitchId sw = 0;
    topology::ServerId server = topology::kNoServer;
  };
  Result<Placement> expected_placement(const sden::SdenNetwork& net,
                                       const crypto::DataKey& key) const;

  /// The server a *new* store of `key` must land on right now: the
  /// expected placement, redirected to the delegate when the home
  /// server has an active range extension. Migration and orphan
  /// re-placement go through this so they obey the same rewrites the
  /// data plane does.
  Result<topology::ServerId> resolve_store_target(
      const sden::SdenNetwork& net, const crypto::DataKey& key) const;

  // --- Replication (fault-tolerance layer) ---

  /// Turns on k-replica placement and immediately brings every stored
  /// item up to the replication factor (transactionally). With
  /// replication on, migrate_items becomes replica-aware and every
  /// dynamics op ends with a restore_replication pass.
  Status enable_replication(sden::SdenNetwork& net,
                            ReplicationOptions opts = {});
  bool replication_enabled() const { return replication_enabled_; }
  /// Effective copies per item: 1 while replication is disabled.
  std::size_t replication_factor() const {
    return replication_enabled_ ? replication_.factor : 1;
  }

  /// The replica home switches of `key`, ascending by virtual-space
  /// distance from the key's position (element 0 == home_switch()).
  /// With region-diverse replication on, the tail homes are the
  /// nearest participants in distinct regions (graceful fallback when
  /// fewer regions than copies are alive).
  std::vector<topology::SwitchId> replica_homes(
      const crypto::DataKey& key) const;

  /// Region label of `p` under the replication policy's G x G
  /// partition of the virtual space (same cell formula as the hotspot
  /// workload grid).
  std::size_t region_of(const geometry::Point2D& p) const;
  /// Region label of participant `sw`; the out-of-range sentinel
  /// grid*grid when `sw` is not a participant.
  std::size_t region_of_participant(topology::SwitchId sw) const;
  /// Distinct region labels among the current participants — the
  /// upper bound on achievable replica diversity.
  std::size_t alive_region_count() const;

  /// Expected placement of every replica of `key`: one (switch,
  /// server) per replica home, H(d) mod s at each home.
  Result<std::vector<Placement>> replica_placements(
      const sden::SdenNetwork& net, const crypto::DataKey& key) const;

  /// Distinct rewrite-aware store targets across all replica homes
  /// (order follows replica_placements; duplicates collapsed).
  Result<std::vector<topology::ServerId>> replica_targets(
      const sden::SdenNetwork& net, const crypto::DataKey& key) const;

  /// Re-creates missing replica copies from a surviving holder until
  /// every item is back at the replication factor. Transactional:
  /// on failure every created copy is erased again. Returns the number
  /// of copies created.
  Result<std::size_t> restore_replication(sden::SdenNetwork& net);

  /// Copies created by the restore_replication pass of the last
  /// dynamics op (diagnostics).
  std::size_t last_replication_repairs() const { return last_repairs_; }

  // --- Range extension (Section V-B) ---

  /// Delegates the storage load of `overloaded` to the server with the
  /// most remaining capacity attached to a physical-neighbor switch,
  /// installing the rewrite entry at the overloaded server's switch.
  Status extend_range(sden::SdenNetwork& net,
                      topology::ServerId overloaded);

  /// Undoes an extension: migrates the delegated items that belong to
  /// `overloaded` back (it has capacity again) and removes the rewrite.
  Status retract_range(sden::SdenNetwork& net,
                       topology::ServerId overloaded);

  /// Load-driven range extension (ROADMAP "Hotspot traffic"): instead
  /// of waiting for a server to fill up, extend when a switch's
  /// *observed retrieval load* runs hot. A switch is hot when its
  /// EWMA (tracker windows rolled by the caller) exceeds hot_factor ×
  /// the participant mean. Extends the busiest extension-free server
  /// of each hot switch (at most max_extensions) and returns the
  /// number of extensions performed. Call between retrieval windows,
  /// after loads.roll_window() — a control-plane op like any other
  /// dynamics call.
  Result<std::size_t> extend_for_load(sden::SdenNetwork& net,
                                      const obs::SwitchLoadTracker& loads,
                                      const LoadExtensionOptions& opts = {});

  // --- Network dynamics (Section VI) ---

  /// Joins a new switch with the given physical links and
  /// `server_count` servers of `capacity`. Existing switch positions
  /// are untouched (the join "only affects its neighbors"): the new
  /// position is a local stress fit to hop distances, then the DT and
  /// flow tables are rebuilt and affected items migrate to the new
  /// home. Returns the new switch id.
  Result<topology::SwitchId> add_switch(
      sden::SdenNetwork& net, const std::vector<topology::SwitchId>& links,
      std::size_t server_count, std::size_t capacity = 0);

  /// Removes a switch (leave/failure): its items are re-placed at their
  /// new homes, its links are torn down, and the DT is rebuilt. Fails
  /// when removal would disconnect the remaining participants.
  Status remove_switch(sden::SdenNetwork& net, topology::SwitchId sw);

  /// Adds a physical link (new fiber between existing switches):
  /// positions are untouched; shortest paths, relay entries, and flow
  /// tables are recomputed. Placement is unaffected (homes depend only
  /// on positions), so no data migrates.
  Status add_link(sden::SdenNetwork& net, topology::SwitchId u,
                  topology::SwitchId v, double weight = 1.0);

  /// Handles a link failure: tears the link down and reroutes all
  /// virtual links that crossed it. Fails (leaving the link up) when
  /// the failure would disconnect the participants.
  Status remove_link(sden::SdenNetwork& net, topology::SwitchId u,
                     topology::SwitchId v);

  /// Items moved by the last add_switch/remove_switch/remove_link
  /// (diagnostics).
  std::size_t last_migration_count() const { return last_migration_; }

  // --- Incremental recompute (GRED_INCREMENTAL) ---

  /// Whether dynamics ops take the incremental path: delta-APSP,
  /// localized DT repair, per-switch flow-table patching, and (when the
  /// compiled plan was fresh going in) route-plan patching — instead of
  /// the full recompute-and-reinstall. Results are bit-identical either
  /// way; the toggle only trades event latency. Defaults to the
  /// GRED_INCREMENTAL environment flag.
  bool incremental() const { return incremental_; }
  void set_incremental(bool on) { incremental_ = on; }

  /// Switches whose installable state the last dynamics op changed,
  /// sorted ascending — the patch set for ShardedDataPlane::
  /// patch_plans. Empty after a full reinstall (everything changed).
  const std::vector<topology::SwitchId>& last_affected_switches() const {
    return last_affected_;
  }
  /// Whether the last dynamics op completed on the incremental path
  /// (false: it ran — or fell back to — the full rebuild).
  bool last_event_incremental() const { return last_event_incremental_; }

  /// Warm-started C-regulation (Section IV-B maintenance): re-runs
  /// Lloyd iterations seeded from the current positions until the CVT
  /// energy moves by less than `energy_delta_tolerance` of itself,
  /// then rebuilds the DT, reinstalls, and migrates items whose homes
  /// moved. Positions shift globally, so this is a full reinstall by
  /// design — call it between churn bursts, not per event. Returns the
  /// number of Lloyd iterations executed.
  Result<std::size_t> re_regulate(sden::SdenNetwork& net,
                                  double energy_delta_tolerance);

 private:
  // The public dynamics/extension ops are thin observability wrappers
  // (dynamics event log, gred::obs) around these.
  Status extend_range_impl(sden::SdenNetwork& net,
                           topology::ServerId overloaded);
  Status retract_range_impl(sden::SdenNetwork& net,
                            topology::ServerId overloaded);
  Result<topology::SwitchId> add_switch_impl(
      sden::SdenNetwork& net, const std::vector<topology::SwitchId>& links,
      std::size_t server_count, std::size_t capacity);
  Status remove_switch_impl(sden::SdenNetwork& net, topology::SwitchId sw);
  Status add_link_impl(sden::SdenNetwork& net, topology::SwitchId u,
                       topology::SwitchId v, double weight);
  Status remove_link_impl(sden::SdenNetwork& net, topology::SwitchId u,
                          topology::SwitchId v);

  /// Recomputes APSP + DT from current participants_/space_ and
  /// reinstalls all switch state.
  Status rebuild_and_install(sden::SdenNetwork& net);

  /// One churn event's description for the incremental rebuild path.
  /// Remove events carry state that must be captured BEFORE the graph
  /// and space are mutated (the leaving node's adjacency, the vlinks
  /// crossing it).
  struct GraphDelta {
    enum class Kind { kLinkAdd, kLinkRemove, kSwitchAdd, kSwitchRemove };
    Kind kind = Kind::kLinkAdd;
    topology::SwitchId u = 0;  ///< the switch, or one link endpoint
    topology::SwitchId v = 0;  ///< other endpoint (link events)
    double weight = 1.0;       ///< removed link's weight (kLinkRemove)
    /// kSwitchRemove: u's adjacency, captured before removal.
    std::vector<graph::EdgeTo> removed_edges;
    /// kSwitchRemove: participants whose virtual-link paths crossed u,
    /// captured (as switch ids) before the DT mutation.
    std::vector<topology::SwitchId> vlinks_through;
    bool joined_dt = false;      ///< switch events: u is a participant
    geometry::Point2D position;  ///< kSwitchAdd: u's fitted position
  };

  /// Incremental counterpart of rebuild_and_install: delta-APSP on
  /// both tables, localized DT repair, per-participant rebuild of the
  /// affected set, and a per-switch flow-table patch. Falls back to
  /// rebuild_and_install (bit-identical result) when any incremental
  /// step declines — staleness threshold crossed, non-localized DT
  /// repair, or any error.
  Status rebuild_and_install_incremental(sden::SdenNetwork& net,
                                         const GraphDelta& delta);

  /// Patches the flow tables of exactly the switches in `touched`
  /// (plus any switch holding a rewrite the event invalidated),
  /// reproducing what a full install() would put there. Sorts and
  /// dedupes `touched` in place and publishes it as
  /// last_affected_switches().
  Status install_patch(sden::SdenNetwork& net,
                       std::vector<topology::SwitchId>& touched);

  /// Installs positions, server lists, greedy candidates and relay
  /// entries into every switch (wipes previous tables).
  Status install(sden::SdenNetwork& net);

  /// Moves every stored item to its current expected placement.
  /// Returns the number of migrated items.
  Result<std::size_t> migrate_items(sden::SdenNetwork& net);

  /// Replica-aware variant (replication enabled): a copy is in place
  /// when its server is one of the item's replica targets; misplaced
  /// copies move onto missing targets, surplus copies are dropped.
  Result<std::size_t> migrate_items_replicated(sden::SdenNetwork& net);

  /// Shared tail of the dynamics ops: restore the replication factor
  /// after a topology change (no-op while replication is off).
  Status repair_replication_after_dynamics(sden::SdenNetwork& net);

  /// Local stress-minimizing position for a joining switch.
  geometry::Point2D fit_position(const sden::SdenNetwork& net,
                                 topology::SwitchId sw) const;

  /// APSP pair refresh from the current physical graph.
  void recompute_apsp(const sden::SdenNetwork& net);
  /// The APSP feeding the embedding and relay paths.
  const graph::ApspResult& routing_apsp() const {
    return options_.weighted_embedding ? apsp_weighted_ : apsp_;
  }

  VirtualSpaceOptions options_;
  VirtualSpace space_;
  MultiHopDT dt_;
  graph::ApspResult apsp_;
  graph::ApspResult apsp_weighted_;
  bool initialized_ = false;
  bool incremental_ = env_flag("GRED_INCREMENTAL", false);
  std::vector<topology::SwitchId> last_affected_;
  bool last_event_incremental_ = false;
  std::size_t last_migration_ = 0;
  ReplicationOptions replication_;
  bool replication_enabled_ = false;
  std::size_t last_repairs_ = 0;
};

}  // namespace gred::core
