// Evaluation metrics exactly as defined in Section VII-B:
//   * routing stretch — selected-route hop count over shortest-route
//     hop count between source and destination;
//   * load balance — max/avg of per-server item counts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.hpp"

namespace gred::core {

/// Routing stretch of one operation. When the source and destination
/// coincide (shortest == 0): a 0-hop route scores the optimal 1.0, and
/// any detour is measured against a 1-hop baseline.
double routing_stretch(std::size_t selected_hops, std::size_t shortest_hops);

/// Accumulates stretch samples and reports the paper's statistics
/// (mean with 90% confidence interval).
class StretchCollector {
 public:
  void add(std::size_t selected_hops, std::size_t shortest_hops);
  void add_stretch(double stretch);

  std::size_t count() const { return samples_.size(); }
  Summary summary() const { return summarize(samples_); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Load-balance view of a per-server load vector.
struct LoadBalanceReport {
  double max_over_avg = 0.0;  ///< the paper's headline metric (1 = ideal)
  double jain = 1.0;          ///< Jain fairness (1 = ideal)
  double cov = 0.0;           ///< coefficient of variation
  std::size_t max_load = 0;
  double avg_load = 0.0;
};

LoadBalanceReport load_balance(const std::vector<std::size_t>& loads);

}  // namespace gred::core
