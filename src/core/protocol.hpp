// GredProtocol: the data-plane operations of Section V as a library
// API. Every operation builds a packet, injects it at an access switch,
// and reports the route together with the stretch measurement used
// throughout the evaluation. Replication (Section VI) hashes
// "<id>#<copy>" per copy and serves reads from the replica whose home
// is nearest to the access point in the virtual space.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/controller.hpp"
#include "core/metrics.hpp"
#include "crypto/data_key.hpp"
#include "sden/network.hpp"

namespace gred::core {

/// Client-side retry policy for retrieve_with_fallback. Backoff is
/// simulated (accumulated in the outcome, never slept): the simulator
/// has no wall-clock network, but the delay model charges it.
struct RetryPolicy {
  /// Total route attempts, the first included (>= 1).
  std::size_t max_attempts = 3;
  /// Backoff charged before the second attempt, in model milliseconds.
  double backoff_ms = 1.0;
  /// Multiplier per further attempt (capped below).
  double backoff_multiplier = 2.0;
  double backoff_cap_ms = 8.0;
};

/// Report of one placement or retrieval.
struct OpReport {
  sden::RouteResult route;
  topology::SwitchId ingress = 0;
  /// Switch of the server the packet was delivered to.
  topology::SwitchId destination = 0;
  std::size_t selected_hops = 0;
  std::size_t shortest_hops = 0;
  double stretch = 1.0;

  /// Latency view (identical to the hop view on unit-weight links):
  /// cost of the walked path, cost of the weighted shortest path, and
  /// their ratio.
  double selected_cost = 0.0;
  double shortest_cost = 0.0;
  double latency_stretch = 1.0;

  /// True when the ingress switch's hot-key cache answered the
  /// retrieval without routing: route.switch_path is just {ingress},
  /// hops are 0, stretch is 1, and route.delivered_to stays empty
  /// (no server was visited; route.responder names the original
  /// filler). The delay model charges cache_service_ms instead of the
  /// network round trip.
  bool served_from_cache = false;
};

/// What a fallback retrieval did, attempt by attempt.
struct RetrievalOutcome {
  /// Report of the successful attempt (valid only when found).
  OpReport report;
  bool found = false;
  /// Classified status of the last attempt when !found: one of the
  /// retryable routing codes, or kNotFound when routes succeeded but
  /// no replica held the item. Never kInternal for plain misses.
  Status final_status = Status::Ok();
  std::size_t attempts = 0;
  /// Attempts that were re-targeted at a non-primary replica home.
  std::size_t fallbacks = 0;
  /// Simulated client backoff accumulated across retries.
  double backoff_ms = 0.0;
  /// True when a retry/fallback succeeded after the first attempt
  /// failed.
  bool recovered = false;
};

class GredProtocol {
 public:
  /// Both objects must outlive the protocol; the controller must be
  /// initialized against `net`.
  GredProtocol(sden::SdenNetwork& net, const Controller& controller)
      : net_(&net), controller_(&controller) {}

  /// Places `payload` under `data_id`, entering the network at
  /// `ingress` (Section V-A). When the controller has replication
  /// enabled, the primary placement is followed by one placement per
  /// additional replica home, re-targeted at that home's own virtual
  /// position (same data_id — the k-replica scheme, unlike the hashed
  /// "<id>#<c>" scheme of place_replicated). Returns the primary's
  /// report.
  Result<OpReport> place(const std::string& data_id,
                         const std::string& payload,
                         topology::SwitchId ingress);

  /// Retrieves `data_id` (Section V-C). `route.found` tells whether any
  /// delivered server held the data.
  ///
  /// When the network has its hot-key cache enabled, the ingress
  /// switch's cache is consulted first: a hit returns a report with
  /// served_from_cache set (identical payload/found/status by the
  /// coherence rule in sden/hot_key_cache.hpp); a found miss fills the
  /// cache when it is in kLearn mode. Cached retrieve() and
  /// place()/remove() (which invalidate cached copies) must not run
  /// concurrently with each other; concurrent cached retrievals are
  /// safe in kServe mode. A load tracker installed on the network is
  /// credited at the serving switch either way.
  Result<OpReport> retrieve(const std::string& data_id,
                            topology::SwitchId ingress);

  /// Invalidates `data_id` (Section V-B's data expiry / migration to
  /// the cloud): routed like a retrieval; the holding server erases the
  /// item. `route.found` tells whether anything was erased.
  Result<OpReport> remove(const std::string& data_id,
                          topology::SwitchId ingress);

  /// Places `copies` replicas: copy c is stored under the hash of
  /// "<data_id>#<c>" (Section VI).
  Result<std::vector<OpReport>> place_replicated(const std::string& data_id,
                                                 const std::string& payload,
                                                 unsigned copies,
                                                 topology::SwitchId ingress);

  /// Reads the replica whose home switch is nearest (in the virtual
  /// space) to the ingress switch among `copies` replicas.
  Result<OpReport> retrieve_nearest_replica(const std::string& data_id,
                                            unsigned copies,
                                            topology::SwitchId ingress);

  /// Fault-tolerant retrieval: tries the primary home first; on a
  /// classified retryable routing failure (kRoutingLoop / kNoRoute /
  /// kLinkDown) or a clean miss, re-targets the request at the item's
  /// next replica home with capped exponential backoff, up to
  /// `policy.max_attempts`. The Result is an error only for caller
  /// mistakes (controller not initialized); a retrieval that exhausts
  /// its attempts returns Ok with found == false and the classified
  /// final_status.
  Result<RetrievalOutcome> retrieve_with_fallback(
      const std::string& data_id, topology::SwitchId ingress,
      const RetryPolicy& policy = {});

  sden::SdenNetwork& network() { return *net_; }
  const Controller& controller() const { return *controller_; }

 private:
  Result<OpReport> run(sden::Packet packet, topology::SwitchId ingress);

  sden::SdenNetwork* net_;
  const Controller* controller_;
};

}  // namespace gred::core
