// GredProtocol: the data-plane operations of Section V as a library
// API. Every operation builds a packet, injects it at an access switch,
// and reports the route together with the stretch measurement used
// throughout the evaluation. Replication (Section VI) hashes
// "<id>#<copy>" per copy and serves reads from the replica whose home
// is nearest to the access point in the virtual space.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/controller.hpp"
#include "core/metrics.hpp"
#include "crypto/data_key.hpp"
#include "sden/network.hpp"

namespace gred::core {

/// Report of one placement or retrieval.
struct OpReport {
  sden::RouteResult route;
  topology::SwitchId ingress = 0;
  /// Switch of the server the packet was delivered to.
  topology::SwitchId destination = 0;
  std::size_t selected_hops = 0;
  std::size_t shortest_hops = 0;
  double stretch = 1.0;

  /// Latency view (identical to the hop view on unit-weight links):
  /// cost of the walked path, cost of the weighted shortest path, and
  /// their ratio.
  double selected_cost = 0.0;
  double shortest_cost = 0.0;
  double latency_stretch = 1.0;
};

class GredProtocol {
 public:
  /// Both objects must outlive the protocol; the controller must be
  /// initialized against `net`.
  GredProtocol(sden::SdenNetwork& net, const Controller& controller)
      : net_(&net), controller_(&controller) {}

  /// Places `payload` under `data_id`, entering the network at
  /// `ingress` (Section V-A).
  Result<OpReport> place(const std::string& data_id,
                         const std::string& payload,
                         topology::SwitchId ingress);

  /// Retrieves `data_id` (Section V-C). `route.found` tells whether any
  /// delivered server held the data.
  Result<OpReport> retrieve(const std::string& data_id,
                            topology::SwitchId ingress);

  /// Invalidates `data_id` (Section V-B's data expiry / migration to
  /// the cloud): routed like a retrieval; the holding server erases the
  /// item. `route.found` tells whether anything was erased.
  Result<OpReport> remove(const std::string& data_id,
                          topology::SwitchId ingress);

  /// Places `copies` replicas: copy c is stored under the hash of
  /// "<data_id>#<c>" (Section VI).
  Result<std::vector<OpReport>> place_replicated(const std::string& data_id,
                                                 const std::string& payload,
                                                 unsigned copies,
                                                 topology::SwitchId ingress);

  /// Reads the replica whose home switch is nearest (in the virtual
  /// space) to the ingress switch among `copies` replicas.
  Result<OpReport> retrieve_nearest_replica(const std::string& data_id,
                                            unsigned copies,
                                            topology::SwitchId ingress);

  sden::SdenNetwork& network() { return *net_; }
  const Controller& controller() const { return *controller_; }

 private:
  Result<OpReport> run(sden::Packet packet, topology::SwitchId ingress);

  sden::SdenNetwork* net_;
  const Controller* controller_;
};

}  // namespace gred::core
