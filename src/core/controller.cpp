#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "check/invariants.hpp"
#include "common/thread_pool.hpp"
#include "graph/properties.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "obs/phase_timer.hpp"
#include "obs/switch_load.hpp"

namespace gred::core {
namespace {

using geometry::Point2D;
using topology::ServerId;
using topology::SwitchId;

/// Installed flow entries across the network (event-log bookkeeping;
/// computed only while obs is enabled).
std::size_t total_flow_entries(const sden::SdenNetwork& net) {
  std::size_t total = 0;
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    total += net.switch_at(sw).table().entry_count();
  }
  return total;
}

/// Drops all cached retrieval answers after a pass that moved items
/// between servers without touching any flow table (replication
/// repair, item migration). Table-touching ops invalidate implicitly
/// through SdenNetwork::invalidate_plan; these passes must do it
/// explicitly or the hot-key cache would serve moved/stale data.
void drop_cached_answers(sden::SdenNetwork& net) {
  if (sden::HotKeyCache* cache = net.hot_key_cache()) {
    cache->invalidate_all();
  }
}

/// Captures the before-state of a dynamics op at construction and
/// appends one event-log entry in finish(). Inert (two loads) when
/// obs is disabled.
class EventRecorder {
 public:
  EventRecorder(obs::EventKind kind, const sden::SdenNetwork& net,
                std::size_t subject, std::size_t peer = 0)
      : active_(obs::enabled()), net_(net) {
    if (!active_) return;
    ev_.kind = kind;
    ev_.subject = static_cast<std::uint32_t>(subject);
    ev_.peer = static_cast<std::uint32_t>(peer);
    ev_.entries_before = total_flow_entries(net_);
    start_ = std::chrono::steady_clock::now();
  }

  void finish(const Status& status, std::size_t migrated,
              std::size_t subject = static_cast<std::size_t>(-1)) {
    if (!active_) return;
    ev_.ok = status.ok();
    if (!status.ok()) ev_.status = status.error().to_string();
    if (subject != static_cast<std::size_t>(-1)) {
      ev_.subject = static_cast<std::uint32_t>(subject);
    }
    ev_.migrated = migrated;
    ev_.entries_after = total_flow_entries(net_);
    ev_.duration_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
    obs::event_log().append(std::move(ev_));
  }

 private:
  bool active_;
  const sden::SdenNetwork& net_;
  obs::DynamicsEvent ev_;
  std::chrono::steady_clock::time_point start_{};
};

/// Data-plane tail of an incremental dynamics event: patch the
/// network's cached route plan for the affected switches — but only
/// when the plan was fresh going into the event. A stale plan stays on
/// the lazy full-rebuild path (there is nothing coherent to patch).
void patch_plan_if_fresh(sden::SdenNetwork& net, bool was_fresh,
                         const std::vector<SwitchId>& affected) {
  if (!was_fresh) return;
  std::vector<std::uint32_t> touched(affected.begin(), affected.end());
  net.patch_plan(touched.data(), touched.size());
}

/// Switches that join the DT: those with at least one attached server.
std::vector<SwitchId> find_participants(const topology::EdgeNetwork& desc) {
  std::vector<SwitchId> out;
  for (SwitchId sw = 0; sw < desc.switch_count(); ++sw) {
    if (!desc.servers_at(sw).empty()) out.push_back(sw);
  }
  return out;
}

}  // namespace

Status Controller::initialize(sden::SdenNetwork& net) {
  const std::vector<SwitchId> participants =
      find_participants(net.description());
  if (participants.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller: no switch has attached servers");
  }

  recompute_apsp(net);

  auto space = VirtualSpace::build(participants, routing_apsp(), options_);
  if (!space.ok()) return space.error();
  space_ = std::move(space).value();

  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();

  const Status installed = install(net);
  if (!installed.ok()) return installed;
  initialized_ = true;
  return Status::Ok();
}

Status Controller::initialize_with_positions(
    sden::SdenNetwork& net,
    const std::vector<SwitchId>& participants,
    const std::vector<Point2D>& positions) {
  const std::vector<SwitchId> expected =
      find_participants(net.description());
  if (participants != expected) {
    return Status(ErrorCode::kFailedPrecondition,
                  "initialize_with_positions: participant set does not "
                  "match the switches with servers");
  }
  recompute_apsp(net);
  auto space =
      VirtualSpace::from_positions(participants, positions, routing_apsp());
  if (!space.ok()) return space.error();
  space_ = std::move(space).value();

  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();

  const Status installed = install(net);
  if (!installed.ok()) return installed;
  initialized_ = true;
  return Status::Ok();
}

Status Controller::install(sden::SdenNetwork& net) {
  const obs::ScopedPhaseTimer timer("install");
  // Range-extension rewrites are durable data-plane state (Section
  // V-B): they survive every reinstall, or the delegation would
  // silently vanish on the next dynamics event and strand the
  // delegated items. Collect them before the wipe; re-add the ones
  // that are still valid under the new topology afterwards.
  std::vector<std::pair<SwitchId, sden::RewriteEntry>> rewrites;
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    for (const sden::RewriteEntry& rw :
         std::as_const(net).switch_at(sw).table().rewrites()) {
      rewrites.emplace_back(sw, rw);
    }
  }

  // Wipe everything, then install fresh state (the controller owns all
  // switch state; per-flow entries never exist).
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    net.switch_at(sw).reset();
  }

  const auto& participants = space_.participants();
  const auto& positions = space_.positions();
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const SwitchId id = participants[i];
    sden::Switch& sw = net.switch_at(id);
    sw.set_position(positions[i]);
    sw.set_local_servers(net.description().servers_at(id));
    for (const DtNeighborInfo& cand : dt_.candidates_of(id)) {
      sden::NeighborEntry entry;
      entry.neighbor = cand.neighbor;
      entry.position = cand.position;
      entry.physical = cand.physical;
      entry.first_hop = cand.first_hop;
      sw.table().add_neighbor(entry);
    }
  }
  for (const auto& [sw_id, relays] : dt_.relay_entries()) {
    for (const sden::RelayEntry& relay : relays) {
      net.switch_at(sw_id).table().add_relay(relay);
    }
  }

  // Re-install surviving rewrites. An entry is dropped when the
  // topology change invalidated it: the original server no longer
  // hangs off the rewrite's switch, the delegate left, or the
  // physical link the handoff rides is gone. Items on a dropped
  // delegate are not stranded — migration re-homes them because their
  // expected placement no longer has an active rewrite.
  const topology::EdgeNetwork& desc = net.description();
  for (const auto& [sw, rw] : rewrites) {
    if (sw >= net.switch_count() || rw.via_switch >= net.switch_count() ||
        rw.original >= net.server_count() ||
        rw.replacement >= net.server_count()) {
      continue;
    }
    // attached_to alone is not enough: a removed switch keeps its
    // server records but detaches them, so membership in servers_at is
    // the live-attachment test.
    const auto& own_servers = desc.servers_at(sw);
    if (std::find(own_servers.begin(), own_servers.end(), rw.original) ==
        own_servers.end()) {
      continue;  // original no longer hangs off this switch
    }
    const auto& via_servers = desc.servers_at(rw.via_switch);
    if (std::find(via_servers.begin(), via_servers.end(), rw.replacement) ==
        via_servers.end()) {
      continue;  // delegate was detached from its switch
    }
    if (desc.switches().find_edge(sw, rw.via_switch) == nullptr) continue;
    net.switch_at(sw).table().add_rewrite(rw);
  }

  // Machine-checked invariants (Debug / GRED_CHECKED builds). Every
  // install is a full state replacement, so re-prove here that the DT
  // kept its empty-circumcircle property, the APSP tables agree with
  // the component structure, and the installed greedy/relay entries
  // realize the DT — the facts the stretch≈1 guarantee rests on.
  GRED_CHECK(check::validate_delaunay(dt_.triangulation()));
  GRED_CHECK(check::validate_graph(net.description().switches(), apsp_,
                                   /*weighted=*/false));
  GRED_CHECK(check::validate_graph(net.description().switches(),
                                   apsp_weighted_, /*weighted=*/true));
  GRED_CHECK(check::validate_flow_tables(net, space_.participants(),
                                         space_.positions(),
                                         &dt_.triangulation()));
  return Status::Ok();
}

topology::SwitchId Controller::home_switch(const Point2D& p) const {
  return space_.nearest_participant(p);
}

Result<Controller::Placement> Controller::expected_placement(
    const sden::SdenNetwork& net, const crypto::DataKey& key) const {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  Placement p;
  const crypto::SpacePoint pos = key.position();
  p.sw = home_switch({pos.x, pos.y});
  const auto& servers = net.description().servers_at(p.sw);
  if (servers.empty()) {
    return Error(ErrorCode::kInternal, "home switch has no servers");
  }
  p.server = servers[static_cast<std::size_t>(key.mod(servers.size()))];
  return p;
}

Status Controller::enable_replication(sden::SdenNetwork& net,
                                      ReplicationOptions opts) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "enable_replication: Controller not initialized");
  }
  if (opts.factor < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "enable_replication: factor must be >= 1");
  }
  if (opts.region_diverse && opts.region_grid < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "enable_replication: region_grid must be >= 1");
  }
  replication_ = opts;
  replication_enabled_ = true;
  // Bring pre-existing items up to the factor right away, so callers
  // can enable replication on a populated deployment.
  auto repaired = restore_replication(net);
  if (!repaired.ok()) {
    replication_enabled_ = false;
    return repaired.error();
  }
  last_repairs_ = repaired.value();
  return Status::Ok();
}

std::size_t Controller::region_of(const geometry::Point2D& p) const {
  const std::size_t g = replication_.region_grid;
  const auto clamp_axis = [g](double v) {
    if (!(v > 0.0)) return std::size_t{0};  // also catches NaN
    const std::size_t cell =
        static_cast<std::size_t>(v * static_cast<double>(g));
    return cell >= g ? g - 1 : cell;
  };
  return clamp_axis(p.x) + g * clamp_axis(p.y);
}

std::size_t Controller::region_of_participant(topology::SwitchId sw) const {
  const std::size_t idx = space_.index_of(sw);
  if (idx >= space_.positions().size()) {
    return replication_.region_grid * replication_.region_grid;
  }
  return region_of(space_.positions()[idx]);
}

std::size_t Controller::alive_region_count() const {
  const std::size_t cells =
      replication_.region_grid * replication_.region_grid;
  std::vector<std::uint8_t> seen(cells, 0);
  std::size_t distinct = 0;
  for (const geometry::Point2D& p : space_.positions()) {
    const std::size_t r = region_of(p);
    if (seen[r] == 0) {
      seen[r] = 1;
      ++distinct;
    }
  }
  return distinct;
}

std::vector<topology::SwitchId> Controller::replica_homes(
    const crypto::DataKey& key) const {
  const crypto::SpacePoint pos = key.position();
  const geometry::Point2D p{pos.x, pos.y};
  const std::size_t k = replication_factor();
  if (!replication_enabled_ || !replication_.region_diverse || k <= 1) {
    return space_.nearest_participants(p, k);
  }

  // Region-diverse filter over the nearest order: walk the candidates
  // ascending by distance, taking the first home of each fresh region.
  // The nearest participant is taken unconditionally (element 0 stays
  // home_switch(), so routing and expected placement never move), and
  // when fewer than k regions are populated the remainder falls back
  // to the nearest skipped candidates — plain nearest-k behaviour.
  // Candidate fetches double until the filter is satisfied or the
  // whole space has been scanned, keeping the common case O(k) homes
  // from an O(4k) prefix instead of an O(n) scan.
  const std::size_t n = space_.participants().size();
  std::size_t fetch = std::min(n, std::max<std::size_t>(4 * k, 8));
  for (;;) {
    const std::vector<topology::SwitchId> cand =
        space_.nearest_participants(p, fetch);
    std::vector<topology::SwitchId> homes;
    std::vector<std::size_t> used_regions;
    homes.reserve(k);
    for (const topology::SwitchId sw : cand) {
      if (homes.size() == k) break;
      const std::size_t r = region_of_participant(sw);
      if (std::find(used_regions.begin(), used_regions.end(), r) !=
          used_regions.end()) {
        continue;
      }
      homes.push_back(sw);
      used_regions.push_back(r);
    }
    if (homes.size() == k || fetch == n) {
      for (const topology::SwitchId sw : cand) {
        if (homes.size() == k) break;
        if (std::find(homes.begin(), homes.end(), sw) == homes.end()) {
          homes.push_back(sw);
        }
      }
      return homes;
    }
    fetch = std::min(n, fetch * 2);
  }
}

Result<std::vector<Controller::Placement>> Controller::replica_placements(
    const sden::SdenNetwork& net, const crypto::DataKey& key) const {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  std::vector<Placement> out;
  for (const SwitchId home : replica_homes(key)) {
    const auto& servers = net.description().servers_at(home);
    if (servers.empty()) {
      return Error(ErrorCode::kInternal, "replica home has no servers");
    }
    Placement p;
    p.sw = home;
    p.server = servers[static_cast<std::size_t>(key.mod(servers.size()))];
    out.push_back(p);
  }
  return out;
}

Result<std::vector<ServerId>> Controller::replica_targets(
    const sden::SdenNetwork& net, const crypto::DataKey& key) const {
  auto placements = replica_placements(net, key);
  if (!placements.ok()) return placements.error();
  std::vector<ServerId> targets;
  for (const Placement& p : placements.value()) {
    const sden::RewriteEntry* rw =
        net.switch_at(p.sw).table().find_rewrite(p.server);
    const ServerId target = rw != nullptr ? rw->replacement : p.server;
    if (std::find(targets.begin(), targets.end(), target) == targets.end()) {
      targets.push_back(target);
    }
  }
  return targets;
}

Result<std::size_t> Controller::restore_replication(sden::SdenNetwork& net) {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  if (replication_factor() <= 1) return std::size_t{0};

  // Per-item holder lists (std::map: deterministic order, so a given
  // state always produces the same copy plan).
  std::map<std::string, std::vector<ServerId>> holders;
  for (ServerId s = 0; s < net.server_count(); ++s) {
    for (const auto& [id, payload] : net.server(s).items()) {
      holders[id].push_back(s);
    }
  }

  struct Copy {
    std::string id;
    ServerId from;
    ServerId to;
  };
  std::vector<Copy> copies;
  for (const auto& [id, held_by] : holders) {
    auto targets = replica_targets(net, crypto::DataKey(id));
    if (!targets.ok()) return targets.error();
    for (const ServerId t : targets.value()) {
      if (std::find(held_by.begin(), held_by.end(), t) == held_by.end()) {
        copies.push_back({id, held_by.front(), t});
      }
    }
  }

  // Store-first; on failure the undo just erases the created copies
  // (sources were never touched).
  std::size_t applied = 0;
  Status failure = Status::Ok();
  for (const Copy& c : copies) {
    const std::string* payload = net.server(c.from).find(c.id);
    if (payload == nullptr) {
      failure = Status(ErrorCode::kInternal,
                       "restore_replication: source copy vanished");
      break;
    }
    const Status stored = net.server(c.to).store(c.id, *payload);
    if (!stored.ok()) {
      failure = stored;
      break;
    }
    ++applied;
  }
  // New copies change which servers hold an item; cached answers that
  // name a holder must not outlive the change (stale-home rule).
  if (!copies.empty()) drop_cached_answers(net);
  if (failure.ok()) return copies.size();
  for (std::size_t i = applied; i-- > 0;) {
    net.server(copies[i].to).erase(copies[i].id);
  }
  return failure.error();
}

Status Controller::repair_replication_after_dynamics(
    sden::SdenNetwork& net) {
  last_repairs_ = 0;
  if (!replication_enabled_) return Status::Ok();
  auto repaired = restore_replication(net);
  if (!repaired.ok()) return repaired.error();
  last_repairs_ = repaired.value();
  return Status::Ok();
}

Result<ServerId> Controller::resolve_store_target(
    const sden::SdenNetwork& net, const crypto::DataKey& key) const {
  const auto placement = expected_placement(net, key);
  if (!placement.ok()) return placement.error();
  const sden::RewriteEntry* rw =
      net.switch_at(placement.value().sw).table().find_rewrite(
          placement.value().server);
  return rw != nullptr ? rw->replacement : placement.value().server;
}

Status Controller::extend_range_impl(sden::SdenNetwork& net,
                                     ServerId overloaded) {
  const bool plan_fresh = !net.route_plan_stale();
  last_affected_.clear();
  last_event_incremental_ = false;
  if (overloaded >= net.server_count()) {
    return Status(ErrorCode::kOutOfRange, "extend_range: unknown server");
  }
  const SwitchId sw = net.server(overloaded).info().attached_to;
  if (net.switch_at(sw).table().match_rewrite(overloaded).has_value()) {
    // Re-extending would upsert the rewrite toward a possibly
    // different delegate and strand the items already delegated to
    // the old one; callers must retract first.
    return Status(ErrorCode::kFailedPrecondition,
                  "extend_range: extension already active; retract first");
  }

  // Pick the delegate: the server with the most remaining capacity on
  // any physical-neighbor switch (Section V-B).
  ServerId best = topology::kNoServer;
  SwitchId best_via = sden::kNoSwitch;
  std::size_t best_remaining = 0;
  for (const graph::EdgeTo& e : net.description().switches().neighbors(sw)) {
    for (ServerId candidate : net.description().servers_at(e.to)) {
      const std::size_t remaining = net.server(candidate).remaining_capacity();
      if (best == topology::kNoServer || remaining > best_remaining) {
        best = candidate;
        best_via = e.to;
        best_remaining = remaining;
      }
    }
  }
  if (best == topology::kNoServer) {
    return Status(ErrorCode::kUnavailable,
                  "extend_range: no neighbor switch has servers");
  }

  sden::RewriteEntry rewrite;
  rewrite.original = overloaded;
  rewrite.replacement = best;
  rewrite.via_switch = best_via;
  net.switch_at(sw).table().add_rewrite(rewrite);
  // A rewrite touches exactly one switch's region (its deliver-fallback
  // flag), so the event is patchable without any recompute.
  last_affected_.assign(1, sw);
  last_event_incremental_ = incremental_;
  if (incremental_) patch_plan_if_fresh(net, plan_fresh, last_affected_);
  return Status::Ok();
}

Status Controller::retract_range_impl(sden::SdenNetwork& net,
                                      ServerId overloaded) {
  const bool plan_fresh = !net.route_plan_stale();
  last_affected_.clear();
  last_event_incremental_ = false;
  if (overloaded >= net.server_count()) {
    return Status(ErrorCode::kOutOfRange, "retract_range: unknown server");
  }
  const SwitchId sw = net.server(overloaded).info().attached_to;
  const auto rewrite = net.switch_at(sw).table().match_rewrite(overloaded);
  if (!rewrite.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "retract_range: no extension active for this server");
  }

  // Pull back the items that belong to `overloaded` (Section V-B: the
  // server "first retrieves the data which should be placed in [it]").
  sden::ServerNode& delegate = net.server(rewrite->replacement);
  sden::ServerNode& owner = net.server(overloaded);
  std::vector<std::string> to_move;
  for (const auto& [id, payload] : delegate.items()) {
    const crypto::DataKey key(id);
    const auto placement = expected_placement(net, key);
    if (placement.ok() && placement.value().server == overloaded) {
      to_move.push_back(id);
    }
  }
  for (const std::string& id : to_move) {
    if (owner.at_capacity()) {
      return Status(ErrorCode::kUnavailable,
                    "retract_range: owner filled up before migration "
                    "finished; extension kept");
    }
    auto payload = delegate.fetch(id);
    const Status stored = owner.store(id, std::move(*payload));
    if (!stored.ok()) return stored;
    delegate.erase(id);
  }

  net.switch_at(sw).table().remove_rewrite(overloaded);
  last_affected_.assign(1, sw);
  last_event_incremental_ = incremental_;
  if (incremental_) patch_plan_if_fresh(net, plan_fresh, last_affected_);
  return Status::Ok();
}

Result<std::size_t> Controller::extend_for_load(
    sden::SdenNetwork& net, const obs::SwitchLoadTracker& loads,
    const LoadExtensionOptions& opts) {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "extend_for_load: Controller not initialized");
  }
  if (!(opts.hot_factor >= 1.0)) {  // also rejects NaN
    return Error(ErrorCode::kInvalidArgument,
                 "extend_for_load: hot_factor must be >= 1");
  }
  if (opts.max_extensions == 0) return std::size_t{0};

  // Baseline: mean EWMA over the DT participants (transit switches
  // never serve retrievals and would only drag the mean down).
  const std::vector<SwitchId>& participants = space_.participants();
  std::vector<std::size_t> over(participants.begin(), participants.end());
  const double mean = loads.mean_ewma(over);
  if (mean <= 0.0) return std::size_t{0};

  std::vector<std::pair<double, SwitchId>> hot;
  for (const SwitchId sw : participants) {
    const double w = loads.ewma(sw);
    if (w > opts.hot_factor * mean) hot.emplace_back(w, sw);
  }
  // Hottest first; ties by id for determinism.
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  std::size_t performed = 0;
  for (const auto& [w, sw] : hot) {
    if (performed >= opts.max_extensions) break;
    // The switch's busiest extension-free server carries the hot keys.
    ServerId victim = topology::kNoServer;
    std::size_t victim_served = 0;
    for (const ServerId s : net.description().servers_at(sw)) {
      if (std::as_const(net).switch_at(sw).table().find_rewrite(s) !=
          nullptr) {
        continue;
      }
      const std::size_t served = net.server(s).retrievals_served();
      if (victim == topology::kNoServer || served > victim_served) {
        victim = s;
        victim_served = served;
      }
    }
    if (victim == topology::kNoServer) continue;
    // Event-recorded like any capacity-triggered extension; a switch
    // with no eligible neighbor simply stays hot.
    if (!extend_range(net, victim).ok()) continue;
    ++performed;
    if (!opts.migrate_hot_items) continue;

    // Spread the existing hot set: move the (deterministic) digest-
    // parity half of the victim's owned items onto the delegate. The
    // data plane retrieves from both ends of a rewrite, and
    // retract_range moves exactly these items back, so the extension
    // stays reversible.
    const auto rw =
        std::as_const(net).switch_at(sw).table().match_rewrite(victim);
    if (!rw.has_value()) continue;
    sden::ServerNode& owner = net.server(victim);
    sden::ServerNode& delegate = net.server(rw->replacement);
    std::vector<std::string> to_move;
    for (const auto& [id, payload] : owner.items()) {
      const crypto::DataKey key(id);
      if (key.mod(2) != 0) continue;
      const auto placement = expected_placement(net, key);
      if (placement.ok() && placement.value().server == victim) {
        to_move.push_back(id);
      }
    }
    std::size_t moved = 0;
    for (const std::string& id : to_move) {
      if (delegate.at_capacity()) break;
      const std::string* payload = owner.find(id);
      if (payload == nullptr) continue;
      if (!delegate.store(id, *payload).ok()) break;
      owner.erase(id);
      ++moved;
    }
    if (moved > 0) drop_cached_answers(net);
  }
  return performed;
}

Result<std::size_t> Controller::migrate_items(sden::SdenNetwork& net) {
  if (replication_factor() > 1) return migrate_items_replicated(net);
  struct Move {
    std::string id;
    ServerId from;
    ServerId to;
  };
  std::vector<Move> moves;
  for (ServerId s = 0; s < net.server_count(); ++s) {
    for (const auto& [id, payload] : net.server(s).items()) {
      const crypto::DataKey key(id);
      const auto placement = expected_placement(net, key);
      if (!placement.ok()) return placement.error();
      // Rewrite-aware: under an active extension, new stores go to the
      // delegate, and items already on either the home server or its
      // delegate are in place (the data plane retrieves from both).
      const sden::RewriteEntry* rw =
          std::as_const(net).switch_at(placement.value().sw).table()
              .find_rewrite(placement.value().server);
      const ServerId target =
          rw != nullptr ? rw->replacement : placement.value().server;
      if (s != placement.value().server && s != target) {
        moves.push_back({id, s, target});
      }
    }
  }
  // Transactional apply: store on the target first, erase the source
  // only after the store succeeded, and undo in reverse order on
  // failure. The reverse-order undo is what makes the store-back
  // infallible: when move i is undone, every later move is already
  // undone, so the slot move i freed at its source is free again.
  std::size_t applied = 0;
  Status failure = Status::Ok();
  for (const Move& m : moves) {
    const std::string* payload = net.server(m.from).find(m.id);
    if (payload == nullptr) {
      failure = Status(ErrorCode::kInternal,
                       "migrate_items: item vanished mid-migration");
      break;
    }
    const Status stored = net.server(m.to).store(m.id, *payload);
    if (!stored.ok()) {
      failure = stored;
      break;
    }
    net.server(m.from).erase(m.id);
    ++applied;
  }
  // Moved items invalidate any cached answer naming the old holder.
  if (!moves.empty()) drop_cached_answers(net);
  if (failure.ok()) return moves.size();
  for (std::size_t i = applied; i-- > 0;) {
    const Move& m = moves[i];
    auto payload = net.server(m.to).fetch(m.id);
    net.server(m.to).erase(m.id);
    if (payload.has_value()) {
      (void)net.server(m.from).store(m.id, std::move(*payload));
    }
  }
  return failure.error();
}

Result<std::size_t> Controller::migrate_items_replicated(
    sden::SdenNetwork& net) {
  // Per-item holder lists, deterministic order.
  std::map<std::string, std::vector<ServerId>> holders;
  for (ServerId s = 0; s < net.server_count(); ++s) {
    for (const auto& [id, payload] : net.server(s).items()) {
      holders[id].push_back(s);
    }
  }

  struct Move {
    std::string id;
    ServerId from;
    ServerId to;
  };
  struct Drop {
    std::string id;
    ServerId from;
  };
  std::vector<Move> moves;
  std::vector<Drop> drops;
  for (const auto& [id, held_by] : holders) {
    const crypto::DataKey key(id);
    auto placements = replica_placements(net, key);
    if (!placements.ok()) return placements.error();
    auto targets = replica_targets(net, key);
    if (!targets.ok()) return targets.error();

    // In place: on a replica home's server, or on the delegate a
    // rewrite redirects it to (the data plane retrieves from both).
    const auto in_place = [&](ServerId s) {
      for (const Placement& p : placements.value()) {
        if (p.server == s) return true;
      }
      return std::find(targets.value().begin(), targets.value().end(), s) !=
             targets.value().end();
    };

    std::vector<ServerId> missing;
    for (const ServerId t : targets.value()) {
      if (std::find(held_by.begin(), held_by.end(), t) == held_by.end()) {
        missing.push_back(t);
      }
    }
    // Misplaced copies fill distinct missing targets first — each
    // (to, id) pair stays unique, which the reverse-order undo needs —
    // and surplus copies are dropped (restore_replication re-creates
    // any target the moves could not cover).
    std::size_t next_missing = 0;
    for (const ServerId s : held_by) {
      if (in_place(s)) continue;
      if (next_missing < missing.size()) {
        moves.push_back({id, s, missing[next_missing++]});
      } else {
        drops.push_back({id, s});
      }
    }
  }

  // Same transactional discipline as the single-copy path: store on
  // the target first, erase the source after, undo in reverse order.
  std::size_t applied = 0;
  Status failure = Status::Ok();
  for (const Move& m : moves) {
    const std::string* payload = net.server(m.from).find(m.id);
    if (payload == nullptr) {
      failure = Status(ErrorCode::kInternal,
                       "migrate_items: item vanished mid-migration");
      break;
    }
    const Status stored = net.server(m.to).store(m.id, *payload);
    if (!stored.ok()) {
      failure = stored;
      break;
    }
    net.server(m.from).erase(m.id);
    ++applied;
  }
  if (!failure.ok()) {
    for (std::size_t i = applied; i-- > 0;) {
      const Move& m = moves[i];
      auto payload = net.server(m.to).fetch(m.id);
      net.server(m.to).erase(m.id);
      if (payload.has_value()) {
        (void)net.server(m.from).store(m.id, std::move(*payload));
      }
    }
    return failure.error();
  }
  // Drops are pure erases and cannot fail; apply them only once the
  // fallible phase is over so the transaction never needs to undo one.
  for (const Drop& d : drops) {
    net.server(d.from).erase(d.id);
  }
  // Moved or dropped copies invalidate cached answers naming them.
  if (!moves.empty() || !drops.empty()) drop_cached_answers(net);
  return moves.size() + drops.size();
}

geometry::Point2D Controller::fit_position(const sden::SdenNetwork& net,
                                           SwitchId sw) const {
  const graph::SsspResult sssp =
      options_.weighted_embedding
          ? graph::dijkstra(net.description().switches(), sw)
          : graph::bfs(net.description().switches(), sw);
  const auto& participants = space_.participants();
  const auto& positions = space_.positions();

  // Anchor set: existing participants with finite hop distance.
  std::vector<Point2D> anchors;
  std::vector<double> targets;  // desired virtual distance
  Point2D init{0.5, 0.5};
  double init_weight = 0.0;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i] == sw) continue;
    const double d = sssp.dist[participants[i]];
    if (d == graph::kUnreachable) continue;
    anchors.push_back(positions[i]);
    targets.push_back(d * space_.scale());
    if (d <= 1.0) {
      init = init_weight == 0.0 ? positions[i] : init + positions[i];
      init_weight += 1.0;
    }
  }
  if (anchors.empty()) return {0.5, 0.5};
  if (init_weight > 0.0) {
    init = init / init_weight;
    if (init_weight == 1.0) {
      // Single neighbor: offset by one hop so the points are distinct.
      init.x += space_.scale();
    }
  }

  // Gradient descent on sum_i (|p - a_i| - t_i)^2.
  Point2D p = init;
  double step = 0.1;
  for (int iter = 0; iter < 400; ++iter) {
    Point2D grad{0.0, 0.0};
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const Point2D diff = p - anchors[i];
      const double len = geometry::norm(diff);
      if (len < 1e-12) continue;
      const double coef = 2.0 * (len - targets[i]) / len;
      grad = grad + diff * coef;
    }
    p = p - grad * (step / static_cast<double>(anchors.size()));
    step *= 0.995;
    p.x = std::clamp(p.x, 0.0, 1.0);
    p.y = std::clamp(p.y, 0.0, 1.0);
  }
  return p;
}

void Controller::recompute_apsp(const sden::SdenNetwork& net) {
  const obs::ScopedPhaseTimer timer("apsp");
  const graph::Graph& g = net.description().switches();
  // The two tables are independent; build both at once, each fanning
  // its sources across the same pool.
  ThreadPool& pool = global_pool();
  pool.run_all({
      [&] { apsp_ = graph::all_pairs_shortest_paths(g, /*weighted=*/false,
                                                    &pool); },
      [&] { apsp_weighted_ = graph::all_pairs_shortest_paths(
                g, /*weighted=*/true, &pool); },
  });
}

Status Controller::add_link_impl(sden::SdenNetwork& net, SwitchId u,
                                 SwitchId v, double weight) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  // Captured before any mutating accessor flips the dirty flag.
  const bool plan_fresh = !net.route_plan_stale();
  const Status added =
      net.description().switches().has_edge(u, v)
          ? Status(ErrorCode::kFailedPrecondition, "link already exists")
          : net.mutable_description().mutable_switches().add_edge(u, v,
                                                                  weight);
  if (!added.ok()) return added;
  if (!incremental_) return rebuild_and_install(net);

  GraphDelta delta;
  delta.kind = GraphDelta::Kind::kLinkAdd;
  delta.u = u;
  delta.v = v;
  const Status rebuilt = rebuild_and_install_incremental(net, delta);
  if (!rebuilt.ok()) return rebuilt;
  if (last_event_incremental_) {
    patch_plan_if_fresh(net, plan_fresh, last_affected_);
  }
  return Status::Ok();
}

Status Controller::remove_link_impl(sden::SdenNetwork& net, SwitchId u,
                                    SwitchId v) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  if (!net.description().switches().has_edge(u, v)) {
    return Status(ErrorCode::kNotFound, "remove_link: no such link");
  }
  const bool plan_fresh = !net.route_plan_stale();
  // Pre-check: participants must stay mutually reachable without it.
  {
    graph::Graph probe = net.description().switches();
    probe.remove_edge(u, v);
    const auto& parts = space_.participants();
    const graph::SsspResult reach = graph::bfs(probe, parts.front());
    for (SwitchId p : parts) {
      if (reach.dist[p] == graph::kUnreachable) {
        return Status(ErrorCode::kFailedPrecondition,
                      "remove_link: failure would disconnect participants");
      }
    }
  }
  const double weight = net.description().switches().find_edge(u, v)->weight;
  // Pre-removal rewrites: install() drops any whose handoff ran over
  // this link, and the failure path below has to put them back.
  std::vector<std::pair<SwitchId, sden::RewriteEntry>> rewrites_before;
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    for (const sden::RewriteEntry& rw :
         std::as_const(net).switch_at(sw).table().rewrites()) {
      rewrites_before.emplace_back(sw, rw);
    }
  }

  net.mutable_description().mutable_switches().remove_edge(u, v);
  Status rebuilt = Status::Ok();
  if (incremental_) {
    GraphDelta delta;
    delta.kind = GraphDelta::Kind::kLinkRemove;
    delta.u = u;
    delta.v = v;
    delta.weight = weight;
    rebuilt = rebuild_and_install_incremental(net, delta);
  } else {
    rebuilt = rebuild_and_install(net);
  }
  if (!rebuilt.ok()) return rebuilt;
  // Losing the link may have invalidated a range extension whose
  // handoff ran over it (install drops such rewrites). Items already
  // delegated would then be stranded on the ex-delegate — unreachable
  // through the home server — so pull every out-of-place item back.
  auto migrated = migrate_items(net);
  if (!migrated.ok()) {
    // Migration is transactional, so every item is back where it was;
    // restore the link and the dropped delegations it carried, then
    // reinstall (install preserves table rewrites, so re-adding them
    // first makes the rebuild reproduce the pre-call state).
    (void)net.mutable_description().mutable_switches().add_edge(u, v, weight);
    for (const auto& [sw, rw] : rewrites_before) {
      if (net.switch_at(sw).table().find_rewrite(rw.original) == nullptr) {
        net.switch_at(sw).table().add_rewrite(rw);
      }
    }
    (void)rebuild_and_install(net);
    return migrated.error();
  }
  last_migration_ = migrated.value();
  const Status repaired = repair_replication_after_dynamics(net);
  if (!repaired.ok()) return repaired;
  if (last_event_incremental_) {
    patch_plan_if_fresh(net, plan_fresh, last_affected_);
  }
  return Status::Ok();
}

Status Controller::rebuild_and_install(sden::SdenNetwork& net) {
  // Full rebuild: every switch's state is replaced, so there is no
  // meaningful "affected subset" to report.
  last_affected_.clear();
  last_event_incremental_ = false;
  recompute_apsp(net);
  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();
  return install(net);
}

Status Controller::rebuild_and_install_incremental(sden::SdenNetwork& net,
                                                   const GraphDelta& delta) {
  const obs::ScopedPhaseTimer timer("incremental_rebuild");
  const graph::Graph& g = net.description().switches();
  ThreadPool& pool = global_pool();

  // 1. Delta-APSP on both tables (independent, like recompute_apsp).
  graph::ApspDelta hop;
  graph::ApspDelta wgt;
  switch (delta.kind) {
    case GraphDelta::Kind::kLinkAdd:
      pool.run_all({
          [&] { hop = graph::apsp_add_edge(apsp_, g, delta.u, delta.v,
                                           &pool); },
          [&] { wgt = graph::apsp_add_edge(apsp_weighted_, g, delta.u,
                                           delta.v, &pool); },
      });
      break;
    case GraphDelta::Kind::kLinkRemove:
      pool.run_all({
          [&] { hop = graph::apsp_remove_edge(apsp_, g, delta.u, delta.v,
                                              1.0, &pool); },
          [&] { wgt = graph::apsp_remove_edge(apsp_weighted_, g, delta.u,
                                              delta.v, delta.weight,
                                              &pool); },
      });
      break;
    case GraphDelta::Kind::kSwitchAdd:
      pool.run_all({
          [&] { hop = graph::apsp_add_node(apsp_, g, delta.u, &pool); },
          [&] { wgt = graph::apsp_add_node(apsp_weighted_, g, delta.u,
                                           &pool); },
      });
      break;
    case GraphDelta::Kind::kSwitchRemove:
      pool.run_all({
          [&] { hop = graph::apsp_remove_node_edges(
                    apsp_, g, delta.u, delta.removed_edges, &pool); },
          [&] { wgt = graph::apsp_remove_node_edges(
                    apsp_weighted_, g, delta.u, delta.removed_edges,
                    &pool); },
      });
      break;
  }

  // The routing table drives the affected set; when its delta crossed
  // the staleness threshold the changed-row list is unavailable, so
  // finish the event as a full rebuild (the tables themselves are
  // already correct either way).
  const graph::ApspDelta& routing_delta =
      options_.weighted_embedding ? wgt : hop;
  if (routing_delta.full_recompute) return rebuild_and_install(net);

  // 2. Localized DT repair for switch join/leave. The repair rebuilds
  // the rim participants itself; `touched` accumulates every switch
  // whose installable state changed.
  std::vector<std::size_t> repaired;
  std::vector<SwitchId> touched;
  if (delta.kind == GraphDelta::Kind::kSwitchAdd && delta.joined_dt) {
    const Status added = dt_.add_participant(delta.u, delta.position, g,
                                             routing_apsp(), &repaired,
                                             &touched);
    if (!added.ok()) return rebuild_and_install(net);
  } else if (delta.kind == GraphDelta::Kind::kSwitchRemove &&
             delta.joined_dt) {
    const Status removed = dt_.remove_participant(delta.u, g, routing_apsp(),
                                                  &repaired, &touched);
    if (!removed.ok()) return rebuild_and_install(net);
  }

  // 3. The affected participants beyond the DT rim: those whose
  // distance row moved, and those whose (unchanged-distance) virtual
  // links canonically routed through the changed region — only a path
  // that meets a node with changed adjacency can change while its
  // endpoints' distances stay put.
  const std::vector<SwitchId>& parts = dt_.participants();
  std::vector<std::size_t> rebuild;
  const std::vector<graph::NodeId>& rows = routing_delta.changed_rows;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (std::binary_search(rows.begin(), rows.end(),
                           static_cast<graph::NodeId>(parts[i]))) {
      rebuild.push_back(i);
    }
  }
  switch (delta.kind) {
    case GraphDelta::Kind::kLinkAdd:
    case GraphDelta::Kind::kLinkRemove: {
      for (const std::size_t i :
           dt_.participants_with_vlinks_through({delta.u, delta.v})) {
        rebuild.push_back(i);
      }
      // The endpoints' own candidate tables encode link-existence (a
      // DT edge flips between physical and multi-hop with the link),
      // which can change even when no distance moved.
      for (const SwitchId end : {delta.u, delta.v}) {
        const std::size_t i = space_.index_of(end);
        if (i != VirtualSpace::kNoIndex) rebuild.push_back(i);
      }
      break;
    }
    case GraphDelta::Kind::kSwitchAdd:
      // The new node has the largest id, so the smallest-id canonical
      // predecessor rule never reroutes an unchanged-distance path
      // through it; strictly better paths show up as changed rows. Its
      // attach links are link-adds in disguise, though: each endpoint
      // gains a physical-neighbor candidate even when its distance row
      // and DT cell are untouched.
      for (const graph::EdgeTo& e : g.neighbors(delta.u)) {
        const std::size_t i = space_.index_of(e.to);
        if (i != VirtualSpace::kNoIndex) rebuild.push_back(i);
      }
      break;
    case GraphDelta::Kind::kSwitchRemove:
      for (const SwitchId sw : delta.vlinks_through) {
        const std::size_t i = space_.index_of(sw);
        if (i != VirtualSpace::kNoIndex) rebuild.push_back(i);
      }
      // Symmetric to the join case: each torn-down link's surviving
      // endpoint loses its physical-neighbor candidate.
      for (const graph::EdgeTo& e : delta.removed_edges) {
        const std::size_t i = space_.index_of(e.to);
        if (i != VirtualSpace::kNoIndex) rebuild.push_back(i);
      }
      break;
  }
  std::sort(rebuild.begin(), rebuild.end());
  rebuild.erase(std::unique(rebuild.begin(), rebuild.end()), rebuild.end());
  std::sort(repaired.begin(), repaired.end());
  for (const std::size_t i : rebuild) {
    // The DT repair already rebuilt its rim; don't redo those.
    if (std::binary_search(repaired.begin(), repaired.end(), i)) continue;
    const Status rebuilt = dt_.rebuild_participant(i, g, routing_apsp(),
                                                   &touched);
    if (!rebuilt.ok()) return rebuild_and_install(net);
    touched.push_back(parts[i]);
  }

  // The event's switch itself is always part of the patch: a joiner
  // needs its (possibly empty transit) state installed and its plan
  // region compiled; a leaver needs its region wiped in place. For
  // link events the endpoints' plan regions embed the link weight, so
  // they re-compile even when their tables did not change.
  touched.push_back(delta.u);
  if (delta.kind == GraphDelta::Kind::kLinkAdd ||
      delta.kind == GraphDelta::Kind::kLinkRemove) {
    touched.push_back(delta.v);
  }

  const Status patched = install_patch(net, touched);
  if (!patched.ok()) return rebuild_and_install(net);
  last_event_incremental_ = true;
  return Status::Ok();
}

Status Controller::install_patch(sden::SdenNetwork& net,
                                 std::vector<SwitchId>& touched) {
  const obs::ScopedPhaseTimer timer("install_patch");
  const topology::EdgeNetwork& desc = net.description();

  // install() re-validates every rewrite network-wide on every event;
  // the patch must match, so sweep all switches and pull any that lost
  // a rewrite into the patch set. The sweep is O(switches + rewrites)
  // — noise next to the rebuilt participants' path work.
  const auto rewrite_valid = [&](SwitchId sw, const sden::RewriteEntry& rw) {
    if (sw >= net.switch_count() || rw.via_switch >= net.switch_count() ||
        rw.original >= net.server_count() ||
        rw.replacement >= net.server_count()) {
      return false;
    }
    const auto& own_servers = desc.servers_at(sw);
    if (std::find(own_servers.begin(), own_servers.end(), rw.original) ==
        own_servers.end()) {
      return false;
    }
    const auto& via_servers = desc.servers_at(rw.via_switch);
    if (std::find(via_servers.begin(), via_servers.end(), rw.replacement) ==
        via_servers.end()) {
      return false;
    }
    return desc.switches().find_edge(sw, rw.via_switch) != nullptr;
  };
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    for (const sden::RewriteEntry& rw :
         std::as_const(net).switch_at(sw).table().rewrites()) {
      if (!rewrite_valid(sw, rw)) {
        touched.push_back(sw);
        break;
      }
    }
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  std::vector<sden::RewriteEntry> keep;
  for (const SwitchId t : touched) {
    if (t >= net.switch_count()) {
      return Status(ErrorCode::kInternal,
                    "install_patch: touched switch out of range");
    }
    keep.clear();
    for (const sden::RewriteEntry& rw :
         std::as_const(net).switch_at(t).table().rewrites()) {
      if (rewrite_valid(t, rw)) keep.push_back(rw);
    }
    sden::Switch& sw = net.switch_at(t);
    sw.reset();
    const std::size_t i = space_.index_of(t);
    if (i != VirtualSpace::kNoIndex) {
      sw.set_position(space_.positions()[i]);
      sw.set_local_servers(desc.servers_at(t));
      for (const DtNeighborInfo& cand : dt_.candidates_of(t)) {
        sden::NeighborEntry entry;
        entry.neighbor = cand.neighbor;
        entry.position = cand.position;
        entry.physical = cand.physical;
        entry.first_hop = cand.first_hop;
        sw.table().add_neighbor(entry);
      }
    }
    const auto relays = dt_.relay_entries().find(t);
    if (relays != dt_.relay_entries().end()) {
      for (const sden::RelayEntry& relay : relays->second) {
        sw.table().add_relay(relay);
      }
    }
    for (const sden::RewriteEntry& rw : keep) sw.table().add_rewrite(rw);
  }

  // Same machine-checked invariants as install(). They are global, so
  // checked builds re-prove after every incremental event that the
  // patched state equals what a full install would have produced.
  GRED_CHECK(check::validate_delaunay(dt_.triangulation()));
  GRED_CHECK(check::validate_graph(net.description().switches(), apsp_,
                                   /*weighted=*/false));
  GRED_CHECK(check::validate_graph(net.description().switches(),
                                   apsp_weighted_, /*weighted=*/true));
  GRED_CHECK(check::validate_flow_tables(net, space_.participants(),
                                         space_.positions(),
                                         &dt_.triangulation()));
  last_affected_ = touched;
  return Status::Ok();
}

Result<std::size_t> Controller::re_regulate(sden::SdenNetwork& net,
                                            double energy_delta_tolerance) {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  const std::size_t iterations =
      space_.refine_cvt(options_, energy_delta_tolerance);
  const Status rebuilt = rebuild_and_install(net);
  if (!rebuilt.ok()) return rebuilt.error();
  auto migrated = migrate_items(net);
  if (!migrated.ok()) return migrated.error();
  last_migration_ = migrated.value();
  const Status repaired = repair_replication_after_dynamics(net);
  if (!repaired.ok()) return repaired.error();
  return iterations;
}

Result<topology::SwitchId> Controller::add_switch_impl(
    sden::SdenNetwork& net, const std::vector<SwitchId>& links,
    std::size_t server_count, std::size_t capacity) {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  if (links.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "add_switch: new switch must have at least one link");
  }
  const bool plan_fresh = !net.route_plan_stale();
  // Join is all-or-nothing: remember the pre-call state and restore it
  // on any failure, so a half-joined switch never leaks into the
  // topology. Counts suffice for the network (add_switch/attach_server
  // are append-only), and the virtual space is small enough to copy.
  const std::size_t switches_before = net.switch_count();
  const std::size_t servers_before = net.server_count();
  const VirtualSpace space_before = space_;
  const auto rollback = [&](Status cause) {
    net.truncate_switches(switches_before, servers_before);
    space_ = space_before;
    // Reinstall the pre-call tables (rewrites are preserved across the
    // reinstall). This cannot meaningfully fail: it rebuilds exactly
    // the state that was installed when we entered.
    (void)rebuild_and_install(net);
    return cause;
  };

  auto added = net.add_switch(links);
  if (!added.ok()) {
    // net.add_switch may fail after adding the node (e.g. a duplicate
    // link in `links`); the truncate undoes that partial state.
    return rollback(added.error()).error();
  }
  const SwitchId sw = added.value();
  for (std::size_t k = 0; k < server_count; ++k) {
    auto attached = net.attach_server(sw, capacity);
    if (!attached.ok()) return rollback(attached.error()).error();
  }

  bool use_incremental = incremental_;
  GraphDelta delta;
  delta.kind = GraphDelta::Kind::kSwitchAdd;
  delta.u = sw;
  if (server_count > 0) {
    // The new node joins the DT; others keep their positions
    // (Section VI: a join "only affects its neighbors").
    const Point2D pos = fit_position(net, sw);
    // A position collision makes add_participant nudge OTHER sites
    // apart (separate_duplicates), which the localized DT repair would
    // not see — force the full path, which reads the nudged positions.
    for (const Point2D& q : space_.positions()) {
      if (q.x == pos.x && q.y == pos.y) {
        use_incremental = false;
        break;
      }
    }
    delta.joined_dt = true;
    delta.position = pos;
    space_.add_participant(sw, pos);
  }
  const Status rebuilt = use_incremental
                             ? rebuild_and_install_incremental(net, delta)
                             : rebuild_and_install(net);
  if (!rebuilt.ok()) return rollback(rebuilt).error();

  // migrate_items is transactional: on failure every applied move has
  // been undone, so the rollback below never destroys live items (the
  // new switch's servers are empty again).
  auto migrated = migrate_items(net);
  if (!migrated.ok()) return rollback(migrated.error()).error();
  last_migration_ = migrated.value();
  const Status repaired = repair_replication_after_dynamics(net);
  if (!repaired.ok()) return rollback(repaired).error();
  if (last_event_incremental_) {
    patch_plan_if_fresh(net, plan_fresh, last_affected_);
  }
  return sw;
}

Status Controller::remove_switch_impl(sden::SdenNetwork& net, SwitchId sw) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  if (sw >= net.switch_count()) {
    return Status(ErrorCode::kOutOfRange, "remove_switch: unknown switch");
  }
  const bool plan_fresh = !net.route_plan_stale();

  // Pre-check: remaining participants must stay mutually reachable.
  {
    graph::Graph probe = net.description().switches();
    probe.remove_edges_of(sw);
    std::vector<SwitchId> remaining;
    for (SwitchId p : space_.participants()) {
      if (p != sw) remaining.push_back(p);
    }
    if (remaining.empty()) {
      return Status(ErrorCode::kFailedPrecondition,
                    "remove_switch: last participant cannot leave");
    }
    const graph::SsspResult reach = graph::bfs(probe, remaining.front());
    for (SwitchId p : remaining) {
      if (reach.dist[p] == graph::kUnreachable) {
        return Status(ErrorCode::kFailedPrecondition,
                      "remove_switch: removal disconnects participants");
      }
    }
  }

  // The incremental path's pre-capture: the leaving node's adjacency
  // and the vlinks crossing it exist only before the teardown.
  GraphDelta delta;
  delta.kind = GraphDelta::Kind::kSwitchRemove;
  delta.u = sw;
  if (incremental_) {
    delta.removed_edges = net.description().switches().neighbors(sw);
    delta.joined_dt = space_.index_of(sw) != VirtualSpace::kNoIndex;
    // Virtual links relay through transit switches too, so the
    // crossing set matters whether or not `sw` was a participant.
    for (const std::size_t i :
         dt_.participants_with_vlinks_through({sw})) {
      delta.vlinks_through.push_back(dt_.participants()[i]);
    }
  }

  // Collect the leaving switch's data for re-placement.
  std::vector<std::pair<std::string, std::string>> orphans;
  for (ServerId s : net.description().servers_at(sw)) {
    for (const auto& [id, payload] : net.server(s).items()) {
      orphans.emplace_back(id, payload);
    }
    net.server(s) = sden::ServerNode(net.server(s).info());
  }

  net.remove_switch_links(sw);
  space_.remove_participant(sw);

  const Status rebuilt = incremental_
                             ? rebuild_and_install_incremental(net, delta)
                             : rebuild_and_install(net);
  if (!rebuilt.ok()) return rebuilt;

  // Existing items whose home changed migrate; orphans are re-placed.
  auto migrated = migrate_items(net);
  if (!migrated.ok()) return migrated.error();
  last_migration_ = migrated.value() + orphans.size();
  for (auto& [id, payload] : orphans) {
    // Same rewrite-aware path as migration: an orphan whose new home
    // has an active range extension goes to the delegate, and store()
    // enforces the target's capacity instead of silently overfilling a
    // server whose load was just delegated away.
    const auto target = resolve_store_target(net, crypto::DataKey(id));
    if (!target.ok()) return target.error();
    const Status stored =
        net.server(target.value()).store(id, std::move(payload));
    if (!stored.ok()) return stored;
  }
  // With replication on, re-create the copies the removal destroyed
  // (the orphan pass restored only the primary copy of each item).
  const Status repaired = repair_replication_after_dynamics(net);
  if (!repaired.ok()) return repaired;
  if (last_event_incremental_) {
    patch_plan_if_fresh(net, plan_fresh, last_affected_);
  }
  return Status::Ok();
}

// --- Observability wrappers -----------------------------------------
// Each public dynamics/extension op logs one dynamics event (audit
// trail for Section V-B / Section VI reconfigurations) around its
// _impl. With obs disabled the wrappers add two relaxed loads.

Status Controller::extend_range(sden::SdenNetwork& net,
                                ServerId overloaded) {
  EventRecorder ev(obs::EventKind::kExtendRange, net, overloaded);
  const Status status = extend_range_impl(net, overloaded);
  ev.finish(status, /*migrated=*/0);
  return status;
}

Status Controller::retract_range(sden::SdenNetwork& net,
                                 ServerId overloaded) {
  EventRecorder ev(obs::EventKind::kRetractRange, net, overloaded);
  const Status status = retract_range_impl(net, overloaded);
  ev.finish(status, /*migrated=*/0);
  return status;
}

Result<topology::SwitchId> Controller::add_switch(
    sden::SdenNetwork& net, const std::vector<SwitchId>& links,
    std::size_t server_count, std::size_t capacity) {
  EventRecorder ev(obs::EventKind::kAddSwitch, net, net.switch_count());
  auto result = add_switch_impl(net, links, server_count, capacity);
  ev.finish(result.ok() ? Status::Ok() : Status(result.error()),
            result.ok() ? last_migration_ : 0,
            result.ok() ? result.value() : net.switch_count());
  return result;
}

Status Controller::remove_switch(sden::SdenNetwork& net, SwitchId sw) {
  EventRecorder ev(obs::EventKind::kRemoveSwitch, net, sw);
  const Status status = remove_switch_impl(net, sw);
  ev.finish(status, status.ok() ? last_migration_ : 0);
  return status;
}

Status Controller::add_link(sden::SdenNetwork& net, SwitchId u, SwitchId v,
                            double weight) {
  EventRecorder ev(obs::EventKind::kAddLink, net, u, v);
  const Status status = add_link_impl(net, u, v, weight);
  ev.finish(status, /*migrated=*/0);
  return status;
}

Status Controller::remove_link(sden::SdenNetwork& net, SwitchId u,
                               SwitchId v) {
  EventRecorder ev(obs::EventKind::kRemoveLink, net, u, v);
  const Status status = remove_link_impl(net, u, v);
  ev.finish(status, status.ok() ? last_migration_ : 0);
  return status;
}

}  // namespace gred::core
