#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/invariants.hpp"
#include "common/thread_pool.hpp"
#include "graph/properties.hpp"

namespace gred::core {
namespace {

using geometry::Point2D;
using topology::ServerId;
using topology::SwitchId;

/// Switches that join the DT: those with at least one attached server.
std::vector<SwitchId> find_participants(const topology::EdgeNetwork& desc) {
  std::vector<SwitchId> out;
  for (SwitchId sw = 0; sw < desc.switch_count(); ++sw) {
    if (!desc.servers_at(sw).empty()) out.push_back(sw);
  }
  return out;
}

}  // namespace

Status Controller::initialize(sden::SdenNetwork& net) {
  const std::vector<SwitchId> participants =
      find_participants(net.description());
  if (participants.empty()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller: no switch has attached servers");
  }

  recompute_apsp(net);

  auto space = VirtualSpace::build(participants, routing_apsp(), options_);
  if (!space.ok()) return space.error();
  space_ = std::move(space).value();

  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();

  const Status installed = install(net);
  if (!installed.ok()) return installed;
  initialized_ = true;
  return Status::Ok();
}

Status Controller::initialize_with_positions(
    sden::SdenNetwork& net,
    const std::vector<SwitchId>& participants,
    const std::vector<Point2D>& positions) {
  const std::vector<SwitchId> expected =
      find_participants(net.description());
  if (participants != expected) {
    return Status(ErrorCode::kFailedPrecondition,
                  "initialize_with_positions: participant set does not "
                  "match the switches with servers");
  }
  recompute_apsp(net);
  auto space =
      VirtualSpace::from_positions(participants, positions, routing_apsp());
  if (!space.ok()) return space.error();
  space_ = std::move(space).value();

  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();

  const Status installed = install(net);
  if (!installed.ok()) return installed;
  initialized_ = true;
  return Status::Ok();
}

Status Controller::install(sden::SdenNetwork& net) {
  // Wipe everything, then install fresh state (the controller owns all
  // switch state; per-flow entries never exist).
  for (SwitchId sw = 0; sw < net.switch_count(); ++sw) {
    net.switch_at(sw).reset();
  }

  const auto& participants = space_.participants();
  const auto& positions = space_.positions();
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const SwitchId id = participants[i];
    sden::Switch& sw = net.switch_at(id);
    sw.set_position(positions[i]);
    sw.set_local_servers(net.description().servers_at(id));
    for (const DtNeighborInfo& cand : dt_.candidates_of(id)) {
      sden::NeighborEntry entry;
      entry.neighbor = cand.neighbor;
      entry.position = cand.position;
      entry.physical = cand.physical;
      entry.first_hop = cand.first_hop;
      sw.table().add_neighbor(entry);
    }
  }
  for (const auto& [sw_id, relays] : dt_.relay_entries()) {
    for (const sden::RelayEntry& relay : relays) {
      net.switch_at(sw_id).table().add_relay(relay);
    }
  }

  // Machine-checked invariants (Debug / GRED_CHECKED builds). Every
  // install is a full state replacement, so re-prove here that the DT
  // kept its empty-circumcircle property, the APSP tables agree with
  // the component structure, and the installed greedy/relay entries
  // realize the DT — the facts the stretch≈1 guarantee rests on.
  GRED_CHECK(check::validate_delaunay(dt_.triangulation()));
  GRED_CHECK(check::validate_graph(net.description().switches(), apsp_,
                                   /*weighted=*/false));
  GRED_CHECK(check::validate_graph(net.description().switches(),
                                   apsp_weighted_, /*weighted=*/true));
  GRED_CHECK(check::validate_flow_tables(net, space_.participants(),
                                         space_.positions(),
                                         &dt_.triangulation()));
  return Status::Ok();
}

topology::SwitchId Controller::home_switch(const Point2D& p) const {
  return space_.nearest_participant(p);
}

Result<Controller::Placement> Controller::expected_placement(
    sden::SdenNetwork& net, const crypto::DataKey& key) const {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  Placement p;
  const crypto::SpacePoint pos = key.position();
  p.sw = home_switch({pos.x, pos.y});
  const auto& servers = net.description().servers_at(p.sw);
  if (servers.empty()) {
    return Error(ErrorCode::kInternal, "home switch has no servers");
  }
  p.server = servers[static_cast<std::size_t>(key.mod(servers.size()))];
  return p;
}

Status Controller::extend_range(sden::SdenNetwork& net,
                                ServerId overloaded) {
  if (overloaded >= net.server_count()) {
    return Status(ErrorCode::kOutOfRange, "extend_range: unknown server");
  }
  const SwitchId sw = net.server(overloaded).info().attached_to;

  // Pick the delegate: the server with the most remaining capacity on
  // any physical-neighbor switch (Section V-B).
  ServerId best = topology::kNoServer;
  SwitchId best_via = sden::kNoSwitch;
  std::size_t best_remaining = 0;
  for (const graph::EdgeTo& e : net.description().switches().neighbors(sw)) {
    for (ServerId candidate : net.description().servers_at(e.to)) {
      const std::size_t remaining = net.server(candidate).remaining_capacity();
      if (best == topology::kNoServer || remaining > best_remaining) {
        best = candidate;
        best_via = e.to;
        best_remaining = remaining;
      }
    }
  }
  if (best == topology::kNoServer) {
    return Status(ErrorCode::kUnavailable,
                  "extend_range: no neighbor switch has servers");
  }

  sden::RewriteEntry rewrite;
  rewrite.original = overloaded;
  rewrite.replacement = best;
  rewrite.via_switch = best_via;
  net.switch_at(sw).table().add_rewrite(rewrite);
  return Status::Ok();
}

Status Controller::retract_range(sden::SdenNetwork& net,
                                 ServerId overloaded) {
  if (overloaded >= net.server_count()) {
    return Status(ErrorCode::kOutOfRange, "retract_range: unknown server");
  }
  const SwitchId sw = net.server(overloaded).info().attached_to;
  const auto rewrite = net.switch_at(sw).table().match_rewrite(overloaded);
  if (!rewrite.has_value()) {
    return Status(ErrorCode::kNotFound,
                  "retract_range: no extension active for this server");
  }

  // Pull back the items that belong to `overloaded` (Section V-B: the
  // server "first retrieves the data which should be placed in [it]").
  sden::ServerNode& delegate = net.server(rewrite->replacement);
  sden::ServerNode& owner = net.server(overloaded);
  std::vector<std::string> to_move;
  for (const auto& [id, payload] : delegate.items()) {
    const crypto::DataKey key(id);
    const auto placement = expected_placement(net, key);
    if (placement.ok() && placement.value().server == overloaded) {
      to_move.push_back(id);
    }
  }
  for (const std::string& id : to_move) {
    if (owner.at_capacity()) {
      return Status(ErrorCode::kUnavailable,
                    "retract_range: owner filled up before migration "
                    "finished; extension kept");
    }
    auto payload = delegate.fetch(id);
    const Status stored = owner.store(id, std::move(*payload));
    if (!stored.ok()) return stored;
    delegate.erase(id);
  }

  net.switch_at(sw).table().remove_rewrite(overloaded);
  return Status::Ok();
}

Result<std::size_t> Controller::migrate_items(sden::SdenNetwork& net) {
  struct Move {
    std::string id;
    std::string payload;
    ServerId from;
    ServerId to;
  };
  std::vector<Move> moves;
  for (ServerId s = 0; s < net.server_count(); ++s) {
    for (const auto& [id, payload] : net.server(s).items()) {
      const crypto::DataKey key(id);
      const auto placement = expected_placement(net, key);
      if (!placement.ok()) return placement.error();
      if (placement.value().server != s) {
        moves.push_back({id, payload, s, placement.value().server});
      }
    }
  }
  for (const Move& m : moves) {
    net.server(m.from).erase(m.id);
    const Status stored = net.server(m.to).store(m.id, m.payload);
    if (!stored.ok()) return stored.error();
  }
  return moves.size();
}

geometry::Point2D Controller::fit_position(const sden::SdenNetwork& net,
                                           SwitchId sw) const {
  const graph::SsspResult sssp =
      options_.weighted_embedding
          ? graph::dijkstra(net.description().switches(), sw)
          : graph::bfs(net.description().switches(), sw);
  const auto& participants = space_.participants();
  const auto& positions = space_.positions();

  // Anchor set: existing participants with finite hop distance.
  std::vector<Point2D> anchors;
  std::vector<double> targets;  // desired virtual distance
  Point2D init{0.5, 0.5};
  double init_weight = 0.0;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (participants[i] == sw) continue;
    const double d = sssp.dist[participants[i]];
    if (d == graph::kUnreachable) continue;
    anchors.push_back(positions[i]);
    targets.push_back(d * space_.scale());
    if (d <= 1.0) {
      init = init_weight == 0.0 ? positions[i] : init + positions[i];
      init_weight += 1.0;
    }
  }
  if (anchors.empty()) return {0.5, 0.5};
  if (init_weight > 0.0) {
    init = init / init_weight;
    if (init_weight == 1.0) {
      // Single neighbor: offset by one hop so the points are distinct.
      init.x += space_.scale();
    }
  }

  // Gradient descent on sum_i (|p - a_i| - t_i)^2.
  Point2D p = init;
  double step = 0.1;
  for (int iter = 0; iter < 400; ++iter) {
    Point2D grad{0.0, 0.0};
    for (std::size_t i = 0; i < anchors.size(); ++i) {
      const Point2D diff = p - anchors[i];
      const double len = geometry::norm(diff);
      if (len < 1e-12) continue;
      const double coef = 2.0 * (len - targets[i]) / len;
      grad = grad + diff * coef;
    }
    p = p - grad * (step / static_cast<double>(anchors.size()));
    step *= 0.995;
    p.x = std::clamp(p.x, 0.0, 1.0);
    p.y = std::clamp(p.y, 0.0, 1.0);
  }
  return p;
}

void Controller::recompute_apsp(const sden::SdenNetwork& net) {
  const graph::Graph& g = net.description().switches();
  // The two tables are independent; build both at once, each fanning
  // its sources across the same pool.
  ThreadPool& pool = global_pool();
  pool.run_all({
      [&] { apsp_ = graph::all_pairs_shortest_paths(g, /*weighted=*/false,
                                                    &pool); },
      [&] { apsp_weighted_ = graph::all_pairs_shortest_paths(
                g, /*weighted=*/true, &pool); },
  });
}

Status Controller::add_link(sden::SdenNetwork& net, SwitchId u, SwitchId v,
                            double weight) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  const Status added =
      net.description().switches().has_edge(u, v)
          ? Status(ErrorCode::kFailedPrecondition, "link already exists")
          : net.mutable_description().mutable_switches().add_edge(u, v,
                                                                  weight);
  if (!added.ok()) return added;
  return rebuild_and_install(net);
}

Status Controller::remove_link(sden::SdenNetwork& net, SwitchId u,
                               SwitchId v) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  if (!net.description().switches().has_edge(u, v)) {
    return Status(ErrorCode::kNotFound, "remove_link: no such link");
  }
  // Pre-check: participants must stay mutually reachable without it.
  {
    graph::Graph probe = net.description().switches();
    probe.remove_edge(u, v);
    const auto& parts = space_.participants();
    const graph::SsspResult reach = graph::bfs(probe, parts.front());
    for (SwitchId p : parts) {
      if (reach.dist[p] == graph::kUnreachable) {
        return Status(ErrorCode::kFailedPrecondition,
                      "remove_link: failure would disconnect participants");
      }
    }
  }
  net.mutable_description().mutable_switches().remove_edge(u, v);
  return rebuild_and_install(net);
}

Status Controller::rebuild_and_install(sden::SdenNetwork& net) {
  recompute_apsp(net);
  auto dt = MultiHopDT::build(space_.participants(), space_.positions(),
                              net.description().switches(), routing_apsp());
  if (!dt.ok()) return dt.error();
  dt_ = std::move(dt).value();
  return install(net);
}

Result<topology::SwitchId> Controller::add_switch(
    sden::SdenNetwork& net, const std::vector<SwitchId>& links,
    std::size_t server_count, std::size_t capacity) {
  if (!initialized_) {
    return Error(ErrorCode::kFailedPrecondition,
                 "Controller not initialized");
  }
  if (links.empty()) {
    return Error(ErrorCode::kInvalidArgument,
                 "add_switch: new switch must have at least one link");
  }
  auto added = net.add_switch(links);
  if (!added.ok()) return added.error();
  const SwitchId sw = added.value();
  for (std::size_t k = 0; k < server_count; ++k) {
    auto attached = net.attach_server(sw, capacity);
    if (!attached.ok()) return attached.error();
  }

  if (server_count > 0) {
    // The new node joins the DT; others keep their positions
    // (Section VI: a join "only affects its neighbors").
    space_.add_participant(sw, fit_position(net, sw));
  }
  const Status rebuilt = rebuild_and_install(net);
  if (!rebuilt.ok()) return rebuilt.error();

  auto migrated = migrate_items(net);
  if (!migrated.ok()) return migrated.error();
  last_migration_ = migrated.value();
  return sw;
}

Status Controller::remove_switch(sden::SdenNetwork& net, SwitchId sw) {
  if (!initialized_) {
    return Status(ErrorCode::kFailedPrecondition,
                  "Controller not initialized");
  }
  if (sw >= net.switch_count()) {
    return Status(ErrorCode::kOutOfRange, "remove_switch: unknown switch");
  }

  // Pre-check: remaining participants must stay mutually reachable.
  {
    graph::Graph probe = net.description().switches();
    probe.remove_edges_of(sw);
    std::vector<SwitchId> remaining;
    for (SwitchId p : space_.participants()) {
      if (p != sw) remaining.push_back(p);
    }
    if (remaining.empty()) {
      return Status(ErrorCode::kFailedPrecondition,
                    "remove_switch: last participant cannot leave");
    }
    const graph::SsspResult reach = graph::bfs(probe, remaining.front());
    for (SwitchId p : remaining) {
      if (reach.dist[p] == graph::kUnreachable) {
        return Status(ErrorCode::kFailedPrecondition,
                      "remove_switch: removal disconnects participants");
      }
    }
  }

  // Collect the leaving switch's data for re-placement.
  std::vector<std::pair<std::string, std::string>> orphans;
  for (ServerId s : net.description().servers_at(sw)) {
    for (const auto& [id, payload] : net.server(s).items()) {
      orphans.emplace_back(id, payload);
    }
    net.server(s) = sden::ServerNode(net.server(s).info());
  }

  net.remove_switch_links(sw);
  space_.remove_participant(sw);

  const Status rebuilt = rebuild_and_install(net);
  if (!rebuilt.ok()) return rebuilt;

  // Existing items whose home changed migrate; orphans are re-placed.
  auto migrated = migrate_items(net);
  if (!migrated.ok()) return migrated.error();
  last_migration_ = migrated.value() + orphans.size();
  for (auto& [id, payload] : orphans) {
    const auto placement = expected_placement(net, crypto::DataKey(id));
    if (!placement.ok()) return placement.error();
    const Status stored =
        net.server(placement.value().server).store(id, std::move(payload));
    if (!stored.ok()) return stored;
  }
  return Status::Ok();
}

}  // namespace gred::core
