#include "core/metrics.hpp"

#include <algorithm>

namespace gred::core {

double routing_stretch(std::size_t selected_hops, std::size_t shortest_hops) {
  if (shortest_hops == 0) {
    return selected_hops == 0 ? 1.0 : static_cast<double>(selected_hops);
  }
  return static_cast<double>(selected_hops) /
         static_cast<double>(shortest_hops);
}

void StretchCollector::add(std::size_t selected_hops,
                           std::size_t shortest_hops) {
  samples_.push_back(routing_stretch(selected_hops, shortest_hops));
}

void StretchCollector::add_stretch(double stretch) {
  samples_.push_back(stretch);
}

LoadBalanceReport load_balance(const std::vector<std::size_t>& loads) {
  LoadBalanceReport r;
  if (loads.empty()) return r;
  r.max_over_avg = max_over_avg(loads);
  r.jain = jain_fairness(loads);
  r.cov = coefficient_of_variation(loads);
  std::size_t total = 0;
  for (std::size_t x : loads) {
    r.max_load = std::max(r.max_load, x);
    total += x;
  }
  r.avg_load = static_cast<double>(total) / static_cast<double>(loads.size());
  return r;
}

}  // namespace gred::core
