// The control plane's virtual position construction (Section IV):
//
//   1. M-position: embed the all-pairs shortest-path hop matrix of the
//      DT-participating switches into 2-D by classical MDS, so virtual
//      Euclidean distance is proportional to network distance (greedy
//      network embedding).
//   2. Normalize: affinely map the embedding into the unit square with
//      a small margin, preserving the aspect ratio (data positions are
//      hashed into [0,1]^2, so switch positions must live there too; a
//      uniform scale keeps distances proportional).
//   3. C-regulation: refine the positions toward a Centroidal Voronoi
//      Tessellation so that — under the uniform hash of data ids — each
//      switch owns an equal share of the space (Section IV-B). The
//      GRED-NoCVT variant of the evaluation skips this step.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "geometry/cvt.hpp"
#include "geometry/point.hpp"
#include "geometry/site_grid.hpp"
#include "graph/shortest_path.hpp"
#include "topology/edge_network.hpp"

namespace gred::core {

/// Which algorithm computes the raw switch coordinates from network
/// distances (before normalization and C-regulation).
enum class EmbeddingAlgorithm {
  kMPosition,  ///< classical MDS (the paper's choice)
  kVivaldi,    ///< decentralized spring relaxation (related-work
               ///< alternative; see core/vivaldi.hpp)
};

struct VirtualSpaceOptions {
  /// Embedding algorithm for the M-position step.
  EmbeddingAlgorithm embedding = EmbeddingAlgorithm::kMPosition;
  /// C-regulation iterations T (the paper runs T = 50 by default and
  /// sweeps T in Fig. 11(c)); 0 or use_cvt = false gives GRED-NoCVT.
  std::size_t cvt_iterations = 50;
  /// Sample points per C-regulation iteration (paper: 1000).
  std::size_t cvt_samples = 1000;
  bool use_cvt = true;
  /// Early-stop CVT energy threshold (0 = run all T iterations).
  double cvt_energy_threshold = 0.0;
  /// Margin kept between the embedded switches and the unit-square
  /// border after normalization.
  double margin = 0.05;
  /// Deterministic seed for the C-regulation sampling.
  std::uint64_t seed = 0x47524544u;  // "GRED"

  /// When true, the M-position embedding (and the relay-path choice)
  /// uses latency-weighted shortest paths instead of hop counts — the
  /// natural reading of the paper's "network distance" on topologies
  /// with heterogeneous link latencies.
  bool weighted_embedding = false;

  /// Optional demand density rho(p) over the unit square for
  /// C-regulation (default: uniform). With a popularity-weighted
  /// density, CVT equalizes each switch's share of *expected demand*
  /// instead of area, shrinking the cells around hotspot regions so
  /// more switches share the hot keys (ROADMAP "Hotspot traffic").
  /// Must be bounded above by cvt_density_bound (rejection sampling).
  std::function<double(const geometry::Point2D&)> cvt_density;
  double cvt_density_bound = 1.0;
};

class VirtualSpace {
 public:
  /// An empty space; fill via build().
  VirtualSpace() = default;

  /// Builds positions for `participants` (switch ids that join the DT)
  /// from the hop distances in `apsp` (computed over the full physical
  /// graph). Fails when participants is empty or any pair is
  /// disconnected.
  static Result<VirtualSpace> build(
      const std::vector<topology::SwitchId>& participants,
      const graph::ApspResult& apsp, const VirtualSpaceOptions& options);

  /// Restores a space from explicit positions (snapshot load): no MDS
  /// or CVT runs; the scale is re-estimated from `apsp` so later joins
  /// fit consistently. Fails on size mismatch, duplicate positions, or
  /// coordinates outside [0, 1].
  static Result<VirtualSpace> from_positions(
      std::vector<topology::SwitchId> participants,
      std::vector<geometry::Point2D> positions,
      const graph::ApspResult& apsp);

  const std::vector<topology::SwitchId>& participants() const {
    return participants_;
  }
  /// Final positions (CVT-refined when enabled), aligned with
  /// participants().
  const std::vector<geometry::Point2D>& positions() const {
    return positions_;
  }
  /// Positions after M-position + normalization, before C-regulation.
  const std::vector<geometry::Point2D>& mds_positions() const {
    return mds_positions_;
  }

  /// Index of `sw` in participants(); kNoIndex when not a participant.
  static constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);
  std::size_t index_of(topology::SwitchId sw) const;

  /// Kruskal stress of the normalized M-position embedding against the
  /// hop distances (diagnostics / ablation A2).
  double embedding_stress() const { return stress_; }

  /// Discrete CVT energy after each executed C-regulation iteration.
  const std::vector<double>& cvt_energy_history() const {
    return energy_history_;
  }

  /// Virtual-space units per physical hop of the normalized embedding
  /// (used to place newly joining switches consistently).
  double scale() const { return scale_; }

  /// The participant whose position is nearest to `p` (paper
  /// tie-break). Answered from a uniform-grid index over the positions
  /// — expected O(1) per query instead of the O(n) scan, with exactly
  /// the same answers — since every packet's home-switch lookup lands
  /// here.
  topology::SwitchId nearest_participant(const geometry::Point2D& p) const;

  /// The k participants nearest to `p`, ascending by the same total
  /// order (element 0 == nearest_participant(p)). Fewer than k only
  /// when the space has fewer participants. Replica placement derives
  /// the fallback homes of a data position from this list.
  std::vector<topology::SwitchId> nearest_participants(
      const geometry::Point2D& p, std::size_t k) const;

  /// Appends a participant at an explicit position (node join,
  /// Section VI). The caller computes the position (Controller does a
  /// local stress fit).
  void add_participant(topology::SwitchId sw, const geometry::Point2D& p);

  /// Removes a participant (node leave). No-op when absent.
  void remove_participant(topology::SwitchId sw);

  /// Warm-started C-regulation: re-runs Lloyd iterations seeded from
  /// the CURRENT positions (which a dynamics event perturbed only
  /// locally) and stops once the energy moved by less than
  /// `energy_delta_tolerance` of itself between iterations. Returns
  /// the number of iterations executed. Cold-starting after every
  /// event would redo the full T iterations; the warm start typically
  /// converges in a handful.
  std::size_t refine_cvt(const VirtualSpaceOptions& options,
                         double energy_delta_tolerance);

 private:
  /// Re-indexes positions_ into grid_; call after every mutation.
  void rebuild_grid();

  std::vector<topology::SwitchId> participants_;
  std::vector<geometry::Point2D> positions_;
  std::vector<geometry::Point2D> mds_positions_;
  geometry::SiteGrid grid_;
  std::vector<double> energy_history_;
  double stress_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace gred::core
