#include "shard/sharded_data_plane.hpp"

#include <chrono>
#include <cmath>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/shard_partition.hpp"
#include "obs/metrics.hpp"
#include "sden/plan_walk.hpp"
#include "sden/route_errors.hpp"

namespace gred::shard {

namespace {

/// Slots per cross-shard ring. Small enough that S^2 rings stay cheap,
/// large enough that a spill (overflow vector) is a burst event, not
/// the steady state — the drain side retires whole batches per pass.
constexpr std::size_t kRingCapacity = 1024;
/// Continuations popped per ring visit (one head retire per batch).
constexpr std::size_t kDrainBatch = 64;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::size_t default_shard_count() {
  return env_parallelism_or_hardware("GRED_SHARDS");
}

ShardedDataPlane::ShardedDataPlane(sden::SdenNetwork& net, std::size_t shards)
    : net_(net) {
  std::size_t s = shards == 0 ? default_shard_count() : shards;
  const std::size_t n = net_.switch_count();
  if (n > 0 && s > n) s = n;
  if (s < 1) s = 1;

  shards_.reserve(s);
  for (std::size_t i = 0; i < s; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  rings_.resize(s * s);
  for (std::size_t from = 0; from < s; ++from) {
    for (std::size_t to = 0; to < s; ++to) {
      if (from == to) continue;
      rings_[from * s + to] = std::make_unique<SpscRing<Handoff>>(kRingCapacity);
    }
  }
  recompile();

  threads_.reserve(s > 0 ? s - 1 : 0);
  for (std::size_t me = 1; me < s; ++me) {
    threads_.emplace_back([this, me] { worker_main(me); });
  }
}

ShardedDataPlane::~ShardedDataPlane() {
  {
    MutexLock lk(mu_);
    exiting_ = true;
  }
  round_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ShardedDataPlane::build_partition() {
  const std::size_t n = net_.switch_count();
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  std::vector<unsigned char> valid(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sden::Switch& sw = net_.const_switch_at(i);
    xs[i] = sw.position().x;
    ys[i] = sw.position().y;
    // Inert switches (torn down by dynamics) carry stale positions;
    // sorting them after the DT participants keeps the curve runs
    // meaningful while still giving every switch an owner.
    valid[i] = sw.dt_participant() ? 1 : 0;
  }
  owner_ = partition_by_position(xs.data(), ys.data(), valid.data(), n,
                                 shards_.size());
  for (const std::unique_ptr<Shard>& sh : shards_) sh->owned.clear();
  for (std::size_t i = 0; i < n; ++i) {
    shards_[owner_[i]]->owned.push_back(static_cast<std::uint32_t>(i));
  }
}

void ShardedDataPlane::recompile() {
  build_partition();
  for (const std::unique_ptr<Shard>& sh : shards_) {
    net_.compile_plan_subset(sh->plan, sh->owned.data(), sh->owned.size());
  }
}

void ShardedDataPlane::patch_plans(const std::uint32_t* touched,
                                   std::size_t count) {
  // Switches that joined since the partition was built go to the
  // least-loaded shard (ties to the lowest index). New ids are the
  // largest, so push_back keeps each shard's owned list ascending.
  const std::size_t n = net_.switch_count();
  for (std::size_t i = owner_.size(); i < n; ++i) {
    std::size_t best = 0;
    for (std::size_t s = 1; s < shards_.size(); ++s) {
      if (shards_[s]->owned.size() < shards_[best]->owned.size()) best = s;
    }
    owner_.push_back(static_cast<std::uint32_t>(best));
    shards_[best]->owned.push_back(static_cast<std::uint32_t>(i));
  }

  std::vector<std::uint32_t> mine;
  sden::PlanPatch patch;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    mine.clear();
    for (std::size_t j = 0; j < count; ++j) {
      if (touched[j] < n && owner_[touched[j]] == s) {
        mine.push_back(touched[j]);
      }
    }
    // Even with no touched switches of its own, a shard's offset table
    // must cover new switch ids; prepare resizes it.
    if (net_.prepare_plan_patch(sh.plan, mine.data(), mine.size(), patch)) {
      net_.commit_plan_patch(sh.plan, patch);
    } else {
      net_.compile_plan_subset(sh.plan, sh.owned.data(), sh.owned.size());
    }
  }
}

void ShardedDataPlane::setup_round(const sden::Packet* pkts,
                                   const sden::SwitchId* ingresses,
                                   std::size_t count,
                                   sden::RouteResult* results,
                                   bool open_loop) {
  pkts_ = pkts;
  ingresses_ = ingresses;
  results_ = results;
  count_ = count;
  open_loop_ = open_loop;

  const sden::FaultState* const fs = net_.fault_state();
  round_faults_ = (fs != nullptr && fs->any()) ? fs : nullptr;

  lane_pkts_.resize(count);
  steps_left_.resize(count);
  if (round_faults_ != nullptr) salts_.resize(count);
  if (open_loop) arrival_s_.resize(count);

  const std::size_t s = shards_.size();
  for (const std::unique_ptr<Shard>& shp : shards_) {
    Shard& sh = *shp;
    sh.initial.clear();
    sh.local_hops = 0;
    sh.handoffs_out = 0;
    sh.spills = 0;
    // relaxed: reset happens before the round's threads are released by
    // run_round()'s lock, which orders it.
    sh.completed.store(0, std::memory_order_relaxed);
    sh.overflow.resize(s);
    for (OverflowBuffer<Handoff>& v : sh.overflow) {
      // Worst case every in-flight packet spills to one destination;
      // sizing for `count` live items (plus the compaction prefix, see
      // common/overflow_buffer.hpp) keeps the round allocation-free.
      v.reset(count, kRingCapacity);
    }
    sh.drain.resize(kDrainBatch);
  }

  const std::uint32_t max_hops =
      static_cast<std::uint32_t>(net_.max_route_hops());
  std::size_t started = 0;
  for (std::size_t i = 0; i < count; ++i) {
    sden::RouteResult& res = results_[i];
    res.reset();
    if (ingresses[i] >= net_.switch_count()) {
      // Same terminal status as SdenNetwork::route, decided before any
      // shard runs; the packet never enters the network.
      res.status = sden::route_errors::bad_ingress();
      if (open_loop && latencies_s_ != nullptr) latencies_s_[i] = -1.0;
      continue;
    }
    res.switch_path.reserve(net_.path_reserve_hint());
    lane_pkts_[i] = pkts_[i];
    steps_left_[i] = max_hops;
    if (round_faults_ != nullptr) {
      salts_[i] = sden::fault_packet_salt(lane_pkts_[i]);
    }
    shards_[owner_[ingresses[i]]]->initial.push_back(
        static_cast<std::uint32_t>(i));
    ++started;
  }
  round_target_ = started;
}

void ShardedDataPlane::replay(const sden::Packet* pkts,
                              const sden::SwitchId* ingresses,
                              std::size_t count,
                              sden::RouteResult* results) {
  latencies_s_ = nullptr;
  setup_round(pkts, ingresses, count, results, /*open_loop=*/false);
  run_round();
}

LoadResult ShardedDataPlane::sustained_load(
    const sden::Packet* pkts, const sden::SwitchId* ingresses,
    std::size_t count, sden::RouteResult* results, double rate_pps,
    bool poisson, std::uint64_t seed, double* latencies_s) {
  latencies_s_ = latencies_s;
  setup_round(pkts, ingresses, count, results, /*open_loop=*/true);

  // Each shard's RNG block draws its own arrival process at the
  // shard's share of the aggregate rate; superposed Poisson streams
  // are again Poisson at rate_pps. Scheduling happens here, before
  // any shard runs, so the round itself only pops events.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& sh = *shards_[s];
    sh.events = sden::EventQueue();
    const std::size_t m = sh.initial.size();
    if (m == 0 || count == 0) continue;
    const double rate_shard =
        rate_pps * static_cast<double>(m) / static_cast<double>(count);
    Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)));
    sh.events.reserve(m);
    double t = 0.0;
    for (const std::uint32_t pi : sh.initial) {
      t += poisson ? -std::log1p(-rng.next_double()) / rate_shard
                   : 1.0 / rate_shard;
      arrival_s_[pi] = t;
      sh.events.schedule_at(t, [this, s, pi] { start_packet(s, pi); });
    }
  }

  // Epoch slightly in the future so every shard is in its poll loop
  // before the first arrival is due.
  t0_s_ = now_s() + 1e-3;
  run_round();
  const double duration = now_s() - t0_s_;

  LoadResult out;
  out.offered_pps = rate_pps;
  out.completed = round_target_;
  out.duration_s = duration;
  out.achieved_pps =
      duration > 0 ? static_cast<double>(round_target_) / duration : 0.0;
  return out;
}

void ShardedDataPlane::run_round() {
  if (shards_.size() == 1) {
    run_shard(0);
    return;
  }
  {
    MutexLock lk(mu_);
    workers_running_ = shards_.size() - 1;
    ++round_seq_;
  }
  round_cv_.notify_all();
  run_shard(0);
  MutexLock lk(mu_);
  // Explicit wait loops (common/mutex.hpp): the guarded reads sit
  // inside the locked scope where -Wthread-safety can check them.
  while (workers_running_ != 0) done_cv_.wait(lk);
}

void ShardedDataPlane::worker_main(std::size_t me) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      MutexLock lk(mu_);
      while (!exiting_ && round_seq_ == seen) round_cv_.wait(lk);
      if (exiting_) return;
      seen = round_seq_;
    }
    run_shard(me);
    {
      MutexLock lk(mu_);
      --workers_running_;
    }
    done_cv_.notify_one();
  }
}

void ShardedDataPlane::run_shard(std::size_t me) {
  // Histograms recorded from this thread land in the shard's own slot.
  obs::pin_this_thread_shard(me);
  Shard& sh = *shards_[me];
  const std::size_t s = shards_.size();
  std::size_t next_initial = 0;

  for (;;) {
    bool any = false;

    if (open_loop_) {
      // Fire every arrival whose scheduled instant has passed,
      // regardless of how many packets are still in flight.
      const double now = now_s() - t0_s_;
      while (sh.events.next_time() <= now) {
        sh.events.step();
        any = true;
      }
    } else {
      while (next_initial < sh.initial.size()) {
        start_packet(me, sh.initial[next_initial++]);
        any = true;
      }
    }

    if (s > 1) {
      any |= flush_overflow(me);
      for (std::size_t src = 0; src < s; ++src) {
        if (src == me) continue;
        SpscRing<Handoff>& in = ring(src, me);
        for (;;) {
          const std::size_t n = in.pop_batch(sh.drain.data(), kDrainBatch);
          if (n == 0) break;
          any = true;
          for (std::size_t i = 0; i < n; ++i) {
            walk(me, sh.drain[i].pkt, sh.drain[i].cur);
          }
        }
      }
    }

    if (!any) {
      if (all_done()) return;
      // Oversubscribed cores (the CI container) must let the shard
      // that actually holds work run.
      std::this_thread::yield();
    }
  }
}

void ShardedDataPlane::start_packet(std::size_t me, std::uint32_t pi) {
  sden::RouteResult& res = results_[pi];
  const sden::SwitchId ingress = ingresses_[pi];
  if (round_faults_ != nullptr && round_faults_->switch_is_down(ingress)) {
    res.fail(sden::route_errors::ingress_down(ingress));
    complete(me, pi);
    return;
  }
  const std::uint32_t cur = static_cast<std::uint32_t>(ingress);
  res.switch_path.push_back(cur);
  walk(me, pi, cur);
}

void ShardedDataPlane::walk(std::size_t me, std::uint32_t pi,
                            std::uint32_t cur) {
  Shard& sh = *shards_[me];
  const sden::RoutePlan& plan = sh.plan;
  sden::Packet& pkt = lane_pkts_[pi];
  sden::RouteResult& res = results_[pi];

  for (;;) {
    if (steps_left_[pi] == 0) {
      res.fail(sden::route_errors::hop_bound());
      complete(me, pi);
      return;
    }
    --steps_left_[pi];

    const sden::PlanStep st = sden::plan_step(plan, cur, pkt);
    switch (st.kind) {
      case sden::PlanStep::Kind::kHop: {
        if (round_faults_ != nullptr) {
          Status hop = sden::route_errors::check_traversal(
              *round_faults_, cur, st.next, salts_[pi]);
          if (!hop.ok()) {
            res.fail(std::move(hop));
            complete(me, pi);
            return;
          }
        }
        res.path_cost += st.weight;
        cur = st.next;
        res.switch_path.push_back(cur);
        const std::uint32_t own = owner_[cur];
        if (own != me) {
          ++sh.handoffs_out;
          handoff(me, own, Handoff{pi, cur});
          return;  // lane ownership moves with the continuation
        }
        ++sh.local_hops;
        break;
      }
      case sden::PlanStep::Kind::kDeliver: {
        const double* const base = plan.hot.data() + plan.offset[cur];
        Status delivered = net_.deliver_compiled(plan, base, pkt, cur, res);
        if (!delivered.ok()) res.fail(std::move(delivered));
        complete(me, pi);
        return;
      }
      case sden::PlanStep::Kind::kNoRelay:
        res.fail(sden::route_errors::no_relay(cur));
        complete(me, pi);
        return;
      case sden::PlanStep::Kind::kNonDtTransit:
        res.fail(sden::route_errors::non_dt_transit(cur));
        complete(me, pi);
        return;
      case sden::PlanStep::Kind::kMissingLink:
        res.fail(sden::route_errors::missing_link(cur, st.next));
        complete(me, pi);
        return;
    }
  }
}

void ShardedDataPlane::complete(std::size_t me, std::uint32_t pi) {
  if (open_loop_ && latencies_s_ != nullptr) {
    latencies_s_[pi] = (now_s() - t0_s_) - arrival_s_[pi];
  }
  // relaxed: a monotonic completion tally; all_done only needs each
  // counter's own modification order (and result-lane writes are
  // ordered by the handoff rings, not by this counter).
  shards_[me]->completed.fetch_add(1, std::memory_order_relaxed);
}

void ShardedDataPlane::handoff(std::size_t me, std::uint32_t dest,
                               Handoff h) {
  if (!ring(me, dest).push(h)) {
    // Never block, never drop: park in the fixed-capacity overflow
    // buffer and retry at the top of the poll loop. Cross-packet
    // reordering against ring occupants is harmless — lanes are
    // independent.
    Shard& sh = *shards_[me];
    sh.overflow[dest].push(h);
    ++sh.spills;
  }
}

bool ShardedDataPlane::flush_overflow(std::size_t me) {
  Shard& sh = *shards_[me];
  bool any = false;
  for (std::size_t dest = 0; dest < sh.overflow.size(); ++dest) {
    OverflowBuffer<Handoff>& v = sh.overflow[dest];
    if (v.empty()) continue;
    const std::size_t pushed =
        ring(me, dest).push_batch(v.data(), v.pending());
    v.consume(pushed);
    any |= pushed != 0;
  }
  return any;
}

bool ShardedDataPlane::all_done() const {
  std::size_t done = 0;
  for (const std::unique_ptr<Shard>& sh : shards_) {
    // relaxed: see complete().
    done += sh->completed.load(std::memory_order_relaxed);
  }
  return done >= round_target_;
}

RoundStats ShardedDataPlane::last_round_stats() const {
  RoundStats out;
  out.completed_per_shard.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& sh : shards_) {
    out.local_hops += sh->local_hops;
    out.cross_handoffs += sh->handoffs_out;
    out.overflow_spills += sh->spills;
    // relaxed: read after the round joined; the join ordered the writes.
    out.completed_per_shard.push_back(
        sh->completed.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace gred::shard

// Explicit instantiation: the runtime drains rings with pop_batch, so
// the single-item pop() would otherwise never be instantiated in any
// src/ TU and the hot-path closure over its GRED_HOT_PATH marker
// (tools/hotpath_check.py) would be vacuous. Instantiating the whole
// class keeps every ring member in the analyzed call graph.
template class gred::SpscRing<gred::shard::Handoff>;
