// Shard-per-core data plane. Partitions the network's switches across
// N shards as contiguous ranges of a Morton (Z-order) traversal of the
// virtual positions, so greedy next-hops — which move between
// virtually close switches — usually stay inside the owning shard.
// Each shard exclusively owns its slice of the compiled forwarding
// state (a RoutePlan subset holding only its switches' regions,
// relays, and server slices), its event queue, its RNG block for the
// open-loop arrival process, and its gred::obs metric slot: the
// shard-local hot path takes no locks and touches no shared atomics.
// A hop that crosses a shard boundary travels as an 8-byte packet
// continuation through a fixed-capacity SPSC ring (one per ordered
// shard pair, cache-line-separated indices, batched drain); a full
// ring spills into a pre-reserved per-destination overflow vector, so
// a push can never deadlock or allocate mid-round.
//
// Results are bit-identical to SdenNetwork::route by construction:
// both walks execute the same plan_step (sden/plan_walk.hpp) over
// regions compiled by the same SdenNetwork::compile_plan_subset, and
// per-packet lane state (scratch packet, RouteResult, remaining hop
// budget) has exactly one writer at a time — ownership moves between
// shards through the ring's release/acquire pair. The four-way
// differential in tests/shard_test.cpp holds this runtime, the
// compiled fast path, the live pipeline, and the seed-faithful walk
// mutually identical, statuses included.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/overflow_buffer.hpp"
#include "common/spsc_ring.hpp"
#include "common/thread_annotations.hpp"
#include "sden/event_queue.hpp"
#include "sden/network.hpp"

namespace gred::shard {

/// Compact packet continuation handed between shards: which in-flight
/// packet resumes, and at which (destination-shard-owned) switch.
struct Handoff {
  std::uint32_t pkt = 0;
  std::uint32_t cur = 0;
};

/// Per-round counters, aggregated over all shards after a round ends.
struct RoundStats {
  std::size_t local_hops = 0;       ///< hops that stayed shard-local
  std::size_t cross_handoffs = 0;   ///< continuations pushed to a peer
  std::size_t overflow_spills = 0;  ///< handoffs that found a ring full
  /// Packets completed by each shard (delivery or classified drop).
  std::vector<std::size_t> completed_per_shard;
};

/// Outcome of one open-loop sustained-load round.
struct LoadResult {
  double offered_pps = 0;   ///< configured aggregate arrival rate
  double achieved_pps = 0;  ///< completions / wall-clock duration
  double duration_s = 0;    ///< first scheduled arrival to last completion
  std::size_t completed = 0;
};

/// GRED_SHARDS (validated like GRED_THREADS), falling back to the
/// hardware concurrency when unset or rejected.
std::size_t default_shard_count();

class ShardedDataPlane {
 public:
  /// Partitions `net`'s switches across `shards` shards (0 = use
  /// default_shard_count(); always clamped to the switch count) and
  /// compiles each shard's plan subset from the current flow tables.
  /// Spawns shards-1 persistent worker threads; the calling thread
  /// drives shard 0 during rounds. `net` must outlive this object and
  /// must not be mutated while a round is running.
  explicit ShardedDataPlane(sden::SdenNetwork& net, std::size_t shards = 0);
  ~ShardedDataPlane();

  ShardedDataPlane(const ShardedDataPlane&) = delete;
  ShardedDataPlane& operator=(const ShardedDataPlane&) = delete;

  std::size_t shard_count() const { return shards_.size(); }
  /// Owning shard of each switch (the Morton-partition map).
  const std::vector<std::uint32_t>& owners() const { return owner_; }

  /// Re-derives the partition and recompiles every shard's plan subset
  /// from the network's current flow tables. Call after control-plane
  /// changes (installs, dynamics); must not overlap a running round.
  void recompile();

  /// Incremental counterpart of recompile() for the churn path: keeps
  /// the existing Morton partition fixed (so plan regions stay put),
  /// assigns any switches added since the last (re)compile to the
  /// least-loaded shard, and patches only the `count` switches in
  /// `touched` (sorted, unique) into their owning shards' plans via
  /// SdenNetwork::prepare/commit_plan_patch, recompiling a shard from
  /// scratch only when its patch is declined (compaction due). Torn
  /// down switches keep their owner and stay patched in place as inert
  /// transit regions. Must not overlap a running round.
  void patch_plans(const std::uint32_t* touched, std::size_t count);

  /// Routes `count` packets, writing results[i] for pkts[i] injected at
  /// ingresses[i] — each bit-identical to SdenNetwork::route on the
  /// same input. Closed-loop: every packet is started as soon as its
  /// ingress shard runs. Caller-owned arrays; results are reset here
  /// (capacity kept, so a reused results array makes repeat rounds of
  /// the same size allocation-free after the first). Safe for
  /// retrievals/removals; placements mutate server storage and must not
  /// target the same server from two shards.
  void replay(const sden::Packet* pkts, const sden::SwitchId* ingresses,
              std::size_t count, sden::RouteResult* results);

  /// Open-loop sustained load: each shard's RNG block draws arrival
  /// times for the packets whose ingress it owns — Poisson
  /// (exponential gaps) or fixed-rate, at the shard's share of
  /// `rate_pps` — schedules them on its own event queue, and injects
  /// each packet at its scheduled instant regardless of completions
  /// (an open-loop driver, so queueing delay is visible instead of
  /// being absorbed by the generator). latencies_s[i] (when non-null)
  /// receives completion wall-clock minus scheduled arrival for packet
  /// i, or -1 when it never entered the network. Results are
  /// bit-identical to replay() on the same input.
  LoadResult sustained_load(const sden::Packet* pkts,
                            const sden::SwitchId* ingresses,
                            std::size_t count, sden::RouteResult* results,
                            double rate_pps, bool poisson,
                            std::uint64_t seed, double* latencies_s);

  /// Counters from the most recently finished round.
  RoundStats last_round_stats() const;

 private:
  struct alignas(64) Shard {
    // Compiled per-partition state (recompile()).
    sden::RoutePlan plan;
    std::vector<std::uint32_t> owned;  ///< owned switch ids, ascending

    // Round-local state, touched only by the owning shard's thread.
    std::vector<std::uint32_t> initial;  ///< packet indices ingressing here
    sden::EventQueue events;             ///< open-loop arrival schedule
    /// [dest] ring spill. Fixed-capacity with bounded compaction: a
    /// plain vector spill here once reallocated mid-round under
    /// sustained partial drains (see common/overflow_buffer.hpp).
    std::vector<OverflowBuffer<Handoff>> overflow;
    std::vector<Handoff> drain;  ///< batched ring-pop buffer
    std::size_t local_hops = 0;
    std::size_t handoffs_out = 0;
    std::size_t spills = 0;

    // Read by every shard for termination detection; padded so the
    // frequent increments don't share a line with the plan state.
    alignas(64) std::atomic<std::size_t> completed{0};
  };

  SpscRing<Handoff>& ring(std::size_t from, std::size_t to) {
    return *rings_[from * shards_.size() + to];
  }

  void build_partition();
  void setup_round(const sden::Packet* pkts, const sden::SwitchId* ingresses,
                   std::size_t count, sden::RouteResult* results,
                   bool open_loop);
  void run_round() GRED_EXCLUDES(mu_);
  void worker_main(std::size_t me) GRED_EXCLUDES(mu_);
  void run_shard(std::size_t me);
  GRED_HOT_PATH void start_packet(std::size_t me, std::uint32_t pi);
  GRED_HOT_PATH void walk(std::size_t me, std::uint32_t pi,
                          std::uint32_t cur);
  GRED_HOT_PATH void complete(std::size_t me, std::uint32_t pi);
  GRED_HOT_PATH void handoff(std::size_t me, std::uint32_t dest, Handoff h);
  GRED_HOT_PATH bool flush_overflow(std::size_t me);
  bool all_done() const;

  sden::SdenNetwork& net_;
  std::vector<std::uint32_t> owner_;  ///< switch id -> shard
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SpscRing<Handoff>>> rings_;

  // Round inputs and per-packet lane state. A lane (scratch packet,
  // result, hop budget, latency slot) is written only by the shard
  // currently holding the packet; the ring handoff's release/acquire
  // pair orders the writes for the next holder.
  const sden::Packet* pkts_ = nullptr;
  const sden::SwitchId* ingresses_ = nullptr;
  sden::RouteResult* results_ = nullptr;
  std::size_t count_ = 0;
  std::vector<sden::Packet> lane_pkts_;
  std::vector<std::uint32_t> steps_left_;
  std::vector<std::uint64_t> salts_;
  std::vector<double> arrival_s_;
  double* latencies_s_ = nullptr;
  const sden::FaultState* round_faults_ = nullptr;
  std::size_t round_target_ = 0;  ///< packets the shards must complete
  bool open_loop_ = false;
  double t0_s_ = 0;  ///< wall-clock epoch of the open-loop schedule

  // Round protocol for the persistent workers (none when shards == 1).
  gred::Mutex mu_;
  gred::CondVar round_cv_;
  gred::CondVar done_cv_;
  std::uint64_t round_seq_ GRED_GUARDED_BY(mu_) = 0;
  std::size_t workers_running_ GRED_GUARDED_BY(mu_) = 0;
  bool exiting_ GRED_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace gred::shard
