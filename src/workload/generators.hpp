// Workload generators: reproducible streams of data identifiers and
// access patterns for tests, benches, and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/zipf.hpp"

namespace gred::workload {

/// One operation of a generated trace.
struct Op {
  enum class Kind { kPlace, kRetrieve };
  Kind kind = Kind::kPlace;
  std::string data_id;
  std::size_t access_switch = 0;  ///< ingress, in [0, switches)
  double at_ms = 0.0;             ///< injection time
};

/// Deterministic identifier universe: "<prefix>/<k>".
std::vector<std::string> identifier_universe(const std::string& prefix,
                                             std::size_t count);

struct TraceOptions {
  std::size_t switches = 1;        ///< ingress switches available
  std::size_t universe = 1000;     ///< distinct data identifiers
  std::string prefix = "obj";
  double zipf_exponent = 0.0;      ///< 0 = uniform popularity
  double place_fraction = 0.1;     ///< fraction of ops that are placements
  double mean_interarrival_ms = 1.0;
};

/// Generates `ops` operations. Placements write ids round-robin so
/// every retrieved id has been placed earlier in the trace; retrievals
/// sample ids by popularity. Arrival times are exponential
/// (Poisson process).
std::vector<Op> generate_trace(std::size_t ops, const TraceOptions& options,
                               Rng& rng);

}  // namespace gred::workload
