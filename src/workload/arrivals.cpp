#include "workload/arrivals.hpp"

#include <cmath>
#include <limits>

#include "check/check.hpp"

namespace gred::workload {

std::vector<double> poisson_arrivals(std::size_t count, double rate_per_ms,
                                     Rng& rng) {
  // Hard validation, not assert: a Release-mode rate <= 0 (or NaN)
  // silently yields negative/NaN/inf timestamps that poison every
  // delay experiment consuming the stream.
  if (!std::isfinite(rate_per_ms) || rate_per_ms <= 0.0) {
    check::invariant_failure(__FILE__, __LINE__,
                             "rate_per_ms finite && rate_per_ms > 0",
                             "poisson_arrivals requires a positive rate");
  }
  std::vector<double> times;
  times.reserve(count);
  double now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    now += -std::log(1.0 - rng.next_double()) / rate_per_ms;
    times.push_back(now);
  }
  return times;
}

std::vector<double> uniform_arrivals(std::size_t count, double spacing_ms) {
  if (!std::isfinite(spacing_ms) || spacing_ms < 0.0) {
    check::invariant_failure(__FILE__, __LINE__,
                             "spacing_ms finite && spacing_ms >= 0",
                             "uniform_arrivals requires non-negative spacing");
  }
  std::vector<double> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    times.push_back(static_cast<double>(i) * spacing_ms);
  }
  return times;
}

std::vector<double> bursty_arrivals(std::size_t batches,
                                    std::size_t per_batch, double gap_ms) {
  if (!std::isfinite(gap_ms) || gap_ms < 0.0) {
    check::invariant_failure(__FILE__, __LINE__,
                             "gap_ms finite && gap_ms >= 0",
                             "bursty_arrivals requires a non-negative gap");
  }
  // Overflow-checked total before reserve: hostile batches * per_batch
  // wraps std::size_t and turns the reserve into either a tiny buffer
  // or an OOM bomb (same class as the parse_snapshot fix).
  if (per_batch != 0 &&
      batches > std::numeric_limits<std::size_t>::max() / per_batch) {
    check::invariant_failure(__FILE__, __LINE__,
                             "batches * per_batch fits std::size_t",
                             "bursty_arrivals count overflows");
  }
  std::vector<double> times;
  times.reserve(batches * per_batch);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < per_batch; ++i) {
      times.push_back(static_cast<double>(b) * gap_ms);
    }
  }
  return times;
}

}  // namespace gred::workload
