#include "workload/arrivals.hpp"

#include <cassert>
#include <cmath>

namespace gred::workload {

std::vector<double> poisson_arrivals(std::size_t count, double rate_per_ms,
                                     Rng& rng) {
  assert(rate_per_ms > 0.0);
  std::vector<double> times;
  times.reserve(count);
  double now = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    now += -std::log(1.0 - rng.next_double()) / rate_per_ms;
    times.push_back(now);
  }
  return times;
}

std::vector<double> uniform_arrivals(std::size_t count, double spacing_ms) {
  std::vector<double> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    times.push_back(static_cast<double>(i) * spacing_ms);
  }
  return times;
}

std::vector<double> bursty_arrivals(std::size_t batches,
                                    std::size_t per_batch, double gap_ms) {
  std::vector<double> times;
  times.reserve(batches * per_batch);
  for (std::size_t b = 0; b < batches; ++b) {
    for (std::size_t i = 0; i < per_batch; ++i) {
      times.push_back(static_cast<double>(b) * gap_ms);
    }
  }
  return times;
}

}  // namespace gred::workload
