// Arrival-process helpers for the delay experiments.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gred::workload {

/// `count` Poisson arrival times with the given rate (events/ms),
/// starting at t = 0, strictly increasing.
std::vector<double> poisson_arrivals(std::size_t count, double rate_per_ms,
                                     Rng& rng);

/// `count` evenly spaced arrivals.
std::vector<double> uniform_arrivals(std::size_t count, double spacing_ms);

/// A batched ("thundering herd") arrival pattern: `batches` groups of
/// `per_batch` simultaneous arrivals, `gap_ms` apart.
std::vector<double> bursty_arrivals(std::size_t batches,
                                    std::size_t per_batch, double gap_ms);

}  // namespace gred::workload
