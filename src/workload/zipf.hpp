// Zipf-distributed sampling. Edge workloads are heavily skewed (a few
// hot objects dominate retrievals); the evaluation's uniform hashing
// balances *placement*, while Zipf retrieval traffic stresses the
// replication and range-extension machinery.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace gred::workload {

/// Samples ranks 0..n-1 with P(k) proportional to 1/(k+1)^s.
/// Precomputes the CDF once; sampling is a binary search (O(log n)).
class ZipfSampler {
 public:
  /// n >= 1; s >= 0 (s == 0 degenerates to uniform).
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Theoretical probability of rank k.
  double probability(std::size_t k) const;

 private:
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == 1
  double s_;
};

}  // namespace gred::workload
