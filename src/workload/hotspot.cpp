#include "workload/hotspot.hpp"

#include <cmath>

#include "check/check.hpp"
#include "crypto/data_key.hpp"

namespace gred::workload {
namespace {

bool unit_probability(double p) { return std::isfinite(p) && p >= 0.0 && p <= 1.0; }

}  // namespace

HotspotWorkload::HotspotWorkload(HotspotOptions options,
                                 std::vector<geometry::Point2D> positions)
    : options_(std::move(options)),
      switch_positions_(std::move(positions)),
      // Constructed for real below; ZipfSampler has no default state.
      global_zipf_(1, 0.0) {
  // Hard validation (src/check conventions): every failure mode here
  // is silent garbage in Release — empty Zipf universes, next_below(0),
  // or a zero rotation period that folds all time into region 0.
  if (options_.universe == 0 || options_.grid == 0 ||
      switch_positions_.empty()) {
    check::invariant_failure(__FILE__, __LINE__,
                             "universe >= 1 && grid >= 1 && switches >= 1",
                             "HotspotWorkload requires keys, regions, and "
                             "switch positions");
  }
  if (!unit_probability(options_.locality) ||
      !unit_probability(options_.ingress_locality)) {
    check::invariant_failure(__FILE__, __LINE__,
                             "locality, ingress_locality in [0, 1]",
                             "HotspotWorkload locality probabilities");
  }
  if (!std::isfinite(options_.diurnal_period_ms) ||
      options_.diurnal_period_ms <= 0.0 ||
      !std::isfinite(options_.mean_interarrival_ms) ||
      options_.mean_interarrival_ms <= 0.0) {
    check::invariant_failure(__FILE__, __LINE__,
                             "diurnal_period_ms > 0 && interarrival > 0",
                             "HotspotWorkload time parameters");
  }

  ids_ = identifier_universe(options_.prefix, options_.universe);
  global_zipf_ = ZipfSampler(options_.universe, options_.zipf_exponent);

  // Bucket keys by the region their hashed position falls in.
  const std::size_t regions = region_count();
  std::vector<std::vector<std::size_t>> buckets(regions);
  key_region_.resize(ids_.size());
  for (std::size_t k = 0; k < ids_.size(); ++k) {
    const crypto::SpacePoint p = crypto::DataKey(ids_[k]).position();
    const std::size_t cell = region_of({p.x, p.y});
    key_region_[k] = cell;
    buckets[cell].push_back(k);
  }

  // Occupied regions in index order; global ranks are assigned
  // region-by-region so the globally hottest keys share a region (the
  // "hot keys cluster spatially" affinity).
  region_slot_.assign(regions, kNoRegion);
  rank_to_key_.reserve(ids_.size());
  for (std::size_t cell = 0; cell < regions; ++cell) {
    if (buckets[cell].empty()) continue;
    region_slot_[cell] = occupied_.size();
    occupied_.push_back(cell);
    region_zipf_.emplace_back(buckets[cell].size(), options_.zipf_exponent);
    for (std::size_t k : buckets[cell]) rank_to_key_.push_back(k);
    region_keys_.push_back(std::move(buckets[cell]));
  }

  // Switches bucketed the same way for localized ingress.
  region_switches_.assign(regions, {});
  for (std::size_t s = 0; s < switch_positions_.size(); ++s) {
    region_switches_[region_of(switch_positions_[s])].push_back(s);
  }
}

std::size_t HotspotWorkload::region_of(const geometry::Point2D& p) const {
  const std::size_t g = options_.grid;
  const auto clamp_axis = [g](double v) {
    if (!(v > 0.0)) return std::size_t{0};  // also catches NaN
    const std::size_t cell =
        static_cast<std::size_t>(v * static_cast<double>(g));
    return cell >= g ? g - 1 : cell;
  };
  return clamp_axis(p.x) + g * clamp_axis(p.y);
}

std::size_t HotspotWorkload::active_region(double at_ms) const {
  const double periods = at_ms / options_.diurnal_period_ms;
  const std::size_t step =
      periods <= 0.0 ? 0 : static_cast<std::size_t>(periods);
  return occupied_[step % occupied_.size()];
}

std::vector<double> HotspotWorkload::region_demand() const {
  std::vector<double> demand(region_count(), 0.0);
  // Each occupied region is active for an equal share of event time;
  // the remaining (1 - locality) mass follows the global Zipf, whose
  // ranks are contiguous per region in rank_to_key_ order.
  const double active_share =
      options_.locality / static_cast<double>(occupied_.size());
  std::size_t rank = 0;
  for (std::size_t slot = 0; slot < occupied_.size(); ++slot) {
    double mass = active_share;
    for (std::size_t i = 0; i < region_keys_[slot].size(); ++i) {
      mass += (1.0 - options_.locality) * global_zipf_.probability(rank++);
    }
    demand[occupied_[slot]] = mass;
  }
  return demand;
}

std::size_t HotspotWorkload::sample_key(double at_ms, Rng& rng) const {
  if (rng.bernoulli(options_.locality)) {
    const std::size_t slot = region_slot_[active_region(at_ms)];
    return region_keys_[slot][region_zipf_[slot].sample(rng)];
  }
  return rank_to_key_[global_zipf_.sample(rng)];
}

std::size_t HotspotWorkload::sample_ingress(std::size_t key,
                                            Rng& rng) const {
  const std::vector<std::size_t>& local =
      region_switches_[key_region_[key]];
  if (!local.empty() && rng.bernoulli(options_.ingress_locality)) {
    return local[rng.next_below(local.size())];
  }
  return rng.next_below(switch_positions_.size());
}

std::vector<Op> HotspotWorkload::retrieval_trace(std::size_t ops,
                                                 Rng& rng) const {
  std::vector<Op> trace;
  trace.reserve(ops);
  double now = 0.0;
  for (std::size_t i = 0; i < ops; ++i) {
    now += -options_.mean_interarrival_ms *
           std::log(1.0 - rng.next_double());
    Op op;
    op.kind = Op::Kind::kRetrieve;
    op.at_ms = now;
    const std::size_t key = sample_key(now, rng);
    op.data_id = ids_[key];
    op.access_switch = sample_ingress(key, rng);
    trace.push_back(std::move(op));
  }
  return trace;
}

}  // namespace gred::workload
