// Skewed + spatially-localized retrieval workload (ROADMAP "Hotspot
// traffic"). Real edge demand is Zipfian over keys with spatial
// locality: a few hot objects dominate, the hot set clusters in one
// geographic region, and the busy region drifts over the day. The
// generator models all three on top of the existing trace machinery:
//
//   * Popularity: a Zipf(α) rank distribution over the identifier
//     universe (α = 0 degenerates to uniform).
//   * Affinity: the unit square is cut into a G×G grid of regions;
//     every identifier belongs to the region its hashed virtual
//     position falls in, and global popularity ranks are assigned
//     region-by-region, so the globally hottest keys cluster
//     spatially instead of spreading uniformly.
//   * Diurnal shift: one region is "active" at a time and receives a
//     `locality` fraction of the traffic (sampled by an in-region
//     Zipf); the active region rotates every `diurnal_period_ms` of
//     event time.
//
// Ingress switches are localized the same way: with probability
// `ingress_locality` a retrieval enters at a switch embedded in the
// key's own region (users near the data ask for it), otherwise at a
// uniformly random switch.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "workload/generators.hpp"
#include "workload/zipf.hpp"

namespace gred::workload {

struct HotspotOptions {
  std::size_t universe = 1000;      ///< distinct data identifiers
  std::string prefix = "hot";
  std::size_t grid = 4;             ///< G: regions are a G×G grid
  double zipf_exponent = 1.0;       ///< α for global and in-region ranks
  double locality = 0.7;            ///< P(op targets the active region)
  double ingress_locality = 0.7;    ///< P(ingress in the key's region)
  double diurnal_period_ms = 5000;  ///< active-region rotation period
  double mean_interarrival_ms = 1.0;
};

/// Deterministic hotspot workload over a fixed identifier universe and
/// a fixed set of switch virtual positions (index = switch id).
class HotspotWorkload {
 public:
  HotspotWorkload(HotspotOptions options,
                  std::vector<geometry::Point2D> switch_positions);

  const std::vector<std::string>& ids() const { return ids_; }
  const HotspotOptions& options() const { return options_; }

  /// Total regions (G×G); some may hold no keys.
  std::size_t region_count() const {
    return options_.grid * options_.grid;
  }
  /// Regions that actually hold at least one key.
  std::size_t occupied_region_count() const { return occupied_.size(); }

  /// Region index of a virtual-space point.
  std::size_t region_of(const geometry::Point2D& p) const;
  /// Region the k-th identifier's hashed position falls in.
  std::size_t key_region(std::size_t k) const { return key_region_[k]; }
  /// The hot region at event time `at_ms` (rotates over occupied
  /// regions every diurnal_period_ms).
  std::size_t active_region(double at_ms) const;

  /// Stationary demand share of each region (indexed by region, sums
  /// to 1 over occupied regions): the diurnal rotation's time average
  /// of the locality mass plus the region's share of the global Zipf
  /// mass. Feed this into VirtualSpaceOptions::cvt_density so
  /// C-regulation equalizes expected demand instead of area.
  std::vector<double> region_demand() const;

  /// Samples an identifier index for a retrieval at `at_ms`.
  std::size_t sample_key(double at_ms, Rng& rng) const;
  /// Samples an ingress switch for a retrieval of identifier `key`.
  std::size_t sample_ingress(std::size_t key, Rng& rng) const;

  /// `ops` retrievals with Poisson arrivals: key by popularity at the
  /// arrival time, ingress localized to the key's region. The caller
  /// places ids() beforehand.
  std::vector<Op> retrieval_trace(std::size_t ops, Rng& rng) const;

 private:
  HotspotOptions options_;
  std::vector<geometry::Point2D> switch_positions_;
  std::vector<std::string> ids_;
  std::vector<std::size_t> key_region_;   ///< per key: its region
  std::vector<std::size_t> rank_to_key_;  ///< global rank -> key index
  /// Occupied regions in rotation order; parallel to region_keys_ /
  /// region_zipf_.
  std::vector<std::size_t> occupied_;
  std::vector<std::vector<std::size_t>> region_keys_;
  std::vector<ZipfSampler> region_zipf_;
  /// occupied index of each region, kNoRegion when empty.
  std::vector<std::size_t> region_slot_;
  std::vector<std::vector<std::size_t>> region_switches_;
  ZipfSampler global_zipf_;

  static constexpr std::size_t kNoRegion = static_cast<std::size_t>(-1);
};

}  // namespace gred::workload
