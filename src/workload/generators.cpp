#include "workload/generators.hpp"

#include <cmath>

#include "check/check.hpp"

namespace gred::workload {

std::vector<std::string> identifier_universe(const std::string& prefix,
                                             std::size_t count) {
  std::vector<std::string> ids;
  ids.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    ids.push_back(prefix + "/" + std::to_string(k));
  }
  return ids;
}

std::vector<Op> generate_trace(std::size_t ops, const TraceOptions& options,
                               Rng& rng) {
  // Hard validation, not assert: Release-mode zeros reach
  // Rng::next_below(0) and an empty ZipfSampler universe (both UB).
  if (options.switches == 0 || options.universe == 0) {
    check::invariant_failure(__FILE__, __LINE__,
                             "switches >= 1 && universe >= 1",
                             "generate_trace requires switches and ids");
  }
  const std::vector<std::string> ids =
      identifier_universe(options.prefix, options.universe);
  const ZipfSampler popularity(options.universe, options.zipf_exponent);

  std::vector<Op> trace;
  trace.reserve(ops);
  std::vector<bool> placed(options.universe, false);
  std::size_t next_place = 0;
  double now = 0.0;

  for (std::size_t i = 0; i < ops; ++i) {
    // Exponential inter-arrival -> Poisson process.
    now += -options.mean_interarrival_ms *
           std::log(1.0 - rng.next_double());

    Op op;
    op.at_ms = now;
    op.access_switch = rng.next_below(options.switches);

    const bool place = i == 0 || rng.bernoulli(options.place_fraction);
    if (place) {
      op.kind = Op::Kind::kPlace;
      op.data_id = ids[next_place % options.universe];
      placed[next_place % options.universe] = true;
      ++next_place;
    } else {
      op.kind = Op::Kind::kRetrieve;
      // Resample until we hit an id that has been placed; with a small
      // placed set fall back to a placed id directly.
      std::size_t k = popularity.sample(rng);
      for (int attempt = 0; attempt < 16 && !placed[k]; ++attempt) {
        k = popularity.sample(rng);
      }
      if (!placed[k]) k = (next_place - 1) % options.universe;
      op.data_id = ids[k];
    }
    trace.push_back(std::move(op));
  }
  return trace;
}

}  // namespace gred::workload
