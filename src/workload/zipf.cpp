#include "workload/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gred::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  assert(n >= 1);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  const double lo = k == 0 ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

}  // namespace gred::workload
