#include "workload/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "check/check.hpp"

namespace gred::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  // Hard validation, not assert: a Release-mode n == 0 would reach
  // cdf_.back() on an empty vector (UB), and a non-finite exponent
  // would fill the CDF with NaNs that lower_bound happily searches.
  if (n == 0) {
    check::invariant_failure(__FILE__, __LINE__, "n >= 1",
                             "ZipfSampler requires a non-empty universe");
  }
  if (!std::isfinite(s) || s < 0.0) {
    check::invariant_failure(__FILE__, __LINE__, "s finite && s >= 0",
                             "ZipfSampler exponent must be finite and >= 0");
  }
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  // u < 1 and cdf_.back() == 1 make end() unreachable; clamp anyway so
  // a rounding surprise degrades to the last rank instead of indexing
  // one past the CDF.
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  const double lo = k == 0 ? 0.0 : cdf_[k - 1];
  return cdf_[k] - lo;
}

}  // namespace gred::workload
