#include "check/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/rng.hpp"
#include "geometry/predicates.hpp"

namespace gred::check {
namespace {

using geometry::Point2D;

std::string point_str(const Point2D& p) { return p.to_string(); }

/// Brute-force nearest site under the paper's total order (squared
/// distance, then lexicographic position, then index).
std::size_t brute_force_nearest(const std::vector<Point2D>& sites,
                                const Point2D& p) {
  std::size_t best = geometry::kNoSite;
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (best == geometry::kNoSite ||
        geometry::closer_to(p, sites[i], sites[best])) {
      best = i;
    }
  }
  return best;
}

/// Connected components of `g` by index, via a plain BFS over the
/// adjacency lists (independent of graph::bfs, which is itself under
/// test through the APSP checks).
std::vector<std::size_t> component_ids(const graph::Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> comp(n, static_cast<std::size_t>(-1));
  std::size_t next_id = 0;
  std::vector<graph::NodeId> queue;
  for (graph::NodeId s = 0; s < n; ++s) {
    if (comp[s] != static_cast<std::size_t>(-1)) continue;
    comp[s] = next_id;
    queue.assign(1, s);
    while (!queue.empty()) {
      const graph::NodeId u = queue.back();
      queue.pop_back();
      for (const graph::EdgeTo& e : g.neighbors(u)) {
        if (comp[e.to] == static_cast<std::size_t>(-1)) {
          comp[e.to] = next_id;
          queue.push_back(e.to);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

}  // namespace

void CheckReport::fail(std::string violation) {
  if (violations.size() < kMaxViolations) {
    violations.push_back(std::move(violation));
  } else {
    ++suppressed;
  }
}

std::string CheckReport::to_string() const {
  std::ostringstream os;
  os << subject << ": " << checked << " facts checked, "
     << violations.size() + suppressed << " violations";
  if (ok()) return os.str();
  os << ":";
  for (const std::string& v : violations) os << "\n  - " << v;
  if (suppressed > 0) os << "\n  - (+" << suppressed << " more)";
  return os.str();
}

CheckReport validate_delaunay(const geometry::DelaunayTriangulation& dt) {
  CheckReport report;
  report.subject = "validate_delaunay";
  const std::vector<Point2D>& pts = dt.points();
  const std::vector<geometry::Triangle>& tris = dt.triangles();
  const std::size_t n = pts.size();

  // Distinct sites (the build/insert APIs reject duplicates).
  {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return geometry::lex_less(pts[a], pts[b]);
    });
    for (std::size_t i = 1; i < n; ++i) {
      ++report.checked;
      if (pts[order[i]] == pts[order[i - 1]]) {
        report.fail("duplicate site " + point_str(pts[order[i]]));
      }
    }
  }

  // Adjacency structure: sorted, no self-loops, symmetric, in range.
  for (std::size_t i = 0; i < n; ++i) {
    const std::vector<std::size_t>& adj = dt.neighbors(i);
    for (std::size_t k = 0; k < adj.size(); ++k) {
      ++report.checked;
      const std::size_t j = adj[k];
      if (j >= n) {
        report.fail("adjacency of site " + std::to_string(i) +
                    " references out-of-range site " + std::to_string(j));
        continue;
      }
      if (j == i) {
        report.fail("site " + std::to_string(i) + " is its own neighbor");
      }
      if (k > 0 && adj[k - 1] >= j) {
        report.fail("adjacency of site " + std::to_string(i) +
                    " is not strictly ascending");
      }
      const std::vector<std::size_t>& back = dt.neighbors(j);
      if (!std::binary_search(back.begin(), back.end(), i)) {
        report.fail("asymmetric adjacency: " + std::to_string(i) + " -> " +
                    std::to_string(j) + " has no reverse edge");
      }
    }
  }

  // Triangle-level checks: orientation and the empty circumcircle.
  using Edge = std::pair<std::size_t, std::size_t>;
  auto canon = [](std::size_t a, std::size_t b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  };
  std::map<Edge, std::size_t> incidence;
  for (const geometry::Triangle& t : tris) {
    ++report.checked;
    if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) {
      report.fail("triangle references out-of-range site");
      continue;
    }
    if (t.v[0] == t.v[1] || t.v[1] == t.v[2] || t.v[0] == t.v[2]) {
      report.fail("triangle has repeated vertices");
      continue;
    }
    const Point2D& a = pts[t.v[0]];
    const Point2D& b = pts[t.v[1]];
    const Point2D& c = pts[t.v[2]];
    // orient2d (quad precision, exact sign for double inputs) rather
    // than the naive signed_area2: sliver triangles from near-collinear
    // site sets have true areas below double rounding noise.
    if (geometry::orient2d(a, b, c) !=
        geometry::Orientation::kCounterClockwise) {
      report.fail("triangle (" + std::to_string(t.v[0]) + ", " +
                  std::to_string(t.v[1]) + ", " + std::to_string(t.v[2]) +
                  ") is not counter-clockwise");
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (t.has_vertex(i)) continue;
      ++report.checked;
      if (geometry::in_circumcircle(a, b, c, pts[i])) {
        report.fail("site " + std::to_string(i) +
                    " lies inside the circumcircle of triangle (" +
                    std::to_string(t.v[0]) + ", " + std::to_string(t.v[1]) +
                    ", " + std::to_string(t.v[2]) + ")");
      }
    }
    for (int e = 0; e < 3; ++e) {
      ++incidence[canon(t.v[e], t.v[(e + 1) % 3])];
    }
  }

  if (tris.empty()) {
    // Degenerate triangulation (< 3 sites or a collinear chain): the
    // documented structure is a path through the lex-sorted sites.
    if (n >= 2) {
      std::vector<std::size_t> order(n);
      for (std::size_t i = 0; i < n; ++i) order[i] = i;
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return geometry::lex_less(pts[a], pts[b]);
                });
      for (std::size_t i = 0; i + 1 < n; ++i) {
        ++report.checked;
        if (!dt.are_neighbors(order[i], order[i + 1])) {
          report.fail("collinear chain: consecutive sites " +
                      std::to_string(order[i]) + " and " +
                      std::to_string(order[i + 1]) + " are not neighbors");
        }
      }
      ++report.checked;
      if (dt.edge_count() != n - 1) {
        report.fail("collinear chain has " + std::to_string(dt.edge_count()) +
                    " edges, expected " + std::to_string(n - 1));
      }
    }
    return report;
  }

  // Triangle edges and adjacency must describe the same edge set.
  std::size_t adjacency_edges = dt.edge_count();
  ++report.checked;
  if (incidence.size() != adjacency_edges) {
    report.fail("triangle edge set (" + std::to_string(incidence.size()) +
                ") differs from adjacency edge count (" +
                std::to_string(adjacency_edges) + ")");
  }
  for (const auto& [edge, count] : incidence) {
    ++report.checked;
    if (!dt.are_neighbors(edge.first, edge.second)) {
      report.fail("triangle edge (" + std::to_string(edge.first) + ", " +
                  std::to_string(edge.second) + ") missing from adjacency");
    }
    if (count > 2) {
      report.fail("edge (" + std::to_string(edge.first) + ", " +
                  std::to_string(edge.second) + ") belongs to " +
                  std::to_string(count) + " triangles");
    }
  }

  // Hull closure: boundary edges (incidence 1) must form one closed
  // cycle that visits every hull vertex exactly once.
  std::map<std::size_t, std::vector<std::size_t>> hull_adj;
  std::size_t hull_edges = 0;
  for (const auto& [edge, count] : incidence) {
    if (count != 1) continue;
    ++hull_edges;
    hull_adj[edge.first].push_back(edge.second);
    hull_adj[edge.second].push_back(edge.first);
  }
  ++report.checked;
  if (hull_edges < 3) {
    report.fail("hull has only " + std::to_string(hull_edges) + " edges");
    return report;
  }
  for (const auto& [v, nbrs] : hull_adj) {
    ++report.checked;
    if (nbrs.size() != 2) {
      report.fail("hull vertex " + std::to_string(v) + " has " +
                  std::to_string(nbrs.size()) + " hull edges, expected 2");
    }
  }
  if (report.ok()) {
    // Walk the cycle; it must cover every hull edge.
    const std::size_t start = hull_adj.begin()->first;
    std::size_t prev = start;
    std::size_t cur = hull_adj[start][0];
    std::size_t steps = 1;
    while (cur != start && steps <= hull_edges) {
      const std::vector<std::size_t>& nbrs = hull_adj[cur];
      const std::size_t nxt = nbrs[0] == prev ? nbrs[1] : nbrs[0];
      prev = cur;
      cur = nxt;
      ++steps;
    }
    ++report.checked;
    if (cur != start || steps != hull_edges) {
      report.fail("hull edges do not form a single closed cycle (" +
                  std::to_string(steps) + " steps over " +
                  std::to_string(hull_edges) + " edges)");
    }
  }
  return report;
}

CheckReport validate_virtual_space(
    const std::vector<Point2D>& sites,
    const std::function<std::size_t(const Point2D&)>& nearest_index,
    std::size_t probes, std::uint64_t seed) {
  CheckReport report;
  report.subject = "validate_virtual_space";
  if (sites.empty()) return report;

  auto check_point = [&](const Point2D& p, const char* kind) {
    ++report.checked;
    const std::size_t expected = brute_force_nearest(sites, p);
    const std::size_t got = nearest_index(p);
    if (got != expected) {
      report.fail(std::string(kind) + " probe " + point_str(p) +
                  ": indexed nearest = " + std::to_string(got) +
                  ", brute force = " + std::to_string(expected));
    }
  };

  // Every site must map to itself (exact hits exercise the paper's
  // tie-break order on coincident distances).
  for (const Point2D& s : sites) check_point(s, "site");

  Rng rng(seed);
  for (std::size_t i = 0; i < probes; ++i) {
    // Mostly unit-square probes (the data-position domain), plus a
    // band outside it: queries anywhere in the plane must stay
    // correct because greedy targets are clamped positions.
    const bool outside = i % 8 == 7;
    const double lo = outside ? -0.5 : 0.0;
    const double hi = outside ? 1.5 : 1.0;
    check_point({rng.uniform(lo, hi), rng.uniform(lo, hi)}, "sampled");
  }
  return report;
}

CheckReport validate_graph(const graph::Graph& g) {
  CheckReport report;
  report.subject = "validate_graph";
  const std::size_t n = g.node_count();
  std::size_t degree_sum = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    std::set<graph::NodeId> seen;
    for (const graph::EdgeTo& e : g.neighbors(u)) {
      ++report.checked;
      ++degree_sum;
      if (e.to >= n) {
        report.fail("edge from " + std::to_string(u) +
                    " to out-of-range node " + std::to_string(e.to));
        continue;
      }
      if (e.to == u) {
        report.fail("self-loop at node " + std::to_string(u));
      }
      if (!seen.insert(e.to).second) {
        report.fail("parallel edge (" + std::to_string(u) + ", " +
                    std::to_string(e.to) + ")");
      }
      if (!(e.weight > 0.0)) {
        report.fail("non-positive weight on edge (" + std::to_string(u) +
                    ", " + std::to_string(e.to) + ")");
      }
      // Reverse edge with an identical weight.
      bool reverse = false;
      for (const graph::EdgeTo& r : g.neighbors(e.to)) {
        if (r.to == u && r.weight == e.weight) {
          reverse = true;
          break;
        }
      }
      if (!reverse) {
        report.fail("edge (" + std::to_string(u) + ", " +
                    std::to_string(e.to) +
                    ") has no symmetric reverse edge of equal weight");
      }
    }
  }
  ++report.checked;
  if (degree_sum != 2 * g.edge_count()) {
    report.fail("degree sum " + std::to_string(degree_sum) +
                " != 2 * edge_count " + std::to_string(g.edge_count()));
  }
  return report;
}

CheckReport validate_graph(const graph::Graph& g,
                           const graph::ApspResult& apsp, bool weighted) {
  CheckReport report = validate_graph(g);
  report.subject = "validate_graph+apsp";
  const std::size_t n = g.node_count();
  ++report.checked;
  if (apsp.dist.size() != n) {
    report.fail("APSP dimensions do not match the graph (" +
                std::to_string(apsp.dist.size()) + "x" +
                std::to_string(apsp.dist.size()) + " over " +
                std::to_string(n) + " nodes)");
    return report;
  }
  ++report.checked;
  if (apsp.weighted != weighted) {
    report.fail("APSP weighted flag does not match the validated mode");
    return report;
  }

  const std::vector<std::size_t> comp = component_ids(g);
  constexpr double kEps = 1e-9;
  for (graph::NodeId i = 0; i < n; ++i) {
    ++report.checked;
    if (apsp.dist(i, i) != 0.0) {
      report.fail("dist(" + std::to_string(i) + ", " + std::to_string(i) +
                  ") != 0");
    }
    for (graph::NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      ++report.checked;
      const double d = apsp.dist(i, j);
      const double dr = apsp.dist(j, i);
      // Weighted runs sum the same edge weights in opposite order for
      // the two directions, so allow float-summation noise; unweighted
      // hop counts (and unreachable markers) must agree exactly.
      const bool symmetric =
          (d == graph::kUnreachable || dr == graph::kUnreachable)
              ? d == dr
              : std::abs(d - dr) <=
                    (weighted ? kEps * (1.0 + std::abs(d)) : 0.0);
      if (!symmetric) {
        report.fail("asymmetric distance for (" + std::to_string(i) + ", " +
                    std::to_string(j) + ")");
      }
      const bool reachable = comp[i] == comp[j];
      if (reachable != (d != graph::kUnreachable)) {
        report.fail("dist(" + std::to_string(i) + ", " + std::to_string(j) +
                    ") disagrees with component structure");
        continue;
      }
      if (!weighted &&
          (apsp.hop_count(i, j) == graph::kNoPath) != !reachable) {
        report.fail("hop_count(" + std::to_string(i) + ", " +
                    std::to_string(j) +
                    ") kNoPath disagrees with component structure");
      }
      const graph::NodeId nxt = apsp.first_hop(i, j, g);
      if (!reachable) {
        if (nxt != graph::kNoNode) {
          report.fail("first_hop(" + std::to_string(i) + ", " +
                      std::to_string(j) + ") set on an unreachable pair");
        }
        continue;
      }
      if (nxt == graph::kNoNode || nxt >= n) {
        report.fail("first_hop(" + std::to_string(i) + ", " +
                    std::to_string(j) + ") missing on a reachable pair");
        continue;
      }
      // The derived first hop must be a real neighbor lying on a
      // shortest path: dist(i, j) = w(i, nxt) + dist(nxt, j).
      double step = graph::kUnreachable;
      for (const graph::EdgeTo& e : g.neighbors(i)) {
        if (e.to == nxt) {
          step = weighted ? e.weight : 1.0;
          break;
        }
      }
      if (step == graph::kUnreachable) {
        report.fail("first_hop(" + std::to_string(i) + ", " +
                    std::to_string(j) + ") = " + std::to_string(nxt) +
                    " is not a neighbor of " + std::to_string(i));
        continue;
      }
      if (std::abs(step + apsp.dist(nxt, j) - d) > kEps) {
        report.fail("first_hop(" + std::to_string(i) + ", " +
                    std::to_string(j) + ") does not lie on a shortest path");
      }
    }
  }
  return report;
}

CheckReport validate_flow_tables(
    const sden::SdenNetwork& net,
    const std::vector<topology::SwitchId>& participants,
    const std::vector<Point2D>& positions,
    const geometry::DelaunayTriangulation* dt, std::size_t probes,
    std::uint64_t seed) {
  CheckReport report;
  report.subject = "validate_flow_tables";
  if (participants.size() != positions.size()) {
    report.fail("participants/positions size mismatch");
    return report;
  }
  const graph::Graph& phys = net.description().switches();
  std::map<topology::SwitchId, std::size_t> index;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    index[participants[i]] = i;
  }

  for (std::size_t i = 0; i < participants.size(); ++i) {
    const topology::SwitchId s = participants[i];
    if (s >= net.switch_count()) {
      report.fail("participant " + std::to_string(s) +
                  " is not a switch of the network");
      continue;
    }
    const sden::Switch& sw = net.switch_at(s);
    ++report.checked;
    if (!sw.dt_participant()) {
      report.fail("participant switch " + std::to_string(s) +
                  " has no installed position");
      continue;
    }
    if (!(sw.position() == positions[i])) {
      report.fail("switch " + std::to_string(s) +
                  " position differs from the control plane's");
    }
    if (sw.local_servers() != net.description().servers_at(s)) {
      report.fail("switch " + std::to_string(s) +
                  " local server list differs from the topology's");
    }

    std::set<topology::SwitchId> entry_neighbors;
    for (const sden::NeighborEntry& e : sw.table().neighbors()) {
      ++report.checked;
      const auto it = index.find(e.neighbor);
      if (e.neighbor == s || it == index.end()) {
        report.fail("switch " + std::to_string(s) +
                    " has a greedy candidate that is not another "
                    "participant: " +
                    std::to_string(e.neighbor));
        continue;
      }
      if (!entry_neighbors.insert(e.neighbor).second) {
        report.fail("switch " + std::to_string(s) +
                    " lists candidate " + std::to_string(e.neighbor) +
                    " twice");
      }
      if (!(e.position == positions[it->second])) {
        report.fail("candidate " + std::to_string(e.neighbor) + " at switch " +
                    std::to_string(s) + " carries a stale position");
      }
      if (e.physical != phys.has_edge(s, e.neighbor)) {
        report.fail("candidate " + std::to_string(e.neighbor) + " at switch " +
                    std::to_string(s) + " has a wrong physical flag");
      }
      if (e.physical) {
        if (e.first_hop != e.neighbor) {
          report.fail("physical candidate " + std::to_string(e.neighbor) +
                      " at switch " + std::to_string(s) +
                      " has first_hop != neighbor");
        }
        continue;
      }
      // Multi-hop candidate: the relay chain from first_hop must walk
      // physical links to the virtual-link destination.
      if (!phys.has_edge(s, e.first_hop)) {
        report.fail("virtual link " + std::to_string(s) + " -> " +
                    std::to_string(e.neighbor) +
                    " starts with a non-physical first hop");
        continue;
      }
      topology::SwitchId cur = e.first_hop;
      std::size_t steps = 1;
      bool chain_ok = true;
      while (cur != e.neighbor) {
        if (++steps > net.switch_count()) {
          report.fail("relay chain " + std::to_string(s) + " -> " +
                      std::to_string(e.neighbor) + " does not terminate");
          chain_ok = false;
          break;
        }
        const auto relay = net.switch_at(cur).table().match_relay(e.neighbor);
        if (!relay.has_value()) {
          report.fail("relay chain " + std::to_string(s) + " -> " +
                      std::to_string(e.neighbor) +
                      " breaks at switch " + std::to_string(cur) +
                      " (no relay entry)");
          chain_ok = false;
          break;
        }
        if (!phys.has_edge(cur, relay->succ)) {
          report.fail("relay entry at switch " + std::to_string(cur) +
                      " forwards over a non-physical link to " +
                      std::to_string(relay->succ));
          chain_ok = false;
          break;
        }
        cur = relay->succ;
      }
      ++report.checked;
      if (chain_ok && steps < 2) {
        report.fail("virtual link " + std::to_string(s) + " -> " +
                    std::to_string(e.neighbor) +
                    " spans a single physical hop but is marked multi-hop");
      }
    }

    // On a valid DT the candidate set covers every DT neighbor.
    if (dt != nullptr && index.size() == dt->size()) {
      for (std::size_t j : dt->neighbors(i)) {
        ++report.checked;
        if (entry_neighbors.count(participants[j]) == 0) {
          report.fail("switch " + std::to_string(s) +
                      " is missing DT neighbor " +
                      std::to_string(participants[j]) +
                      " from its candidate table");
        }
      }
    }
  }

  // Relay entries must sit between physical neighbors even on pure
  // transit switches (greedy candidates never point at them, but the
  // chain walk above may pass through).
  for (topology::SwitchId w = 0; w < net.switch_count(); ++w) {
    for (const sden::RelayEntry& r : net.switch_at(w).table().relays()) {
      ++report.checked;
      if (!phys.has_edge(w, r.succ) || !phys.has_edge(w, r.pred)) {
        report.fail("relay tuple at switch " + std::to_string(w) +
                    " references non-physical pred/succ links");
      }
      if (index.find(r.dest) == index.end() ||
          index.find(r.sour) == index.end()) {
        report.fail("relay tuple at switch " + std::to_string(w) +
                    " references non-participant endpoints");
      }
    }
  }

  // Greedy-step invariant on sampled targets: the best candidate
  // either strictly improves on the switch's own position under the
  // paper's total order, or the switch is the local minimum — and a
  // local minimum must be the global nearest participant.
  Rng rng(seed);
  for (std::size_t k = 0; k < probes; ++k) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t global = brute_force_nearest(positions, target);
    for (std::size_t i = 0; i < participants.size(); ++i) {
      const sden::Switch& sw = net.switch_at(participants[i]);
      if (!sw.dt_participant()) continue;  // already reported above
      const sden::NeighborEntry* best = nullptr;
      for (const sden::NeighborEntry& cand : sw.table().neighbors()) {
        if (best == nullptr ||
            geometry::closer_to(target, cand.position, best->position)) {
          best = &cand;
        }
      }
      ++report.checked;
      const bool advances =
          best != nullptr &&
          geometry::closer_to(target, best->position, sw.position());
      if (advances) {
        // The total order guarantees strict progress; nothing more to
        // verify for this switch/target pair.
        continue;
      }
      if (i != global) {
        report.fail("switch " + std::to_string(participants[i]) +
                    " is a greedy local minimum for target " +
                    point_str(target) + " but switch " +
                    std::to_string(participants[global]) +
                    " is globally nearer");
      }
    }
  }
  return report;
}

}  // namespace gred::check
