// Invariant-checking macros for the correctness tooling layer.
//
// GRED's guarantees rest on structural invariants (empty-circumcircle
// DT, grid/brute-force nearest-site agreement, well-formed flow
// tables) that a single bad edge flip silently violates. The macros
// here make those invariants machine-checked in Debug builds and in
// any build configured with -DGRED_CHECKED=ON, and compile to nothing
// in plain Release builds so hot paths pay zero cost.
//
//   GRED_INVARIANT(cond, msg)  — assert a cheap boolean condition.
//   GRED_CHECK(report_expr)    — run a deep validator returning a
//                                CheckReport (see invariants.hpp).
//
// A failed invariant prints the location, the expression, and the
// detail message to stderr and aborts: a violated invariant means the
// routing guarantee is already gone, so continuing would only move
// the failure somewhere harder to diagnose.
#pragma once

#include <string>

#if defined(GRED_CHECKED) || !defined(NDEBUG)
#define GRED_CHECKS_ENABLED 1
#else
#define GRED_CHECKS_ENABLED 0
#endif

namespace gred::check {

/// True when invariant checking is compiled into this build.
inline constexpr bool kEnabled = GRED_CHECKS_ENABLED != 0;

/// Reports a violated invariant and aborts the process.
[[noreturn]] void invariant_failure(const char* file, int line,
                                    const char* expr,
                                    const std::string& detail);

}  // namespace gred::check

#if GRED_CHECKS_ENABLED
#define GRED_INVARIANT(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::gred::check::invariant_failure(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                     \
  } while (0)
#else
#define GRED_INVARIANT(cond, msg) ((void)0)
#endif
