// Deep structural validators for the GRED control and data planes.
//
// Each validator walks one subsystem and returns a CheckReport listing
// every violated fact (not just the first), so a failing run reads
// like a diagnosis instead of a stack trace. They are deliberately
// written against the public read APIs — brute force, no shortcuts
// shared with the code under test — because a validator that reuses
// the optimized path would inherit its bugs.
//
// Validators run in three places:
//   * the controller's rebuild paths (Debug / GRED_CHECKED builds),
//   * the tier-1 unit tests (tests/check_test.cpp and friends),
//   * every fuzz harness under fuzz/ (each input that parses must
//     still satisfy the matching invariant).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/point.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"
#include "sden/network.hpp"

namespace gred::check {

/// Outcome of one deep validation pass. `checked` counts the facts
/// examined (so tests can assert the validator actually did work);
/// `violations` holds a human-readable line per violated fact, capped
/// at kMaxViolations to keep pathological inputs readable.
struct CheckReport {
  static constexpr std::size_t kMaxViolations = 32;

  std::string subject;
  std::vector<std::string> violations;
  std::size_t checked = 0;
  /// Violations found beyond the stored cap.
  std::size_t suppressed = 0;

  bool ok() const { return violations.empty() && suppressed == 0; }
  void fail(std::string violation);
  /// "<subject>: N facts checked, M violations:\n  - ..." (one line
  /// per stored violation).
  std::string to_string() const;
};

/// Empty-circumcircle property via the exact predicates, CCW
/// orientation, adjacency symmetry/sortedness, triangle-adjacency
/// agreement, and hull closure (boundary edges form one closed
/// cycle). Degenerate triangulations (< 3 sites or collinear chains)
/// are validated against their documented chain structure.
CheckReport validate_delaunay(const geometry::DelaunayTriangulation& dt);

/// Agreement between an indexed nearest-site answer (`nearest_index`,
/// e.g. a SiteGrid or VirtualSpace lookup) and the brute-force scan
/// over `sites` under the paper's total order, on the sites
/// themselves plus `probes` deterministic sample points.
CheckReport validate_virtual_space(
    const std::vector<geometry::Point2D>& sites,
    const std::function<std::size_t(const geometry::Point2D&)>& nearest_index,
    std::size_t probes = 256, std::uint64_t seed = 0x47524543u);

/// Undirected symmetry (u~v implies v~u with the same weight), no
/// self-loops or parallel edges, positive weights, and edge-count
/// bookkeeping.
CheckReport validate_graph(const graph::Graph& g);

/// Everything validate_graph checks, plus APSP consistency: zero
/// diagonal, symmetric distances, kUnreachable/kNoPath exactly on
/// cross-component pairs, and every stored next-hop being a real
/// neighbor that lies on a shortest path. `weighted` names the metric
/// the APSP was computed under (link weights vs. unit hops).
CheckReport validate_graph(const graph::Graph& g,
                           const graph::ApspResult& apsp, bool weighted);

/// Installed forwarding state of every switch in `net` against the
/// control plane's ground truth (`participants` + `positions`, and
/// the DT when given): positions and server lists match, greedy
/// candidate entries carry true positions and reachable first hops,
/// relay chains walk physical links to their vlink destination, and —
/// on `probes` sampled targets — the greedy next-hop strictly
/// decreases the distance to the target or the switch is the local
/// (= global, on a valid DT) minimum.
CheckReport validate_flow_tables(
    const sden::SdenNetwork& net,
    const std::vector<topology::SwitchId>& participants,
    const std::vector<geometry::Point2D>& positions,
    const geometry::DelaunayTriangulation* dt = nullptr,
    std::size_t probes = 64, std::uint64_t seed = 0x47524544u);

}  // namespace gred::check

#if GRED_CHECKS_ENABLED
#define GRED_CHECK(report_expr)                                       \
  do {                                                                \
    const ::gred::check::CheckReport gred_check_report_ =             \
        (report_expr);                                                \
    if (!gred_check_report_.ok()) {                                   \
      ::gred::check::invariant_failure(__FILE__, __LINE__,            \
                                       #report_expr,                  \
                                       gred_check_report_.to_string()); \
    }                                                                 \
  } while (0)
#else
#define GRED_CHECK(report_expr) ((void)0)
#endif
