#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace gred::check {

void invariant_failure(const char* file, int line, const char* expr,
                       const std::string& detail) {
  std::fprintf(stderr,
               "\nGRED invariant violated at %s:%d\n  expression: %s\n"
               "  detail: %s\n",
               file, line, expr, detail.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace gred::check
