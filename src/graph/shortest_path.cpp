#include "graph/shortest_path.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/thread_pool.hpp"

namespace gred::graph {

SsspResult bfs(const Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kNoNode)};
  if (source >= n) return r;
  std::deque<NodeId> queue{source};
  r.dist[source] = 0.0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const EdgeTo& e : g.neighbors(u)) {
      if (r.dist[e.to] != kUnreachable) continue;
      r.dist[e.to] = r.dist[u] + 1.0;
      r.parent[e.to] = u;
      queue.push_back(e.to);
    }
  }
  return r;
}

SsspResult dijkstra(const Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kNoNode)};
  if (source >= n) return r;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  r.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;  // stale entry
    for (const EdgeTo& e : g.neighbors(u)) {
      const double nd = d + e.weight;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = u;
        heap.emplace(nd, e.to);
      }
    }
  }
  return r;
}

std::vector<NodeId> reconstruct_path(const SsspResult& sssp, NodeId target) {
  std::vector<NodeId> path;
  if (target >= sssp.dist.size() || sssp.dist[target] == kUnreachable) {
    return path;
  }
  for (NodeId v = target; v != kNoNode; v = sssp.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<NodeId> ApspResult::path(NodeId i, NodeId j) const {
  std::vector<NodeId> out;
  if (i >= next.size() || j >= next.size()) return out;
  if (dist(i, j) == kUnreachable) return out;
  out.push_back(i);
  NodeId cur = i;
  while (cur != j) {
    cur = next[cur][j];
    if (cur == kNoNode) return {};  // inconsistent table (shouldn't happen)
    out.push_back(cur);
  }
  return out;
}

std::size_t ApspResult::hop_count(NodeId i, NodeId j) const {
  if (i == j) return 0;
  const auto p = path(i, j);
  if (p.empty()) return kNoPath;
  return p.size() - 1;
}

ApspResult all_pairs_shortest_paths(const Graph& g, bool weighted,
                                    ThreadPool* pool) {
  const std::size_t n = g.node_count();
  ApspResult r;
  r.dist = linalg::Matrix(n, n, 0.0);
  r.next.assign(n, std::vector<NodeId>(n, kNoNode));

  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (NodeId s = lo; s < hi; ++s) {
      const SsspResult sssp = weighted ? dijkstra(g, s) : bfs(g, s);
      for (NodeId t = 0; t < n; ++t) {
        r.dist(s, t) = sssp.dist[t];
        if (t == s || sssp.dist[t] == kUnreachable) continue;
        // First hop: walk the parent chain from t back to s.
        NodeId hop = t;
        while (sssp.parent[hop] != s) {
          hop = sssp.parent[hop];
        }
        r.next[s][t] = hop;
      }
    }
  });
  return r;
}

}  // namespace gred::graph
