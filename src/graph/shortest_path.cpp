#include "graph/shortest_path.hpp"

#include <algorithm>
#include <deque>
#include <queue>
#include <utility>

#include "common/thread_pool.hpp"

namespace gred::graph {

SsspResult bfs(const Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kNoNode)};
  if (source >= n) return r;
  std::deque<NodeId> queue{source};
  r.dist[source] = 0.0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (const EdgeTo& e : g.neighbors(u)) {
      if (r.dist[e.to] != kUnreachable) continue;
      r.dist[e.to] = r.dist[u] + 1.0;
      r.parent[e.to] = u;
      queue.push_back(e.to);
    }
  }
  return r;
}

SsspResult dijkstra(const Graph& g, NodeId source) {
  const std::size_t n = g.node_count();
  SsspResult r{std::vector<double>(n, kUnreachable),
               std::vector<NodeId>(n, kNoNode)};
  if (source >= n) return r;

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  r.dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > r.dist[u]) continue;  // stale entry
    for (const EdgeTo& e : g.neighbors(u)) {
      const double nd = d + e.weight;
      if (nd < r.dist[e.to]) {
        r.dist[e.to] = nd;
        r.parent[e.to] = u;
        heap.emplace(nd, e.to);
      }
    }
  }
  return r;
}

std::vector<NodeId> reconstruct_path(const SsspResult& sssp, NodeId target) {
  std::vector<NodeId> path;
  if (target >= sssp.dist.size() || sssp.dist[target] == kUnreachable) {
    return path;
  }
  for (NodeId v = target; v != kNoNode; v = sssp.parent[v]) {
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// ---------------------------------------------------------------- matrix

DistMatrix::DistMatrix(std::size_t n, double fill)
    : n_(n), stride_(n), data_(n * n, fill) {}

void DistMatrix::add_node(double fill) {
  const std::size_t n = n_ + 1;
  if (n > stride_) {
    // Re-pack with slack so the next joins extend in place.
    const std::size_t stride = n + n / 8 + 8;
    std::vector<double> data(stride * n, fill);
    for (std::size_t r = 0; r < n_; ++r) {
      std::copy_n(data_.data() + r * stride_, n_, data.data() + r * stride);
    }
    data_ = std::move(data);
    stride_ = stride;
  } else {
    data_.resize(stride_ * n, fill);
    // The freshly exposed column of each old row is slack memory with
    // stale contents; reset it.
    for (std::size_t r = 0; r < n_; ++r) data_[r * stride_ + n_] = fill;
  }
  n_ = n;
}

bool DistMatrix::operator==(const DistMatrix& other) const {
  if (n_ != other.n_) return false;
  for (std::size_t r = 0; r < n_; ++r) {
    if (!std::equal(row(r), row(r) + n_, other.row(r))) return false;
  }
  return true;
}

// ------------------------------------------------------- canonical paths

namespace {

/// Canonical predecessor of `t` on a shortest path from the row's
/// source: the smallest-id neighbor y with D[y] < D[t] and
/// D[y] + w(y, t) == D[t] exactly. Every final BFS/Dijkstra value is
/// fl(D[parent] + w), so a qualifying neighbor exists whenever t is
/// reachable and t != source; the strict decrease makes the walk
/// cycle-free.
NodeId canonical_pred(const double* D, const Graph& g, bool weighted,
                      NodeId t) {
  const double dt = D[t];
  // Adjacency lists are in edge-insertion order, which a churn history
  // perturbs; take the minimum over ALL qualifying neighbors so the
  // derived path depends only on (dist, graph contents).
  NodeId best = kNoNode;
  for (const EdgeTo& e : g.neighbors(t)) {
    const double dy = D[e.to];
    if (dy < dt && dy + (weighted ? e.weight : 1.0) == dt &&
        (best == kNoNode || e.to < best)) {
      best = e.to;
    }
  }
  return best;
}

}  // namespace

NodeId ApspResult::first_hop(NodeId i, NodeId j, const Graph& g) const {
  const std::size_t n = dist.size();
  if (i >= n || j >= n || i == j) return kNoNode;
  const double* D = dist.row(i);
  if (D[j] == kUnreachable) return kNoNode;
  NodeId cur = j;
  for (std::size_t guard = 0; guard < n; ++guard) {
    const NodeId pred = canonical_pred(D, g, weighted, cur);
    if (pred == kNoNode) return kNoNode;  // inconsistent table
    if (pred == i) return cur;
    cur = pred;
  }
  return kNoNode;
}

std::vector<NodeId> ApspResult::path(NodeId i, NodeId j, const Graph& g) const {
  std::vector<NodeId> out;
  const std::size_t n = dist.size();
  if (i >= n || j >= n) return out;
  if (i == j) return {i};
  const double* D = dist.row(i);
  if (D[j] == kUnreachable) return out;
  out.push_back(j);
  NodeId cur = j;
  for (std::size_t guard = 0; guard < n && cur != i; ++guard) {
    cur = canonical_pred(D, g, weighted, cur);
    if (cur == kNoNode) return {};  // inconsistent table
    out.push_back(cur);
  }
  if (cur != i) return {};
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t ApspResult::hop_count(NodeId i, NodeId j) const {
  if (i == j) return 0;
  if (i >= dist.size() || j >= dist.size()) return kNoPath;
  const double d = dist(i, j);
  if (d == kUnreachable) return kNoPath;
  return static_cast<std::size_t>(d);
}

ApspResult all_pairs_shortest_paths(const Graph& g, bool weighted,
                                    ThreadPool* pool) {
  const std::size_t n = g.node_count();
  ApspResult r;
  r.dist = DistMatrix(n, 0.0);
  r.weighted = weighted;

  ThreadPool& tp = pool ? *pool : global_pool();
  tp.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (NodeId s = lo; s < hi; ++s) {
      const SsspResult sssp = weighted ? dijkstra(g, s) : bfs(g, s);
      std::copy_n(sssp.dist.data(), n, r.dist.row(s));
    }
  });
  return r;
}

// ----------------------------------------------------------- delta APSP

namespace {

using HeapItem = std::pair<double, NodeId>;
using MinHeap =
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>;

/// Dijkstra-style relaxation to quiescence from pre-seeded entries.
/// Identical offer arithmetic (d + w under round-to-nearest) to the
/// fresh run; with positive weights the fixpoint is unique, so the
/// settled row is bit-equal to a from-scratch single-source run. When
/// `other_changed` is given it is set if any node except `tracked`
/// improves.
void relax_to_quiescence(const Graph& g, bool weighted, double* D,
                         MinHeap& heap, NodeId tracked = kNoNode,
                         bool* other_changed = nullptr) {
  while (!heap.empty()) {
    const auto [d, x] = heap.top();
    heap.pop();
    if (d > D[x]) continue;  // stale entry
    for (const EdgeTo& e : g.neighbors(x)) {
      const double nd = d + (weighted ? e.weight : 1.0);
      if (nd < D[e.to]) {
        D[e.to] = nd;
        if (other_changed != nullptr && e.to != tracked) {
          *other_changed = true;
        }
        heap.emplace(nd, e.to);
      }
    }
  }
}

/// Shared epilogue: collect flagged rows into a sorted list.
ApspDelta collect_rows(const std::vector<char>& changed) {
  ApspDelta delta;
  for (NodeId s = 0; s < changed.size(); ++s) {
    if (changed[s] != 0) delta.changed_rows.push_back(s);
  }
  return delta;
}

ApspDelta full_fallback(ApspResult& r, const Graph& g, ThreadPool* pool) {
  r = all_pairs_shortest_paths(g, r.weighted, pool);
  ApspDelta delta;
  delta.full_recompute = true;
  delta.changed_rows.resize(g.node_count());
  for (NodeId s = 0; s < delta.changed_rows.size(); ++s) {
    delta.changed_rows[s] = s;
  }
  return delta;
}

ThreadPool& pool_or_global(ThreadPool* pool) {
  return pool ? *pool : global_pool();
}

/// Per-row scratch for the Ramalingam-Reps deletion, reused across the
/// rows of one parallel chunk; epoch stamps avoid O(n) clears per row.
struct DeleteScratch {
  std::vector<std::uint32_t> affected_epoch;
  std::vector<std::uint32_t> supported_epoch;
  std::vector<NodeId> affected;
  std::uint32_t epoch = 0;

  explicit DeleteScratch(std::size_t n)
      : affected_epoch(n, 0), supported_epoch(n, 0) {}

  bool is_affected(NodeId x) const { return affected_epoch[x] == epoch; }
  bool classified(NodeId x) const {
    return affected_epoch[x] == epoch || supported_epoch[x] == epoch;
  }
};

/// Grows the affected set from initial candidate `z` (old distances in
/// D, new graph g), then re-settles it from boundary offers. Returns
/// true when the row changed. `extra` optionally supplies the removed
/// adjacency of a detached node (batch deletion): when `extra_node` is
/// confirmed affected its former neighbors become candidates even
/// though the new graph no longer lists them.
bool delete_update_row(const Graph& g, bool weighted, double* D, NodeId z,
                       DeleteScratch& scratch, NodeId extra_node = kNoNode,
                       const std::vector<EdgeTo>* extra = nullptr) {
  ++scratch.epoch;
  scratch.affected.clear();
  MinHeap candidates;
  candidates.emplace(D[z], z);

  // Phase 1: classify candidates in increasing old-distance order. A
  // candidate is affected iff it has no unaffected neighbor that
  // supports its old value exactly; ties in old distance cannot
  // support each other (support needs a strict decrease), so the order
  // among equal keys does not matter.
  while (!candidates.empty()) {
    const auto [dx, x] = candidates.top();
    candidates.pop();
    if (scratch.classified(x)) continue;
    bool supported = false;
    for (const EdgeTo& e : g.neighbors(x)) {
      const double dy = D[e.to];
      if (scratch.is_affected(e.to)) continue;
      if (dy < dx && dy + (weighted ? e.weight : 1.0) == dx) {
        supported = true;
        break;
      }
    }
    if (supported) {
      scratch.supported_epoch[x] = scratch.epoch;
      continue;
    }
    scratch.affected_epoch[x] = scratch.epoch;
    scratch.affected.push_back(x);
    const std::vector<EdgeTo>& out =
        (x == extra_node && extra != nullptr) ? *extra : g.neighbors(x);
    for (const EdgeTo& e : out) {
      const double dy = D[e.to];
      if (dy == kUnreachable || scratch.classified(e.to)) continue;
      if (dx < dy && dx + (weighted ? e.weight : 1.0) == dy) {
        candidates.emplace(dy, e.to);
      }
    }
  }
  if (scratch.affected.empty()) return false;

  // Phase 2: re-settle the affected set from unaffected-boundary
  // offers. The boundary values are final (deletion never improves a
  // distance), so this is exactly the tail of a fresh Dijkstra.
  for (const NodeId x : scratch.affected) D[x] = kUnreachable;
  MinHeap heap;
  for (const NodeId x : scratch.affected) {
    double best = kUnreachable;
    for (const EdgeTo& e : g.neighbors(x)) {
      if (scratch.is_affected(e.to)) continue;
      const double dy = D[e.to];
      if (dy == kUnreachable) continue;
      const double offer = dy + (weighted ? e.weight : 1.0);
      if (offer < best) best = offer;
    }
    if (best < D[x]) {
      D[x] = best;
      heap.emplace(best, x);
    }
  }
  relax_to_quiescence(g, weighted, D, heap);
  return true;
}

}  // namespace

ApspDelta apsp_add_edge(ApspResult& r, const Graph& g, NodeId u, NodeId v,
                        ThreadPool* pool) {
  const std::size_t n = g.node_count();
  const EdgeTo* edge = g.find_edge(u, v);
  if (edge == nullptr || r.dist.size() != n) return full_fallback(r, g, pool);
  const double w = r.weighted ? edge->weight : 1.0;

  // Staleness pre-scan: rows the new edge strictly improves (two reads
  // per row). Past the 50% threshold the localized updates approach
  // full-recompute work with extra bookkeeping, so recompute outright.
  std::vector<char> seeded(n, 0);
  std::size_t seed_count = 0;
  for (NodeId s = 0; s < n; ++s) {
    const double du = r.dist(s, u);
    const double dv = r.dist(s, v);
    if ((du != kUnreachable && du + w < dv) ||
        (dv != kUnreachable && dv + w < du)) {
      seeded[s] = 1;
      ++seed_count;
    }
  }
  if (2 * seed_count > n) return full_fallback(r, g, pool);

  pool_or_global(pool).parallel_for(0, n, 1, [&](std::size_t lo,
                                                 std::size_t hi) {
    for (NodeId s = lo; s < hi; ++s) {
      if (seeded[s] == 0) continue;
      double* D = r.dist.row(s);
      MinHeap heap;
      if (D[u] != kUnreachable && D[u] + w < D[v]) {
        D[v] = D[u] + w;
        heap.emplace(D[v], v);
      } else {
        D[u] = D[v] + w;
        heap.emplace(D[u], u);
      }
      relax_to_quiescence(g, r.weighted, D, heap);
    }
  });
  return collect_rows(seeded);
}

ApspDelta apsp_remove_edge(ApspResult& r, const Graph& g, NodeId u, NodeId v,
                           double weight, ThreadPool* pool) {
  const std::size_t n = g.node_count();
  if (r.dist.size() != n) return full_fallback(r, g, pool);
  const double w = r.weighted ? weight : 1.0;

  // Pre-scan: rows where the removed edge was tight (supported one
  // endpoint's value). Tight is an overestimate of affected — the
  // endpoint may have alternative support — but it is the cheapest
  // sound filter, and past the threshold we recompute.
  std::vector<char> tight(n, 0);
  std::vector<NodeId> casualty(n, kNoNode);
  std::size_t tight_count = 0;
  for (NodeId s = 0; s < n; ++s) {
    const double du = r.dist(s, u);
    const double dv = r.dist(s, v);
    if (du == kUnreachable || dv == kUnreachable) continue;
    NodeId z = kNoNode;
    if (du < dv && du + w == dv) {
      z = v;
    } else if (dv < du && dv + w == du) {
      z = u;
    }
    if (z != kNoNode) {
      tight[s] = 1;
      casualty[s] = z;
      ++tight_count;
    }
  }
  if (2 * tight_count > n) return full_fallback(r, g, pool);

  std::vector<char> changed(n, 0);
  pool_or_global(pool).parallel_for(0, n, 1, [&](std::size_t lo,
                                                 std::size_t hi) {
    DeleteScratch scratch(n);
    for (NodeId s = lo; s < hi; ++s) {
      if (tight[s] == 0) continue;
      if (delete_update_row(g, r.weighted, r.dist.row(s), casualty[s],
                            scratch)) {
        changed[s] = 1;
      }
    }
  });
  return collect_rows(changed);
}

ApspDelta apsp_add_node(ApspResult& r, const Graph& g, NodeId v,
                        ThreadPool* pool) {
  const std::size_t n = g.node_count();
  if (v + 1 != n || r.dist.size() + 1 != n) return full_fallback(r, g, pool);
  r.dist.add_node(kUnreachable);
  r.dist(v, v) = 0.0;

  std::vector<char> changed(n, 0);
  changed[v] = 1;
  ThreadPool& tp = pool_or_global(pool);
  // Row v is a fresh single-source run; settle it alongside the old
  // rows' column-v estimates.
  tp.parallel_for(0, n, 1, [&](std::size_t lo, std::size_t hi) {
    for (NodeId s = lo; s < hi; ++s) {
      if (s == v) {
        const SsspResult sssp = r.weighted ? dijkstra(g, v) : bfs(g, v);
        std::copy_n(sssp.dist.data(), n, r.dist.row(v));
        continue;
      }
      double* D = r.dist.row(s);
      // D[v] = min over v's links of fl(D[y] + w) — the same offer
      // multiset a fresh row-s run would minimize over; order
      // irrelevant because min does not round.
      double est = kUnreachable;
      for (const EdgeTo& e : g.neighbors(v)) {
        const double dy = D[e.to];
        if (dy == kUnreachable) continue;
        const double offer = dy + (r.weighted ? e.weight : 1.0);
        if (offer < est) est = offer;
      }
      if (est == kUnreachable) continue;  // v not reachable from s
      D[v] = est;
      MinHeap heap;
      heap.emplace(est, v);
      // New shortcuts through v: changed[s] only when a pre-existing
      // entry moves, not for the new column itself.
      bool other = false;
      relax_to_quiescence(g, r.weighted, D, heap, v, &other);
      if (other) changed[s] = 1;
    }
  });
  return collect_rows(changed);
}

ApspDelta apsp_remove_node_edges(ApspResult& r, const Graph& g, NodeId v,
                                 const std::vector<EdgeTo>& removed,
                                 ThreadPool* pool) {
  const std::size_t n = g.node_count();
  if (v >= n || r.dist.size() != n) return full_fallback(r, g, pool);

  std::vector<char> changed(n, 0);
  pool_or_global(pool).parallel_for(0, n, 1, [&](std::size_t lo,
                                                 std::size_t hi) {
    DeleteScratch scratch(n);
    for (NodeId s = lo; s < hi; ++s) {
      double* D = r.dist.row(s);
      if (s == v) {
        // v is now isolated: exactly what a fresh run from v returns.
        bool any = false;
        for (NodeId t = 0; t < n; ++t) {
          const double want = t == v ? 0.0 : kUnreachable;
          if (D[t] != want) {
            D[t] = want;
            any = true;
          }
        }
        if (any) changed[s] = 1;
        continue;
      }
      if (D[v] == kUnreachable) continue;  // v was not reachable: no-op
      // Batch deletion: v loses every edge, so it is the initial
      // casualty; its former adjacency seeds the candidate expansion.
      if (delete_update_row(g, r.weighted, D, v, scratch, v, &removed)) {
        // Column v collapses to unreachable in every row that could
        // reach v; that alone is not reported (v left the network, no
        // consumer routes to it). A row counts as changed only when a
        // SURVIVING node's distance moved, which keeps changed_rows
        // proportional to the region that actually rerouted.
        for (const NodeId x : scratch.affected) {
          if (x != v) {
            changed[s] = 1;
            break;
          }
        }
      }
    }
  });
  return collect_rows(changed);
}

}  // namespace gred::graph
