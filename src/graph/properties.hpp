// Structural graph properties used by the topology generator (to patch
// up connectivity) and the evaluation harness (diameter, degree stats).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace gred::graph {

/// True when the graph is connected (empty and single-node graphs are).
bool is_connected(const Graph& g);

/// Connected components; component id per node, ids are dense from 0.
std::vector<std::size_t> connected_components(const Graph& g);

/// Unweighted diameter (max BFS eccentricity); kUnreachable when
/// disconnected; 0 for graphs with fewer than 2 nodes.
double diameter(const Graph& g);

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
};

DegreeStats degree_stats(const Graph& g);

}  // namespace gred::graph
