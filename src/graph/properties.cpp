#include "graph/properties.hpp"

#include <algorithm>

#include "graph/shortest_path.hpp"

namespace gred::graph {

std::vector<std::size_t> connected_components(const Graph& g) {
  const std::size_t n = g.node_count();
  std::vector<std::size_t> comp(n, static_cast<std::size_t>(-1));
  std::size_t next_id = 0;
  std::vector<NodeId> stack;
  for (NodeId s = 0; s < n; ++s) {
    if (comp[s] != static_cast<std::size_t>(-1)) continue;
    comp[s] = next_id;
    stack.push_back(s);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const EdgeTo& e : g.neighbors(u)) {
        if (comp[e.to] == static_cast<std::size_t>(-1)) {
          comp[e.to] = next_id;
          stack.push_back(e.to);
        }
      }
    }
    ++next_id;
  }
  return comp;
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto comp = connected_components(g);
  return std::all_of(comp.begin(), comp.end(),
                     [](std::size_t c) { return c == 0; });
}

double diameter(const Graph& g) {
  const std::size_t n = g.node_count();
  if (n < 2) return 0.0;
  double diam = 0.0;
  for (NodeId s = 0; s < n; ++s) {
    const SsspResult r = bfs(g, s);
    for (double d : r.dist) {
      if (d == kUnreachable) return kUnreachable;
      diam = std::max(diam, d);
    }
  }
  return diam;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  const std::size_t n = g.node_count();
  if (n == 0) return s;
  s.min = g.degree(0);
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t d = g.degree(u);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    s.mean += static_cast<double>(d);
  }
  s.mean /= static_cast<double>(n);
  return s;
}

}  // namespace gred::graph
