#include "graph/graph.hpp"

#include <algorithm>

namespace gred::graph {

NodeId Graph::add_node() {
  adj_.emplace_back();
  return adj_.size() - 1;
}

Status Graph::add_edge(NodeId u, NodeId v, double weight) {
  if (u >= adj_.size() || v >= adj_.size()) {
    return Status(ErrorCode::kOutOfRange, "add_edge: node id out of range");
  }
  if (u == v) {
    return Status(ErrorCode::kInvalidArgument, "add_edge: self-loop");
  }
  if (weight <= 0.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "add_edge: weight must be positive");
  }
  if (has_edge(u, v)) {
    return Status(ErrorCode::kFailedPrecondition,
                  "add_edge: edge already exists");
  }
  adj_[u].push_back({v, weight});
  adj_[v].push_back({u, weight});
  ++edge_count_;
  return Status::Ok();
}

bool Graph::remove_edge(NodeId u, NodeId v) {
  if (u >= adj_.size() || v >= adj_.size() || !has_edge(u, v)) return false;
  auto drop = [](std::vector<EdgeTo>& list, NodeId target) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [target](const EdgeTo& e) {
                                return e.to == target;
                              }),
               list.end());
  };
  drop(adj_[u], v);
  drop(adj_[v], u);
  --edge_count_;
  return true;
}

std::size_t Graph::remove_edges_of(NodeId u) {
  if (u >= adj_.size()) return 0;
  const std::vector<EdgeTo> incident = adj_[u];
  for (const EdgeTo& e : incident) {
    remove_edge(u, e.to);
  }
  return incident.size();
}

void Graph::truncate_nodes(std::size_t node_count) {
  while (adj_.size() > node_count) {
    remove_edges_of(adj_.size() - 1);
    adj_.pop_back();
  }
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= adj_.size()) return false;
  return std::any_of(adj_[u].begin(), adj_[u].end(),
                     [v](const EdgeTo& e) { return e.to == v; });
}

Result<double> Graph::edge_weight(NodeId u, NodeId v) const {
  if (u >= adj_.size()) {
    return Error(ErrorCode::kOutOfRange, "edge_weight: node out of range");
  }
  for (const EdgeTo& e : adj_[u]) {
    if (e.to == v) return e.weight;
  }
  return Error(ErrorCode::kNotFound, "edge_weight: no such edge");
}

std::vector<std::pair<NodeId, NodeId>> Graph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count_);
  for (NodeId u = 0; u < adj_.size(); ++u) {
    for (const EdgeTo& e : adj_[u]) {
      if (u < e.to) out.emplace_back(u, e.to);
    }
  }
  return out;
}

}  // namespace gred::graph
