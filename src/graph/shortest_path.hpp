// Shortest-path algorithms over the physical topology. The GRED control
// plane needs (a) the all-pairs hop matrix L for the M-position
// embedding, and (b) concrete shortest paths between multi-hop DT
// neighbors to install relay entries.
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace gred {
class ThreadPool;
}

namespace gred::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Hop count returned when no path exists.
inline constexpr std::size_t kNoPath = static_cast<std::size_t>(-1);

/// Single-source result: dist[v] (kUnreachable when disconnected) and
/// parent[v] on a shortest-path tree (kNoNode for source/unreachable).
struct SsspResult {
  std::vector<double> dist;
  std::vector<NodeId> parent;
};

/// Unweighted BFS distances (hop counts).
SsspResult bfs(const Graph& g, NodeId source);

/// Weighted Dijkstra (binary heap). Precondition: positive weights.
SsspResult dijkstra(const Graph& g, NodeId source);

/// Reconstructs the path source -> target from a parent array; empty
/// when target is unreachable. The path includes both endpoints.
std::vector<NodeId> reconstruct_path(const SsspResult& sssp, NodeId target);

/// All-pairs shortest paths.
struct ApspResult {
  /// dist(i, j): shortest-path length; kUnreachable when disconnected.
  linalg::Matrix dist;
  /// next[i][j]: first hop on a shortest i -> j path (kNoNode if none).
  std::vector<std::vector<NodeId>> next;

  /// Full path i -> j including endpoints; empty if unreachable.
  std::vector<NodeId> path(NodeId i, NodeId j) const;
  double distance(NodeId i, NodeId j) const { return dist(i, j); }
  /// Hop count along the stored path (path length - 1); 0 when i == j,
  /// kNoPath when unreachable.
  std::size_t hop_count(NodeId i, NodeId j) const;
};

/// Runs Dijkstra (or BFS when `weighted` is false) from every node.
/// Sources are fanned across `pool` (the global GRED_THREADS pool when
/// null); every source fills only its own row, so the result is
/// bit-identical for any thread count.
ApspResult all_pairs_shortest_paths(const Graph& g, bool weighted = false,
                                    ThreadPool* pool = nullptr);

}  // namespace gred::graph
