// Shortest-path algorithms over the physical topology. The GRED control
// plane needs (a) the all-pairs hop matrix L for the M-position
// embedding, (b) concrete shortest paths between multi-hop DT
// neighbors to install relay entries, and (c) delta updates so a churn
// event (one link or switch joining/leaving) costs work proportional
// to the affected region instead of a full O(n * (m + n log n))
// recompute.
//
// Paths are no longer stored. The matrix keeps distances only, and the
// first hop / full path between a pair is derived on demand from the
// distance row plus the graph under a canonical rule (smallest-id
// tight predecessor). That makes the derived paths a pure function of
// (dist, graph): the incremental updates only have to reproduce the
// distance matrix bit-for-bit — which they do, see the delta-op notes
// below — and every downstream consumer (relay installation, the
// validators) sees identical paths whether the matrix came from a
// fresh run or a chain of delta updates.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace gred {
class ThreadPool;
}

namespace gred::graph {

inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

/// Hop count returned when no path exists.
inline constexpr std::size_t kNoPath = static_cast<std::size_t>(-1);

/// Single-source result: dist[v] (kUnreachable when disconnected) and
/// parent[v] on a shortest-path tree (kNoNode for source/unreachable).
struct SsspResult {
  std::vector<double> dist;
  std::vector<NodeId> parent;
};

/// Unweighted BFS distances (hop counts).
SsspResult bfs(const Graph& g, NodeId source);

/// Weighted Dijkstra (binary heap). Precondition: positive weights.
SsspResult dijkstra(const Graph& g, NodeId source);

/// Reconstructs the path source -> target from a parent array; empty
/// when target is unreachable. The path includes both endpoints.
std::vector<NodeId> reconstruct_path(const SsspResult& sssp, NodeId target);

/// Square distance matrix that can grow by one node in place. Rows are
/// allocated with slack (stride >= n) so a switch join extends the
/// matrix without copying the whole thing on every event; equality and
/// indexing see only the logical n x n contents.
class DistMatrix {
 public:
  DistMatrix() = default;
  DistMatrix(std::size_t n, double fill);

  std::size_t size() const { return n_; }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * stride_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * stride_ + c];
  }
  /// Pointer to row `r` (contiguous `size()` doubles).
  double* row(std::size_t r) { return data_.data() + r * stride_; }
  const double* row(std::size_t r) const { return data_.data() + r * stride_; }

  /// Appends one row and one column filled with `fill`; reallocates
  /// (with fresh slack) only when the stride is exhausted.
  void add_node(double fill);

  /// Logical contents equality (slack is ignored).
  bool operator==(const DistMatrix& other) const;
  bool operator!=(const DistMatrix& other) const { return !(*this == other); }

 private:
  std::size_t n_ = 0;
  std::size_t stride_ = 0;
  std::vector<double> data_;
};

/// All-pairs shortest paths: the distance matrix plus the mode it was
/// computed under. Paths are derived, not stored (see file comment).
struct ApspResult {
  /// dist(i, j): shortest-path length; kUnreachable when disconnected.
  DistMatrix dist;
  /// True when distances are link-weight sums (Dijkstra), false when
  /// they are hop counts (BFS).
  bool weighted = false;

  double distance(NodeId i, NodeId j) const { return dist(i, j); }

  /// Canonical first hop on a shortest i -> j path (kNoNode when
  /// unreachable or i == j). Derived from the distance row: walking
  /// back from j, each predecessor is the smallest-id neighbor y of
  /// the current node t with dist(i, y) < dist(i, t) and
  /// dist(i, y) + w(y, t) == dist(i, t) exactly.
  NodeId first_hop(NodeId i, NodeId j, const Graph& g) const;

  /// Full canonical path i -> j including endpoints; empty if
  /// unreachable (or the table is inconsistent with `g`).
  std::vector<NodeId> path(NodeId i, NodeId j, const Graph& g) const;

  /// Hop count; 0 when i == j, kNoPath when unreachable. Valid for
  /// unweighted tables, where the distance IS the hop count; weighted
  /// callers count hops via path(i, j, g) instead.
  std::size_t hop_count(NodeId i, NodeId j) const;
};

/// Runs Dijkstra (or BFS when `weighted` is false) from every node.
/// Sources are fanned across `pool` (the global GRED_THREADS pool when
/// null); every source fills only its own row, so the result is
/// bit-identical for any thread count.
ApspResult all_pairs_shortest_paths(const Graph& g, bool weighted = false,
                                    ThreadPool* pool = nullptr);

/// What a delta update touched. `changed_rows` lists sources whose
/// distance row differs from before (sorted ascending); consumers use
/// it to localize virtual-link and flow-table repair. When the
/// affected fraction crosses the staleness threshold the update is
/// performed as a full recompute instead (identical result, and the
/// delta bookkeeping would have cost more than it saves);
/// `full_recompute` reports that so benchmarks can count it.
struct ApspDelta {
  std::vector<NodeId> changed_rows;
  bool full_recompute = false;
};

/// Delta update after edge (u, v) was ADDED to `g` (the edge must
/// already be present). Each row runs a bounded relaxation seeded at
/// the improved endpoint; rows the new edge cannot improve are
/// detected with two reads. Bit-identical to a fresh recompute:
/// distances under round-to-nearest relaxation have a unique fixpoint
/// for positive weights, and both the fresh run and the delta run
/// converge to it over the same offer multisets.
ApspDelta apsp_add_edge(ApspResult& r, const Graph& g, NodeId u, NodeId v,
                        ThreadPool* pool = nullptr);

/// Delta update after edge (u, v) with weight `weight` (1.0 in
/// unweighted mode) was REMOVED from `g`. Ramalingam-Reps style: per
/// row, the affected set (vertices that lost every tight support) is
/// grown in increasing-distance order, then re-settled by a Dijkstra
/// seeded from the unaffected boundary. Rows where the edge was not
/// tight are detected with two reads.
ApspDelta apsp_remove_edge(ApspResult& r, const Graph& g, NodeId u, NodeId v,
                           double weight, ThreadPool* pool = nullptr);

/// Delta update after node `v` (== previous node count) was appended
/// to `g` together with its initial links. Grows the matrix in place,
/// computes row v with a fresh single-source run, and settles column v
/// plus any shortcuts through v in every existing row.
ApspDelta apsp_add_node(ApspResult& r, const Graph& g, NodeId v,
                        ThreadPool* pool = nullptr);

/// Delta update after every edge incident to `v` was removed from `g`
/// (`removed` is the adjacency list captured before removal; the node
/// id itself stays valid, matching Graph::remove_edges_of). Row v
/// collapses to the isolated-node row; other rows run the batched
/// Ramalingam-Reps deletion with v as the initial casualty.
/// `changed_rows` lists only rows where a distance to a node OTHER
/// than v moved: column v going unreachable is not reported, because v
/// is leaving the network and nothing routes to it.
ApspDelta apsp_remove_node_edges(ApspResult& r, const Graph& g, NodeId v,
                                 const std::vector<EdgeTo>& removed,
                                 ThreadPool* pool = nullptr);

}  // namespace gred::graph
