// Undirected weighted graph over dense node ids [0, n). This models the
// switch-level physical topology: nodes are switches, edges are links,
// weights are link costs (1.0 = hop count, or latency in ms).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace gred::graph {

using NodeId = std::size_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

struct EdgeTo {
  NodeId to = kNoNode;
  double weight = 1.0;
};

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t node_count) : adj_(node_count) {}

  std::size_t node_count() const { return adj_.size(); }
  std::size_t edge_count() const { return edge_count_; }

  /// Appends a new node; returns its id.
  NodeId add_node();

  /// Adds an undirected edge. Fails on self-loops, out-of-range ids, or
  /// non-positive weight. Parallel edges are rejected.
  Status add_edge(NodeId u, NodeId v, double weight = 1.0);

  bool has_edge(NodeId u, NodeId v) const;

  /// The adjacency record of edge (u, v), or nullptr when absent.
  /// Existence check and weight read in a single scan — the data
  /// plane's per-hop link validation uses this instead of the
  /// has_edge + edge_weight double scan. The pointer is valid until
  /// the next graph mutation.
  const EdgeTo* find_edge(NodeId u, NodeId v) const {
    if (u >= adj_.size()) return nullptr;
    for (const EdgeTo& e : adj_[u]) {
      if (e.to == v) return &e;
    }
    return nullptr;
  }

  /// Removes edge (u, v); true when it existed.
  bool remove_edge(NodeId u, NodeId v);

  /// Removes every edge incident to `u` (node leave/failure in the
  /// dynamics of Section VI); returns how many were removed. The node
  /// id itself stays valid so ids remain dense.
  std::size_t remove_edges_of(NodeId u);

  /// Drops every node with id >= `node_count` along with its incident
  /// edges. Ids stay dense because only the tail is removed — this is
  /// the rollback primitive for a failed add_switch, not a general
  /// delete. No-op when the graph is already at most that large.
  void truncate_nodes(std::size_t node_count);

  /// Weight of edge (u, v); error when absent.
  Result<double> edge_weight(NodeId u, NodeId v) const;

  const std::vector<EdgeTo>& neighbors(NodeId u) const { return adj_[u]; }
  std::size_t degree(NodeId u) const { return adj_[u].size(); }

  /// All edges once, with u < v.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::vector<EdgeTo>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace gred::graph
