#!/usr/bin/env python3
"""Thread-safety discipline gate (registered as ctest `lint.threadsafety`).

Clang's -Wthread-safety does the real interprocedural-free capability
analysis, but it only runs on Clang and only sees what is annotated.
This checker enforces — on any toolchain — the textual discipline that
makes the Clang analysis sound when it does run:

  raw-lock         library code (src/) takes locks ONLY through the
                   annotated gred::Mutex / gred::MutexLock /
                   gred::CondVar wrappers (common/mutex.hpp). A raw
                   std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable anywhere else is invisible
                   to the capability analysis, so it is an error.
  unknown-guard    a GRED_GUARDED_BY/GRED_REQUIRES/GRED_EXCLUDES/
                   GRED_ACQUIRE/GRED_RELEASE annotation naming a plain
                   identifier that is not declared as a Mutex in the
                   same file — usually a typo that silently annotates
                   nothing.
  unguarded-mutex  a declared Mutex whose name appears in no
                   annotation argument anywhere in the file: the lock
                   protects nothing the analysis can check. Waive
                   deliberate patterns (e.g. double-checked
                   publication) with a `tsa:` comment within 8 lines
                   of the declaration.

Optionally (`--clang-compile <compile_commands.json>`) the checker also
runs the real Clang analysis: every src/ TU is re-frontended with
`clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety`. When no
clang++ is on PATH this phase is skipped with a notice (the CI
static-analysis job provides one; the GCC-only dev container cannot).

Usage:
  threadsafety_check.py <repo-root> [--clang-compile <compile_commands>]
  threadsafety_check.py <repo-root> --self-test
Exit 0 clean, 1 findings, 2 usage/setup errors.
"""

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

RE_RAW_LOCK = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")
# `mutable gred::Mutex mu_;`, `Mutex m;`, ...
RE_MUTEX_DECL = re.compile(r"(?:^|[\s(])(?:gred::)?Mutex\s+(\w+)\s*[;{]")
RE_ANNOTATION = re.compile(
    r"GRED_(?:PT_)?(?:GUARDED_BY|REQUIRES|EXCLUDES|ACQUIRE|RELEASE|"
    r"TRY_ACQUIRE|ASSERT_CAPABILITY)\s*\(([^)]*)\)")
RE_IDENT = re.compile(r"^\w+$")
RE_TSA_WAIVER = re.compile(r"\btsa\s*:", re.IGNORECASE)

# The annotated wrapper itself and the macro definitions: the one place
# raw primitives and parameter-annotations legitimately live.
EXEMPT = ("src/common/mutex.hpp", "src/common/thread_annotations.hpp")

TSA_WINDOW = 8


def strip_code(text: str) -> list:
    """Comment/string-stripped lines (block and line comments removed)."""
    out = []
    in_block = False
    for raw in text.splitlines():
        line = RE_STRING.sub('""', raw)
        if in_block:
            end = line.find("*/")
            if end < 0:
                out.append("")
                continue
            line = line[end + 2:]
            in_block = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block = True
                break
            line = line[:start] + line[end + 2:]
        out.append(RE_LINE_COMMENT.sub("", line))
    return out


def check_file(path: Path, rel: str, findings: list) -> None:
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    code_lines = strip_code("\n".join(raw_lines))

    declared = {}  # name -> first declaration line
    annotated_args = []  # (line, arg) — one entry per comma-separated arg

    for ln, code in enumerate(code_lines, start=1):
        if not code.strip():
            continue
        if RE_RAW_LOCK.search(code):
            findings.append((rel, ln, "raw-lock",
                             "raw std:: lock primitive in library code; "
                             "use gred::Mutex/MutexLock/CondVar "
                             "(common/mutex.hpp) so the capability "
                             "analysis can see it"))
        for m in RE_MUTEX_DECL.finditer(code):
            declared.setdefault(m.group(1), ln)
        for m in RE_ANNOTATION.finditer(code):
            for arg in m.group(1).split(","):
                arg = arg.strip()
                if arg:
                    annotated_args.append((ln, arg))

    referenced = set()
    for ln, arg in annotated_args:
        referenced.add(arg)
        # Only bare identifiers are checkable textually; expressions
        # (other objects' members, negations) are Clang's job.
        if RE_IDENT.match(arg) and arg not in declared:
            findings.append((rel, ln, "unknown-guard",
                             f"annotation names '{arg}' but no Mutex "
                             f"'{arg}' is declared in this file — "
                             "typo'd capability annotations check "
                             "nothing"))

    for name, ln in sorted(declared.items(), key=lambda kv: kv[1]):
        if name in referenced:
            continue
        lo = max(0, ln - 1 - TSA_WINDOW)
        hi = min(len(raw_lines), ln + TSA_WINDOW)
        window = "\n".join(raw_lines[lo:hi])
        if RE_TSA_WAIVER.search(window):
            continue
        findings.append((rel, ln, "unguarded-mutex",
                         f"Mutex '{name}' is named by no annotation in "
                         "this file; GRED_GUARDED_BY the state it "
                         "protects or waive with a `tsa:` comment"))


def clang_compile_phase(root: Path, compile_commands: Path) -> int:
    """Runs clang++ -fsyntax-only -Wthread-safety over every src/ TU."""
    clangxx = shutil.which("clang++")
    if clangxx is None:
        print("threadsafety: clang++ not on PATH; skipping the Clang "
              "-Wthread-safety phase (textual rules still enforced)")
        return 0
    try:
        entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"threadsafety: cannot read {compile_commands}: {exc}",
              file=sys.stderr)
        return 2

    keep = re.compile(r"^(-I|-isystem|-D|-U|-std=)")
    failures = 0
    checked = 0
    for entry in entries:
        src = Path(entry["file"])
        try:
            rel = src.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if not rel.startswith("src/"):
            continue
        argv = entry.get("arguments") or entry["command"].split()
        flags = []
        i = 1
        while i < len(argv):
            a = argv[i]
            if keep.match(a):
                flags.append(a)
                if a in ("-I", "-isystem", "-D", "-U"):
                    i += 1
                    flags.append(argv[i])
            i += 1
        cmd = [clangxx, "-fsyntax-only", "-Wthread-safety",
               "-Werror=thread-safety"] + flags + [str(src)]
        proc = subprocess.run(cmd, cwd=entry.get("directory", str(root)),
                              capture_output=True, text=True)
        checked += 1
        if proc.returncode != 0:
            failures += 1
            print(f"threadsafety: clang -Wthread-safety failed on {rel}:")
            sys.stdout.write(proc.stderr)
    print(f"threadsafety: clang phase checked {checked} TU(s), "
          f"{failures} failure(s)")
    return 1 if failures else 0


RE_EXPECT = re.compile(r"EXPECT-TS:\s*([\w-]+)")


def self_test(root: Path) -> int:
    fixture_dir = root / "tools" / "tests" / "fixtures" / "threadsafety"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(
        fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"threadsafety --self-test: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2
    failures = 0
    for path in fixtures:
        expected = sorted(RE_EXPECT.findall(
            path.read_text(encoding="utf-8")))
        findings = []
        check_file(path, "src/" + path.name, findings)
        got = sorted(rule for _, _, rule, _ in findings)
        if got == expected:
            print(f"  PASS {path.name}: {expected or ['clean']}")
        else:
            failures += 1
            print(f"  FAIL {path.name}: expected {expected}, got {got}")
            for relf, ln, rule, msg in findings:
                print(f"    {relf}:{ln}: [{rule}] {msg}")
    print(f"threadsafety self-test: {len(fixtures)} fixtures, "
          f"{failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    args = list(argv[1:])
    compile_commands = None
    if "--clang-compile" in args:
        i = args.index("--clang-compile")
        try:
            compile_commands = Path(args[i + 1])
        except IndexError:
            print(__doc__, file=sys.stderr)
            return 2
        del args[i:i + 2]
    selftest = "--self-test" in args
    args = [a for a in args if a != "--self-test"]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(args[0])
    if not root.is_dir():
        print(f"threadsafety: not a directory: {root}", file=sys.stderr)
        return 2
    if selftest:
        return self_test(root)

    findings = []
    scanned = 0
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        if rel.startswith(EXEMPT):
            continue
        scanned += 1
        check_file(path, rel, findings)

    for rel, ln, rule, msg in findings:
        print(f"{rel}:{ln}: [{rule}] {msg}")
    print(f"threadsafety: {scanned} files scanned, {len(findings)} "
          f"finding(s)", file=sys.stderr)
    if findings:
        return 1
    if compile_commands is not None:
        return clang_compile_phase(root, compile_commands)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
