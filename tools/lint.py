#!/usr/bin/env python3
"""Custom lint gate for the GRED sources (registered as ctest `lint.custom`).

Project-specific rules that clang-tidy does not cover:

  rand           naked rand()/srand() — all randomness must flow through
                 gred::Rng so experiments stay reproducible.
  cout           std::cout/std::cerr/printf in library code (src/): the
                 library reports through gred::log or typed errors;
                 stdout belongs to the example/bench binaries.
                 (src/common/log.cpp and src/check — the reporting
                 layers themselves — are exempt.)
  pragma-once    every header must open with #pragma once.
  catch-value    `catch (SomeType e)` slices; catch by (const) reference.

Concurrency rules (DESIGN.md §13):

  memory-order   an explicit std::memory_order_* argument in src/ needs
                 a justification comment — `relaxed:`, `acquire:`,
                 `release:`, `acq_rel:`, `seq_cst:`, or `consume:` —
                 on the same line or within the 8 lines above. Default
                 (seq_cst) operations need no comment: the rule exists
                 because WEAKENING an order is the decision that needs
                 a recorded argument.
  sleep          std::this_thread::sleep_for/sleep_until, sleep(),
                 usleep(), nanosleep() in src/ — library code never
                 sleeps; polling loops yield, blocking waits use
                 gred::CondVar.
  volatile-sync  `volatile` in src/ — it is not a synchronization
                 primitive in C++; use std::atomic.
  mutable-global namespace-scope mutable state (the repo's g_* naming)
                 in src/ must be std::atomic, GRED_GUARDED_BY a
                 capability, thread_local, or const/constexpr.
  cold-doc       every GRED_COLD_PATH use needs a `cold:` justification
                 comment (same line or the 3 lines above) naming why
                 the boundary is off the hot path.
  tsa-doc        every GRED_NO_THREAD_SAFETY_ANALYSIS use needs a
                 `tsa:` comment explaining what the analysis cannot
                 see.

Usage: lint.py <repo-root> [--list-rules] [--self-test]
  --self-test lints tools/tests/fixtures/lint/ and verifies each
  fixture produces exactly the findings its EXPECT comments declare.
Exit status 0 when clean, 1 with findings (one `path:line: [rule]` per
line), 2 on usage errors.
"""

import re
import sys
from pathlib import Path

RE_RAND = re.compile(r"(?<![\w:.])s?rand\s*\(")
RE_COUT = re.compile(r"(?<![\w:])std::c(out|err)\b|(?<![\w:.>])printf\s*\(")
RE_CATCH_VALUE = re.compile(r"catch\s*\(\s*(?:const\s+)?(?!\.\.\.)[\w:<>]+\s+\w+\s*\)")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

RE_MEMORY_ORDER = re.compile(r"\bmemory_order(_|::)\w+")
RE_ORDER_JUSTIFICATION = re.compile(
    r"\b(relaxed|acquire|release|acq_rel|seq_cst|consume)\s*:", re.IGNORECASE)
RE_SLEEP = re.compile(
    r"std::this_thread::sleep_(for|until)|(?<![\w:.])(sleep|usleep|nanosleep)\s*\(")
RE_VOLATILE = re.compile(r"(?<!\w)volatile(?!\w)")
# Namespace-scope mutable state uses the g_ prefix by repo convention;
# thread-locals use t_.
RE_GLOBAL_DEF = re.compile(r"^[\w:<>,*&\s]*?[\s*&]g_\w+\s*(=|\{|;)")
RE_GLOBAL_SAFE = re.compile(
    r"std::atomic|GRED_GUARDED_BY|thread_local|\bconstexpr\b|\bconst\b")
RE_COLD = re.compile(r"\bGRED_COLD_PATH\b")
RE_COLD_JUSTIFICATION = re.compile(r"\bcold\s*:", re.IGNORECASE)
RE_TSA = re.compile(r"\bGRED_NO_THREAD_SAFETY_ANALYSIS\b")
RE_TSA_JUSTIFICATION = re.compile(r"\btsa\s*:", re.IGNORECASE)

# How far above a memory_order use its justification comment may sit.
# Wide enough for one comment to cover a slot-merge loop; narrow enough
# that the comment is still next to the code it argues about.
ORDER_WINDOW = 8
COLD_WINDOW = 3

# Library code that is allowed to write to stdio: the logging layer and
# the invariant reporters (their whole job is to print), and the
# benchmark harness's table printer.
COUT_EXEMPT = ("src/common/log", "src/check/", "src/common/table")
# The macro definitions themselves.
ANNOTATION_HEADER = "src/common/thread_annotations.hpp"

RULES = ("rand cout pragma-once catch-value memory-order sleep "
         "volatile-sync mutable-global cold-doc tsa-doc")


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so rules match code only."""
    line = RE_STRING.sub('""', line)
    return RE_LINE_COMMENT.sub("", line)


def comment_of(raw_line: str) -> str:
    """The // comment text of a raw line ('' when none)."""
    m = RE_LINE_COMMENT.search(RE_STRING.sub('""', raw_line))
    return m.group(0) if m else ""


def has_justification(lines, idx, window, pattern) -> bool:
    """True when `pattern` appears in a comment on lines[idx] or within
    `window` lines above it."""
    lo = max(0, idx - window)
    for raw in lines[lo:idx + 1]:
        if pattern.search(comment_of(raw)):
            return True
    return False


def lint_file(path: Path, rel: str, findings: list) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        findings.append((rel, 1, "io", f"unreadable source file: {exc}"))
        return

    lines = text.splitlines()
    in_block_comment = False

    is_header = rel.endswith((".hpp", ".h"))
    if is_header and "#pragma once" not in text:
        findings.append((rel, 1, "pragma-once", "header lacks #pragma once"))

    lib_code = rel.startswith("src/") and not rel.startswith(COUT_EXEMPT)
    src_code = rel.startswith("src/")

    for ln, raw in enumerate(lines, start=1):
        line = raw
        # Cheap block-comment tracking (no nesting, like C++).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        code = strip_noise(line)
        if not code.strip():
            continue

        if RE_RAND.search(code):
            findings.append((rel, ln, "rand",
                             "naked rand()/srand(); use gred::Rng"))
        if lib_code and RE_COUT.search(code):
            findings.append((rel, ln, "cout",
                             "stdio in library code; use gred::log or "
                             "return a typed error"))
        if RE_CATCH_VALUE.search(code):
            findings.append((rel, ln, "catch-value",
                             "catch by value slices; catch by "
                             "(const) reference"))

        if not src_code:
            continue

        if RE_MEMORY_ORDER.search(code) and not has_justification(
                lines, ln - 1, ORDER_WINDOW, RE_ORDER_JUSTIFICATION):
            findings.append((rel, ln, "memory-order",
                             "explicit memory order without a "
                             "`relaxed:`/`acquire:`/... justification "
                             "comment nearby (DESIGN.md §13)"))
        if RE_SLEEP.search(code):
            findings.append((rel, ln, "sleep",
                             "library code never sleeps; yield in poll "
                             "loops, gred::CondVar for blocking waits"))
        if RE_VOLATILE.search(code):
            findings.append((rel, ln, "volatile-sync",
                             "volatile is not a synchronization "
                             "primitive; use std::atomic"))
        if RE_GLOBAL_DEF.search(code) and not RE_GLOBAL_SAFE.search(code):
            findings.append((rel, ln, "mutable-global",
                             "mutable global without a concurrency "
                             "story: make it std::atomic, guard it "
                             "with a capability, or const it"))
        if rel != ANNOTATION_HEADER:
            if RE_COLD.search(code) and not has_justification(
                    lines, ln - 1, COLD_WINDOW, RE_COLD_JUSTIFICATION):
                findings.append((rel, ln, "cold-doc",
                                 "GRED_COLD_PATH without a `cold:` "
                                 "justification comment"))
            if RE_TSA.search(code) and not has_justification(
                    lines, ln - 1, COLD_WINDOW, RE_TSA_JUSTIFICATION):
                findings.append((rel, ln, "tsa-doc",
                                 "GRED_NO_THREAD_SAFETY_ANALYSIS without "
                                 "a `tsa:` justification comment"))


RE_EXPECT = re.compile(r"EXPECT-LINT:\s*([\w-]+)")


def self_test(root: Path) -> int:
    """Lints each fixture under tools/tests/fixtures/lint/, comparing
    the produced rule set per file against its EXPECT-LINT comments."""
    fixture_dir = root / "tools" / "tests" / "fixtures" / "lint"
    fixtures = sorted(fixture_dir.glob("*.cpp")) + sorted(
        fixture_dir.glob("*.hpp"))
    if not fixtures:
        print(f"lint.py --self-test: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2

    failures = 0
    for path in fixtures:
        text = path.read_text(encoding="utf-8")
        expected = sorted(RE_EXPECT.findall(text))
        findings = []
        # Fixtures are linted as if they lived in src/ so the
        # src-only rules apply.
        lint_file(path, "src/" + path.name, findings)
        got = sorted(rule for _, _, rule, _ in findings)
        if got == expected:
            print(f"  PASS {path.name}: {expected or ['clean']}")
        else:
            failures += 1
            print(f"  FAIL {path.name}: expected {expected}, got {got}")
            for relf, ln, rule, msg in findings:
                print(f"    {relf}:{ln}: [{rule}] {msg}")
    print(f"lint self-test: {len(fixtures)} fixtures, {failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    if "--list-rules" in argv:
        print(RULES)
        return 0
    args = [a for a in argv[1:] if a != "--self-test"]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(args[0])
    if not root.is_dir():
        print(f"lint.py: not a directory: {root}", file=sys.stderr)
        return 2
    if "--self-test" in argv:
        return self_test(root)

    findings = []
    scanned = 0
    for sub in ("src", "fuzz", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            scanned += 1
            lint_file(path, path.relative_to(root).as_posix(), findings)

    for rel, ln, rule, msg in findings:
        print(f"{rel}:{ln}: [{rule}] {msg}")
    summary = f"lint: {scanned} files scanned, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
