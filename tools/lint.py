#!/usr/bin/env python3
"""Custom lint gate for the GRED sources (registered as ctest `lint.custom`).

Project-specific rules that clang-tidy does not cover:

  rand          naked rand()/srand() — all randomness must flow through
                gred::Rng so experiments stay reproducible.
  cout          std::cout/std::cerr/printf in library code (src/): the
                library reports through gred::log or typed errors;
                stdout belongs to the example/bench binaries.
                (src/common/log.cpp and src/check — the reporting
                layers themselves — are exempt.)
  pragma-once   every header must open with #pragma once.
  catch-value   `catch (SomeType e)` slices; catch by (const) reference.

Usage: lint.py <repo-root> [--list-rules]
Exit status 0 when clean, 1 with findings (one `path:line: [rule]` per
line), 2 on usage errors.
"""

import re
import sys
from pathlib import Path

RE_RAND = re.compile(r"(?<![\w:.])s?rand\s*\(")
RE_COUT = re.compile(r"(?<![\w:])std::c(out|err)\b|(?<![\w:.>])printf\s*\(")
RE_CATCH_VALUE = re.compile(r"catch\s*\(\s*(?:const\s+)?(?!\.\.\.)[\w:<>]+\s+\w+\s*\)")
RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

# Library code that is allowed to write to stdio: the logging layer and
# the invariant reporters (their whole job is to print), and the
# benchmark harness's table printer.
COUT_EXEMPT = ("src/common/log", "src/check/", "src/common/table")


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so rules match code only."""
    line = RE_STRING.sub('""', line)
    return RE_LINE_COMMENT.sub("", line)


def lint_file(path: Path, rel: str, findings: list) -> None:
    try:
        text = path.read_text(encoding="utf-8")
    except (UnicodeDecodeError, OSError) as exc:
        findings.append((rel, 1, "io", f"unreadable source file: {exc}"))
        return

    lines = text.splitlines()
    in_block_comment = False

    is_header = rel.endswith((".hpp", ".h"))
    if is_header and "#pragma once" not in text:
        findings.append((rel, 1, "pragma-once", "header lacks #pragma once"))

    lib_code = rel.startswith("src/") and not rel.startswith(COUT_EXEMPT)

    for ln, raw in enumerate(lines, start=1):
        line = raw
        # Cheap block-comment tracking (no nesting, like C++).
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + line[end + 2:]

        code = strip_noise(line)
        if not code.strip():
            continue

        if RE_RAND.search(code):
            findings.append((rel, ln, "rand",
                             "naked rand()/srand(); use gred::Rng"))
        if lib_code and RE_COUT.search(code):
            findings.append((rel, ln, "cout",
                             "stdio in library code; use gred::log or "
                             "return a typed error"))
        if RE_CATCH_VALUE.search(code):
            findings.append((rel, ln, "catch-value",
                             "catch by value slices; catch by "
                             "(const) reference"))


def main(argv):
    if "--list-rules" in argv:
        print("rand cout pragma-once catch-value")
        return 0
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    root = Path(argv[1])
    if not root.is_dir():
        print(f"lint.py: not a directory: {root}", file=sys.stderr)
        return 2

    findings = []
    scanned = 0
    for sub in ("src", "fuzz", "tests", "bench", "examples"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
                continue
            scanned += 1
            lint_file(path, path.relative_to(root).as_posix(), findings)

    for rel, ln, rule, msg in findings:
        print(f"{rel}:{ln}: [{rule}] {msg}")
    summary = f"lint: {scanned} files scanned, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
