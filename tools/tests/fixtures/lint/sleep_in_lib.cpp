// Fixture: library code sleeping instead of blocking on a condition
// variable must be flagged.
// EXPECT-LINT: sleep

#include <chrono>
#include <thread>

namespace fixture {

void busy_wait_badly(const bool& done) {
  while (!done) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace fixture
