// Fixture: documented GRED_COLD_PATH / GRED_NO_THREAD_SAFETY_ANALYSIS
// uses are clean. (Lint fixtures are text-scanned, never compiled.)

namespace fixture {

// cold: failure-path reporting; never reached in the steady state.
GRED_COLD_PATH void documented_cold_boundary() {}

// tsa: callback invoked with the registry lock already held by the
// dispatcher; the analysis cannot see through the function pointer.
void documented_escape() GRED_NO_THREAD_SAFETY_ANALYSIS {}

}  // namespace fixture
