// Fixture: justified memory orders are clean — same-line comments,
// comments directly above, and one comment covering a merge loop
// within the lookback window.

#include <atomic>
#include <cstddef>

namespace fixture {

std::atomic<int> cells[4];

int justified_uses() {
  // relaxed: independent tallies, read after the writers quiesced.
  int sum = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    sum += cells[i].load(std::memory_order_relaxed);
  }
  cells[0].store(0, std::memory_order_relaxed);  // relaxed: reset by contract
  return sum;
}

}  // namespace fixture
