// Fixture: a weakened memory order with no justification comment must
// be flagged.
// EXPECT-LINT: memory-order

#include <atomic>

namespace fixture {

std::atomic<int> counter{0};

int naked_relaxed_load() {
  return counter.load(std::memory_order_relaxed);
}

}  // namespace fixture
