// Fixture: GRED_COLD_PATH and GRED_NO_THREAD_SAFETY_ANALYSIS uses
// without their `cold:` / `tsa:` justification comments must both be
// flagged. (Lint fixtures are text-scanned, never compiled, so the
// macros need no definitions here.)
// EXPECT-LINT: cold-doc
// EXPECT-LINT: tsa-doc

namespace fixture {

GRED_COLD_PATH void undocumented_cold_boundary() {}

void undocumented_escape() GRED_NO_THREAD_SAFETY_ANALYSIS {}

}  // namespace fixture
