// Fixture: volatile used as a cross-thread flag must be flagged.
// EXPECT-LINT: volatile-sync

namespace fixture {

volatile bool stop_requested = false;

void spin() {
  while (!stop_requested) {
  }
}

void request_stop() { stop_requested = true; }

}  // namespace fixture
