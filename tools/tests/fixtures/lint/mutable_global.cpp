// Fixture: a namespace-scope mutable (g_-named) variable that is not
// atomic, guarded, thread_local, or const must be flagged.
// EXPECT-LINT: mutable-global

namespace fixture {

int g_request_count = 0;

void bump() { ++g_request_count; }

}  // namespace fixture
