// Fixture: a hot function taking a mutex must be caught reaching
// pthread_mutex_lock (through however many libstdc++ wrappers inlining
// leaves behind).
// HOTPATH-EXPECT: error:locks

#include <mutex>

#include "common/thread_annotations.hpp"

namespace fx {

GRED_HOT_PATH int hot_locked_read(std::mutex& mu, const int& value) {
  std::lock_guard<std::mutex> lk(mu);
  return value;
}

}  // namespace fx
