// Fixture: a hot function whose vector growth survives to codegen
// must be caught reaching operator new.
// HOTPATH-EXPECT: error:allocates

#include <vector>

#include "common/thread_annotations.hpp"

namespace fx {

GRED_HOT_PATH int hot_push(std::vector<int>& v, int n) {
  v.push_back(n);
  return v.back();
}

}  // namespace fx
