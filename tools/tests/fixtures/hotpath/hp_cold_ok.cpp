// Fixture: an allocation behind a GRED_COLD_PATH boundary is fine —
// the traversal prunes at the (noinline) cold node. This is the
// route-errors pattern: failure paths may build messages.

#include "common/thread_annotations.hpp"

namespace fx {

extern int* spill_sink;

// cold: failure-path reporting; allocation is deliberate and off the
// steady state.
GRED_COLD_PATH void spill_report(int n) { spill_sink = new int(n); }

GRED_HOT_PATH int hot_guarded(int n) {
  if (n < 0) spill_report(n);
  return n * 2 + 1;
}

}  // namespace fx
