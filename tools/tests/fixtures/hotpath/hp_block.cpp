// Fixture: a hot function that sleeps must be caught.
// HOTPATH-EXPECT: error:blocks

#include <unistd.h>

#include "common/thread_annotations.hpp"

namespace fx {

GRED_HOT_PATH int hot_backoff(int spins) {
  if (spins > 100) usleep(1);
  return spins + 1;
}

}  // namespace fx
