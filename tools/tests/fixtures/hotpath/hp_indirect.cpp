// Fixture: an indirect call in a hot function is unprovable and must
// be an error (waivable, with justification, in the repo gate).
// HOTPATH-EXPECT: error:indirect

#include "common/thread_annotations.hpp"

namespace fx {

extern int (*volatile_hook)(int);

GRED_HOT_PATH int hot_dispatch(int x) { return volatile_hook(x); }

}  // namespace fx
