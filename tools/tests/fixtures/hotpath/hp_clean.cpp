// Fixture: arithmetic, struct copies (memcpy), and math calls are all
// allowed in a hot function.

#include <cmath>
#include <cstring>

#include "common/thread_annotations.hpp"

namespace fx {

struct Sample {
  double values[16];
};

GRED_HOT_PATH double hot_mix(Sample& dst, const Sample& src, double x) {
  std::memcpy(&dst, &src, sizeof(Sample));
  int exponent = 0;
  (void)std::frexp(x, &exponent);
  return dst.values[0] + static_cast<double>(exponent);
}

}  // namespace fx
