// Fixture: raw std:: lock primitives in library code must be flagged
// (one finding per offending line).
// EXPECT-TS: raw-lock
// EXPECT-TS: raw-lock

#include <mutex>

namespace fixture {

class Queue {
 public:
  void push() {
    std::lock_guard<std::mutex> lk(mu_);
    ++depth_;
  }

 private:
  std::mutex mu_;
  int depth_ = 0;
};

}  // namespace fixture
