// Fixture: the blessed patterns are clean — guarded members, a
// deliberate lock-free read waived with a `tsa:` comment, and
// expression-shaped annotation arguments (Clang's job, not ours).

namespace fixture {

class Guarded {
 public:
  void bump() GRED_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  int value_ GRED_GUARDED_BY(mu_) = 0;
};

struct Published {
  // tsa: double-checked publication — readers load `plan` lock-free
  // after an acquire of the dirty flag; only rebuilds lock.
  Mutex rebuild_mutex;
  int plan = 0;
};

}  // namespace fixture
