// Fixture: an annotation naming a mutex that is not declared in the
// file (here a typo: mu_ vs m_) must be flagged.
// EXPECT-TS: unknown-guard

namespace fixture {

class Counter {
 public:
  void bump() GRED_EXCLUDES(m_);

 private:
  Mutex mu_;
  int value_ GRED_GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
