// Fixture: a Mutex that guards nothing the analysis can see — no
// GRED_GUARDED_BY anywhere in the file and no `tsa:` waiver comment —
// must be flagged.
// EXPECT-TS: unguarded-mutex

namespace fixture {

class Registry {
 public:
  void refresh();

 private:
  Mutex mu_;

  int entries_ = 0;
  double last_refresh_s_ = 0.0;
  bool dirty_ = true;
  int epoch_ = 0;
  long generation_ = 0;
  unsigned pending_ = 0;
  int spare_ = 0;
};

}  // namespace fixture
