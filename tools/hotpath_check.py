#!/usr/bin/env python3
"""GRED_HOT_PATH closure verifier (registered as ctest `lint.hotpath`).

The data plane's contract is "zero allocations, zero locks, zero
blocking in the steady state" (DESIGN.md §13). bench_data_plane proves
the allocation half at runtime for the schedules it happens to run;
this tool proves the whole contract statically, for every path:

  1. Every TU under src/ is re-compiled (exactly as recorded in
     compile_commands.json, normalized to -O2 -DNDEBUG) with GCC's
     -fcallgraph-info=su,da, which dumps the POST-OPTIMIZATION call
     graph per TU — what the generated code actually calls, after
     inlining, not what the source text mentions.
     -fkeep-inline-functions forces header-inline hot functions (ring
     ops, plan_step, metric recorders) to exist as graph nodes even
     when every call site inlined them.
  2. The src/ tree is scanned for GRED_HOT_PATH / GRED_COLD_PATH
     markers (common/thread_annotations.hpp); markers are resolved to
     graph nodes by qualified name against the c++filt-demangled
     symbols.
  3. BFS from every hot root. Traversal prunes at GRED_COLD_PATH
     boundaries (cold is noinline, so the boundary is a real node) and
     at waived edges (tools/hotpath_waivers.conf). Reaching any banned
     symbol — operator new/malloc, pthread lock/wait, sleep, stdio,
     throwing helpers, static-init guards, or the __indirect_call
     placeholder — is an error, reported with the full call chain and
     call sites. Unrecognized external symbols are also errors: the
     closure must be fully analyzed, not silently truncated.

Operator delete / free are WARNINGS, not errors: releasing memory the
cold path allocated is latency noise, not a new allocation.

A marker that resolves to no graph node is an error too — it means the
analyzed TU set does not cover the annotated function, and the proof
would be vacuous.

Waiver file: tools/hotpath_waivers.conf, `root | symbol | callsite |
justification` with regex fields (symbol matches mangled or demangled,
callsite matches the edge's file:line label). A waiver prunes the
whole subtree behind the matched edge, so it must argue why that
subtree is acceptable, not just name it.

Usage:
  hotpath_check.py <repo-root> <compile_commands.json> [--jobs N]
  hotpath_check.py <repo-root> --self-test
Exit 0 clean, 1 errors, 2 usage/setup errors, 77 toolchain missing
(gcc or c++filt not on PATH — ctest SKIP_RETURN_CODE).
"""

import concurrent.futures
import json
import os
import re
import shlex
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

RE_LINE_COMMENT = re.compile(r"//.*$")
RE_STRING = re.compile(r'"(?:[^"\\]|\\.)*"')

RE_NODE = re.compile(
    r'node:\s*\{\s*title:\s*"([^"]+)"\s*label:\s*"((?:[^"\\]|\\.)*)"'
    r"(\s*shape\s*:\s*ellipse)?\s*\}")
RE_EDGE = re.compile(
    r'edge:\s*\{\s*sourcename:\s*"([^"]+)"\s*targetname:\s*"([^"]+)"'
    r'(?:\s*label:\s*"((?:[^"\\]|\\.)*)")?\s*\}')

RE_MARKER = re.compile(r"\bGRED_(HOT|COLD)_PATH\b")
RE_SCOPE = re.compile(
    r"\b(?:namespace\s+([\w:]+)\s*|namespace\s*(?=\{)|"
    r"(?:class|struct)\s+(?:GRED_\w+(?:\([^)]*\))?\s+)*(\w+)[^;{=()]*)\{")
RE_NAME_BEFORE_PAREN = re.compile(r"([\w:~]+)\s*\($")

# What a hot path must never reach. (pattern, category) pairs tested
# against the mangled symbol and its demangling.
BANNED = [
    (re.compile(r"^_Zn[wa]m$|^_Zn[wa]mRKSt9nothrow_t$|"
                r"^_Zn[wa]mSt11align_val_t"), "allocates"),
    (re.compile(r"^(malloc|calloc|realloc|aligned_alloc|posix_memalign|"
                r"strdup|asprintf)$"), "allocates"),
    (re.compile(r"^__cxa_(allocate_exception|throw|rethrow)$"), "throws"),
    (re.compile(r"^_ZSt\d+__throw_\w+$"), "throws"),
    (re.compile(r"^pthread_(mutex_lock|mutex_timedlock|cond_wait|"
                r"cond_timedwait|rwlock_rdlock|rwlock_wrlock|join|once|"
                r"barrier_wait)$|^sem_wait$|^futex\w*$"), "locks/blocks"),
    (re.compile(r"^__cxa_guard_acquire$"),
     "locks/blocks (static-local init guard)"),
    (re.compile(r"^(sleep|usleep|nanosleep|clock_nanosleep|sched_yield|"
                r"poll|select|epoll_wait)$"), "blocks"),
    (re.compile(r"^(write|read|open|open64|close|fwrite|fread|printf|"
                r"fprintf|vfprintf|__printf_chk|__fprintf_chk|puts|fputs|"
                r"fputc|putchar|fflush|getenv)$"), "does I/O"),
    (re.compile(r"^__indirect_call$"),
     "indirect call (target unprovable)"),
]

# Warnings: reachable deallocation is latency noise, not an allocation.
WARNED = re.compile(r"^_Zd[la]Pv|^free$")

# Known-harmless leaf externals: non-blocking, non-allocating.
ALLOWED = re.compile(
    r"^mem(cpy|move|set|cmp)$|^__mem\w+_chk$|"
    r"^str(len|cmp|ncmp)$|"
    r"^(frexp|ldexp|log|log2|log10|log1p|exp|exp2|expm1|pow|sqrt|cbrt|"
    r"hypot|fmod|remainder|sin|cos|tan|asin|acos|atan|atan2|sinh|cosh|"
    r"tanh|floor|ceil|round|lround|llround|trunc|nearbyint|rint|fabs|"
    r"fma|fmin|fmax|copysign|nextafter)f?$|"
    r"^__isnanf?$|^__isinff?$|^__fpclassify\w*$|^__errno_location$|"
    r"^clock_gettime(64)?$|^gettimeofday$|"
    r"^_ZNSt6chrono3_V212steady_clock3nowEv$|"
    r"^_ZNSt6chrono3_V212system_clock3nowEv$|"
    # std::string's move constructor: extern-template in libstdc++ so
    # it stays an external call, but it is noexcept and steals — never
    # allocates.
    r"^_ZNSt7__cxx1112basic_stringIcSt11char_traitsIcESaIcEEC[12]EOS4_$|"
    r"^abort$|^__assert_fail$|^__stack_chk_fail$|"
    r"^_Unwind_Resume$|"  # runs only once a throw (banned) is in flight
    r"^__tls_get_addr$|"
    r"^__(popcount|clz|ctz|ffs|bswap|udiv|umod|div|mod|mul|float|fix)\w*$")

MARKER_EXEMPT = ("src/common/thread_annotations.hpp",)


def strip_code_line(line, state):
    """One comment/string-stripped line; `state` carries block-comment
    context across lines as a 1-element list."""
    line = RE_STRING.sub('""', line)
    if state[0]:
        end = line.find("*/")
        if end < 0:
            return ""
        line = line[end + 2:]
        state[0] = False
    while True:
        start = line.find("/*")
        if start < 0:
            break
        end = line.find("*/", start + 2)
        if end < 0:
            line = line[:start]
            state[0] = True
            break
        line = line[:start] + line[end + 2:]
    return RE_LINE_COMMENT.sub("", line)


def scan_markers(path: Path, rel: str):
    """Yields (kind, qualified_name, rel, line) for every
    GRED_HOT_PATH / GRED_COLD_PATH marker, tracking namespace/class
    scope textually (one scope-opening declaration per line, which
    clang-format guarantees here)."""
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    state = [False]
    lines = [strip_code_line(l, state) for l in raw_lines]

    out = []
    depth = 0
    scopes = []  # (name, depth_at_open)
    for idx, code in enumerate(lines):
        stripped = code.strip()
        if stripped.startswith("#"):
            continue

        if RE_MARKER.search(code):
            kind = RE_MARKER.search(code).group(1)
            after = code[RE_MARKER.search(code).end():]
            # Pull in continuation lines until the parameter list opens.
            look = idx + 1
            while "(" not in after and look < len(lines) and look < idx + 4:
                after += " " + lines[look]
                look += 1
            head = after[:after.find("(")].rstrip() + "("
            m = RE_NAME_BEFORE_PAREN.search(head)
            if m:
                name = m.group(1)
                qualified = "::".join([s for s, _ in scopes] + [name])
                out.append((kind, qualified, rel, idx + 1))
            else:
                out.append(("BAD", code.strip(), rel, idx + 1))

        sm = RE_SCOPE.search(code)
        if sm:
            name = sm.group(1) or sm.group(2) or "(anonymous namespace)"
            scopes.append((name, depth))
        depth += code.count("{") - code.count("}")
        while scopes and depth <= scopes[-1][1]:
            scopes.pop()
    return out


def collect_markers(root: Path, files=None):
    hot, cold, bad = [], [], []
    paths = files if files is not None else sorted(
        (root / "src").rglob("*"))
    for path in paths:
        if path.suffix not in (".cpp", ".hpp", ".h", ".cc"):
            continue
        rel = path.resolve().as_posix()
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.name
        if rel.startswith(MARKER_EXEMPT):
            continue
        for kind, qualified, mrel, ln in scan_markers(path, rel):
            if kind == "HOT":
                hot.append((qualified, mrel, ln))
            elif kind == "COLD":
                cold.append((qualified, mrel, ln))
            else:
                bad.append((qualified, mrel, ln))
    return hot, cold, bad


def parse_ci(text, nodes, edges):
    """Accumulates one TU's VCG dump into the merged graph. Node keys
    are mangled names with the TU prefix stripped."""
    for m in RE_NODE.finditer(text):
        title, label, ellipse = m.group(1), m.group(2), m.group(3)
        key = title.rsplit(":", 1)[-1]
        if not ellipse:
            # Defined here; remember the definition location (second
            # label line) for reports.
            loc = label.split("\\n")[1] if "\\n" in label else ""
            prev = nodes.get(key)
            if prev is None or not prev:
                nodes[key] = loc
        else:
            nodes.setdefault(key, "")
    for m in RE_EDGE.finditer(text):
        src = m.group(1).rsplit(":", 1)[-1]
        tgt = m.group(2).rsplit(":", 1)[-1]
        label = m.group(3) or ""
        edges.setdefault(src, set()).add((tgt, label))


def demangle_all(keys):
    cxxfilt = shutil.which("c++filt") or shutil.which("llvm-cxxfilt")
    if cxxfilt is None:
        return None
    proc = subprocess.run([cxxfilt], input="\n".join(keys),
                          capture_output=True, text=True)
    demangled = proc.stdout.splitlines()
    if len(demangled) != len(keys):
        return {k: k for k in keys}
    return dict(zip(keys, demangled))


def strip_angles(s: str) -> str:
    out = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif depth == 0:
            out.append(ch)
    return "".join(out)


def match_nodes(qualified: str, stripped_by_key: dict) -> set:
    pat = re.compile(r"(?<![\w>])" + re.escape(qualified) + r"\s*\(")
    return {k for k, s in stripped_by_key.items() if pat.search(s)}


class Waiver:
    def __init__(self, root, symbol, callsite, why, line):
        self.root = re.compile(root)
        self.symbol = re.compile(symbol)
        self.callsite = re.compile(callsite)
        self.why = why
        self.line = line
        self.used = False


def load_waivers(path: Path):
    waivers = []
    if not path.is_file():
        return waivers
    for ln, raw in enumerate(path.read_text(encoding="utf-8").splitlines(),
                             start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        # Fields are separated by ` | ` (pipe WITH surrounding spaces)
        # so alternation pipes inside the regexes survive.
        parts = [p.strip() for p in re.split(r"\s\|\s", line)]
        if len(parts) != 4 or not parts[3]:
            print(f"hotpath: {path}:{ln}: malformed waiver (need "
                  "`root | symbol | callsite | justification`, "
                  "` | ` separators with spaces)",
                  file=sys.stderr)
            return None
        waivers.append(Waiver(*parts, line=ln))
    return waivers


def analyze(nodes, edges, demangled, hot, cold, waivers):
    """BFS the merged graph from every hot root. Returns
    (errors, warnings) as lists of printable strings."""
    stripped = {k: strip_angles(d) for k, d in demangled.items()}

    unresolved = []
    root_nodes = {}
    for qualified, rel, ln in hot:
        found = match_nodes(qualified, stripped)
        if not found:
            unresolved.append(
                f"{rel}:{ln}: GRED_HOT_PATH '{qualified}' matches no "
                "node in the analyzed call graph — the proof would be "
                "vacuous (is its TU in compile_commands.json?)")
        root_nodes[qualified] = found

    cold_keys = set()
    for qualified, rel, ln in cold:
        found = match_nodes(qualified, stripped)
        if not found:
            unresolved.append(
                f"{rel}:{ln}: GRED_COLD_PATH '{qualified}' matches no "
                "node in the analyzed call graph")
        cold_keys |= found

    errors = list(unresolved)
    warnings = []

    def path_str(chain):
        lines = []
        for key, site in chain:
            where = f"  [{site}]" if site else ""
            lines.append(f"      -> {demangled.get(key, key)}{where}")
        return "\n".join(lines)

    for qualified, starts in sorted(root_nodes.items()):
        visited = set(starts)
        # (key, chain) where chain is [(key, callsite), ...] from root.
        stack = [(s, [(s, "")]) for s in sorted(starts)]
        while stack:
            key, chain = stack.pop()
            for tgt, site in sorted(edges.get(key, ())):
                if tgt in cold_keys:
                    continue
                dem = demangled.get(tgt, tgt)
                waived = False
                for w in waivers:
                    if (w.root.search(qualified)
                            and (w.symbol.search(tgt)
                                 or w.symbol.search(dem))
                            and w.callsite.search(site)):
                        w.used = True
                        waived = True
                        break
                if waived:
                    continue
                banned = next((why for pat, why in BANNED
                               if pat.search(tgt) or pat.search(dem)),
                              None)
                if banned is not None:
                    errors.append(
                        f"  root {qualified}: reaches '{dem}' which "
                        f"{banned}\n{path_str(chain + [(tgt, site)])}")
                    continue
                if WARNED.search(tgt) or WARNED.search(dem):
                    warnings.append(
                        f"  root {qualified}: reaches '{dem}' "
                        f"(deallocation)\n"
                        f"{path_str(chain + [(tgt, site)])}")
                    continue
                if ALLOWED.search(tgt) or ALLOWED.search(dem):
                    continue
                if tgt in visited:
                    continue
                visited.add(tgt)
                if nodes.get(tgt):  # defined somewhere in the graph
                    stack.append((tgt, chain + [(tgt, site)]))
                elif tgt in nodes and tgt in edges:
                    # Defined node whose location line was empty.
                    stack.append((tgt, chain + [(tgt, site)]))
                else:
                    errors.append(
                        f"  root {qualified}: reaches external '{dem}' "
                        "not covered by the analysis — allowlist it, "
                        "waive it, or add its TU\n"
                        f"{path_str(chain + [(tgt, site)])}")
    return errors, warnings


def keep_flags(argv):
    flags = []
    i = 1
    while i < len(argv):
        a = argv[i]
        if re.match(r"^(-I|-isystem|-D|-U|-std=)", a):
            flags.append(a)
            if a in ("-I", "-isystem", "-D", "-U") and i + 1 < len(argv):
                i += 1
                flags.append(argv[i])
        i += 1
    # The analyzed configuration is the release data plane: optimizer
    # on (so cold calls stay out of line and dead guards fold away),
    # asserts and deep invariant checks compiled out.
    flags = [f for f in flags if f not in ("-DGRED_CHECKED=1",
                                           "-DGRED_CHECKED")]
    return flags + ["-O2", "-DNDEBUG"]


CG_FLAGS = ["-fcallgraph-info=su,da", "-fkeep-inline-functions", "-c"]


def compile_tu(gxx, entry, flags, out_path):
    cmd = [gxx] + flags + CG_FLAGS + [entry["file"], "-o", str(out_path)]
    proc = subprocess.run(cmd, cwd=entry.get("directory", "."),
                          capture_output=True, text=True)
    return proc, out_path.with_suffix(".ci")


def run_repo(root: Path, compile_commands: Path, jobs: int) -> int:
    gxx = shutil.which("g++") or shutil.which("gcc")
    if gxx is None or (shutil.which("c++filt") is None
                       and shutil.which("llvm-cxxfilt") is None):
        print("hotpath: g++ or c++filt not on PATH; skipping")
        return 77
    try:
        entries = json.loads(compile_commands.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        print(f"hotpath: cannot read {compile_commands}: {exc}",
              file=sys.stderr)
        return 2

    tus = []
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry.get("directory", ".")) / src
        try:
            rel = src.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
        if rel.startswith("src/") and src.suffix in (".cpp", ".cc"):
            entry = dict(entry)
            entry["file"] = str(src.resolve())
            tus.append((rel, entry))
    if not tus:
        print("hotpath: no src/ TUs in compile_commands.json",
              file=sys.stderr)
        return 2

    hot, cold, bad = collect_markers(root)
    for qualified, rel, ln in bad:
        print(f"hotpath: {rel}:{ln}: cannot parse function name after "
              f"marker: {qualified}", file=sys.stderr)
    if bad:
        return 2
    if not hot:
        print("hotpath: no GRED_HOT_PATH markers found in src/",
              file=sys.stderr)
        return 2

    waivers = load_waivers(root / "tools" / "hotpath_waivers.conf")
    if waivers is None:
        return 2

    nodes, edges = {}, {}
    failed = 0
    with tempfile.TemporaryDirectory(prefix="gred-hotpath-") as tmp:
        with concurrent.futures.ThreadPoolExecutor(jobs) as pool:
            futs = {}
            for i, (rel, entry) in enumerate(tus):
                argv = entry.get("arguments") or shlex.split(
                    entry["command"])
                flags = keep_flags(argv)
                out = Path(tmp) / f"tu{i}.o"
                futs[pool.submit(compile_tu, gxx, entry, flags, out)] = rel
            for fut in concurrent.futures.as_completed(futs):
                rel = futs[fut]
                proc, ci = fut.result()
                if proc.returncode != 0 or not ci.is_file():
                    failed += 1
                    print(f"hotpath: recompile failed for {rel}:",
                          file=sys.stderr)
                    sys.stderr.write(proc.stderr[:4000])
                    continue
                parse_ci(ci.read_text(encoding="utf-8", errors="replace"),
                         nodes, edges)
    if failed:
        return 2

    demangled = demangle_all(sorted(nodes.keys()))
    if demangled is None:
        print("hotpath: c++filt disappeared mid-run", file=sys.stderr)
        return 77

    errors, warnings = analyze(nodes, edges, demangled, hot, cold, waivers)
    for w in warnings:
        print(f"hotpath: WARNING\n{w}")
    for e in errors:
        print(f"hotpath: ERROR\n{e}")
    for w in waivers:
        if not w.used:
            print(f"hotpath: WARNING unused waiver at "
                  f"hotpath_waivers.conf:{w.line} — delete it")
    print(f"hotpath: {len(tus)} TUs, {len(nodes)} symbols, "
          f"{len(hot)} hot roots, {len(cold)} cold boundaries, "
          f"{len(errors)} error(s), {len(warnings)} warning(s)")
    return 1 if errors else 0


RE_EXPECT = re.compile(r"HOTPATH-EXPECT:\s*(clean|error:(.*))$", re.M)


def self_test(root: Path) -> int:
    gxx = shutil.which("g++") or shutil.which("gcc")
    if gxx is None or (shutil.which("c++filt") is None
                       and shutil.which("llvm-cxxfilt") is None):
        print("hotpath: g++ or c++filt not on PATH; skipping self-test")
        return 77
    fixture_dir = root / "tools" / "tests" / "fixtures" / "hotpath"
    fixtures = sorted(fixture_dir.glob("*.cpp"))
    if not fixtures:
        print(f"hotpath --self-test: no fixtures in {fixture_dir}",
              file=sys.stderr)
        return 2

    failures = 0
    with tempfile.TemporaryDirectory(prefix="gred-hotpath-st-") as tmp:
        for path in fixtures:
            text = path.read_text(encoding="utf-8")
            expects = [e[1].strip() for e in RE_EXPECT.findall(text)
                       if e[0] != "clean"]
            expect_clean = not expects

            entry = {"file": str(path), "directory": tmp}
            flags = [f"-I{root / 'src'}", "-O2", "-DNDEBUG"]
            out = Path(tmp) / (path.stem + ".o")
            proc, ci = compile_tu(gxx, entry, flags, out)
            if proc.returncode != 0:
                failures += 1
                print(f"  FAIL {path.name}: fixture does not compile:")
                sys.stderr.write(proc.stderr[:2000])
                continue

            nodes, edges = {}, {}
            parse_ci(ci.read_text(encoding="utf-8", errors="replace"),
                     nodes, edges)
            hot, cold, bad = collect_markers(root, files=[path])
            demangled = demangle_all(sorted(nodes.keys()))
            errors, _ = analyze(nodes, edges, demangled, hot, cold, [])

            if expect_clean:
                ok = not errors
                detail = f"{len(errors)} unexpected error(s)"
            else:
                missing = [e for e in expects
                           if not any(re.search(e, err) for err in errors)]
                ok = not missing and errors
                detail = f"missing {missing}" if missing else "no errors"
            if ok:
                print(f"  PASS {path.name}: "
                      f"{'clean' if expect_clean else expects}")
            else:
                failures += 1
                print(f"  FAIL {path.name}: {detail}")
                for e in errors:
                    print(f"    got: {e.splitlines()[0].strip()}")
    print(f"hotpath self-test: {len(fixtures)} fixtures, "
          f"{failures} failure(s)")
    return 1 if failures else 0


def main(argv):
    args = list(argv[1:])
    jobs = os.cpu_count() or 4
    if "--jobs" in args:
        i = args.index("--jobs")
        jobs = int(args[i + 1])
        del args[i:i + 2]
    if "--self-test" in args:
        args.remove("--self-test")
        if len(args) != 1:
            print(__doc__, file=sys.stderr)
            return 2
        return self_test(Path(args[0]))
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    return run_repo(Path(args[0]), Path(args[1]), jobs)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
