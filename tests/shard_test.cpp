// Sharded data-plane tests: Morton partitioner determinism, SPSC ring
// FIFO/capacity/wraparound (single- and two-threaded), the validated
// GRED_THREADS/GRED_SHARDS parsing, the four-way differential (sharded
// runtime vs compiled fast path vs live pipeline vs seed-faithful
// walk) on random Waxman substrates, shard-count invariance, and the
// open-loop sustained-load round.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/shard_partition.hpp"
#include "common/spsc_ring.hpp"
#include "core/system.hpp"
#include "crypto/data_key.hpp"
#include "sden/network.hpp"
#include "sden/reference_router.hpp"
#include "sden/seed_router.hpp"
#include "shard/sharded_data_plane.hpp"
#include "topology/waxman.hpp"

namespace gred {
namespace {

topology::EdgeNetwork make_net(std::size_t switches, std::uint64_t seed) {
  Rng rng(seed);
  topology::WaxmanOptions opt;
  opt.node_count = switches;
  opt.min_degree = 3;
  auto topo = topology::generate_waxman(opt, rng);
  EXPECT_TRUE(topo.ok());
  topology::EdgeNetwork net(std::move(topo).value().graph);
  for (std::size_t s = 0; s < switches; ++s) {
    const std::size_t count = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < count; ++k) {
      EXPECT_TRUE(net.attach_server(s).ok());
    }
  }
  return net;
}

sden::Packet make_packet(const std::string& id, sden::PacketType type,
                         const std::string& payload = "") {
  sden::Packet p;
  p.type = type;
  p.data_id = id;
  p.payload = payload;
  const crypto::DataKey key(id);
  p.target = {key.position().x, key.position().y};
  p.set_key(key);
  return p;
}

void expect_identical(const sden::RouteResult& a, const sden::RouteResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status.ok(), b.status.ok()) << what;
  if (!a.status.ok() && !b.status.ok()) {
    EXPECT_EQ(a.status.error().code, b.status.error().code) << what;
    EXPECT_EQ(a.status.error().message, b.status.error().message) << what;
  }
  EXPECT_EQ(a.switch_path, b.switch_path) << what;
  EXPECT_EQ(a.delivered_to, b.delivered_to) << what;
  EXPECT_EQ(a.responder, b.responder) << what;
  EXPECT_EQ(a.payload, b.payload) << what;
  EXPECT_EQ(a.found, b.found) << what;
  EXPECT_DOUBLE_EQ(a.path_cost, b.path_cost) << what;
}

/// Places `items` data ids through the fast path and returns the
/// retrieval packets plus random ingresses for them.
void seed_storage(core::GredSystem& sys, std::size_t n, std::size_t items,
                  std::uint64_t seed, std::vector<sden::Packet>* pkts,
                  std::vector<sden::SwitchId>* ingresses) {
  sden::SdenNetwork& net = sys.network();
  Rng rng(seed);
  sden::RouteResult scratch;
  sden::Packet p;
  for (std::size_t i = 0; i < items; ++i) {
    const std::string id = "sh-" + std::to_string(seed) + "-" +
                           std::to_string(i);
    p = make_packet(id, sden::PacketType::kPlacement, "v-" + id);
    net.route(p, rng.next_below(n), scratch);
    ASSERT_TRUE(scratch.status.ok()) << id;
    pkts->push_back(make_packet(id, sden::PacketType::kRetrieval));
    ingresses->push_back(rng.next_below(n));
  }
}

// --- Morton partitioner -------------------------------------------------

TEST(ShardPartition, DeterministicBalancedContiguous) {
  Rng rng(77);
  const std::size_t n = 103;
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  std::vector<unsigned char> valid(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(-3.0, 5.0);
    ys[i] = rng.uniform(10.0, 11.0);
  }
  valid[17] = 0;  // one position-less node sorts to the tail
  for (const std::size_t shards : {1u, 2u, 5u, 8u}) {
    const auto a =
        partition_by_position(xs.data(), ys.data(), valid.data(), n, shards);
    const auto b =
        partition_by_position(xs.data(), ys.data(), valid.data(), n, shards);
    EXPECT_EQ(a, b) << shards;  // deterministic
    ASSERT_EQ(a.size(), n);
    std::vector<std::size_t> sizes(shards, 0);
    for (const std::uint32_t s : a) {
      ASSERT_LT(s, shards);
      ++sizes[s];
    }
    // Runs differ in size by at most one.
    for (const std::size_t sz : sizes) {
      EXPECT_GE(sz, n / shards);
      EXPECT_LE(sz, n / shards + 1);
    }
  }
}

TEST(ShardPartition, ClampsShardCount) {
  std::vector<double> xs = {0.0, 1.0, 2.0};
  std::vector<double> ys = {0.0, 1.0, 2.0};
  const auto over = partition_by_position(xs.data(), ys.data(), nullptr,
                                          xs.size(), 99);
  for (const std::uint32_t s : over) EXPECT_LT(s, 3u);
  const auto zero =
      partition_by_position(xs.data(), ys.data(), nullptr, xs.size(), 0);
  for (const std::uint32_t s : zero) EXPECT_EQ(s, 0u);
  EXPECT_TRUE(partition_by_position(nullptr, nullptr, nullptr, 0, 4).empty());
}

TEST(ShardPartition, MortonKeyInterleavesCoordinates) {
  // x occupies even bits, y odd bits; the origin is key 0 and the far
  // corner saturates both 21-bit lanes.
  EXPECT_EQ(morton_key_2d(0.0, 0.0), 0u);
  EXPECT_EQ(morton_key_2d(1.0, 0.0) & 0xaaaaaaaaaaaaaaaaULL, 0u);
  EXPECT_EQ(morton_key_2d(0.0, 1.0) & 0x5555555555555555ULL, 0u);
  EXPECT_EQ(morton_key_2d(1.0, 1.0),
            morton_key_2d(1.0, 0.0) | morton_key_2d(0.0, 1.0));
}

// --- SPSC ring ----------------------------------------------------------

TEST(SpscRing, FifoCapacityAndWraparound) {
  SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 4u);  // rounded up to a power of two
  for (int v = 0; v < 4; ++v) EXPECT_TRUE(ring.push(v));
  EXPECT_FALSE(ring.push(99));  // full keeps the item
  int out = -1;
  for (int v = 0; v < 4; ++v) {
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, v);  // FIFO
  }
  EXPECT_FALSE(ring.pop(out));
  EXPECT_TRUE(ring.empty());

  // Many push/pop cycles wrap the indices far past the capacity.
  for (int v = 0; v < 1000; ++v) {
    ASSERT_TRUE(ring.push(v));
    ASSERT_TRUE(ring.pop(out));
    EXPECT_EQ(out, v);
  }
}

TEST(SpscRing, BatchedPushPop) {
  SpscRing<int> ring(8);
  const int items[6] = {10, 11, 12, 13, 14, 15};
  EXPECT_EQ(ring.push_batch(items, 6), 6u);
  int out[8] = {};
  EXPECT_EQ(ring.pop_batch(out, 3), 3u);
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[2], 12);
  // Partial acceptance when the batch exceeds the free slots.
  const int more[8] = {20, 21, 22, 23, 24, 25, 26, 27};
  EXPECT_EQ(ring.push_batch(more, 8), 5u);
  EXPECT_EQ(ring.pop_batch(out, 8), 8u);
  EXPECT_EQ(out[0], 13);
  EXPECT_EQ(out[7], 24);
}

TEST(SpscRing, TwoThreadHandoffPreservesOrder) {
  SpscRing<std::uint32_t> ring(64);
  constexpr std::uint32_t kItems = 20000;
  std::thread producer([&] {
    for (std::uint32_t v = 0; v < kItems; ++v) {
      while (!ring.push(v)) std::this_thread::yield();
    }
  });
  std::uint32_t expected = 0;
  std::uint32_t buf[16];
  while (expected < kItems) {
    const std::size_t n = ring.pop_batch(buf, 16);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- Validated parallelism knobs ----------------------------------------

TEST(EnvParallelism, AcceptsPlainIntegersInRange) {
  ::setenv("GRED_TEST_PAR", "16", 1);
  EXPECT_EQ(env_parallelism("GRED_TEST_PAR"), 16u);
  ::setenv("GRED_TEST_PAR", "1", 1);
  EXPECT_EQ(env_parallelism("GRED_TEST_PAR"), 1u);
  ::unsetenv("GRED_TEST_PAR");
  EXPECT_EQ(env_parallelism("GRED_TEST_PAR"), 0u);  // unset: use fallback
}

TEST(EnvParallelism, RejectsGarbageZeroAndAbsurd) {
  for (const char* bad : {"8x", "x8", "-3", "+4", " 5", "5 ", "", "0",
                          "1e3", "0x10", "99999999"}) {
    ::setenv("GRED_TEST_PAR", bad, 1);
    EXPECT_EQ(env_parallelism("GRED_TEST_PAR"), 0u) << "'" << bad << "'";
  }
  ::setenv("GRED_TEST_PAR", "junk", 1);
  EXPECT_GE(env_parallelism_or_hardware("GRED_TEST_PAR"), 1u);
  ::unsetenv("GRED_TEST_PAR");
}

TEST(EnvParallelism, GredShardsDrivesDefaultShardCount) {
  ::setenv("GRED_SHARDS", "3", 1);
  EXPECT_EQ(shard::default_shard_count(), 3u);
  ::setenv("GRED_SHARDS", "nonsense", 1);
  EXPECT_GE(shard::default_shard_count(), 1u);  // logged fallback
  ::unsetenv("GRED_SHARDS");
  EXPECT_GE(shard::default_shard_count(), 1u);
}

// --- Four-way differential ----------------------------------------------

// The sharded runtime must produce the exact RouteResult of the
// compiled fast path, the live pipeline, and the seed-faithful walk
// for every packet, on several random Waxman substrates.
TEST(ShardDifferential, FourWayBitIdentical) {
  for (const std::size_t n : {24u, 64u}) {
    for (const std::uint64_t seed : {901u, 902u}) {
      auto sys = core::GredSystem::create(make_net(n, seed),
                                          core::VirtualSpaceOptions{});
      ASSERT_TRUE(sys.ok());
      sden::SdenNetwork& net = sys.value().network();

      std::vector<sden::Packet> pkts;
      std::vector<sden::SwitchId> ingresses;
      seed_storage(sys.value(), n, 40, seed * 13, &pkts, &ingresses);

      shard::ShardedDataPlane plane(net, 3);
      std::vector<sden::RouteResult> sharded(pkts.size());
      plane.replay(pkts.data(), ingresses.data(), pkts.size(),
                   sharded.data());

      sden::RouteResult fast;
      sden::Packet scratch;
      for (std::size_t i = 0; i < pkts.size(); ++i) {
        const std::string what =
            "pkt " + std::to_string(i) + " n=" + std::to_string(n);
        scratch = pkts[i];
        net.route(scratch, ingresses[i], fast);
        expect_identical(sharded[i], fast, "fast " + what);
        const sden::RouteResult live =
            sden::reference_route(net, pkts[i], ingresses[i]);
        expect_identical(sharded[i], live, "live " + what);
        const sden::RouteResult seeded =
            sden::seed_faithful_route(net, pkts[i], ingresses[i]);
        expect_identical(sharded[i], seeded, "seed " + what);
      }
    }
  }
}

TEST(ShardDifferential, OutOfRangeIngressMatchesRoute) {
  auto sys = core::GredSystem::create(make_net(16, 910),
                                      core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();
  std::vector<sden::Packet> pkts = {
      make_packet("oor", sden::PacketType::kRetrieval)};
  std::vector<sden::SwitchId> ingresses = {9999};

  shard::ShardedDataPlane plane(net, 2);
  std::vector<sden::RouteResult> sharded(1);
  plane.replay(pkts.data(), ingresses.data(), 1, sharded.data());

  sden::RouteResult fast;
  sden::Packet scratch = pkts[0];
  net.route(scratch, ingresses[0], fast);
  expect_identical(sharded[0], fast, "out-of-range ingress");
  EXPECT_EQ(sharded[0].status.error().code, ErrorCode::kOutOfRange);
}

// --- Shard-count invariance ---------------------------------------------

TEST(ShardInvariance, ResultsIndependentOfShardCount) {
  const std::size_t n = 48;
  auto sys = core::GredSystem::create(make_net(n, 920),
                                      core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();

  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  seed_storage(sys.value(), n, 64, 921, &pkts, &ingresses);

  shard::ShardedDataPlane one(net, 1);
  std::vector<sden::RouteResult> base(pkts.size());
  one.replay(pkts.data(), ingresses.data(), pkts.size(), base.data());
  {
    // With one shard every hop is local and nothing crosses.
    const shard::RoundStats st = one.last_round_stats();
    EXPECT_EQ(st.cross_handoffs, 0u);
    EXPECT_EQ(st.overflow_spills, 0u);
    EXPECT_EQ(st.completed_per_shard, std::vector<std::size_t>{pkts.size()});
  }

  std::size_t total_hops = 0;
  for (const sden::RouteResult& r : base) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_TRUE(r.found);
    total_hops += r.hop_count();
  }

  for (const std::size_t shards : {2u, 4u, 7u}) {
    shard::ShardedDataPlane plane(net, shards);
    EXPECT_EQ(plane.shard_count(), shards);
    std::vector<sden::RouteResult> got(pkts.size());
    plane.replay(pkts.data(), ingresses.data(), pkts.size(), got.data());
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      expect_identical(got[i], base[i],
                       "shards=" + std::to_string(shards) + " pkt " +
                           std::to_string(i));
    }
    // Every committed hop is either shard-local or one cross-shard
    // handoff; the two counters partition the total exactly.
    const shard::RoundStats st = plane.last_round_stats();
    EXPECT_EQ(st.local_hops + st.cross_handoffs, total_hops)
        << "shards=" << shards;
    std::size_t completed = 0;
    for (const std::size_t c : st.completed_per_shard) completed += c;
    EXPECT_EQ(completed, pkts.size());
  }
}

TEST(ShardInvariance, RecompileTracksControlPlaneChanges) {
  const std::size_t n = 24;
  auto sys = core::GredSystem::create(make_net(n, 930),
                                      core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();

  shard::ShardedDataPlane plane(net, 3);

  // Store after construction: storage is data-plane state, no
  // recompile needed.
  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  seed_storage(sys.value(), n, 8, 931, &pkts, &ingresses);
  std::vector<sden::RouteResult> got(pkts.size());
  plane.replay(pkts.data(), ingresses.data(), pkts.size(), got.data());
  sden::RouteResult fast;
  sden::Packet scratch;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    scratch = pkts[i];
    net.route(scratch, ingresses[i], fast);
    expect_identical(got[i], fast, "pre-recompile pkt " + std::to_string(i));
  }

  // recompile() re-derives the partition and plans; replays still
  // match the fast path afterwards.
  plane.recompile();
  plane.replay(pkts.data(), ingresses.data(), pkts.size(), got.data());
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    scratch = pkts[i];
    net.route(scratch, ingresses[i], fast);
    expect_identical(got[i], fast, "post-recompile pkt " + std::to_string(i));
  }
}

// --- Open-loop sustained load -------------------------------------------

TEST(ShardSustainedLoad, CompletesAllArrivalsWithNonNegativeLatency) {
  const std::size_t n = 32;
  auto sys = core::GredSystem::create(make_net(n, 940),
                                      core::VirtualSpaceOptions{});
  ASSERT_TRUE(sys.ok());
  sden::SdenNetwork& net = sys.value().network();

  std::vector<sden::Packet> pkts;
  std::vector<sden::SwitchId> ingresses;
  seed_storage(sys.value(), n, 48, 941, &pkts, &ingresses);

  for (const bool poisson : {true, false}) {
    shard::ShardedDataPlane plane(net, 2);
    std::vector<sden::RouteResult> got(pkts.size());
    std::vector<double> latencies(pkts.size(), -2.0);
    const shard::LoadResult lr = plane.sustained_load(
        pkts.data(), ingresses.data(), pkts.size(), got.data(),
        /*rate_pps=*/50000.0, poisson, /*seed=*/42, latencies.data());
    EXPECT_EQ(lr.completed, pkts.size());
    EXPECT_GT(lr.duration_s, 0.0);
    EXPECT_GT(lr.achieved_pps, 0.0);

    sden::RouteResult fast;
    sden::Packet scratch;
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      EXPECT_TRUE(got[i].status.ok());
      EXPECT_GE(latencies[i], 0.0) << i;
      scratch = pkts[i];
      net.route(scratch, ingresses[i], fast);
      expect_identical(got[i], fast,
                       "open-loop pkt " + std::to_string(i) +
                           (poisson ? " poisson" : " fixed"));
    }
  }
}

}  // namespace
}  // namespace gred
