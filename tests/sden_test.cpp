// Switch-plane simulator: flow tables, the switch pipeline (Algorithm 2
// plus virtual-link relaying and range-extension rewrites), server
// nodes, network packet walks, and the discrete-event queue.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sden/event_queue.hpp"
#include "sden/flow_table.hpp"
#include "sden/network.hpp"
#include "sden/packet.hpp"
#include "sden/server_node.hpp"
#include "sden/switch.hpp"
#include "topology/presets.hpp"

namespace gred::sden {
namespace {

using geometry::Point2D;

// ---------- FlowTable ----------

TEST(FlowTableTest, NeighborInsertAndReplace) {
  FlowTable t;
  t.add_neighbor({1, {0.1, 0.2}, true, 1});
  t.add_neighbor({2, {0.3, 0.4}, false, 1});
  EXPECT_EQ(t.neighbors().size(), 2u);
  // Re-adding the same neighbor replaces, not duplicates.
  t.add_neighbor({1, {0.9, 0.9}, true, 1});
  EXPECT_EQ(t.neighbors().size(), 2u);
  EXPECT_DOUBLE_EQ(t.neighbors()[0].position.x, 0.9);
}

TEST(FlowTableTest, RelayMatchByDest) {
  FlowTable t;
  t.add_relay({0, 0, 5, 9});
  t.add_relay({1, 2, 6, 8});
  auto m = t.match_relay(8);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->succ, 6u);
  EXPECT_FALSE(t.match_relay(77).has_value());
}

TEST(FlowTableTest, RelayReplaceSameSourDest) {
  FlowTable t;
  t.add_relay({0, 1, 2, 9});
  t.add_relay({0, 1, 3, 9});  // same (sour, dest): replaced
  EXPECT_EQ(t.relays().size(), 1u);
  EXPECT_EQ(t.match_relay(9)->succ, 3u);
}

TEST(FlowTableTest, RewriteLifecycle) {
  FlowTable t;
  t.add_rewrite({4, 7, 2});
  ASSERT_TRUE(t.match_rewrite(4).has_value());
  EXPECT_EQ(t.match_rewrite(4)->replacement, 7u);
  EXPECT_FALSE(t.match_rewrite(7).has_value());
  t.remove_rewrite(4);
  EXPECT_FALSE(t.match_rewrite(4).has_value());
  t.remove_rewrite(4);  // idempotent
}

TEST(FlowTableTest, EntryCountAndClear) {
  FlowTable t;
  t.add_neighbor({1, {0, 0}, true, 1});
  t.add_relay({0, 0, 1, 2});
  t.add_rewrite({0, 1, 2});
  EXPECT_EQ(t.entry_count(), 3u);
  t.clear();
  EXPECT_EQ(t.entry_count(), 0u);
}

TEST(FlowTableTest, ToStringListsEverything) {
  FlowTable t;
  t.add_neighbor({3, {0.25, 0.75}, true, 3});
  t.add_neighbor({9, {0.5, 0.5}, false, 4});
  t.add_relay({1, 2, 5, 9});
  t.add_rewrite({7, 8, 2});
  const std::string dump = t.to_string();
  EXPECT_NE(dump.find("sw3"), std::string::npos);
  EXPECT_NE(dump.find("[physical]"), std::string::npos);
  EXPECT_NE(dump.find("[virtual link]"), std::string::npos);
  EXPECT_NE(dump.find("sour=1"), std::string::npos);
  EXPECT_NE(dump.find("h7 -> h8 via sw2"), std::string::npos);
}

// ---------- Switch pipeline ----------

/// A hand-wired 3-switch line: s0(0.1,0.5) - s1(0.5,0.5) - s2(0.9,0.5),
/// where s0 and s2 are DT neighbors over the virtual link through s1.
struct LineFixture {
  Switch s0{0}, s1{1}, s2{2};

  LineFixture() {
    s0.set_position({0.1, 0.5});
    s1.set_position({0.5, 0.5});
    s2.set_position({0.9, 0.5});
    s0.set_local_servers({0});
    s1.set_local_servers({1});
    s2.set_local_servers({2});

    s0.table().add_neighbor({1, {0.5, 0.5}, true, 1});
    s0.table().add_neighbor({2, {0.9, 0.5}, false, 1});  // virtual link
    s1.table().add_neighbor({0, {0.1, 0.5}, true, 0});
    s1.table().add_neighbor({2, {0.9, 0.5}, true, 2});
    s2.table().add_neighbor({1, {0.5, 0.5}, true, 1});
    s2.table().add_neighbor({0, {0.1, 0.5}, false, 1});  // virtual link
    s1.table().add_relay({0, 0, 2, 2});
    s1.table().add_relay({2, 2, 0, 0});
  }

  static Packet packet_to(const Point2D& target,
                          PacketType type = PacketType::kPlacement) {
    Packet p;
    p.type = type;
    p.data_id = "test-item";
    p.target = target;
    return p;
  }
};

TEST(SwitchTest, DeliversLocallyWhenClosest) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.45, 0.5});
  const Decision d = f.s1.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kDeliver);
  ASSERT_EQ(d.targets.size(), 1u);
  EXPECT_EQ(d.targets[0].server, 1u);
  EXPECT_EQ(d.targets[0].via, 1u);
}

TEST(SwitchTest, ForwardsToPhysicalNeighbor) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.5, 0.5});
  const Decision d = f.s0.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, 1u);
  EXPECT_FALSE(p.on_virtual_link());
}

TEST(SwitchTest, EntersVirtualLinkForMultiHopNeighbor) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.95, 0.5});
  const Decision d = f.s0.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, 1u);  // first hop of the virtual link
  EXPECT_TRUE(p.on_virtual_link());
  EXPECT_EQ(p.vlink_dest, 2u);
  EXPECT_EQ(p.vlink_sour, 0u);
}

TEST(SwitchTest, RelaysAlongVirtualLink) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.95, 0.5});
  p.vlink_dest = 2;
  p.vlink_sour = 0;
  const Decision d = f.s1.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, 2u);
  EXPECT_TRUE(p.on_virtual_link());  // still traversing
}

TEST(SwitchTest, VirtualLinkEndpointResumesGreedy) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.95, 0.5});
  p.vlink_dest = 2;
  p.vlink_sour = 0;
  const Decision d = f.s2.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kDeliver);
  EXPECT_FALSE(p.on_virtual_link());  // cleared at the endpoint
  EXPECT_EQ(d.targets[0].server, 2u);
}

TEST(SwitchTest, DropsWhenRelayEntryMissing) {
  LineFixture f;
  Packet p = LineFixture::packet_to({0.95, 0.5});
  p.vlink_dest = 7;  // no relay entry for switch 7
  const Decision d = f.s1.process(p);
  EXPECT_EQ(d.kind, Decision::Kind::kDrop);
  EXPECT_NE(d.drop_reason, nullptr);
}

TEST(SwitchTest, NonParticipantDropsGreedyPackets) {
  Switch transit(5);  // never given a position
  Packet p = LineFixture::packet_to({0.5, 0.5});
  const Decision d = transit.process(p);
  EXPECT_EQ(d.kind, Decision::Kind::kDrop);
}

TEST(SwitchTest, TerminalWithoutServersDrops) {
  Switch s(0);
  s.set_position({0.5, 0.5});
  Packet p = LineFixture::packet_to({0.5, 0.5});
  const Decision d = s.process(p);
  EXPECT_EQ(d.kind, Decision::Kind::kDrop);
}

TEST(SwitchTest, ServerChoiceFollowsHashMod) {
  Switch s(0);
  s.set_position({0.5, 0.5});
  s.set_local_servers({10, 11, 12});
  Packet p = LineFixture::packet_to({0.5, 0.5});
  const Decision d = s.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kDeliver);
  const std::size_t idx = crypto::DataKey("test-item").mod(3);
  EXPECT_EQ(d.targets[0].server, 10u + idx);
}

TEST(SwitchTest, PlacementRewriteDivertsToDelegate) {
  Switch s(0);
  s.set_position({0.5, 0.5});
  s.set_local_servers({10});
  s.table().add_rewrite({10, 42, 3});
  Packet p = LineFixture::packet_to({0.5, 0.5}, PacketType::kPlacement);
  const Decision d = s.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kDeliver);
  ASSERT_EQ(d.targets.size(), 1u);
  EXPECT_EQ(d.targets[0].server, 42u);
  EXPECT_EQ(d.targets[0].via, 3u);
}

TEST(SwitchTest, RetrievalRewriteQueriesBothServers) {
  Switch s(0);
  s.set_position({0.5, 0.5});
  s.set_local_servers({10});
  s.table().add_rewrite({10, 42, 3});
  Packet p = LineFixture::packet_to({0.5, 0.5}, PacketType::kRetrieval);
  const Decision d = s.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kDeliver);
  ASSERT_EQ(d.targets.size(), 2u);
  EXPECT_EQ(d.targets[0].server, 10u);
  EXPECT_EQ(d.targets[0].via, 0u);
  EXPECT_EQ(d.targets[1].server, 42u);
  EXPECT_EQ(d.targets[1].via, 3u);
}

TEST(SwitchTest, TieBrokenByPositionRank) {
  // Two neighbors exactly equidistant from the target; the pipeline
  // must deterministically pick the (x, y)-smaller one.
  Switch s(0);
  s.set_position({0.5, 0.9});
  s.set_local_servers({0});
  s.table().add_neighbor({1, {0.4, 0.5}, true, 1});
  s.table().add_neighbor({2, {0.6, 0.5}, true, 2});
  Packet p = LineFixture::packet_to({0.5, 0.5});
  const Decision d = s.process(p);
  ASSERT_EQ(d.kind, Decision::Kind::kForward);
  EXPECT_EQ(d.next_hop, 1u);  // position (0.4, .5) < (0.6, .5)
}

// ---------- ServerNode ----------

TEST(ServerNodeTest, StoreFetchErase) {
  topology::EdgeServer info;
  info.id = 0;
  info.name = "h0";
  ServerNode node(info);
  EXPECT_TRUE(node.store("a", "payload-a").ok());
  EXPECT_TRUE(node.contains("a"));
  EXPECT_EQ(node.fetch("a").value(), "payload-a");
  EXPECT_FALSE(node.fetch("b").has_value());
  EXPECT_TRUE(node.erase("a"));
  EXPECT_FALSE(node.erase("a"));
  EXPECT_EQ(node.item_count(), 0u);
}

TEST(ServerNodeTest, CapacityEnforced) {
  topology::EdgeServer info;
  info.capacity = 2;
  ServerNode node(info);
  EXPECT_TRUE(node.store("a", "1").ok());
  EXPECT_TRUE(node.store("b", "2").ok());
  EXPECT_TRUE(node.at_capacity());
  EXPECT_EQ(node.remaining_capacity(), 0u);
  const Status s = node.store("c", "3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, ErrorCode::kUnavailable);
  // Overwrite of an existing key is allowed at capacity.
  EXPECT_TRUE(node.store("a", "new").ok());
  EXPECT_EQ(node.fetch("a").value(), "new");
}

TEST(ServerNodeTest, UnboundedCapacity) {
  topology::EdgeServer info;  // capacity 0 = unbounded
  ServerNode node(info);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(node.store("k" + std::to_string(i), "v").ok());
  }
  EXPECT_FALSE(node.at_capacity());
}

TEST(ServerNodeTest, Counters) {
  topology::EdgeServer info;
  ServerNode node(info);
  (void)node.store("a", "1");
  (void)node.store("b", "2");
  node.note_retrieval();
  EXPECT_EQ(node.placements_received(), 2u);
  EXPECT_EQ(node.retrievals_served(), 1u);
}

// ---------- EventQueue ----------

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_EQ(q.processed(), 3u);
}

TEST(EventQueueTest, FifoOnTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RelativeSchedulingDuringRun) {
  EventQueue q;
  std::vector<double> times;
  q.schedule_at(1.0, [&] {
    times.push_back(q.now());
    q.schedule_after(0.5, [&] { times.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueueTest, PastTimesClampToNow) {
  EventQueue q;
  double seen = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_at(0.5, [&] { seen = q.now(); });  // in the past
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(EventQueueTest, StepByStep) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(q.step());
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

// ---------- SdenNetwork walks ----------

/// A 3-switch line network with 1 server each, tables hand-installed
/// exactly like LineFixture.
SdenNetwork make_line_network() {
  topology::EdgeNetwork desc =
      topology::uniform_edge_network(topology::line(3), 1);
  SdenNetwork net(std::move(desc));
  const Point2D pos[3] = {{0.1, 0.5}, {0.5, 0.5}, {0.9, 0.5}};
  for (SwitchId i = 0; i < 3; ++i) {
    net.switch_at(i).set_position(pos[i]);
    net.switch_at(i).set_local_servers(net.description().servers_at(i));
  }
  net.switch_at(0).table().add_neighbor({1, pos[1], true, 1});
  net.switch_at(0).table().add_neighbor({2, pos[2], false, 1});
  net.switch_at(1).table().add_neighbor({0, pos[0], true, 0});
  net.switch_at(1).table().add_neighbor({2, pos[2], true, 2});
  net.switch_at(2).table().add_neighbor({1, pos[1], true, 1});
  net.switch_at(2).table().add_neighbor({0, pos[0], false, 1});
  net.switch_at(1).table().add_relay({0, 0, 2, 2});
  net.switch_at(1).table().add_relay({2, 2, 0, 0});
  return net;
}

Packet make_packet(PacketType type, const std::string& id,
                   const Point2D& target, std::string payload = {}) {
  Packet p;
  p.type = type;
  p.data_id = id;
  p.target = target;
  p.payload = std::move(payload);
  return p;
}

TEST(SdenNetworkTest, PlacementWalksAndStores) {
  SdenNetwork net = make_line_network();
  const RouteResult r = net.inject(
      make_packet(PacketType::kPlacement, "k", {0.88, 0.5}, "v"), 0);
  ASSERT_TRUE(r.status.ok()) << r.status.error().to_string();
  EXPECT_EQ(r.switch_path, (std::vector<SwitchId>{0, 1, 2}));
  EXPECT_EQ(r.hop_count(), 2u);
  ASSERT_EQ(r.delivered_to.size(), 1u);
  EXPECT_EQ(r.delivered_to[0], 2u);
  EXPECT_TRUE(net.server(2).contains("k"));
}

TEST(SdenNetworkTest, RetrievalFindsStoredData) {
  SdenNetwork net = make_line_network();
  ASSERT_TRUE(net
                  .inject(make_packet(PacketType::kPlacement, "k",
                                      {0.88, 0.5}, "v"),
                          1)
                  .status.ok());
  const RouteResult r =
      net.inject(make_packet(PacketType::kRetrieval, "k", {0.88, 0.5}), 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.responder, 2u);
  EXPECT_EQ(r.payload, "v");
  EXPECT_EQ(net.server(2).retrievals_served(), 1u);
}

TEST(SdenNetworkTest, RetrievalOfMissingDataNotFound) {
  SdenNetwork net = make_line_network();
  const RouteResult r = net.inject(
      make_packet(PacketType::kRetrieval, "ghost", {0.88, 0.5}), 0);
  ASSERT_TRUE(r.status.ok());
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.responder, topology::kNoServer);
}

TEST(SdenNetworkTest, IngressOutOfRangeFails) {
  SdenNetwork net = make_line_network();
  const RouteResult r = net.inject(
      make_packet(PacketType::kPlacement, "k", {0.5, 0.5}), 99);
  EXPECT_FALSE(r.status.ok());
}

TEST(SdenNetworkTest, ForwardOverMissingLinkRejected) {
  SdenNetwork net = make_line_network();
  // Sabotage: claim switch 2 is a physical neighbor of switch 0.
  net.switch_at(0).table().add_neighbor({2, {0.9, 0.5}, true, 2});
  const RouteResult r = net.inject(
      make_packet(PacketType::kPlacement, "k", {0.88, 0.5}, "v"), 0);
  EXPECT_FALSE(r.status.ok());
  EXPECT_EQ(r.status.error().code, ErrorCode::kLinkDown);
}

TEST(SdenNetworkTest, LoadsAndTableCounts) {
  SdenNetwork net = make_line_network();
  (void)net.inject(make_packet(PacketType::kPlacement, "a", {0.1, 0.5}, "1"),
                   0);
  (void)net.inject(make_packet(PacketType::kPlacement, "b", {0.9, 0.5}, "2"),
                   0);
  const auto loads = net.server_loads();
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0] + loads[1] + loads[2], 2u);
  const auto tables = net.table_entry_counts();
  EXPECT_EQ(tables[0], 2u);
  EXPECT_EQ(tables[1], 4u);  // 2 neighbors + 2 relays
  net.clear_storage();
  for (std::size_t l : net.server_loads()) EXPECT_EQ(l, 0u);
}

TEST(SdenNetworkTest, RangeExtensionHandoffWalk) {
  SdenNetwork net = make_line_network();
  // Extend switch 2's server (id 2) to switch 1's server (id 1).
  net.switch_at(2).table().add_rewrite({2, 1, 1});
  const RouteResult place = net.inject(
      make_packet(PacketType::kPlacement, "k", {0.88, 0.5}, "v"), 2);
  ASSERT_TRUE(place.status.ok());
  EXPECT_EQ(place.delivered_to, (std::vector<ServerId>{1}));
  EXPECT_TRUE(net.server(1).contains("k"));
  EXPECT_FALSE(net.server(2).contains("k"));
  // The handoff crossed the 2-1 link.
  EXPECT_EQ(place.switch_path.back(), 1u);

  // Retrieval queries both and the delegate responds.
  const RouteResult get = net.inject(
      make_packet(PacketType::kRetrieval, "k", {0.88, 0.5}), 0);
  ASSERT_TRUE(get.status.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.responder, 1u);
  EXPECT_EQ(get.delivered_to.size(), 2u);
}

TEST(SdenNetworkTest, AddSwitchExtendsEverything) {
  SdenNetwork net = make_line_network();
  auto sw = net.add_switch({2});
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw.value(), 3u);
  EXPECT_EQ(net.switch_count(), 4u);
  EXPECT_TRUE(net.description().switches().has_edge(2, 3));
  auto srv = net.attach_server(sw.value(), 100);
  ASSERT_TRUE(srv.ok());
  EXPECT_EQ(net.server(srv.value()).info().attached_to, 3u);
}

TEST(SdenNetworkTest, RemoveSwitchLinks) {
  SdenNetwork net = make_line_network();
  net.remove_switch_links(1);
  EXPECT_FALSE(net.description().switches().has_edge(0, 1));
  EXPECT_FALSE(net.description().switches().has_edge(1, 2));
  EXPECT_TRUE(net.description().servers_at(1).empty());
  EXPECT_FALSE(net.switch_at(1).dt_participant());
}

}  // namespace
}  // namespace gred::sden
