// Kademlia baseline: bucket structure, lookup convergence to the
// XOR-closest node, and underlay pricing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "kad/kademlia.hpp"
#include "topology/presets.hpp"

namespace gred::kad {
namespace {

using topology::EdgeNetwork;
using topology::ServerId;

EdgeNetwork mid_net() {
  return topology::uniform_edge_network(topology::ring(20), 5);  // 100 peers
}

TEST(KademliaTest, XorDistanceBasics) {
  EXPECT_EQ(xor_distance(5, 5), 0u);
  EXPECT_EQ(xor_distance(0b1010, 0b0110), 0b1100u);
  EXPECT_EQ(xor_distance(1, 2), xor_distance(2, 1));
}

TEST(KademliaTest, BuildValidation) {
  EdgeNetwork empty(topology::ring(3));
  EXPECT_FALSE(KademliaNetwork::build(empty).ok());
  KademliaOptions zero;
  zero.bucket_size = 0;
  EXPECT_FALSE(KademliaNetwork::build(mid_net(), zero).ok());
}

TEST(KademliaTest, ClosestServerMatchesBruteForce) {
  const EdgeNetwork net = mid_net();
  auto built = KademliaNetwork::build(net);
  ASSERT_TRUE(built.ok());

  Rng rng(3);
  for (int trial = 0; trial < 300; ++trial) {
    const KadId key = rng.next_u64();
    // Brute force over recomputed node ids.
    ServerId best = 0;
    KadId best_d = ~KadId{0};
    for (const auto& s : net.all_servers()) {
      const KadId id =
          crypto::DataKey("kad-node-" + std::to_string(s.id)).prefix64();
      if (xor_distance(id, key) < best_d) {
        best_d = xor_distance(id, key);
        best = s.id;
      }
    }
    EXPECT_EQ(built.value().closest_server(key), best);
  }
}

TEST(KademliaTest, LookupAlwaysConverges) {
  const EdgeNetwork net = mid_net();
  auto built = KademliaNetwork::build(net);
  ASSERT_TRUE(built.ok());
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    const KadId key = rng.next_u64();
    const ServerId origin = rng.next_below(net.server_count());
    const KadLookupTrace trace = built.value().lookup(origin, key);
    EXPECT_EQ(trace.home, built.value().closest_server(key));
  }
}

TEST(KademliaTest, LookupHopsLogarithmic) {
  const EdgeNetwork net =
      topology::uniform_edge_network(topology::ring(50), 10);  // 500 peers
  auto built = KademliaNetwork::build(net);
  ASSERT_TRUE(built.ok());
  Rng rng(5);
  RunningStats hops;
  for (int t = 0; t < 300; ++t) {
    hops.add(static_cast<double>(
        built.value()
            .lookup(rng.next_below(500), rng.next_u64())
            .overlay_hop_count()));
  }
  EXPECT_LT(hops.mean(), 8.0);  // log2(500)/... with k=8 buckets
  EXPECT_GT(hops.mean(), 1.0);
}

TEST(KademliaTest, LargerBucketsShortenLookups) {
  const EdgeNetwork net = mid_net();
  KademliaOptions k1;
  k1.bucket_size = 1;
  KademliaOptions k16;
  k16.bucket_size = 16;
  auto small = KademliaNetwork::build(net, k1);
  auto large = KademliaNetwork::build(net, k16);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  Rng rng(6);
  double hops_small = 0, hops_large = 0;
  for (int t = 0; t < 300; ++t) {
    const KadId key = rng.next_u64();
    const ServerId origin = rng.next_below(net.server_count());
    hops_small += static_cast<double>(
        small.value().lookup(origin, key).overlay_hop_count());
    hops_large += static_cast<double>(
        large.value().lookup(origin, key).overlay_hop_count());
  }
  EXPECT_LE(hops_large, hops_small);
  EXPECT_GT(large.value().routing_entries(0),
            small.value().routing_entries(0));
}

TEST(KademliaTest, UnderlayStretchAtLeastOne) {
  const EdgeNetwork net = mid_net();
  auto built = KademliaNetwork::build(net);
  ASSERT_TRUE(built.ok());
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());
  Rng rng(7);
  for (int t = 0; t < 200; ++t) {
    const KadRouteReport r = built.value().measure_lookup(
        net, apsp, rng.next_below(net.server_count()), rng.next_u64());
    EXPECT_GE(r.physical_hops, r.shortest_hops);
    EXPECT_GE(r.stretch, 1.0 - 1e-9);
  }
}

TEST(KademliaTest, KeyOwnedLocallyNeedsNoHops) {
  const EdgeNetwork net = mid_net();
  auto built = KademliaNetwork::build(net);
  ASSERT_TRUE(built.ok());
  // Look up a key equal to some node's own id, from that node.
  const KadId own = crypto::DataKey("kad-node-13").prefix64();
  const KadLookupTrace trace = built.value().lookup(13, own);
  EXPECT_EQ(trace.home, 13u);
  EXPECT_EQ(trace.overlay_hop_count(), 0u);
}

}  // namespace
}  // namespace gred::kad
