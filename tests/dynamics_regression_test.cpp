// Regression tests for the dynamics/extension correctness bugs:
//   1. Controller::add_switch must be atomic — a mid-sequence failure
//      must leave no half-joined switch in the topology.
//   2. Controller::remove_switch must re-place orphans through the
//      same rewrite-aware path as normal migration.
//   3. install() must preserve active range-extension rewrites across
//      every rebuild (the root cause behind #2: each dynamics op
//      reinstalls all switch state from scratch).
// Each test fails on the pre-fix code.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "topology/presets.hpp"

namespace gred::core {
namespace {

using sden::SdenNetwork;
using topology::ServerId;
using topology::SwitchId;

SdenNetwork make_net(graph::Graph g, std::size_t per_switch,
                     std::size_t capacity = 0) {
  return SdenNetwork(
      topology::uniform_edge_network(std::move(g), per_switch, capacity));
}

// --- Bug 1: add_switch atomicity ------------------------------------

TEST(AddSwitchAtomicityTest, DuplicateLinkRollsBackTopology) {
  SdenNetwork net = make_net(topology::ring(4), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(proto.place("atom-" + std::to_string(i), "v", i % 4).ok());
  }
  const std::size_t switches_before = net.switch_count();
  const std::size_t servers_before = net.server_count();
  const auto participants_before = ctrl.space().participants();
  const std::size_t edges_before =
      net.description().switches().edge_count();

  // A duplicate target in `links` fails inside the network mutation,
  // after the switch node (and the first copy of the link) exist.
  auto added = ctrl.add_switch(net, {0, 0}, 1);
  ASSERT_FALSE(added.ok());

  // Pre-fix: the half-joined switch and its dangling link leak.
  EXPECT_EQ(net.switch_count(), switches_before);
  EXPECT_EQ(net.server_count(), servers_before);
  EXPECT_EQ(net.description().switches().edge_count(), edges_before);
  EXPECT_EQ(ctrl.space().participants(), participants_before);

  // The data plane still works and no item was lost.
  for (int i = 0; i < 40; ++i) {
    auto r = proto.retrieve("atom-" + std::to_string(i), i % 4);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << i;
  }
}

TEST(AddSwitchAtomicityTest, MigrationFailureRollsBackAndKeepsItems) {
  SdenNetwork net = make_net(topology::ring(5), 2);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(proto.place("mig-" + std::to_string(i), "v", i % 5).ok());
  }
  const auto loads_before = net.server_loads();
  const std::size_t switches_before = net.switch_count();
  const std::size_t servers_before = net.server_count();

  // The joining switch's servers have capacity 1 each; the migration
  // toward the new home needs far more (the same join with unbounded
  // capacity moves dozens of items — see DynamicsTest), so migration
  // fails mid-way and the whole join must unwind.
  auto added = ctrl.add_switch(net, {0, 2}, 2, /*capacity=*/1);
  ASSERT_FALSE(added.ok());

  EXPECT_EQ(net.switch_count(), switches_before);
  EXPECT_EQ(net.server_count(), servers_before);
  // Pre-fix: erase-then-store migration destroys items when a store
  // fails and the half-migrated state is kept. Post-fix every item is
  // exactly where it started.
  EXPECT_EQ(net.server_loads(), loads_before);
  for (int i = 0; i < 200; ++i) {
    auto r = proto.retrieve("mig-" + std::to_string(i), i % 5);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << i;
  }
}

// --- Bug 3 root cause: rewrites must survive reinstalls -------------

TEST(RewritePreservationTest, ExtensionSurvivesLinkDynamics) {
  SdenNetwork net = make_net(topology::ring(4), 1, /*capacity=*/100);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  ASSERT_TRUE(ctrl.extend_range(net, 0).ok());
  const auto rewrite = net.switch_at(0).table().match_rewrite(0);
  ASSERT_TRUE(rewrite.has_value());

  // Any dynamics op reinstalls all switch state; pre-fix the reinstall
  // silently dropped the delegation.
  ASSERT_TRUE(ctrl.add_link(net, 0, 2).ok());
  auto after_add = net.switch_at(0).table().match_rewrite(0);
  ASSERT_TRUE(after_add.has_value());
  EXPECT_EQ(after_add->replacement, rewrite->replacement);
  EXPECT_EQ(after_add->via_switch, rewrite->via_switch);

  ASSERT_TRUE(ctrl.remove_link(net, 0, 2).ok());
  EXPECT_TRUE(net.switch_at(0).table().match_rewrite(0).has_value());
}

TEST(RewritePreservationTest, InvalidatedExtensionIsDroppedNotStale) {
  // Delegation from server 0 (switch 0) to a delegate on a neighbor
  // switch. When that delegate's switch leaves, the rewrite must go
  // away (not point at a detached server), and the delegated items
  // must migrate somewhere retrievable.
  SdenNetwork net = make_net(topology::complete(4), 1, /*capacity=*/100);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);

  ASSERT_TRUE(ctrl.extend_range(net, 0).ok());
  const auto rewrite = net.switch_at(0).table().match_rewrite(0);
  ASSERT_TRUE(rewrite.has_value());

  // Store a few items owned by server 0 — they land on the delegate.
  std::vector<std::string> owned;
  for (int i = 0; owned.size() < 3 && i < 3000; ++i) {
    const std::string id = "stale-" + std::to_string(i);
    const auto p = ctrl.expected_placement(net, crypto::DataKey(id));
    ASSERT_TRUE(p.ok());
    if (p.value().server == 0) {
      owned.push_back(id);
      ASSERT_TRUE(proto.place(id, "v", 1).ok());
    }
  }
  ASSERT_EQ(owned.size(), 3u);

  ASSERT_TRUE(ctrl.remove_switch(net, rewrite->via_switch).ok());
  EXPECT_FALSE(net.switch_at(0).table().match_rewrite(0).has_value());
  for (const std::string& id : owned) {
    auto r = proto.retrieve(id, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << id;
  }
}

// --- Bug 2: orphan re-placement must honor rewrites -----------------

TEST(RemoveSwitchOrphanTest, OrphansFollowActiveExtension) {
  // Two identical systems (the layout is deterministic). In the
  // reference run, remove a switch and record which orphans land on
  // server `home`. In the run under test, `home` has an active
  // extension when the switch leaves — those same orphans must land on
  // the delegate instead (pre-fix they were stored straight on `home`,
  // exactly the load the delegation had just moved away).
  constexpr SwitchId kVictim = 2;

  SdenNetwork ref_net = make_net(topology::complete(5), 1, /*cap=*/1000);
  Controller ref_ctrl;
  ASSERT_TRUE(ref_ctrl.initialize(ref_net).ok());
  GredProtocol ref_proto(ref_net, ref_ctrl);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(ref_proto.place("orph-" + std::to_string(i), "v", i % 5).ok());
  }
  const std::vector<std::string> victims = [&] {
    std::vector<std::string> out;
    for (ServerId s : ref_net.description().servers_at(kVictim)) {
      for (const auto& [id, payload] : ref_net.server(s).items()) {
        out.push_back(id);
      }
    }
    return out;
  }();
  ASSERT_FALSE(victims.empty());
  ASSERT_TRUE(ref_ctrl.remove_switch(ref_net, kVictim).ok());

  // `home` := the post-removal home of the first orphan. The reference
  // run (no extension anywhere) tells us where orphans go by default.
  const auto ref_placement =
      ref_ctrl.expected_placement(ref_net, crypto::DataKey(victims[0]));
  ASSERT_TRUE(ref_placement.ok());
  const ServerId home = ref_placement.value().server;
  std::vector<std::string> home_orphans;
  for (const std::string& id : victims) {
    const auto p = ref_ctrl.expected_placement(ref_net, crypto::DataKey(id));
    ASSERT_TRUE(p.ok());
    if (p.value().server == home) home_orphans.push_back(id);
  }
  ASSERT_FALSE(home_orphans.empty());

  // Run under test: same network, but `home` delegates before the
  // switch leaves.
  SdenNetwork net = make_net(topology::complete(5), 1, /*cap=*/1000);
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(proto.place("orph-" + std::to_string(i), "v", i % 5).ok());
  }
  const std::size_t home_items_before = net.server(home).item_count();
  ASSERT_TRUE(ctrl.extend_range(net, home).ok());
  const auto rewrite = net.switch_at(net.server(home).info().attached_to)
                           .table()
                           .match_rewrite(home);
  ASSERT_TRUE(rewrite.has_value());
  // The delegate must survive the removal or the extension is
  // (correctly) dropped and the test would not exercise the bug.
  ASSERT_NE(rewrite->via_switch, kVictim);
  const ServerId delegate = rewrite->replacement;

  ASSERT_TRUE(ctrl.remove_switch(net, kVictim).ok());

  // The extension is still installed and every home-bound orphan went
  // to the delegate, not to `home` (pre-fix: straight onto `home`).
  // Post-removal migration may move items *off* home (regions shift),
  // but under an active extension it must never gain any.
  ASSERT_TRUE(net.switch_at(net.server(home).info().attached_to)
                  .table()
                  .match_rewrite(home)
                  .has_value());
  EXPECT_LE(net.server(home).item_count(), home_items_before);
  for (const std::string& id : home_orphans) {
    EXPECT_EQ(net.server(home).find(id), nullptr) << id;
    EXPECT_NE(net.server(delegate).find(id), nullptr) << id;
    auto r = proto.retrieve(id, 0);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << id;
  }
}

}  // namespace
}  // namespace gred::core
