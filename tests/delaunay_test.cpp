// Delaunay triangulation: structural validity, the empty-circumcircle
// property, and the guaranteed-delivery property of greedy routing that
// GRED's correctness rests on (Section II-B). Includes parameterized
// random sweeps over point-set sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "geometry/convex_hull.hpp"
#include "geometry/delaunay.hpp"

namespace gred::geometry {
namespace {

std::vector<Point2D> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  return pts;
}

// ---------- structural tests ----------

TEST(DelaunayTest, EmptyAndSingle) {
  auto d0 = DelaunayTriangulation::build({});
  ASSERT_TRUE(d0.ok());
  EXPECT_EQ(d0.value().size(), 0u);
  EXPECT_EQ(d0.value().edge_count(), 0u);

  auto d1 = DelaunayTriangulation::build({{0.5, 0.5}});
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(d1.value().size(), 1u);
  EXPECT_TRUE(d1.value().neighbors(0).empty());
  EXPECT_EQ(d1.value().nearest_site({0.0, 0.0}), 0u);
}

TEST(DelaunayTest, TwoPointsAreNeighbors) {
  auto d = DelaunayTriangulation::build({{0.0, 0.0}, {1.0, 1.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().are_neighbors(0, 1));
  EXPECT_EQ(d.value().edge_count(), 1u);
}

TEST(DelaunayTest, TriangleIsItsOwnDT) {
  auto d = DelaunayTriangulation::build({{0.0, 0.0}, {1.0, 0.0}, {0.5, 1.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().triangles().size(), 1u);
  EXPECT_EQ(d.value().edge_count(), 3u);
  EXPECT_TRUE(d.value().is_valid_delaunay());
}

TEST(DelaunayTest, SquareHasTwoTriangles) {
  auto d = DelaunayTriangulation::build(
      {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().triangles().size(), 2u);
  EXPECT_EQ(d.value().edge_count(), 5u);
  EXPECT_TRUE(d.value().is_valid_delaunay());
}

TEST(DelaunayTest, DuplicatePointsRejected) {
  auto d = DelaunayTriangulation::build({{0.1, 0.2}, {0.1, 0.2}, {0.5, 0.5}});
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.error().code, ErrorCode::kInvalidArgument);
}

TEST(DelaunayTest, CollinearDegeneratesToChain) {
  auto d = DelaunayTriangulation::build(
      {{0.0, 0.0}, {3.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().triangles().empty());
  // Chain along x: 0 - 2 - 3 - 1 (sorted by x).
  EXPECT_TRUE(d.value().are_neighbors(0, 2));
  EXPECT_TRUE(d.value().are_neighbors(2, 3));
  EXPECT_TRUE(d.value().are_neighbors(3, 1));
  EXPECT_FALSE(d.value().are_neighbors(0, 1));
  EXPECT_EQ(d.value().edge_count(), 3u);
}

TEST(DelaunayTest, KnownFlipCase) {
  // Four points where the naive triangulation of insertion order would
  // violate the empty-circle property; the DT must pick the other
  // diagonal. Quad: (0,0), (10,0), (10.5,1), (0.5,1) — thin.
  auto d = DelaunayTriangulation::build(
      {{0.0, 0.0}, {10.0, 0.0}, {10.5, 1.0}, {0.5, 1.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().is_valid_delaunay());
  EXPECT_EQ(d.value().triangles().size(), 2u);
}

TEST(DelaunayTest, GridWithCocircularPoints) {
  // A 4x4 grid has many cocircular quadruples; the builder must still
  // produce a valid triangulation (some diagonal choice).
  std::vector<Point2D> pts;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      pts.push_back({static_cast<double>(i), static_cast<double>(j)});
    }
  }
  auto d = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(d.ok());
  // Euler: for n points with h on the hull, triangles = 2n - h - 2.
  EXPECT_EQ(d.value().triangles().size(), 2u * 16 - 12 - 2);
  // Every point must have at least 2 neighbors.
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_GE(d.value().neighbors(i).size(), 2u);
  }
}

TEST(DelaunayTest, DeterministicWithExplicitRng) {
  const auto pts = random_points(40, 123);
  Rng r1(7), r2(7);
  auto a = DelaunayTriangulation::build(pts, &r1);
  auto b = DelaunayTriangulation::build(pts, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().edge_count(), b.value().edge_count());
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(a.value().neighbors(i), b.value().neighbors(i));
  }
}

TEST(DelaunayTest, InsertionOrderInvariance) {
  // The DT of a generic point set is unique, so different randomized
  // insertion orders must give identical adjacency.
  const auto pts = random_points(30, 99);
  Rng r1(1), r2(424242);
  auto a = DelaunayTriangulation::build(pts, &r1);
  auto b = DelaunayTriangulation::build(pts, &r2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_EQ(a.value().neighbors(i), b.value().neighbors(i)) << i;
  }
}

// ---------- parameterized property sweep ----------

class DelaunayPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
 protected:
  void SetUp() override {
    const auto [n, seed] = GetParam();
    auto built = DelaunayTriangulation::build(random_points(n, seed));
    ASSERT_TRUE(built.ok()) << built.error().to_string();
    dt_ = std::move(built).value();
  }
  DelaunayTriangulation dt_;
};

TEST_P(DelaunayPropertyTest, EmptyCircumcircles) {
  EXPECT_TRUE(dt_.is_valid_delaunay());
}

TEST_P(DelaunayPropertyTest, EulerFormula) {
  // triangles = 2n - h - 2, edges = 3n - h - 3 (n >= 3, generic).
  const auto hull = convex_hull(dt_.points());
  const std::size_t n = dt_.size();
  const std::size_t h = hull.size();
  EXPECT_EQ(dt_.triangles().size(), 2 * n - h - 2);
  EXPECT_EQ(dt_.edge_count(), 3 * n - h - 3);
}

TEST_P(DelaunayPropertyTest, AdjacencySymmetric) {
  for (std::size_t i = 0; i < dt_.size(); ++i) {
    for (std::size_t j : dt_.neighbors(i)) {
      EXPECT_TRUE(dt_.are_neighbors(j, i));
      EXPECT_NE(i, j);
    }
  }
}

TEST_P(DelaunayPropertyTest, GreedyAlwaysReachesNearestSite) {
  // THE property GRED relies on: from any start, greedy routing toward
  // any target point terminates at the globally nearest site.
  Rng rng(std::get<1>(GetParam()) ^ 0xabcdef);
  for (int trial = 0; trial < 200; ++trial) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t start = rng.next_below(dt_.size());
    const auto path = dt_.greedy_route(start, target);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), start);
    EXPECT_EQ(path.back(), dt_.nearest_site(target));
  }
}

TEST_P(DelaunayPropertyTest, GreedyPathStrictlyApproaches) {
  Rng rng(std::get<1>(GetParam()) ^ 0x123456);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t start = rng.next_below(dt_.size());
    const auto path = dt_.greedy_route(start, target);
    for (std::size_t k = 1; k < path.size(); ++k) {
      EXPECT_TRUE(closer_to(target, dt_.points()[path[k]],
                            dt_.points()[path[k - 1]]));
    }
    // No repeated sites.
    std::set<std::size_t> unique(path.begin(), path.end());
    EXPECT_EQ(unique.size(), path.size());
  }
}

TEST_P(DelaunayPropertyTest, GreedyFromNearestIsNoop) {
  Rng rng(std::get<1>(GetParam()) ^ 0x777);
  for (int trial = 0; trial < 50; ++trial) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t home = dt_.nearest_site(target);
    EXPECT_EQ(dt_.greedy_next(home, target), kNoSite);
    const auto path = dt_.greedy_route(home, target);
    EXPECT_EQ(path.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPointSets, DelaunayPropertyTest,
    ::testing::Values(std::make_tuple(4, 11ull), std::make_tuple(8, 22ull),
                      std::make_tuple(16, 33ull), std::make_tuple(32, 44ull),
                      std::make_tuple(64, 55ull), std::make_tuple(128, 66ull),
                      std::make_tuple(200, 77ull)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- clustered (adversarial) distributions ----------

TEST(DelaunayStressTest, TwoTightClusters) {
  Rng rng(88);
  std::vector<Point2D> pts;
  for (int i = 0; i < 25; ++i) {
    pts.push_back({0.1 + 0.01 * rng.next_double(),
                   0.1 + 0.01 * rng.next_double()});
    pts.push_back({0.9 + 0.01 * rng.next_double(),
                   0.9 + 0.01 * rng.next_double()});
  }
  auto d = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d.value().is_valid_delaunay());
  // Greedy still delivers across the gap.
  for (int trial = 0; trial < 100; ++trial) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t start = rng.next_below(pts.size());
    const auto path = d.value().greedy_route(start, target);
    EXPECT_EQ(path.back(), d.value().nearest_site(target));
  }
}

// ---------- incremental insertion (Section VI node join) ----------

TEST(DelaunayInsertTest, MatchesFromScratchBuild) {
  // Insert points one by one; after every insertion the adjacency must
  // equal the DT built from scratch on the same prefix.
  const auto pts = random_points(40, 4242);
  auto incr = DelaunayTriangulation::build(
      std::vector<Point2D>(pts.begin(), pts.begin() + 4));
  ASSERT_TRUE(incr.ok());
  DelaunayTriangulation dt = std::move(incr).value();

  for (std::size_t n = 4; n < pts.size(); ++n) {
    auto idx = dt.insert(pts[n]);
    ASSERT_TRUE(idx.ok()) << idx.error().to_string();
    EXPECT_EQ(idx.value(), n);

    auto fresh = DelaunayTriangulation::build(
        std::vector<Point2D>(pts.begin(), pts.begin() + n + 1));
    ASSERT_TRUE(fresh.ok());
    for (std::size_t i = 0; i <= n; ++i) {
      EXPECT_EQ(dt.neighbors(i), fresh.value().neighbors(i))
          << "after inserting point " << n << ", site " << i;
    }
  }
  EXPECT_TRUE(dt.is_valid_delaunay());
}

TEST(DelaunayInsertTest, DuplicateRejected) {
  auto built = DelaunayTriangulation::build(random_points(10, 1));
  ASSERT_TRUE(built.ok());
  DelaunayTriangulation dt = std::move(built).value();
  const Point2D existing = dt.points()[3];
  auto r = dt.insert(existing);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(dt.size(), 10u);  // unchanged
}

TEST(DelaunayInsertTest, GrowsFromDegenerateStates) {
  // Start empty-ish and grow through every degenerate regime.
  auto built = DelaunayTriangulation::build({{0.0, 0.0}});
  ASSERT_TRUE(built.ok());
  DelaunayTriangulation dt = std::move(built).value();

  ASSERT_TRUE(dt.insert({1.0, 0.0}).ok());   // 2 points
  EXPECT_TRUE(dt.are_neighbors(0, 1));
  ASSERT_TRUE(dt.insert({2.0, 0.0}).ok());   // collinear chain
  EXPECT_TRUE(dt.triangles().empty());
  EXPECT_TRUE(dt.are_neighbors(1, 2));
  ASSERT_TRUE(dt.insert({1.0, 1.0}).ok());   // first real triangle(s)
  EXPECT_FALSE(dt.triangles().empty());
  EXPECT_TRUE(dt.is_valid_delaunay());
  ASSERT_TRUE(dt.insert({0.5, -2.0}).ok());  // below the chain
  EXPECT_TRUE(dt.is_valid_delaunay());
  EXPECT_EQ(dt.size(), 5u);
}

TEST(DelaunayInsertTest, GreedyDeliveryHoldsAfterInsertions) {
  auto built = DelaunayTriangulation::build(random_points(20, 77));
  ASSERT_TRUE(built.ok());
  DelaunayTriangulation dt = std::move(built).value();
  Rng rng(78);
  for (int round = 0; round < 30; ++round) {
    ASSERT_TRUE(dt.insert({rng.next_double(), rng.next_double()}).ok());
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t start = rng.next_below(dt.size());
    EXPECT_EQ(dt.greedy_route(start, target).back(),
              dt.nearest_site(target));
  }
}

TEST(DelaunayStressTest, NearCollinearBand) {
  Rng rng(89);
  std::vector<Point2D> pts;
  for (int i = 0; i < 60; ++i) {
    pts.push_back({rng.next_double(), 0.5 + 1e-5 * rng.next_double()});
  }
  auto d = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(d.ok());
  for (int trial = 0; trial < 100; ++trial) {
    const Point2D target{rng.next_double(), rng.next_double()};
    const std::size_t start = rng.next_below(pts.size());
    const auto path = d.value().greedy_route(start, target);
    EXPECT_EQ(path.back(), d.value().nearest_site(target));
  }
}

}  // namespace
}  // namespace gred::geometry
