// gred::obs — metrics registry, route-trace ring, dynamics event log,
// phase timers, and the JSON / Prometheus exporters.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "topology/presets.hpp"

namespace gred::obs {
namespace {

// Runs first (gtest registration order): the master switch defaults to
// off, so a library user who never touches gred::obs pays nothing.
TEST(ObsFlagTest, DisabledByDefault) { EXPECT_FALSE(enabled()); }

TEST(ObsFlagTest, SetEnabledToggles) {
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
}

TEST(ObsFlagTest, InitFromEnvHonorsGredObs) {
  ::setenv("GRED_OBS", "1", 1);
  EXPECT_TRUE(init_from_env());
  EXPECT_TRUE(enabled());
  ::setenv("GRED_OBS", "0", 1);
  EXPECT_FALSE(init_from_env());
  EXPECT_FALSE(enabled());
  ::unsetenv("GRED_OBS");
  EXPECT_FALSE(init_from_env());
  set_enabled(false);
}

TEST(MetricsTest, CounterAccumulatesAndResets) {
  Registry reg;
  Counter& c = reg.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name, same metric (stable address).
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsTest, GaugeKeepsLastValue) {
  Registry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);
}

TEST(MetricsTest, HistogramSnapshotMatchesRecords) {
  Registry reg;
  Histogram& h = reg.histogram("test.hist");
  h.record(1.5);
  h.record(3.0);
  h.record(0.25);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 4.75);
  EXPECT_DOUBLE_EQ(s.min, 0.25);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.75 / 3.0);
  std::uint64_t binned = 0;
  for (std::size_t i = 0; i < Histogram::kBins; ++i) binned += s.bins[i];
  EXPECT_EQ(binned, 3u);
  // Upper edges are the power-of-two ladder; 2^(kMinExp+1+i).
  EXPECT_DOUBLE_EQ(Histogram::Snapshot::bin_upper(19), 1.0);
  EXPECT_LT(Histogram::Snapshot::bin_upper(0),
            Histogram::Snapshot::bin_upper(1));
}

TEST(MetricsTest, RegistrySnapshotIsNameSorted) {
  Registry reg;
  reg.counter("b").add(2);
  reg.counter("a").add(1);
  reg.gauge("g").set(7.0);
  reg.histogram("h").record(1.0);
  const Registry::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

TEST(TraceRingTest, RecordWrapAndSnapshot) {
  RouteTraceRing ring;
  EXPECT_EQ(ring.capacity(), 0u);
  // Inactive ring ignores records.
  ring.record(RouteTraceSample{});
  EXPECT_EQ(ring.recorded(), 0u);

  ring.enable(3);  // rounds up to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint32_t i = 0; i < 6; ++i) {
    RouteTraceSample s;
    s.ingress = i;
    s.hops = i;
    ring.record(s);
  }
  EXPECT_EQ(ring.recorded(), 6u);
  EXPECT_EQ(ring.dropped(), 0u);
  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest first; the first two records were overwritten.
  EXPECT_EQ(samples.front().seq, 2u);
  EXPECT_EQ(samples.front().ingress, 2u);
  EXPECT_EQ(samples.back().seq, 5u);

  ring.disable();
  EXPECT_EQ(ring.capacity(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(EventLogTest, AppendAssignsSequence) {
  EventLog log;
  DynamicsEvent ev;
  ev.kind = EventKind::kAddLink;
  ev.ok = true;
  EXPECT_EQ(log.append(ev), 0u);
  ev.kind = EventKind::kRemoveSwitch;
  EXPECT_EQ(log.append(ev), 1u);
  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].kind, EventKind::kRemoveSwitch);
  EXPECT_STREQ(event_kind_name(events[0].kind), "add_link");
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

// Whole-system instrumentation: the global flag is on, a controller
// initializes and mutates a network, packets route. Every test in the
// fixture leaves the process-wide obs state as it found it (off,
// empty) so neighbors are unaffected.
class ObsSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry().reset_values();
    event_log().clear();
    route_trace().enable(128);
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    route_trace().disable();
    event_log().clear();
    registry().reset_values();
  }

  static sden::SdenNetwork make_net() {
    return sden::SdenNetwork(
        topology::uniform_edge_network(topology::ring(6), 2));
  }
};

TEST_F(ObsSystemTest, PhaseTimersEventsAndTracesAreRecorded) {
  sden::SdenNetwork net = make_net();
  core::Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  core::GredProtocol proto(net, ctrl);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(proto.place("obs-" + std::to_string(i), "v", i % 6).ok());
  }
  for (int i = 0; i < 30; ++i) {
    auto r = proto.retrieve("obs-" + std::to_string(i), (i + 3) % 6);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().route.found);
  }
  ASSERT_TRUE(ctrl.add_link(net, 0, 3).ok());
  EXPECT_FALSE(ctrl.extend_range(net, 9999).ok());  // logged as failed

  // Control-plane phases each ran at least once (initialize) and the
  // add_link rebuild bumped them again.
  const Registry::Snapshot snap = registry().snapshot();
  for (const char* phase : {"apsp", "mds_embed", "cvt", "dt_build",
                            "install"}) {
    const std::string key = std::string("control.phase.") + phase + ".ms";
    bool found = false;
    for (const auto& [name, hist] : snap.histograms) {
      if (name == key) {
        found = true;
        EXPECT_GE(hist.count, 1u) << key;
      }
    }
    EXPECT_TRUE(found) << key;
  }

  // Data-plane counters and the trace ring saw the traffic.
  EXPECT_GE(registry().counter("sden.packets_routed").value(), 60u);
  EXPECT_GE(registry().histogram("sden.route_hops").snapshot().count, 60u);
  EXPECT_GE(route_trace().recorded(), 60u);
  const auto samples = route_trace().snapshot();
  ASSERT_FALSE(samples.empty());
  bool any_found = false;
  for (const RouteTraceSample& s : samples) {
    EXPECT_LT(s.ingress, 6u);
    any_found = any_found || s.found;
  }
  EXPECT_TRUE(any_found);

  // One event per public dynamics call, in order, failures included.
  const auto events = event_log().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kAddLink);
  EXPECT_TRUE(events[0].ok);
  EXPECT_EQ(events[0].subject, 0u);
  EXPECT_EQ(events[0].peer, 3u);
  EXPECT_GT(events[0].entries_after, 0u);
  EXPECT_GE(events[0].duration_ms, 0.0);
  EXPECT_EQ(events[1].kind, EventKind::kExtendRange);
  EXPECT_FALSE(events[1].ok);
  EXPECT_FALSE(events[1].status.empty());
}

TEST_F(ObsSystemTest, EventLogCoversChurnOps) {
  sden::SdenNetwork net = make_net();
  core::Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  ASSERT_TRUE(ctrl.add_switch(net, {0, 2}, 1).ok());
  ASSERT_TRUE(ctrl.extend_range(net, 0).ok());
  ASSERT_TRUE(ctrl.retract_range(net, 0).ok());
  ASSERT_TRUE(ctrl.remove_switch(net, 6).ok());
  const auto events = event_log().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, EventKind::kAddSwitch);
  EXPECT_EQ(events[0].subject, 6u);  // the id the join produced
  EXPECT_EQ(events[1].kind, EventKind::kExtendRange);
  EXPECT_EQ(events[2].kind, EventKind::kRetractRange);
  EXPECT_EQ(events[3].kind, EventKind::kRemoveSwitch);
  EXPECT_EQ(events[3].subject, 6u);
  for (const DynamicsEvent& ev : events) EXPECT_TRUE(ev.ok);
}

TEST_F(ObsSystemTest, JsonAndPrometheusExportCarryAllSections) {
  sden::SdenNetwork net = make_net();
  core::Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  core::GredProtocol proto(net, ctrl);
  ASSERT_TRUE(proto.place("exp-0", "v", 0).ok());
  ASSERT_TRUE(ctrl.add_link(net, 1, 4).ok());

  const std::string json = to_json(default_sources());
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("control.phase.apsp.ms"), std::string::npos);
  EXPECT_NE(json.find("\"route_trace\""), std::string::npos);
  EXPECT_NE(json.find("\"samples\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
  EXPECT_NE(json.find("\"add_link\""), std::string::npos);

  const std::string prom = to_prometheus(default_sources());
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("gred_sden_packets_routed"), std::string::npos);
  EXPECT_NE(prom.find("gred_control_phase_apsp_ms_bucket"),
            std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(prom.find("gred_dynamics_events_total"), std::string::npos);

  // Null sources drop their sections instead of crashing.
  ExportSources none;
  const std::string empty_json = to_json(none);
  EXPECT_EQ(empty_json.find("\"metrics\""), std::string::npos);
}

}  // namespace
}  // namespace gred::obs
