// Vivaldi embedding: convergence on Euclidean inputs, comparison with
// the M-position embedding, and end-to-end use as GRED's virtual space.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/system.hpp"
#include "core/vivaldi.hpp"
#include "graph/shortest_path.hpp"
#include "linalg/mds.hpp"
#include "topology/presets.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

linalg::Matrix euclidean_distances(const std::vector<geometry::Point2D>& pts) {
  const std::size_t n = pts.size();
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = geometry::distance(pts[i], pts[j]);
    }
  }
  return d;
}

TEST(VivaldiTest, RejectsBadInput) {
  EXPECT_FALSE(vivaldi_embedding(linalg::Matrix(0, 0)).ok());
  EXPECT_FALSE(vivaldi_embedding(linalg::Matrix(2, 3)).ok());
  linalg::Matrix asym(2, 2);
  asym(0, 1) = 1.0;
  asym(1, 0) = 2.0;
  EXPECT_FALSE(vivaldi_embedding(asym).ok());
}

TEST(VivaldiTest, SingleNodeTrivial) {
  auto r = vivaldi_embedding(linalg::Matrix(1, 1));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().coordinates.size(), 1u);
}

TEST(VivaldiTest, ConvergesOnPlanarInput) {
  // Genuinely 2-D distances: Vivaldi should reach low stress.
  Rng rng(7);
  std::vector<geometry::Point2D> pts;
  for (int i = 0; i < 15; ++i) {
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  auto r = vivaldi_embedding(euclidean_distances(pts));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().stress, 0.12);
  EXPECT_LT(r.value().mean_error, 0.5);
}

TEST(VivaldiTest, MoreRoundsNoWorse) {
  Rng rng(8);
  std::vector<geometry::Point2D> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
  }
  const linalg::Matrix d = euclidean_distances(pts);
  VivaldiOptions few;
  few.rounds = 300;
  VivaldiOptions many;
  many.rounds = 40000;
  auto rf = vivaldi_embedding(d, few);
  auto rm = vivaldi_embedding(d, many);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rm.ok());
  EXPECT_LT(rm.value().stress, rf.value().stress + 0.02);
}

TEST(VivaldiTest, DeterministicForSeed) {
  const graph::Graph g = topology::grid(4, 4);
  const auto apsp = graph::all_pairs_shortest_paths(g);
  linalg::Matrix d(16, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) d(i, j) = apsp.dist(i, j);
  }
  auto a = vivaldi_embedding(d);
  auto b = vivaldi_embedding(d);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(a.value().coordinates[i], b.value().coordinates[i]);
  }
}

TEST(VivaldiTest, MPositionBeatsVivaldiOnPlanarInputs) {
  // On genuinely planar distances, classical MDS recovers the exact
  // configuration (stress ~ 0) while the stochastic spring relaxation
  // only approximates it. (On strongly non-Euclidean hop matrices the
  // two objectives differ — MDS minimizes strain, not stress — so no
  // ordering is asserted there; see the ablation bench for numbers.)
  Rng rng(9);
  std::vector<geometry::Point2D> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)});
  }
  const linalg::Matrix d = euclidean_distances(pts);
  auto mds = linalg::classical_mds(d, 2);
  auto viv = vivaldi_embedding(d);
  ASSERT_TRUE(mds.ok());
  ASSERT_TRUE(viv.ok());
  EXPECT_LT(mds.value().stress, 1e-6);
  EXPECT_LT(mds.value().stress, viv.value().stress);
}

TEST(VivaldiTest, BothEmbeddingsBoundedOnHopMatrices) {
  Rng rng(19);
  topology::WaxmanOptions wopt;
  wopt.node_count = 60;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  const auto apsp = graph::all_pairs_shortest_paths(topo.value().graph);
  linalg::Matrix d(60, 60);
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = 0; j < 60; ++j) d(i, j) = apsp.dist(i, j);
  }
  auto mds = linalg::classical_mds(d, 2);
  auto viv = vivaldi_embedding(d);
  ASSERT_TRUE(mds.ok());
  ASSERT_TRUE(viv.ok());
  EXPECT_LT(mds.value().stress, 0.7);
  EXPECT_LT(viv.value().stress, 0.7);
}

TEST(VivaldiVirtualSpaceTest, EndToEndPlacementWorks) {
  Rng rng(10);
  topology::WaxmanOptions wopt;
  wopt.node_count = 30;
  wopt.min_degree = 3;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  VirtualSpaceOptions opt;
  opt.embedding = EmbeddingAlgorithm::kVivaldi;
  auto sys = GredSystem::create(
      topology::uniform_edge_network(std::move(topo).value().graph, 3),
      opt);
  ASSERT_TRUE(sys.ok()) << sys.error().to_string();

  for (int i = 0; i < 100; ++i) {
    const std::string id = "viv-" + std::to_string(i);
    ASSERT_TRUE(sys.value().place(id, "v", i % 30).ok());
    auto r = sys.value().retrieve(id, (i * 7) % 30);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

}  // namespace
}  // namespace gred::core
