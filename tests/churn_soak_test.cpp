// Churn soak: a fixed-seed random interleaving of every dynamics op
// (switch join/leave, link add/remove, range extend/retract) under
// live traffic. After every event the deep invariants must hold and
// every stored item must still be retrievable — the end-to-end
// statement of the dynamics correctness fixes.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "core/protocol.hpp"
#include "obs/events.hpp"
#include "obs/obs.hpp"
#include "sden/hot_key_cache.hpp"
#include "topology/presets.hpp"

namespace gred::core {
namespace {

using sden::SdenNetwork;
using topology::ServerId;
using topology::SwitchId;

class ChurnSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::event_log().clear();
    obs::set_enabled(true);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::event_log().clear();
  }
};

TEST_F(ChurnSoakTest, RandomChurnPreservesInvariantsAndData) {
  SdenNetwork net(
      topology::uniform_edge_network(topology::grid(3, 4), 2));
  Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  GredProtocol proto(net, ctrl);
  // The hot-key cache rides along for the whole soak: every dynamics
  // event must invalidate conservatively, so cached and uncached
  // retrievals stay identical at every step.
  sden::HotKeyCache& cache = net.enable_hot_key_cache();
  Rng rng(0xC0FFEEu);

  std::vector<std::string> live;
  int next_id = 0;
  auto random_participant = [&]() -> SwitchId {
    const auto& parts = ctrl.space().participants();
    return parts[rng.next_below(parts.size())];
  };
  auto place_one = [&]() {
    const std::string id = "soak-" + std::to_string(next_id++);
    auto r = proto.place(id, "payload-" + id, random_participant());
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    live.push_back(id);
  };
  // `verify` uses EXPECT so a violation reports the failing step; the
  // event loop bails on the first failure to keep the log readable.
  auto verify = [&](int step) {
    const auto graph_report =
        check::validate_graph(net.description().switches());
    EXPECT_TRUE(graph_report.ok())
        << "step " << step << ": " << graph_report.to_string();
    const auto table_report = check::validate_flow_tables(
        net, ctrl.space().participants(), ctrl.space().positions());
    EXPECT_TRUE(table_report.ok())
        << "step " << step << ": " << table_report.to_string();
    for (const std::string& id : live) {
      const SwitchId ingress = random_participant();
      auto r = proto.retrieve(id, ingress);
      ASSERT_TRUE(r.ok()) << "step " << step << ": " << id;
      EXPECT_TRUE(r.value().route.found)
          << "step " << step << ": lost " << id;
      // Differential: the repeat may be served from the cache; the
      // same retrieval with the cache off must agree bit-for-bit.
      auto cached = proto.retrieve(id, ingress);
      cache.set_enabled(false);
      auto plain = proto.retrieve(id, ingress);
      cache.set_enabled(true);
      ASSERT_TRUE(cached.ok() && plain.ok())
          << "step " << step << ": " << id;
      EXPECT_EQ(cached.value().route.found, plain.value().route.found)
          << "step " << step << ": " << id;
      EXPECT_EQ(cached.value().route.payload, plain.value().route.payload)
          << "step " << step << ": " << id;
      EXPECT_EQ(cached.value().route.responder,
                plain.value().route.responder)
          << "step " << step << ": " << id;
      if (::testing::Test::HasFailure()) return;
    }
  };

  for (int i = 0; i < 120; ++i) place_one();
  verify(-1);
  ASSERT_FALSE(::testing::Test::HasFailure());

  constexpr int kEvents = 24;
  std::size_t ops_attempted = 0;
  for (int step = 0; step < kEvents; ++step) {
    const std::uint64_t op = rng.next_below(6);
    switch (op) {
      case 0: {  // switch join (sometimes with a degenerate link list)
        const SwitchId u = random_participant();
        const SwitchId v = random_participant();
        (void)ctrl.add_switch(net, {u, v},
                              /*server_count=*/2);
        break;
      }
      case 1: {  // switch leave; may fail (disconnect pre-check)
        if (ctrl.space().participants().size() > 4) {
          (void)ctrl.remove_switch(net, random_participant());
        } else {
          (void)ctrl.add_link(net, random_participant(),
                              random_participant());
        }
        break;
      }
      case 2:  // link add; may fail (exists / self-loop)
        (void)ctrl.add_link(net, random_participant(),
                            random_participant());
        break;
      case 3:  // link remove; may fail (missing / would disconnect)
        (void)ctrl.remove_link(net, random_participant(),
                               random_participant());
        break;
      case 4:  // range extension; may fail (already active)
        (void)ctrl.extend_range(
            net, static_cast<ServerId>(rng.next_below(net.server_count())));
        break;
      default:  // retraction; may fail (none active)
        (void)ctrl.retract_range(
            net, static_cast<ServerId>(rng.next_below(net.server_count())));
        break;
    }
    ++ops_attempted;

    // Traffic between events: a few new stores, one delete.
    place_one();
    place_one();
    if (!live.empty()) {
      const std::size_t victim = rng.next_below(live.size());
      auto r = proto.remove(live[victim], random_participant());
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r.value().route.found) << live[victim];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }

    verify(step);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "invariants broke at step " << step;
  }

  // Audit trail: one dynamics event per attempted op, success or not.
  EXPECT_EQ(obs::event_log().size(), ops_attempted);

  // The cache actually served repeats during the soak (the repeat
  // retrieval in `verify` hits whenever no event intervened).
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace gred::core
