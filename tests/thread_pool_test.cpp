#include "common/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace gred {
namespace {

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), 7, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  pool.parallel_for(0, 10, 3, [&](std::size_t, std::size_t) {
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_FALSE(seen.empty());
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(5, 5, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsOneChunk) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> items{0};
  pool.parallel_for(0, 5, 100, [&](std::size_t lo, std::size_t hi) {
    chunks.fetch_add(1);
    items.fetch_add(hi - lo);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(items.load(), 5u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 100, 10, [&](std::size_t jlo, std::size_t jhi) {
        total.fetch_add(jhi - jlo);
      });
    }
  });
  EXPECT_EQ(total.load(), 800u);
}

TEST(ThreadPoolTest, RunAllExecutesEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> a{0}, b{0}, c{0};
  pool.run_all({[&] { a.fetch_add(1); }, [&] { b.fetch_add(2); },
                [&] { c.fetch_add(3); }});
  EXPECT_EQ(a.load(), 1);
  EXPECT_EQ(b.load(), 2);
  EXPECT_EQ(c.load(), 3);
}

TEST(ThreadPoolTest, ConcurrentExternalCallersBothComplete) {
  ThreadPool pool(4);
  std::atomic<std::size_t> t1{0}, t2{0};
  std::thread first([&] {
    pool.parallel_for(0, 500, 13, [&](std::size_t lo, std::size_t hi) {
      t1.fetch_add(hi - lo);
    });
  });
  std::thread second([&] {
    pool.parallel_for(0, 300, 7, [&](std::size_t lo, std::size_t hi) {
      t2.fetch_add(hi - lo);
    });
  });
  first.join();
  second.join();
  EXPECT_EQ(t1.load(), 500u);
  EXPECT_EQ(t2.load(), 300u);
}

TEST(ThreadPoolTest, DefaultThreadCountReadsEnvironment) {
  ASSERT_EQ(setenv("GRED_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_thread_count(), 3u);
  ASSERT_EQ(setenv("GRED_THREADS", "bogus", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(setenv("GRED_THREADS", "0", 1), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("GRED_THREADS"), 0);
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace gred
