// The gred::check validators themselves: each one must pass on a
// known-good structure, report real work (checked > 0), and — the part
// a validator test must never skip — actually detect tampering.
// Also the degenerate Delaunay inputs the paper's join protocol can
// meet in practice: collinear-only sites, duplicates, cocircular
// quadruples.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "core/controller.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/point.hpp"
#include "graph/graph.hpp"
#include "graph/shortest_path.hpp"
#include "topology/presets.hpp"

namespace gred::check {
namespace {

using geometry::DelaunayTriangulation;
using geometry::Point2D;

std::vector<Point2D> random_points(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_double(), rng.next_double()});
  }
  return pts;
}

// --- validate_delaunay -------------------------------------------------

TEST(ValidateDelaunay, PassesOnRandomSites) {
  auto dt = DelaunayTriangulation::build(random_points(60, 7)).value();
  const CheckReport report = validate_delaunay(dt);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked, 60u);
}

TEST(ValidateDelaunay, TinyTriangulations) {
  // n = 0, 1, 2 never have triangles; the chain structure must hold.
  EXPECT_TRUE(validate_delaunay(DelaunayTriangulation()).ok());
  EXPECT_TRUE(validate_delaunay(
                  DelaunayTriangulation::build({{0.5, 0.5}}).value())
                  .ok());
  auto pair =
      DelaunayTriangulation::build({{0.1, 0.2}, {0.8, 0.9}}).value();
  EXPECT_TRUE(pair.are_neighbors(0, 1));
  EXPECT_TRUE(validate_delaunay(pair).ok());
}

TEST(ValidateDelaunay, CollinearOnlySites) {
  // Exactly-collinear chain: no triangles, consecutive-site adjacency.
  std::vector<Point2D> pts;
  for (int i = 0; i < 12; ++i) {
    pts.push_back({0.0625 * i, 0.125 * i});
  }
  auto built = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(built.ok());
  const DelaunayTriangulation& dt = built.value();
  EXPECT_TRUE(dt.triangles().empty());
  const CheckReport report = validate_delaunay(dt);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked, 0u);
}

TEST(ValidateDelaunay, CollinearThenInsertOffLine) {
  std::vector<Point2D> pts;
  for (int i = 0; i < 8; ++i) pts.push_back({0.125 * i, 0.25});
  auto built = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(built.ok());
  DelaunayTriangulation dt = std::move(built).value();
  ASSERT_TRUE(dt.insert({0.3, 0.9}).ok());
  EXPECT_FALSE(dt.triangles().empty());
  const CheckReport report = validate_delaunay(dt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateDelaunay, NearCollinearSliverSites) {
  // Points within one ulp of a line: build() must orient every sliver
  // with the exact predicate (regression: the naive signed_area2
  // orientation produced invalid triangulations here).
  Rng rng(0x51);
  std::vector<Point2D> pts;
  for (int i = 0; i < 24; ++i) {
    const double t = rng.next_double();
    pts.push_back({t, 0.5 + 0.25 * t});
  }
  auto built = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(built.ok());
  const CheckReport report = validate_delaunay(built.value());
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ValidateDelaunay, DuplicateSitesRejected) {
  auto built = DelaunayTriangulation::build(
      {{0.1, 0.1}, {0.9, 0.2}, {0.5, 0.8}, {0.1, 0.1}});
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, ErrorCode::kInvalidArgument);

  auto dt =
      DelaunayTriangulation::build({{0.1, 0.1}, {0.9, 0.2}, {0.5, 0.8}})
          .value();
  EXPECT_FALSE(dt.insert({0.9, 0.2}).ok());
  EXPECT_TRUE(validate_delaunay(dt).ok());
}

TEST(ValidateDelaunay, CocircularQuadruple) {
  // Four exactly cocircular points (a square): either diagonal gives a
  // valid DT; the empty-circumcircle predicate must treat the
  // boundary as empty and insertion must not crash.
  std::vector<Point2D> pts{{0.25, 0.25}, {0.75, 0.25}, {0.75, 0.75},
                           {0.25, 0.75}};
  auto built = DelaunayTriangulation::build(pts);
  ASSERT_TRUE(built.ok());
  DelaunayTriangulation dt = std::move(built).value();
  EXPECT_EQ(dt.triangles().size(), 2u);
  CheckReport report = validate_delaunay(dt);
  EXPECT_TRUE(report.ok()) << report.to_string();

  // The circle's center is cocircular-adjacent too: still fine.
  ASSERT_TRUE(dt.insert({0.5, 0.5}).ok());
  report = validate_delaunay(dt);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- validate_virtual_space --------------------------------------------

TEST(ValidateVirtualSpace, AgreesWithBruteForce) {
  const std::vector<Point2D> sites = random_points(40, 11);
  auto dt = DelaunayTriangulation::build(sites).value();
  const CheckReport report = validate_virtual_space(
      sites, [&](const Point2D& p) { return dt.nearest_site(p); });
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked, sites.size());
}

TEST(ValidateVirtualSpace, DetectsWrongAnswers) {
  const std::vector<Point2D> sites = random_points(40, 12);
  // An off-by-one "nearest" map must be caught.
  const CheckReport report = validate_virtual_space(
      sites, [&](const Point2D&) { return std::size_t{0}; });
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.violations.empty());
}

// --- validate_graph ----------------------------------------------------

TEST(ValidateGraph, PassesOnPreset) {
  const graph::Graph g = topology::grid(4, 4);
  EXPECT_TRUE(validate_graph(g).ok());
  const graph::ApspResult unweighted =
      graph::all_pairs_shortest_paths(g, /*weighted=*/false);
  const CheckReport report = validate_graph(g, unweighted, false);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked, 16u * 16u);
}

TEST(ValidateGraph, DetectsCorruptedApsp) {
  const graph::Graph g = topology::ring(6);
  graph::ApspResult apsp =
      graph::all_pairs_shortest_paths(g, /*weighted=*/false);
  apsp.dist(1, 4) = 0.25;  // not a real shortest-path distance
  const CheckReport report = validate_graph(g, apsp, false);
  EXPECT_FALSE(report.ok());
}

TEST(ValidateGraph, DisconnectedComponentsConsistent) {
  graph::Graph g(6);
  ASSERT_TRUE(g.add_edge(0, 1).ok());
  ASSERT_TRUE(g.add_edge(1, 2).ok());
  ASSERT_TRUE(g.add_edge(3, 4).ok());  // {3,4,5} component (5 isolated)
  const graph::ApspResult apsp =
      graph::all_pairs_shortest_paths(g, /*weighted=*/false);
  const CheckReport report = validate_graph(g, apsp, false);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// --- validate_flow_tables ----------------------------------------------

TEST(ValidateFlowTables, PassesAfterInstall) {
  sden::SdenNetwork net(
      topology::uniform_edge_network(topology::grid(4, 4), 2));
  core::Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  const CheckReport report = validate_flow_tables(
      net, ctrl.space().participants(), ctrl.space().positions());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked, 16u);
}

TEST(ValidateFlowTables, DetectsStalePositions) {
  sden::SdenNetwork net(
      topology::uniform_edge_network(topology::grid(3, 3), 1));
  core::Controller ctrl;
  ASSERT_TRUE(ctrl.initialize(net).ok());
  // Claim different ground-truth positions than the ones installed:
  // every candidate entry is now stale.
  std::vector<Point2D> moved = ctrl.space().positions();
  for (Point2D& p : moved) {
    p.x = 1.0 - p.x;
    p.y = 1.0 - p.y;
  }
  const CheckReport report =
      validate_flow_tables(net, ctrl.space().participants(), moved);
  EXPECT_FALSE(report.ok());
}

// --- CheckReport plumbing ----------------------------------------------

TEST(CheckReport, CapsStoredViolations) {
  CheckReport report;
  report.subject = "cap-test";
  for (std::size_t i = 0; i < CheckReport::kMaxViolations + 10; ++i) {
    report.fail("violation " + std::to_string(i));
  }
  EXPECT_EQ(report.violations.size(), CheckReport::kMaxViolations);
  EXPECT_EQ(report.suppressed, 10u);
  EXPECT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("cap-test"), std::string::npos);
}

}  // namespace
}  // namespace gred::check
