// Whole-system integration: GRED over generated Waxman topologies,
// parameterized across sizes and variants, checking the paper's
// qualitative claims end to end — guaranteed delivery, one-overlay-hop
// determinism, stretch bounds versus Chord, and CVT's load-balance win.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "chord/chord.hpp"
#include "chord/underlay.hpp"
#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "core/system.hpp"
#include "topology/waxman.hpp"

namespace gred::core {
namespace {

using topology::EdgeNetwork;
using topology::SwitchId;

EdgeNetwork waxman_net(std::size_t switches, std::size_t servers_per_switch,
                       std::uint64_t seed, std::size_t min_degree = 3) {
  Rng rng(seed);
  topology::WaxmanOptions opt;
  opt.node_count = switches;
  opt.min_degree = min_degree;
  auto topo = topology::generate_waxman(opt, rng);
  EXPECT_TRUE(topo.ok());
  return topology::uniform_edge_network(std::move(topo).value().graph,
                                        servers_per_switch);
}

class EndToEndTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(EndToEndTest, PlacementRetrievalAndDelivery) {
  const auto [switches, use_cvt] = GetParam();
  VirtualSpaceOptions opt;
  opt.use_cvt = use_cvt;
  opt.cvt_iterations = 20;
  auto built = GredSystem::create(waxman_net(switches, 4, switches), opt);
  ASSERT_TRUE(built.ok()) << built.error().to_string();
  GredSystem sys = std::move(built).value();

  Rng rng(switches * 31 + use_cvt);
  StretchCollector stretch;
  for (int i = 0; i < 150; ++i) {
    const std::string id = "e2e-" + std::to_string(i);
    const SwitchId in_place = rng.next_below(switches);
    const SwitchId in_get = rng.next_below(switches);

    auto placed = sys.place(id, "v" + std::to_string(i), in_place);
    ASSERT_TRUE(placed.ok()) << placed.error().to_string();
    stretch.add_stretch(placed.value().stretch);

    // The terminal switch must be the controller's ground-truth home.
    const auto expected = sys.controller().expected_placement(
        sys.network(), crypto::DataKey(id));
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(placed.value().route.delivered_to[0],
              expected.value().server);

    auto got = sys.retrieve(id, in_get);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got.value().route.found) << id;
    EXPECT_EQ(got.value().route.payload, "v" + std::to_string(i));
  }
  // GRED's stretch stays small (the paper: < 1.5 on average).
  EXPECT_LT(stretch.summary().mean, 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EndToEndTest,
    ::testing::Combine(::testing::Values<std::size_t>(10, 25, 50, 80),
                       ::testing::Bool()),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_cvt" : "_nocvt");
    });

TEST(ComparisonTest, GredBeatsChordOnStretch) {
  const EdgeNetwork net = waxman_net(60, 10, 4242);
  VirtualSpaceOptions opt;
  opt.cvt_iterations = 30;
  auto built = GredSystem::create(net, opt);
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();

  auto ring = chord::ChordRing::build(net);
  ASSERT_TRUE(ring.ok());
  const auto apsp = graph::all_pairs_shortest_paths(net.switches());

  Rng rng(99);
  StretchCollector gred_stretch, chord_stretch;
  for (int i = 0; i < 150; ++i) {
    const std::string id = "cmp-" + std::to_string(i);
    const SwitchId ingress = rng.next_below(60);
    auto placed = sys.place(id, "v", ingress);
    ASSERT_TRUE(placed.ok());
    gred_stretch.add_stretch(placed.value().stretch);

    const crypto::DataKey key(id);
    const topology::ServerId origin =
        net.servers_at(ingress)[rng.next_below(10)];
    chord_stretch.add_stretch(
        chord::measure_lookup(ring.value(), net, apsp, origin,
                              chord::ChordRing::key_of(key))
            .stretch);
  }
  // The headline claim: GRED's routing cost is far below Chord's.
  EXPECT_LT(gred_stretch.summary().mean * 1.8, chord_stretch.summary().mean);
}

TEST(ComparisonTest, CvtImprovesLoadBalanceOverNoCvtAndChord) {
  const EdgeNetwork net = waxman_net(40, 10, 777);

  VirtualSpaceOptions cvt_opt;
  cvt_opt.cvt_iterations = 50;
  VirtualSpaceOptions nocvt_opt;
  nocvt_opt.use_cvt = false;
  auto sys_cvt = GredSystem::create(net, cvt_opt);
  auto sys_nocvt = GredSystem::create(net, nocvt_opt);
  ASSERT_TRUE(sys_cvt.ok());
  ASSERT_TRUE(sys_nocvt.ok());
  auto ring = chord::ChordRing::build(net);
  ASSERT_TRUE(ring.ok());

  const int items = 40000;
  std::vector<chord::RingId> keys;
  for (int i = 0; i < items; ++i) {
    const std::string id = "bal-" + std::to_string(i);
    ASSERT_TRUE(sys_cvt.value().place(id, "", 0).ok());
    ASSERT_TRUE(sys_nocvt.value().place(id, "", 0).ok());
    keys.push_back(crypto::DataKey(id).prefix64());
  }

  const double cvt_bal =
      load_balance(sys_cvt.value().network().server_loads()).max_over_avg;
  const double nocvt_bal =
      load_balance(sys_nocvt.value().network().server_loads()).max_over_avg;
  const double chord_bal =
      load_balance(chord::chord_key_loads(ring.value(), net, keys))
          .max_over_avg;

  EXPECT_LT(cvt_bal, nocvt_bal);   // Fig. 7(b) / 11(c)
  EXPECT_LT(cvt_bal, chord_bal);   // Fig. 11(a)
  EXPECT_LT(cvt_bal, 3.0);         // paper: < 2.5 for T >= 10
}

TEST(IntegrationTest, TableSizesStayBounded) {
  // Fig. 9(d): forwarding state per switch is small and grows only
  // mildly with network size.
  for (std::size_t n : {20u, 60u, 120u}) {
    auto built = GredSystem::create(waxman_net(n, 10, n * 13));
    ASSERT_TRUE(built.ok());
    const auto counts = built.value().network().table_entry_counts();
    double mean = 0;
    for (std::size_t c : counts) mean += static_cast<double>(c);
    mean /= static_cast<double>(counts.size());
    EXPECT_LT(mean, 40.0) << "n=" << n;
  }
}

TEST(IntegrationTest, HeterogeneousNetworkWorks) {
  Rng rng(31337);
  topology::WaxmanOptions wopt;
  wopt.node_count = 30;
  auto topo = topology::generate_waxman(wopt, rng);
  ASSERT_TRUE(topo.ok());
  topology::HeterogeneousOptions hopt;
  hopt.min_servers_per_switch = 1;
  hopt.max_servers_per_switch = 8;
  const EdgeNetwork net = topology::heterogeneous_edge_network(
      std::move(topo).value().graph, hopt, rng);

  auto built = GredSystem::create(net);
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();
  for (int i = 0; i < 100; ++i) {
    const std::string id = "het-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v", i % 30).ok());
    auto r = sys.retrieve(id, (i * 7) % 30);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found);
  }
}

// Model-based randomized testing: run a random operation sequence
// against GRED and a trivial reference map; every retrieval must agree
// with the model, across churn, overwrites, and range extensions.
class ModelCheckTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelCheckTest, RandomOpSequenceMatchesReferenceModel) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  auto built = GredSystem::create(waxman_net(10, 2, seed, 2));
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();

  std::unordered_map<std::string, std::string> model;
  std::vector<topology::SwitchId> added_switches;
  std::size_t extended = topology::kNoServer;

  // Requests enter at live (DT-participating) switches; a removed
  // switch is an inert transit node and rejects injections by design.
  auto random_participant = [&]() {
    const auto& live = sys.controller().space().participants();
    return live[rng.next_below(live.size())];
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t dice = rng.next_below(100);
    if (dice < 45) {
      // Place (possibly overwriting).
      const std::string id = "mc-" + std::to_string(rng.next_below(120));
      const std::string payload = "p" + std::to_string(step);
      auto r = sys.place(id, payload, random_participant());
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      model[id] = payload;
    } else if (dice < 80) {
      // Retrieve a random id (existing or not) and compare to model.
      const std::string id = "mc-" + std::to_string(rng.next_below(140));
      auto r = sys.retrieve(id, random_participant());
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      const auto it = model.find(id);
      if (it == model.end()) {
        EXPECT_FALSE(r.value().route.found) << id;
      } else {
        ASSERT_TRUE(r.value().route.found) << id << " step " << step;
        EXPECT_EQ(r.value().route.payload, it->second);
      }
    } else if (dice < 85) {
      // Remove a random id and mirror it in the model.
      const std::string id = "mc-" + std::to_string(rng.next_below(140));
      auto r = sys.remove(id, random_participant());
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      EXPECT_EQ(r.value().route.found, model.erase(id) > 0) << id;
    } else if (dice < 90 && added_switches.size() < 3) {
      // Join a new switch linked to two random live ones.
      const topology::SwitchId a = random_participant();
      const topology::SwitchId b = random_participant();
      auto sw = sys.add_switch(a == b ? std::vector<topology::SwitchId>{a}
                                      : std::vector<topology::SwitchId>{a, b},
                               1);
      if (sw.ok()) added_switches.push_back(sw.value());
    } else if (dice < 94 && !added_switches.empty()) {
      // Leave: remove one of the switches we added.
      const topology::SwitchId sw = added_switches.back();
      if (sys.remove_switch(sw).ok()) added_switches.pop_back();
    } else if (dice < 97 && extended == topology::kNoServer) {
      const topology::ServerId target =
          rng.next_below(sys.network().server_count());
      if (sys.extend_range(target).ok()) extended = target;
    } else if (extended != topology::kNoServer) {
      // Dynamics wipe rewrites on rebuild; tolerate kNotFound.
      (void)sys.retract_range(extended);
      extended = topology::kNoServer;
    }
  }

  // Final sweep: every modeled item retrievable with the right payload.
  for (const auto& [id, payload] : model) {
    auto r = sys.retrieve(id, random_participant());
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r.value().route.found) << id;
    EXPECT_EQ(r.value().route.payload, payload);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelCheckTest,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull,
                                           6ull, 7ull, 8ull));

TEST(IntegrationTest, ChurnUnderLoad) {
  // Interleave joins/leaves with operations; nothing may be lost.
  auto built = GredSystem::create(waxman_net(12, 2, 5150, 2));
  ASSERT_TRUE(built.ok());
  GredSystem sys = std::move(built).value();

  std::vector<std::string> ids;
  for (int i = 0; i < 60; ++i) {
    const std::string id = "churn-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v" + std::to_string(i), i % 12).ok());
    ids.push_back(id);
  }
  auto sw = sys.add_switch({0, 1, 2}, 3);
  ASSERT_TRUE(sw.ok());
  for (int i = 60; i < 90; ++i) {
    const std::string id = "churn-" + std::to_string(i);
    ASSERT_TRUE(sys.place(id, "v" + std::to_string(i), i % 13).ok());
    ids.push_back(id);
  }
  ASSERT_TRUE(sys.remove_switch(sw.value()).ok());

  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto r = sys.retrieve(ids[i], i % 12);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().route.found) << ids[i];
    EXPECT_EQ(r.value().route.payload, "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace gred::core
