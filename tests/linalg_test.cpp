// Matrix algebra, the Jacobi eigensolver, and classical MDS (the
// mathematical core of the M-position algorithm).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"
#include "linalg/mds.hpp"

namespace gred::linalg {
namespace {

// ---------- Matrix ----------

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 0), -2.0);
}

TEST(MatrixTest, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixTest, IdentityAndOnes) {
  const Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
  const Matrix ones = Matrix::ones(2, 2);
  EXPECT_DOUBLE_EQ(ones(1, 1), 1.0);
}

TEST(MatrixTest, Transpose) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentity) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{4.0, 3.0}, {2.0, 1.0}};
  EXPECT_EQ((a + b)(0, 0), 5.0);
  EXPECT_EQ((a - b)(1, 1), 3.0);
  EXPECT_EQ((a * 2.0)(1, 0), 6.0);
  EXPECT_EQ((2.0 * a)(1, 0), 6.0);
}

TEST(MatrixTest, ElementwiseSquare) {
  Matrix a{{-2.0, 3.0}};
  const Matrix sq = a.elementwise_square();
  EXPECT_DOUBLE_EQ(sq(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(sq(0, 1), 9.0);
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix a{{3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(MatrixTest, Symmetry) {
  Matrix s{{1.0, 2.0}, {2.0, 3.0}};
  Matrix a{{1.0, 2.0}, {2.5, 3.0}};
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_FALSE(a.is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());
}

TEST(MatrixTest, MaxAbsDiff) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{1.5, 1.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

// ---------- symmetric eigendecomposition ----------

TEST(EigenTest, DiagonalMatrix) {
  Matrix d{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  const EigenDecomposition e = symmetric_eigen(d);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
  EXPECT_NEAR(e.values[2], 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  const EigenDecomposition e = symmetric_eigen(a);
  EXPECT_NEAR(e.values[0], 3.0, 1e-10);
  EXPECT_NEAR(e.values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(e.vectors(0, 0)), std::sqrt(0.5), 1e-8);
  EXPECT_NEAR(e.vectors(0, 0), e.vectors(1, 0), 1e-8);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(31);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-2.0, 2.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition e = symmetric_eigen(a);
  // A == V diag(values) V^T
  Matrix lambda(n, n);
  for (std::size_t i = 0; i < n; ++i) lambda(i, i) = e.values[i];
  const Matrix rebuilt = e.vectors * lambda * e.vectors.transpose();
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-8);
}

TEST(EigenTest, VectorsAreOrthonormal) {
  Rng rng(32);
  const std::size_t n = 10;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition e = symmetric_eigen(a);
  const Matrix vtv = e.vectors.transpose() * e.vectors;
  EXPECT_LT(vtv.max_abs_diff(Matrix::identity(n)), 1e-8);
}

TEST(EigenTest, ValuesSortedDescending) {
  Rng rng(33);
  const std::size_t n = 8;
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  const EigenDecomposition e = symmetric_eigen(a);
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_GE(e.values[i - 1], e.values[i]);
  }
}

TEST(EigenTest, RejectsAsymmetric) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW(symmetric_eigen(a), std::invalid_argument);
}

// ---------- classical MDS ----------

/// Distance matrix of explicit 2-D points.
Matrix distances_of(const std::vector<std::pair<double, double>>& pts) {
  const std::size_t n = pts.size();
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = pts[i].first - pts[j].first;
      const double dy = pts[i].second - pts[j].second;
      d(i, j) = std::sqrt(dx * dx + dy * dy);
    }
  }
  return d;
}

TEST(MdsTest, RecoversPlanarConfigurationExactly) {
  // Points genuinely in 2-D: classical MDS must reproduce all pairwise
  // distances (stress ~ 0).
  const std::vector<std::pair<double, double>> pts{
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 2.0}, {3.0, 1.0}, {-1.0, -1.0}};
  const Matrix d = distances_of(pts);
  auto r = classical_mds(d, 2);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_LT(r.value().stress, 1e-7);
  const Matrix dhat = pairwise_distances(r.value().coordinates);
  EXPECT_LT(dhat.max_abs_diff(d), 1e-7);
}

TEST(MdsTest, LineGraphEmbedsOnALine) {
  // Hop distances of a path graph are exactly 1-D Euclidean.
  const std::size_t n = 7;
  Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d(i, j) = std::fabs(static_cast<double>(i) - static_cast<double>(j));
    }
  }
  auto r = classical_mds(d, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r.value().stress, 1e-7);
  // Second coordinate should be ~0 for all points.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(r.value().coordinates(i, 1), 0.0, 1e-6);
  }
}

TEST(MdsTest, EigenvaluesDescending) {
  const std::vector<std::pair<double, double>> pts{
      {0.0, 0.0}, {2.0, 0.0}, {0.0, 1.0}, {2.0, 1.0}, {1.0, 3.0}};
  auto r = classical_mds(distances_of(pts), 2);
  ASSERT_TRUE(r.ok());
  const auto& ev = r.value().eigenvalues;
  for (std::size_t i = 1; i < ev.size(); ++i) {
    EXPECT_GE(ev[i - 1], ev[i] - 1e-9);
  }
}

TEST(MdsTest, TranslationInvariant) {
  const std::vector<std::pair<double, double>> base{
      {0.0, 0.0}, {1.0, 0.5}, {2.0, -1.0}, {0.5, 2.0}};
  std::vector<std::pair<double, double>> shifted;
  for (auto [x, y] : base) shifted.push_back({x + 100.0, y - 50.0});
  auto a = classical_mds(distances_of(base), 2);
  auto b = classical_mds(distances_of(shifted), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same distance matrices -> same embedded distances.
  const Matrix da = pairwise_distances(a.value().coordinates);
  const Matrix db = pairwise_distances(b.value().coordinates);
  EXPECT_LT(da.max_abs_diff(db), 1e-8);
}

TEST(MdsTest, RejectsBadInput) {
  EXPECT_FALSE(classical_mds(Matrix(0, 0), 2).ok());
  EXPECT_FALSE(classical_mds(Matrix(3, 4), 2).ok());
  EXPECT_FALSE(classical_mds(Matrix(3, 3), 0).ok());
  EXPECT_FALSE(classical_mds(Matrix(3, 3), 3).ok());

  Matrix asym(3, 3);
  asym(0, 1) = 1.0;  // not mirrored
  asym(1, 0) = 2.0;
  asym(0, 2) = asym(2, 0) = 1.0;
  asym(1, 2) = asym(2, 1) = 1.0;
  EXPECT_FALSE(classical_mds(asym, 2).ok());

  Matrix neg{{0.0, -1.0}, {-1.0, 0.0}};
  EXPECT_FALSE(classical_mds(neg, 1).ok());

  Matrix diag{{1.0, 1.0}, {1.0, 0.0}};
  EXPECT_FALSE(classical_mds(diag, 1).ok());
}

TEST(MdsTest, NonEuclideanDistancesStillEmbed) {
  // Hop metric of a star graph (center 0): d(leaf, leaf) = 2, d(0,
  // leaf) = 1. Not planar-Euclidean for 5 leaves, so stress > 0, but
  // the embedding must exist and be finite.
  const std::size_t n = 6;
  Matrix d(n, n);
  for (std::size_t i = 1; i < n; ++i) {
    d(0, i) = d(i, 0) = 1.0;
    for (std::size_t j = 1; j < n; ++j) {
      if (i != j) d(i, j) = 2.0;
    }
  }
  auto r = classical_mds(d, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r.value().stress, 0.0);
  EXPECT_LT(r.value().stress, 0.6);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(r.value().coordinates(i, 0)));
    EXPECT_TRUE(std::isfinite(r.value().coordinates(i, 1)));
  }
}

TEST(MdsTest, HigherDimensionReducesStrain) {
  // Classical MDS minimizes *strain* (squared-distance residual), and
  // adding a positive-eigenvalue dimension must not increase it. (Note
  // Kruskal stress is NOT monotone in m — a correct subtlety.)
  Rng rng(44);
  const std::size_t n = 10;
  std::vector<std::pair<double, double>> pts;
  for (std::size_t i = 0; i < n; ++i) {
    pts.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
  }
  Matrix d = distances_of(pts);
  // Perturb to make it slightly non-Euclidean.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double f = 1.0 + 0.1 * rng.next_double();
      d(i, j) *= f;
      d(j, i) = d(i, j);
    }
  }
  auto m2 = classical_mds(d, 2);
  auto m3 = classical_mds(d, 3);
  ASSERT_TRUE(m2.ok());
  ASSERT_TRUE(m3.ok());
  // Strain = || B - Q Q^T ||_F^2 where B is the double-centered squared
  // distance matrix — the objective classical MDS provably minimizes,
  // monotone non-increasing in m.
  const std::size_t nn = d.rows();
  Matrix j = Matrix::identity(nn);
  j -= Matrix::ones(nn, nn) * (1.0 / static_cast<double>(nn));
  Matrix b = j * d.elementwise_square() * j;
  b *= -0.5;
  auto strain = [&b](const Matrix& coords) {
    const Matrix bhat = coords * coords.transpose();
    const Matrix diff = b - bhat;
    return diff.frobenius_norm();
  };
  EXPECT_LE(strain(m3.value().coordinates),
            strain(m2.value().coordinates) + 1e-9);
}

TEST(KruskalStressTest, ZeroForExactMatch) {
  Matrix coords{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}};
  const Matrix d = pairwise_distances(coords);
  EXPECT_NEAR(kruskal_stress(d, coords), 0.0, 1e-12);
}

TEST(PairwiseDistancesTest, SymmetricZeroDiagonal) {
  Matrix coords{{0.0, 0.0}, {3.0, 4.0}};
  const Matrix d = pairwise_distances(coords);
  EXPECT_DOUBLE_EQ(d(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(1, 0), 5.0);
}

}  // namespace
}  // namespace gred::linalg
