// Workload substrate: Zipf sampling, trace generation, arrival
// processes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/rng.hpp"
#include "workload/arrivals.hpp"
#include "workload/generators.hpp"
#include "workload/zipf.hpp"

namespace gred::workload {
namespace {

// ---------- ZipfSampler ----------

TEST(ZipfTest, ProbabilitiesSumToOne) {
  const ZipfSampler z(100, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(z.probability(1000), 0.0);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.probability(k), 0.1, 1e-12);
  }
}

TEST(ZipfTest, MonotoneDecreasingProbabilities) {
  const ZipfSampler z(50, 0.9);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_GE(z.probability(k - 1), z.probability(k));
  }
}

TEST(ZipfTest, EmpiricalMatchesTheoretical) {
  const ZipfSampler z(20, 1.0);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / draws, z.probability(k),
                0.01)
        << "rank " << k;
  }
}

TEST(ZipfTest, SamplesInRange) {
  const ZipfSampler z(7, 2.0);
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.sample(rng), 7u);
  }
}

TEST(ZipfTest, SingleElement) {
  const ZipfSampler z(1, 1.5);
  Rng rng(7);
  EXPECT_EQ(z.sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.probability(0), 1.0);
}

TEST(ZipfTest, HigherExponentMoreSkew) {
  const ZipfSampler mild(100, 0.5);
  const ZipfSampler steep(100, 2.0);
  EXPECT_GT(steep.probability(0), mild.probability(0));
  EXPECT_LT(steep.probability(99), mild.probability(99));
}

// ---------- trace generation ----------

TEST(TraceTest, IdentifierUniverse) {
  const auto ids = identifier_universe("x", 3);
  EXPECT_EQ(ids, (std::vector<std::string>{"x/0", "x/1", "x/2"}));
}

TEST(TraceTest, StructureInvariants) {
  Rng rng(8);
  TraceOptions opt;
  opt.switches = 5;
  opt.universe = 30;
  opt.zipf_exponent = 1.0;
  opt.place_fraction = 0.3;
  const auto trace = generate_trace(500, opt, rng);
  ASSERT_EQ(trace.size(), 500u);

  EXPECT_EQ(trace.front().kind, Op::Kind::kPlace);
  std::set<std::string> placed;
  double prev_time = -1.0;
  for (const Op& op : trace) {
    EXPECT_LT(op.access_switch, 5u);
    EXPECT_GT(op.at_ms, prev_time);
    prev_time = op.at_ms;
    if (op.kind == Op::Kind::kPlace) {
      placed.insert(op.data_id);
    } else {
      // Every retrieval targets an already-placed identifier.
      EXPECT_TRUE(placed.count(op.data_id)) << op.data_id;
    }
  }
}

TEST(TraceTest, PlaceFractionRoughlyHonored) {
  Rng rng(9);
  TraceOptions opt;
  opt.universe = 1000;
  opt.place_fraction = 0.25;
  const auto trace = generate_trace(4000, opt, rng);
  std::size_t places = 0;
  for (const Op& op : trace) places += (op.kind == Op::Kind::kPlace);
  EXPECT_NEAR(static_cast<double>(places) / trace.size(), 0.25, 0.03);
}

TEST(TraceTest, ZipfSkewShowsInRetrievals) {
  Rng rng(10);
  TraceOptions opt;
  opt.universe = 100;
  opt.zipf_exponent = 1.5;
  opt.place_fraction = 0.05;
  const auto trace = generate_trace(5000, opt, rng);
  std::map<std::string, int> hits;
  for (const Op& op : trace) {
    if (op.kind == Op::Kind::kRetrieve) ++hits[op.data_id];
  }
  // The hottest object dominates.
  int max_hits = 0, total = 0;
  for (const auto& [id, c] : hits) {
    max_hits = std::max(max_hits, c);
    total += c;
  }
  EXPECT_GT(static_cast<double>(max_hits) / total, 0.15);
}

// Property sweep across (n, s) and seeds, including the degenerate
// uniform (s = 0) and extreme-skew corners: probabilities form a
// distribution, every sample is in range (the CDF boundary clamp), and
// empirical frequency tracks theory.
TEST(ZipfTest, PropertySweep) {
  const std::size_t sizes[] = {1, 2, 17, 257};
  const double exponents[] = {0.0, 0.5, 1.0, 2.5, 6.0};
  std::uint64_t seed = 40;
  for (std::size_t n : sizes) {
    for (double s : exponents) {
      const ZipfSampler z(n, s);
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) total += z.probability(k);
      EXPECT_NEAR(total, 1.0, 1e-9) << "n=" << n << " s=" << s;

      Rng rng(seed++);
      std::vector<int> counts(n, 0);
      const int draws = 20000;
      for (int i = 0; i < draws; ++i) {
        const std::size_t k = z.sample(rng);
        ASSERT_LT(k, n) << "n=" << n << " s=" << s;
        ++counts[k];
      }
      for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(static_cast<double>(counts[k]) / draws,
                    z.probability(k), 0.02)
            << "n=" << n << " s=" << s << " rank " << k;
      }
    }
  }
}

// ---------- hardening guards (hard checks, active in Release) ----------

TEST(WorkloadGuardDeathTest, ZipfEmptyUniverseAborts) {
  EXPECT_DEATH(ZipfSampler(0, 1.0), "invariant violated");
}

TEST(WorkloadGuardDeathTest, ZipfBadExponentAborts) {
  EXPECT_DEATH(ZipfSampler(5, -1.0), "invariant violated");
  EXPECT_DEATH(ZipfSampler(5, std::nan("")), "invariant violated");
}

TEST(WorkloadGuardDeathTest, PoissonNonPositiveRateAborts) {
  Rng rng(1);
  EXPECT_DEATH(poisson_arrivals(3, 0.0, rng), "invariant violated");
  EXPECT_DEATH(poisson_arrivals(3, -2.0, rng), "invariant violated");
  EXPECT_DEATH(
      poisson_arrivals(3, std::numeric_limits<double>::infinity(), rng),
      "invariant violated");
}

TEST(WorkloadGuardDeathTest, UniformNegativeSpacingAborts) {
  EXPECT_DEATH(uniform_arrivals(3, -1.0), "invariant violated");
  EXPECT_DEATH(uniform_arrivals(3, std::nan("")), "invariant violated");
}

TEST(WorkloadGuardDeathTest, BurstyBadGapAborts) {
  EXPECT_DEATH(bursty_arrivals(2, 2, -0.5), "invariant violated");
}

TEST(WorkloadGuardDeathTest, BurstyCountOverflowAborts) {
  // batches * per_batch wraps std::size_t; the reserve must never see
  // the wrapped value.
  EXPECT_DEATH(
      bursty_arrivals(std::numeric_limits<std::size_t>::max() / 2, 3, 1.0),
      "invariant violated");
}

TEST(WorkloadGuardDeathTest, TraceZeroSwitchesAborts) {
  Rng rng(2);
  TraceOptions opt;
  opt.switches = 0;
  EXPECT_DEATH(generate_trace(10, opt, rng), "invariant violated");
}

TEST(WorkloadGuardDeathTest, TraceZeroUniverseAborts) {
  Rng rng(3);
  TraceOptions opt;
  opt.universe = 0;
  EXPECT_DEATH(generate_trace(10, opt, rng), "invariant violated");
}

// ---------- arrivals ----------

TEST(ArrivalsTest, PoissonMeanRate) {
  Rng rng(11);
  const auto times = poisson_arrivals(20000, 2.0, rng);
  ASSERT_EQ(times.size(), 20000u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  // Mean inter-arrival = 1/rate = 0.5 ms.
  EXPECT_NEAR(times.back() / 20000.0, 0.5, 0.02);
}

TEST(ArrivalsTest, Uniform) {
  const auto times = uniform_arrivals(4, 2.5);
  EXPECT_EQ(times, (std::vector<double>{0.0, 2.5, 5.0, 7.5}));
}

TEST(ArrivalsTest, Bursty) {
  const auto times = bursty_arrivals(2, 3, 10.0);
  ASSERT_EQ(times.size(), 6u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[2], 0.0);
  EXPECT_DOUBLE_EQ(times[3], 10.0);
  EXPECT_DOUBLE_EQ(times[5], 10.0);
}

}  // namespace
}  // namespace gred::workload
